"""Tests for the benchmark circuit generators (functional correctness)."""

import random

import pytest

from repro.circuits import (
    TABLE1_CIRCUITS,
    array_multiplier,
    barrel_shifter,
    build_circuit,
    comparator,
    parity_tree,
    ripple_adder,
    simple_alu,
)
from repro.circuits.iscas import ecc_corrector, ecc_secded, interrupt_controller
from repro.circuits.registry import expand_xors
from repro.verify import check_equivalence


def _word(net, out, prefix, n, assignment):
    vals = net.eval(assignment)
    return sum(int(vals["%s%d" % (prefix, i)]) << i for i in range(n))


class TestAdder:
    def test_exhaustive_4bit(self):
        net = ripple_adder(4)
        for a in range(16):
            for b in range(16):
                assignment = {}
                for i in range(4):
                    assignment["a%d" % i] = bool(a >> i & 1)
                    assignment["b%d" % i] = bool(b >> i & 1)
                vals = net.eval(assignment)
                got = sum(int(vals["fa%d_s" % i]) << i for i in range(4))
                got += int(vals[net.outputs[-1]]) << 4
                assert got == a + b


class TestMultiplier:
    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_exhaustive(self, bits):
        net = array_multiplier(bits)
        for a in range(1 << bits):
            for b in range(1 << bits):
                assignment = {}
                for i in range(bits):
                    assignment["a%d" % i] = bool(a >> i & 1)
                    assignment["b%d" % i] = bool(b >> i & 1)
                got = _word(net, None, "p", 2 * bits, assignment)
                assert got == a * b, (a, b)


class TestBarrelShifter:
    @pytest.mark.parametrize("width", [4, 8])
    def test_rotation(self, width):
        net = barrel_shifter(width)
        rng = random.Random(5)
        stages = width.bit_length() - 1
        for _ in range(40):
            data = rng.getrandbits(width)
            amount = rng.randrange(width)
            assignment = {}
            for i in range(width):
                assignment["d%d" % i] = bool(data >> i & 1)
            for s in range(stages):
                assignment["s%d" % s] = bool(amount >> s & 1)
            vals = net.eval(assignment)
            got = sum(int(vals["o%d" % i]) << i for i in range(width))
            expected = ((data >> amount) | (data << (width - amount))) \
                & ((1 << width) - 1)
            assert got == expected, (data, amount)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            barrel_shifter(12)


class TestComparator:
    def test_exhaustive_3bit(self):
        net = comparator(3)
        for a in range(8):
            for b in range(8):
                assignment = {}
                for i in range(3):
                    assignment["a%d" % i] = bool(a >> i & 1)
                    assignment["b%d" % i] = bool(b >> i & 1)
                vals = net.eval(assignment)
                assert vals["eq"] == (a == b)
                assert vals["gt"] == (a > b)
                assert vals["lt"] == (a < b)


class TestParityAlu:
    def test_parity(self):
        net = parity_tree(8)
        rng = random.Random(7)
        for _ in range(50):
            bits = [rng.random() < 0.5 for _ in range(8)]
            assignment = {"x%d" % i: b for i, b in enumerate(bits)}
            assert net.eval(assignment)["parity"] == (sum(bits) % 2 == 1)

    def test_alu_ops(self):
        net = simple_alu(4)
        rng = random.Random(9)
        for _ in range(60):
            a, b = rng.randrange(16), rng.randrange(16)
            op = rng.randrange(4)
            assignment = {"op0": bool(op & 1), "op1": bool(op >> 1)}
            for i in range(4):
                assignment["a%d" % i] = bool(a >> i & 1)
                assignment["b%d" % i] = bool(b >> i & 1)
            vals = net.eval(assignment)
            got = sum(int(vals["r%d" % i]) << i for i in range(4))
            # op1=0: op0 selects add / and; op1=1: op0 selects or / xor.
            expected = [a + b & 15, a & b, a | b, a ^ b][op]
            assert got == expected, (a, b, op)


class TestEcc:
    def test_corrects_single_errors(self):
        data_bits, check_bits = 8, 5
        net = ecc_corrector(data_bits, check_bits)
        from repro.circuits.iscas import _hamming_patterns
        patterns = _hamming_patterns(data_bits, check_bits)
        rng = random.Random(11)
        for _ in range(30):
            word = rng.getrandbits(data_bits)
            # Compute correct check bits: parity of member data bits.
            checks = []
            for j in range(check_bits):
                parity = 0
                for i in range(data_bits):
                    if patterns[i] >> j & 1:
                        parity ^= word >> i & 1
                checks.append(parity)
            flip = rng.randrange(data_bits + 1)  # data bit or no error
            received = word ^ ((1 << flip) if flip < data_bits else 0)
            assignment = {}
            for i in range(data_bits):
                assignment["d%d" % i] = bool(received >> i & 1)
            for j in range(check_bits):
                assignment["c%d" % j] = bool(checks[j])
            vals = net.eval(assignment)
            got = sum(int(vals["o%d" % i]) << i for i in range(data_bits))
            assert got == word, (word, flip)

    def test_secded_builds_and_checks(self):
        net = ecc_secded(8, 5)
        net.check()
        assert "double_err" in net.outputs


class TestRegistry:
    def test_all_table1_build(self):
        for name in TABLE1_CIRCUITS:
            net = build_circuit(name)
            net.check()
            assert net.node_count() > 10, name

    def test_parametric_names(self):
        assert build_circuit("bshift8").name == "bshift8"
        assert build_circuit("m3x3").node_count() > 5
        assert build_circuit("add6").node_count() > 5
        with pytest.raises(KeyError):
            build_circuit("nonsense")

    def test_expand_xors_preserves_function(self):
        net = parity_tree(8)
        ref = net.copy()
        expand_xors(net)
        # No xor covers remain.
        from repro.sop.cube import lit
        xor_cover = {frozenset({lit(0), lit(1, False)}),
                     frozenset({lit(0, False), lit(1)})}
        for node in net.nodes.values():
            assert set(node.cover) != xor_cover
        assert check_equivalence(ref, net).equivalent

    def test_c1355_equals_c499_structure_differs(self):
        c499 = build_circuit("C499")
        c1355 = build_circuit("C1355")
        assert c1355.node_count() > c499.node_count()

    def test_interrupt_controller_priority(self):
        net = interrupt_controller(4, "ictl")
        base = {s: False for s in net.inputs}
        # Channel request on bus A wins over B.
        assignment = dict(base)
        assignment.update({"a1": True, "e1": True, "b2": True, "e2": True})
        vals = net.eval(assignment)
        assert vals["PA"] is True
        assert vals["PB"] is False

    def test_deterministic_generation(self):
        n1 = build_circuit("pair")
        n2 = build_circuit("pair")
        assert n1.node_count() == n2.node_count()
        assert check_equivalence(n1, n2).equivalent
