"""Unit tests for the BDD manager: construction, ITE, derived operators."""

import itertools

import pytest

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.traverse import evaluate, node_count, support


@pytest.fixture
def mgr():
    return BDD()


def brute_force_check(mgr, ref, variables, fn):
    """Compare a BDD against a Python lambda over all assignments."""
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        assert evaluate(mgr, ref, assignment) == fn(*bits), (
            "mismatch at %s" % (bits,))


class TestBasics:
    def test_constants(self, mgr):
        assert ONE == 0
        assert ZERO == 1
        assert mgr.is_const(ONE)
        assert mgr.is_const(ZERO)
        assert mgr.not_(ONE) == ZERO

    def test_variable_creation(self, mgr):
        a = mgr.new_var("a")
        b = mgr.new_var("b")
        assert mgr.var_name(a) == "a"
        assert mgr.var_by_name("b") == b
        assert mgr.level_of_var(a) == 0
        assert mgr.level_of_var(b) == 1

    def test_duplicate_name_rejected(self, mgr):
        mgr.new_var("a")
        with pytest.raises(ValueError):
            mgr.new_var("a")

    def test_literal(self, mgr):
        a = mgr.new_var("a")
        pos = mgr.literal(a, True)
        neg = mgr.literal(a, False)
        assert pos == mgr.var_ref(a)
        assert neg == pos ^ 1
        assert evaluate(mgr, pos, {a: True})
        assert not evaluate(mgr, pos, {a: False})
        assert evaluate(mgr, neg, {a: False})

    def test_canonicity_hash_consing(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f1 = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        f2 = mgr.and_(mgr.var_ref(b), mgr.var_ref(a))
        assert f1 == f2

    def test_reduction_rule(self, mgr):
        a = mgr.new_var("a")
        assert mgr.mk(a, ONE, ONE) == ONE
        assert mgr.mk(a, ZERO, ZERO) == ZERO

    def test_then_edge_never_complemented(self, mgr):
        vs = [mgr.new_var() for _ in range(4)]
        import random
        rng = random.Random(7)
        refs = [mgr.var_ref(v) for v in vs]
        for _ in range(200):
            op = rng.choice(["and", "or", "xor", "not"])
            if op == "not":
                refs.append(mgr.not_(rng.choice(refs)))
            else:
                f, g = rng.choice(refs), rng.choice(refs)
                refs.append(getattr(mgr, op + "_")(f, g))
        for idx in range(1, mgr.num_nodes_allocated):
            assert not (mgr._hi[idx] & 1)


class TestOperators:
    def test_and(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        brute_force_check(mgr, f, [a, b], lambda x, y: x and y)

    def test_or(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.or_(mgr.var_ref(a), mgr.var_ref(b))
        brute_force_check(mgr, f, [a, b], lambda x, y: x or y)

    def test_xor(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.xor_(mgr.var_ref(a), mgr.var_ref(b))
        brute_force_check(mgr, f, [a, b], lambda x, y: x != y)

    def test_xnor(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.xnor_(mgr.var_ref(a), mgr.var_ref(b))
        brute_force_check(mgr, f, [a, b], lambda x, y: x == y)

    def test_nand_nor(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.nand_(mgr.var_ref(a), mgr.var_ref(b))
        g = mgr.nor_(mgr.var_ref(a), mgr.var_ref(b))
        brute_force_check(mgr, f, [a, b], lambda x, y: not (x and y))
        brute_force_check(mgr, g, [a, b], lambda x, y: not (x or y))

    def test_implies(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.implies(mgr.var_ref(a), mgr.var_ref(b))
        brute_force_check(mgr, f, [a, b], lambda x, y: (not x) or y)

    def test_ite_general(self, mgr):
        a, b, c = mgr.new_var("a"), mgr.new_var("b"), mgr.new_var("c")
        f = mgr.ite(mgr.var_ref(a), mgr.var_ref(b), mgr.var_ref(c))
        brute_force_check(mgr, f, [a, b, c], lambda x, y, z: y if x else z)

    def test_variadic(self, mgr):
        vs = [mgr.new_var() for _ in range(4)]
        lits = [mgr.var_ref(v) for v in vs]
        f = mgr.and_many(lits)
        brute_force_check(mgr, f, vs, lambda *b: all(b))
        g = mgr.or_many(lits)
        brute_force_check(mgr, g, vs, lambda *b: any(b))
        h = mgr.xor_many(lits)
        brute_force_check(mgr, h, vs, lambda *b: sum(b) % 2 == 1)

    def test_demorgan(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        ra, rb = mgr.var_ref(a), mgr.var_ref(b)
        assert mgr.not_(mgr.and_(ra, rb)) == mgr.or_(mgr.not_(ra), mgr.not_(rb))

    def test_leq(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        ra, rb = mgr.var_ref(a), mgr.var_ref(b)
        ab = mgr.and_(ra, rb)
        assert mgr.leq(ab, ra)
        assert mgr.leq(ab, mgr.or_(ra, rb))
        assert not mgr.leq(ra, ab)
        assert mgr.leq(ZERO, ab)
        assert mgr.leq(ab, ONE)


class TestCofactorsComposition:
    def test_cofactor(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.or_(mgr.and_(mgr.var_ref(a), mgr.var_ref(b)), mgr.var_ref(c))
        f_a1 = mgr.cofactor(f, a, True)
        brute_force_check(mgr, f_a1, [b, c], lambda y, z: y or z)
        f_a0 = mgr.cofactor(f, a, False)
        brute_force_check(mgr, f_a0, [b, c], lambda y, z: z)

    def test_cofactor_of_lower_var(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.xor_(mgr.var_ref(a), mgr.var_ref(b))
        f_b0 = mgr.cofactor(f, b, False)
        assert f_b0 == mgr.var_ref(a)
        f_b1 = mgr.cofactor(f, b, True)
        assert f_b1 == mgr.not_(mgr.var_ref(a))

    def test_shannon_expansion(self, mgr):
        import random
        rng = random.Random(3)
        vs = [mgr.new_var() for _ in range(5)]
        f = _random_function(mgr, vs, rng, depth=6)
        for v in vs:
            f0 = mgr.cofactor(f, v, False)
            f1 = mgr.cofactor(f, v, True)
            rebuilt = mgr.ite(mgr.var_ref(v), f1, f0)
            assert rebuilt == f

    def test_compose(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        g = mgr.or_(mgr.var_ref(b), mgr.var_ref(c))
        h = mgr.compose(f, a, g)
        brute_force_check(mgr, h, [a, b, c], lambda x, y, z: (y or z) and y)

    def test_vector_compose(self, mgr):
        a, b, c, d = (mgr.new_var(n) for n in "abcd")
        f = mgr.xor_(mgr.var_ref(a), mgr.var_ref(b))
        subst = {a: mgr.and_(mgr.var_ref(c), mgr.var_ref(d)),
                 b: mgr.or_(mgr.var_ref(c), mgr.var_ref(d))}
        h = mgr.vector_compose(f, subst)
        brute_force_check(mgr, h, [c, d], lambda z, w: (z and w) != (z or w))

    def test_vector_compose_simultaneous(self, mgr):
        # Swap a and b simultaneously; sequential compose would differ.
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.and_(mgr.var_ref(a), mgr.not_(mgr.var_ref(b)))
        h = mgr.vector_compose(f, {a: mgr.var_ref(b), b: mgr.var_ref(a)})
        brute_force_check(mgr, h, [a, b], lambda x, y: y and not x)

    def test_exists(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.and_(mgr.var_ref(a), mgr.xor_(mgr.var_ref(b), mgr.var_ref(c)))
        g = mgr.exists(f, [b])
        brute_force_check(mgr, g, [a, c], lambda x, z: x)

    def test_forall(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.or_(mgr.var_ref(a), mgr.var_ref(b))
        g = mgr.forall(f, [b])
        assert g == mgr.var_ref(a)

    def test_quantification_duality(self, mgr):
        import random
        rng = random.Random(11)
        vs = [mgr.new_var() for _ in range(5)]
        f = _random_function(mgr, vs, rng, depth=6)
        for v in vs:
            ex = mgr.exists(f, [v])
            fa = mgr.forall(f, [v])
            assert ex == mgr.or_(mgr.cofactor(f, v, False), mgr.cofactor(f, v, True))
            assert fa == mgr.and_(mgr.cofactor(f, v, False), mgr.cofactor(f, v, True))


class TestStructure:
    def test_support(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(c))
        assert support(mgr, f) == {a, c}
        assert support(mgr, ONE) == set()

    def test_node_count(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        assert node_count(mgr, f) == 2
        assert node_count(mgr, ONE) == 0
        g = mgr.xor_(mgr.var_ref(a), mgr.var_ref(b))
        assert node_count(mgr, g) == 2  # complement edges share the b node

    def test_complement_edge_sharing(self, mgr):
        # f and ~f must share every node.
        vs = [mgr.new_var() for _ in range(4)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        before = mgr.num_nodes_allocated
        g = mgr.not_(f)
        assert mgr.num_nodes_allocated == before
        assert g == (f ^ 1)


def _random_function(mgr, variables, rng, depth=6):
    refs = [mgr.var_ref(v) for v in variables]
    for _ in range(depth * len(variables)):
        op = rng.choice(["and", "or", "xor"])
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, op + "_")(f, g))
    return refs[-1]
