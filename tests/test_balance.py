"""Tests for factoring-tree balancing (Section VI item 3 extension)."""

import itertools
import random

import pytest

from repro.bds import BDSOptions, bds_optimize
from repro.decomp.balance import balance_forest, balance_tree
from repro.decomp.ftree import mux, negate, op2, var_leaf
from repro.network import Network
from repro.verify import check_equivalence


def chain(op, names):
    t = var_leaf(names[0])
    for n in names[1:]:
        t = op2(op, t, var_leaf(n))
    return t


def _equiv(t1, t2, names):
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        if t1.evaluate(env) != t2.evaluate(env):
            return False
    return True


class TestBalanceTree:
    @pytest.mark.parametrize("op", ["and", "or", "xor", "xnor"])
    def test_chain_becomes_logarithmic(self, op):
        names = list("abcdefgh")
        t = chain(op, names)
        assert t.depth() == 7
        b = balance_tree(t)
        assert b.depth() <= 3 + (1 if op == "xnor" else 0)
        assert _equiv(t, b, names)

    def test_preserves_semantics_random(self):
        rng = random.Random(5)
        names = list("abcde")
        for _ in range(40):
            t = _random_tree(rng, names, depth=5)
            b = balance_tree(t)
            assert _equiv(t, b, names), t.to_expr()
            assert b.depth() <= t.depth() + 1  # xnor polarity may add a NOT

    def test_uneven_operand_depths(self):
        # A deep operand should be combined last (Huffman property).
        deep = chain("and", list("abcd"))      # depth 3
        t = op2("or", op2("or", deep, var_leaf("x")), var_leaf("y"))
        b = balance_tree(t)
        # depth stays 4: the OR chain adds only 1 level over the deep AND.
        assert b.depth() <= 4
        assert _equiv(t, b, list("abcdxy"))

    def test_xnor_parity_polarity(self):
        names = list("abc")
        t = chain("xnor", names)   # a xnor b xnor c == parity(a,b,c)... check
        b = balance_tree(t)
        assert _equiv(t, b, names)

    def test_mux_children_balanced(self):
        t = mux(var_leaf("s"), chain("and", list("abcd")),
                chain("or", list("wxyz")))
        b = balance_tree(t)
        assert b.op == "mux"
        assert b.depth() <= 3
        assert _equiv(t, b, list("sabcdwxyz"))

    def test_forest(self):
        trees = {"f": chain("xor", list("abcdefgh")),
                 "g": chain("and", list("abcd"))}
        balanced = balance_forest(trees)
        assert set(balanced) == {"f", "g"}
        assert balanced["f"].depth() <= 4


class TestBalanceInFlow:
    def test_flow_with_balancing_equivalent_and_shallower(self):
        # A parity chain (deliberately linear, not the balanced tree).
        net = Network("chain")
        names = [net.add_input("x%d" % i) for i in range(12)]
        prev = names[0]
        for i in range(1, 12):
            cur = "p%d" % i if i < 11 else "out"
            net.add_xor(cur, [prev, names[i]])
            prev = cur
        net.add_output("out")
        plain = bds_optimize(net, BDSOptions(balance_trees=False))
        balanced = bds_optimize(net, BDSOptions(balance_trees=True))
        assert check_equivalence(net, plain.network).equivalent
        assert check_equivalence(net, balanced.network).equivalent
        assert balanced.network.depth() <= plain.network.depth()


def _random_tree(rng, names, depth):
    if depth == 0 or rng.random() < 0.25:
        t = var_leaf(rng.choice(names))
        return negate(t) if rng.random() < 0.3 else t
    op = rng.choice(["and", "or", "xor", "xnor", "mux"])
    if op == "mux":
        return mux(_random_tree(rng, names, depth - 1),
                   _random_tree(rng, names, depth - 1),
                   _random_tree(rng, names, depth - 1))
    return op2(op, _random_tree(rng, names, depth - 1),
               _random_tree(rng, names, depth - 1))
