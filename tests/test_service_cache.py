"""Tests for the content-addressed artifact cache and the options key
scheme (repro.service.cache + BDSOptions.cache_key)."""

import json
import os
import random

import pytest

from repro.bds.flow import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.circuits.randlogic import random_logic
from repro.decomp.engine import DecompOptions
from repro.network.blif import write_blif
from repro.service.cache import Artifact, ArtifactCache, canonical_blif
from repro.verify import verify_networks


class TestCacheKey:
    def test_stable_across_field_order_permutations(self):
        base = BDSOptions(eliminate_threshold=2, reorder=False,
                          verify="cec").to_dict()
        reference = BDSOptions.from_dict(base).cache_key()
        rng = random.Random(7)
        for _ in range(5):
            items = list(base.items())
            rng.shuffle(items)
            shuffled = dict(items)
            decomp_items = list(shuffled["decomp"].items())
            rng.shuffle(decomp_items)
            shuffled["decomp"] = dict(decomp_items)
            assert BDSOptions.from_dict(shuffled).cache_key() == reference

    def test_key_changes_when_any_semantic_field_changes(self):
        reference = BDSOptions().cache_key()
        semantic = [
            ("eliminate_threshold", 3),
            ("eliminate_size_cap", 77),
            ("use_bdd_mapping", False),
            ("reorder", False),
            ("sift_size_limit", 123),
            ("autoreorder", 500),
            ("autoreorder_method", "window3"),
            ("sharing", False),
            ("final_sweep", False),
            ("sweep_merge_equivalent", False),
            ("balance_trees", True),
            ("use_sdc", True),
            ("verify", "cec"),
            ("verify_size_cap", 999),
            ("verify_seed", 2),
            ("verify_budget", 1.5),
        ]
        seen = {reference}
        for name, value in semantic:
            key = BDSOptions(**{name: value}).cache_key()
            assert key != reference, name
            seen.add(key)
        key = BDSOptions(decomp=DecompOptions(enable_mux=False)).cache_key()
        assert key != reference
        seen.add(key)
        # Every variation keys distinctly, not just differently from base.
        assert len(seen) == len(semantic) + 2

    def test_non_semantic_fields_do_not_change_the_key(self):
        reference = BDSOptions().cache_key()
        assert BDSOptions(jobs=4).cache_key() == reference
        assert BDSOptions(check_level="full").cache_key() == reference

    def test_roundtrip_through_dict(self):
        opts = BDSOptions(eliminate_threshold=5, verify="full",
                          decomp=DecompOptions(enable_generalized=False))
        again = BDSOptions.from_dict(opts.to_dict())
        assert again == opts
        assert again.cache_key() == opts.cache_key()

    def test_canonical_blif_ignores_textual_variation(self):
        net = build_circuit("add4")
        text = write_blif(net)
        noisy = "# a comment\n" + text.replace("\n.end", "\n# x\n.end")
        assert canonical_blif(noisy) == canonical_blif(text)


class TestArtifactStore:
    def test_store_lookup_roundtrip(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        net = build_circuit("cmp8")
        opts = BDSOptions()
        key = cache.key_for(net, opts)
        assert cache.lookup(key) is None and cache.misses == 1
        result = bds_optimize(net, opts)
        cache.store(key, Artifact.from_result(result, opts))
        artifact = cache.lookup(key)
        assert artifact is not None and cache.hits == 1
        assert artifact.network_blif == write_blif(result.network)
        assert artifact.supernodes == result.supernodes

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_roundtrip_structurally_equal_and_equivalent(self, tmp_path, seed):
        """load(store(net)) is structurally equal and CEC-equivalent."""
        cache = ArtifactCache(str(tmp_path))
        net = random_logic(8, 24, 4, seed=seed, xor_fraction=0.2,
                           name="rt%d" % seed)
        artifact = Artifact(network_blif=write_blif(net))
        key = "%064x" % seed
        cache.store(key, artifact)
        loaded = cache.lookup(key).network()
        assert write_blif(loaded) == write_blif(net)
        assert loaded.stats() == net.stats()
        assert verify_networks(net, loaded, mode="cec").equivalent

    def test_truncated_entry_is_a_clean_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = cache.key_for(build_circuit("add4"), BDSOptions())
        path = cache.store(key, Artifact(network_blif=".model t\n.end\n"))
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text[:len(text) // 2])
        assert cache.lookup(key) is None
        assert cache.corrupt == 1 and cache.misses == 1
        # The damaged object was dropped; a re-store works again.
        cache.store(key, Artifact(network_blif=".model t\n.end\n"))
        assert cache.lookup(key) is not None

    def test_bitflipped_entry_is_a_clean_miss(self, tmp_path):
        rng = random.Random(1355)
        cache = ArtifactCache(str(tmp_path))
        key = "ab" * 32
        result = bds_optimize(build_circuit("add4"), BDSOptions())
        path = cache.store(key, Artifact.from_result(result, BDSOptions()))
        raw = bytearray(open(path, "rb").read())
        # Flip a bit inside the payload body (past the checksum header).
        pos = rng.randrange(len(raw) // 2, len(raw) - 2)
        raw[pos] ^= 0x20
        with open(path, "wb") as fh:
            fh.write(bytes(raw))
        assert cache.lookup(key) is None
        assert cache.corrupt == 1

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.store("cd" * 32, Artifact(network_blif=".model t\n.end\n"))
        with open(os.path.join(str(tmp_path), "index.json"), "w") as fh:
            fh.write("{nope")
        again = ArtifactCache(str(tmp_path))
        assert len(again) == 1
        assert again.lookup("cd" * 32) is not None

    def test_lru_eviction_is_size_bounded(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), max_entries=2)
        keys = ["%064d" % i for i in range(3)]
        for key in keys:
            cache.store(key, Artifact(network_blif=".model t\n.end\n"))
        assert len(cache) == 2 and cache.evictions == 1
        assert cache.lookup(keys[0]) is None       # oldest was evicted
        assert cache.lookup(keys[2]) is not None
        # A lookup refreshes recency: key 1 was touched by the (missed)
        # lookup order above?  No -- only hits refresh.  Touch key 1, then
        # store a new key; key 2 is now the LRU victim.
        assert cache.lookup(keys[1]) is not None
        cache.store("%064d" % 9, Artifact(network_blif=".model t\n.end\n"))
        assert cache.lookup(keys[2]) is None
        assert cache.lookup(keys[1]) is not None

    def test_atomic_store_leaves_no_temp_debris(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.store("ef" * 32, Artifact(network_blif=".model t\n.end\n"))
        for dirpath, _dirs, files in os.walk(str(tmp_path)):
            for name in files:
                assert not name.startswith(".tmp-"), os.path.join(dirpath,
                                                                  name)


class TestFlowShortCircuit:
    def test_miss_then_hit_byte_identical(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        net = build_circuit("add8")
        opts = BDSOptions(verify="cec")
        cold = bds_optimize(net, opts, cache=cache)
        assert cold.perf["artifact_cache_misses"] == 1
        assert cold.perf["artifact_cache_stores"] == 1
        warm = bds_optimize(net, opts, cache=cache)
        assert warm.perf["artifact_cache_hits"] == 1
        assert "artifact_cache_misses" not in warm.perf or \
            warm.perf["artifact_cache_misses"] == 0
        assert write_blif(warm.network) == write_blif(cold.network)
        assert warm.verify_unknown_outputs == cold.verify_unknown_outputs
        assert warm.decomp_stats.as_dict() == cold.decomp_stats.as_dict()
        assert warm.supernodes == cold.supernodes

    def test_semantically_different_options_do_not_share(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        net = build_circuit("add4")
        bds_optimize(net, BDSOptions(), cache=cache)
        other = bds_optimize(net, BDSOptions(reorder=False), cache=cache)
        assert other.perf["artifact_cache_misses"] == 1

    def test_non_semantic_options_do_share(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        net = build_circuit("add4")
        bds_optimize(net, BDSOptions(jobs=1), cache=cache)
        warm = bds_optimize(net, BDSOptions(jobs=2, check_level="cheap"),
                            cache=cache)
        assert warm.perf["artifact_cache_hits"] == 1

    def test_cached_result_is_equivalent_to_input(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        net = build_circuit("parity8")
        bds_optimize(net, BDSOptions(), cache=cache)
        warm = bds_optimize(net, BDSOptions(), cache=cache)
        assert verify_networks(net, warm.network, mode="cec").equivalent


class TestCorruptDumpLoads:
    """repro.bdd.serialize.loads rejects damage with ValueError only."""

    def _dump(self):
        from repro.bdd.manager import BDD
        from repro.bdd.serialize import dumps

        mgr = BDD()
        a, b, c = (mgr.var_ref(mgr.new_var(n)) for n in "abc")
        f = mgr.ite(a, mgr.xor_(b, c), mgr.and_(b, c))
        return dumps(mgr, [f])

    @pytest.mark.parametrize("mangle", [
        lambda t: t[: len(t) // 2],                       # truncation
        lambda t: t.replace(".bdd", ".nope", 1),          # bad magic
        lambda t: t.replace("\n.roots", "\njunk line\n.roots", 1),
        lambda t: "\n".join(
            line + " 9" if line and line[0].isdigit() else line
            for line in t.splitlines()),                  # field count
        lambda t: t.replace(".roots ", ".roots 999998 ", 1),  # dangling root
    ])
    def test_mangled_dump_raises_value_error(self, mangle):
        from repro.bdd.serialize import loads

        text = mangle(self._dump())
        with pytest.raises(ValueError):
            loads(text)

    def test_clean_dump_still_loads(self):
        from repro.bdd.serialize import loads

        mgr, roots = loads(self._dump())
        assert len(roots) == 1


def test_artifact_payload_versioning(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    path = cache.store("12" * 32, Artifact(network_blif=".model t\n.end\n"))
    wrapper = json.load(open(path))
    wrapper["payload"]["version"] = 999
    with open(path, "w") as fh:
        json.dump(wrapper, fh)
    # Version mismatch *with a stale checksum* is corruption; with a
    # recomputed checksum it is schema drift -- either way a clean miss.
    assert cache.lookup("12" * 32) is None


def _hammer_index(root, prefix, count, barrier):
    """One writer process: store ``count`` artifacts with distinct keys."""
    import hashlib

    cache = ArtifactCache(root)
    barrier.wait()            # maximize read-modify-write interleaving
    for i in range(count):
        key = hashlib.sha256(
            ("%s-%d" % (prefix, i)).encode("utf-8")).hexdigest()
        cache.store(key, Artifact(network_blif=".model t\n.end\n"))


class TestConcurrentWriters:
    """Satellite fix: two processes sharing one cache dir used to lose
    each other's index entries (read-modify-write of index.json without
    a lock); the fcntl advisory lock makes every store stick."""

    def test_two_process_hammer_loses_no_entries(self, tmp_path):
        import multiprocessing

        count = 20
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        procs = [ctx.Process(target=_hammer_index,
                             args=(str(tmp_path), prefix, count, barrier))
                 for prefix in ("a", "b")]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
        assert all(p.exitcode == 0 for p in procs)
        # A fresh reader sees every store from both writers -- in the
        # index (not just via the objects/ rescan fallback).
        reader = ArtifactCache(str(tmp_path))
        assert reader.corrupt == 0            # index parsed, not rebuilt
        assert len(reader) == 2 * count
        # ...and the index agrees with the objects on disk.
        objects = sum(
            name.endswith(".json") and not name.startswith(".tmp-")
            for _dir, _sub, files in os.walk(str(tmp_path / "objects"))
            for name in files)
        assert objects == 2 * count

    def test_single_process_semantics_unchanged(self, tmp_path):
        cache = ArtifactCache(str(tmp_path), max_entries=2)
        for i in range(3):
            cache.store(("%02d" % i) * 32,
                        Artifact(network_blif=".model t\n.end\n"))
        assert len(cache) == 2                # LRU bound still enforced
        assert cache.evictions == 1
        assert cache.lookup("00" * 32) is None     # the evicted one
        assert cache.lookup("02" * 32) is not None
