"""Replay every corpus entry in tests/corpus/ -- forever.

Each ``.blif`` under ``tests/corpus/`` is a minimized fuzzing find (see
repro.fuzz.corpus): the netlist plus the exact flow options that once
miscompiled or crashed on it.  A fixed bug must stay fixed, so each entry
is re-run through the full differential check on every test run.  The
suite passes whether the corpus is empty or not; new finds just get
dropped into the directory.
"""

import os

import pytest

from repro.fuzz import load_entries, replay_entry

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_ENTRIES = load_entries(CORPUS_DIR)


def test_corpus_loads_cleanly():
    # Works on an empty or missing corpus directory too.
    for entry in _ENTRIES:
        entry.network.check()
        assert entry.kind in ("mismatch", "crash")
        assert entry.stage in ("flow", "map")


@pytest.mark.parametrize(
    "entry", _ENTRIES, ids=[e.name for e in _ENTRIES])
def test_corpus_entry_stays_fixed(entry):
    failure = replay_entry(entry)
    assert failure is None, (
        "regressed: %s reproduces again: %s/%s %s"
        % (entry.name, failure.kind, failure.stage, failure.detail))
