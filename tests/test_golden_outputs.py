"""Golden-output regression tests: canonical optimized-BLIF digests.

``tests/golden/blif_digests.json`` commits the sha256 of the optimized
BLIF for six Table I circuits under default flow options.  The flow is
deterministic (test_determinism_hashseed.py proves byte-stability
across interpreters), so these digests pin the *result quality* too:
any change to decomposition choices, sharing extraction or BLIF
emission shows up as a digest mismatch and demands a deliberate golden
update, never a silent one.

Regenerate after an intended change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_outputs.py

and commit the diff (the review of that diff *is* the quality review).
"""

import hashlib
import json
import os

import pytest

from repro.bds.flow import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.network import write_blif

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "blif_digests.json")

#: Table I circuits pinned by golden digests (small enough that the
#: whole parametrization stays in tier-1 time).
GOLDEN_CIRCUITS = ("C432", "C499", "C880", "C1355", "C1908", "rot")

UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))


def _optimize_digest(circuit):
    net = build_circuit(circuit)
    result = bds_optimize(net, BDSOptions())
    text = write_blif(result.network)
    return hashlib.sha256(text.encode("utf-8")).hexdigest(), result


def _load_golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def test_golden_file_covers_the_circuit_set():
    if UPDATE:
        pytest.skip("golden file is being regenerated")
    golden = _load_golden()
    assert sorted(golden) == sorted(GOLDEN_CIRCUITS)
    for circuit, entry in golden.items():
        assert set(entry) == {"sha256", "nodes", "literals"}
        assert len(entry["sha256"]) == 64


@pytest.mark.parametrize("circuit", GOLDEN_CIRCUITS)
def test_optimized_blif_matches_golden_digest(circuit):
    digest, result = _optimize_digest(circuit)
    stats = result.network.stats()
    if UPDATE:
        golden = _load_golden() if os.path.exists(GOLDEN_PATH) else {}
        golden[circuit] = {"sha256": digest, "nodes": stats["nodes"],
                           "literals": stats["literals"]}
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(golden, fh, indent=2, sort_keys=True)
            fh.write("\n")
        pytest.skip("golden digest for %s updated" % circuit)
    entry = _load_golden()[circuit]
    assert stats["nodes"] == entry["nodes"], \
        "%s: node count drifted from golden" % circuit
    assert stats["literals"] == entry["literals"], \
        "%s: literal count drifted from golden" % circuit
    assert digest == entry["sha256"], \
        ("%s: optimized BLIF bytes drifted from golden; if intended, "
         "regenerate with REPRO_UPDATE_GOLDEN=1 and commit the diff"
         % circuit)
