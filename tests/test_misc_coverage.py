"""Edge-case and failure-injection tests across smaller modules: DOT
export, verifier caps and mismatches, eliminate corner cases, decomposition
option knobs, and transfer error handling."""

import itertools

import pytest

from repro.bdd import BDD, ONE, ZERO, to_dot, transfer_many
from repro.bdd.traverse import leaf_edge_stats
from repro.decomp import DecompOptions, decompose
from repro.network import Network, parse_blif, write_blif
from repro.network.eliminate import PartitionedNetwork, collapse_node_into
from repro.sop.cube import lit
from repro.verify import check_equivalence
from repro.verify.cec import EquivalenceResult


class TestDot:
    def test_renders_all_nodes(self):
        mgr = BDD()
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.xor_(mgr.var_ref(a), mgr.var_ref(b))
        dot = to_dot(mgr, [f], ["F"])
        assert "digraph" in dot
        assert 'label="a"' in dot and 'label="b"' in dot
        # XOR uses a complement edge: the dotted style must appear.
        assert "dotted" in dot

    def test_multiple_roots(self):
        mgr = BDD()
        a = mgr.new_var("a")
        dot = to_dot(mgr, [mgr.var_ref(a), mgr.var_ref(a) ^ 1])
        assert dot.count('shape=plaintext') == 2


class TestVerifierEdges:
    def test_size_cap_yields_unknown(self):
        # A multiplier-ish function with a tiny cap -> unknown outputs.
        from repro.circuits import array_multiplier
        net = array_multiplier(4)
        res = check_equivalence(net, net.copy(), size_cap=3)
        assert not res.equivalent
        assert res.unknown_outputs
        assert res.counterexample is None

    def test_counterexample_is_minimal_interface(self):
        net1 = Network("a")
        net1.add_input("x")
        net1.add_input("y")
        net1.add_output("o")
        net1.add_and("o", ["x", "y"])
        net2 = net1.copy()
        net2.nodes["o"].cover = [frozenset({lit(0)})]  # o = x
        res = check_equivalence(net1, net2)
        assert not res.equivalent
        assert set(res.counterexample) == {"x", "y"}

    def test_result_is_namedtuple(self):
        assert EquivalenceResult._fields == (
            "equivalent", "checked_outputs", "unknown_outputs",
            "counterexample", "failing_output")


class TestEliminateEdges:
    def test_collapse_refuses_blowup(self):
        from repro.network.network import Node
        # A divisor whose complement explodes: 12-var xor as SOP.
        n = 10
        cover = []
        for bits in itertools.product([0, 1], repeat=n):
            if sum(bits) % 2:
                cover.append(frozenset(lit(i, bool(b))
                                       for i, b in enumerate(bits)))
        node = Node("x", ["i%d" % i for i in range(n)], cover)
        consumer = Node("c", ["x", "w"],
                        [frozenset({lit(0, False), lit(1)})])
        assert collapse_node_into(consumer, node, max_cubes=50) is False
        assert consumer.fanins == ["x", "w"]  # untouched

    def test_partitioned_network_dangling_removal(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_buf("y", "a")
        net.add_and("orphan", ["a", "a2"])
        net.add_buf("a2", "a")
        part = PartitionedNetwork.from_network(net)
        removed = part.remove_dangling()
        assert removed >= 1
        assert "y" in part.refs

    def test_total_bdd_nodes(self):
        net = Network()
        for nm in "ab":
            net.add_input(nm)
        net.add_output("y")
        net.add_and("y", ["a", "b"])
        part = PartitionedNetwork.from_network(net)
        assert part.total_bdd_nodes() == 2


class TestDecompOptions:
    def test_min_gain_blocks_generalized(self):
        mgr = BDD()
        e, d, b = (mgr.new_var(n) for n in "edb")
        f = mgr.or_(mgr.var_ref(e) ^ 1,
                    mgr.and_(mgr.var_ref(b) ^ 1, mgr.var_ref(d)))
        strict = DecompOptions(min_gain=5.0, enable_simple=False,
                               enable_mux=False, enable_bool_xnor=False)
        tree = decompose(mgr, f, options=strict)
        assert tree.to_bdd(mgr) == f  # falls back to Shannon, still correct

    def test_verify_flag_off(self):
        mgr = BDD()
        vs = [mgr.new_var() for _ in range(4)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        tree = decompose(mgr, f, options=DecompOptions(verify=False))
        assert tree.to_bdd(mgr) == f


class TestLeafEdgeStats:
    def test_structural_scan_classifies(self):
        # The paper's structural scan: AND/OR functions are leaf-edge rich,
        # XOR functions complement-edge rich.
        mgr = BDD()
        vs = [mgr.new_var() for _ in range(6)]
        andf = mgr.and_many([mgr.var_ref(v) for v in vs])
        xorf = mgr.xor_many([mgr.var_ref(v) for v in vs])
        _, zeros_and, comp_and = leaf_edge_stats(mgr, andf)
        _, zeros_xor, comp_xor = leaf_edge_stats(mgr, xorf)
        assert zeros_and > zeros_xor
        assert comp_xor > comp_and


class TestTransferEdges:
    def test_explicit_var_map_requires_prepared_manager(self):
        src = BDD()
        a = src.new_var("a")
        with pytest.raises(ValueError):
            transfer_many(src, [src.var_ref(a)], var_map={a: 5})

    def test_constant_transfer(self):
        src = BDD()
        src.new_var("a")
        result = transfer_many(src, [ONE, ZERO])
        assert result.refs == [ONE, ZERO]
        assert result.manager.num_vars == 0


class TestBlifEdges:
    def test_empty_model(self):
        net = parse_blif(".model empty\n.inputs a\n.outputs a\n.end\n")
        assert net.eval({"a": True})["a"] is True
        parse_blif(write_blif(net))

    def test_bad_cover_char(self):
        with pytest.raises(ValueError):
            parse_blif(".model t\n.inputs a\n.outputs y\n.names a y\n2 1\n.end")

    def test_cover_row_outside_names(self):
        with pytest.raises(ValueError):
            parse_blif(".model t\n.inputs a\n.outputs y\n11 1\n.end")

    def test_offset_rows_rejected(self):
        with pytest.raises(ValueError):
            parse_blif(".model t\n.inputs a b\n.outputs y\n"
                       ".names a b y\n11 0\n.end")
