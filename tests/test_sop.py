"""Tests for the cube/cover algebra and two-level minimization."""

import itertools
import random


from repro.sop import (
    complement,
    cover_and,
    cover_cofactor,
    cover_contains_cube,
    cover_eval,
    cover_or,
    cover_support,
    cube_and,
    cube_contains,
    cube_from_pairs,
    expand,
    irredundant,
    is_tautology,
    lit,
    lit_negate,
    lit_positive,
    lit_var,
    literal_count,
    remove_contained,
    simplify_cover,
)
from repro.sop.cover import cover_equal
from repro.sop.cube import cube_distance, cube_eval


def _random_cover(rng, nvars=4, ncubes=5):
    cover = []
    for _ in range(ncubes):
        cube = []
        for v in range(nvars):
            r = rng.random()
            if r < 0.3:
                cube.append(lit(v, True))
            elif r < 0.6:
                cube.append(lit(v, False))
        cover.append(frozenset(cube))
    return cover


def _truth(cover, nvars):
    return tuple(
        cover_eval(cover, dict(enumerate(bits)))
        for bits in itertools.product([False, True], repeat=nvars)
    )


class TestLiterals:
    def test_encoding(self):
        assert lit(3, True) == 6
        assert lit(3, False) == 7
        assert lit_var(7) == 3
        assert lit_positive(6)
        assert not lit_positive(7)
        assert lit_negate(6) == 7

    def test_cube_from_pairs(self):
        cube = cube_from_pairs([(0, True), (2, False)])
        assert cube == frozenset({lit(0), lit(2, False)})


class TestCubeOps:
    def test_cube_and(self):
        a = frozenset({lit(0)})
        b = frozenset({lit(1, False)})
        assert cube_and(a, b) == frozenset({lit(0), lit(1, False)})

    def test_cube_and_contradiction(self):
        a = frozenset({lit(0)})
        b = frozenset({lit(0, False)})
        assert cube_and(a, b) is None

    def test_containment(self):
        big = frozenset({lit(0)})
        small = frozenset({lit(0), lit(1)})
        assert cube_contains(big, small)
        assert not cube_contains(small, big)
        assert cube_contains(frozenset(), big)

    def test_distance(self):
        a = frozenset({lit(0), lit(1, False)})
        b = frozenset({lit(0, False), lit(1)})
        assert cube_distance(a, b) == 2

    def test_eval(self):
        cube = frozenset({lit(0), lit(1, False)})
        assert cube_eval(cube, {0: True, 1: False})
        assert not cube_eval(cube, {0: True, 1: True})


class TestTautology:
    def test_tautology_cube(self):
        assert is_tautology([frozenset()])

    def test_empty_cover(self):
        assert not is_tautology([])

    def test_var_plus_complement(self):
        assert is_tautology([frozenset({lit(0)}), frozenset({lit(0, False)})])

    def test_near_tautology(self):
        # a + ~a b  is a tautology only with b's complement too.
        cover = [frozenset({lit(0)}), frozenset({lit(0, False), lit(1)})]
        assert not is_tautology(cover)
        cover.append(frozenset({lit(1, False)}))
        assert is_tautology(cover)

    def test_random_against_enumeration(self):
        rng = random.Random(3)
        for _ in range(50):
            cover = _random_cover(rng)
            expected = all(_truth(cover, 4))
            assert is_tautology(cover) == expected


class TestComplement:
    def test_roundtrip(self):
        rng = random.Random(7)
        for _ in range(40):
            cover = _random_cover(rng)
            comp = complement(cover)
            t = _truth(cover, 4)
            tc = _truth(comp, 4)
            assert all(a != b for a, b in zip(t, tc))

    def test_empty_and_tautology(self):
        assert complement([]) == [frozenset()]
        assert complement([frozenset()]) == []

    def test_single_cube_demorgan(self):
        cube = frozenset({lit(0), lit(1, False)})
        comp = complement([cube])
        assert sorted(map(sorted, comp)) == sorted(
            map(sorted, [[lit(0, False)], [lit(1, True)]]))


class TestCoverOps:
    def test_or_and_against_enumeration(self):
        rng = random.Random(11)
        for _ in range(25):
            a = _random_cover(rng, ncubes=3)
            b = _random_cover(rng, ncubes=3)
            to = _truth(cover_or(a, b), 4)
            ta = _truth(cover_and(a, b), 4)
            ea = _truth(a, 4)
            eb = _truth(b, 4)
            assert to == tuple(x or y for x, y in zip(ea, eb))
            assert ta == tuple(x and y for x, y in zip(ea, eb))

    def test_cofactor(self):
        # f = a b + ~a c;  f|a = b.
        cover = [frozenset({lit(0), lit(1)}), frozenset({lit(0, False), lit(2)})]
        cof = cover_cofactor(cover, lit(0, True))
        assert cof == [frozenset({lit(1)})]

    def test_contains_cube(self):
        cover = [frozenset({lit(0)}), frozenset({lit(1)})]
        assert cover_contains_cube(cover, frozenset({lit(0), lit(1)}))
        assert not cover_contains_cube(cover, frozenset({lit(0, False), lit(1, False)}))

    def test_remove_contained(self):
        big = frozenset({lit(0)})
        small = frozenset({lit(0), lit(1)})
        assert remove_contained([small, big]) == [big]

    def test_support_and_literal_count(self):
        cover = [frozenset({lit(0), lit(3, False)})]
        assert cover_support(cover) == {0, 3}
        assert literal_count(cover) == 2

    def test_cover_equal(self):
        a = [frozenset({lit(0)}), frozenset({lit(0, False), lit(1)})]
        b = [frozenset({lit(0)}), frozenset({lit(1)})]
        assert cover_equal(a, b)


class TestMinimize:
    def test_simplify_preserves_function(self):
        rng = random.Random(13)
        for _ in range(30):
            cover = _random_cover(rng, nvars=4, ncubes=6)
            simplified = simplify_cover(cover)
            assert _truth(simplified, 4) == _truth(cover, 4)
            assert literal_count(simplified) <= literal_count(cover)

    def test_simplify_classic(self):
        # a b + a ~b  ->  a.
        cover = [frozenset({lit(0), lit(1)}), frozenset({lit(0), lit(1, False)})]
        simplified = simplify_cover(cover)
        assert simplified == [frozenset({lit(0)})]

    def test_irredundant(self):
        # a + b + a b: last cube redundant.
        cover = [frozenset({lit(0)}), frozenset({lit(1)}),
                 frozenset({lit(0), lit(1)})]
        assert len(irredundant(cover)) == 2

    def test_irredundant_with_dc(self):
        # f = a b, dc = a ~b  =>  a b is contained in (dc + nothing)?  No --
        # but cube a is fine when dc covers a ~b.
        onset = [frozenset({lit(0), lit(1)})]
        dc = [frozenset({lit(0), lit(1, False)})]
        expanded = expand(onset, complement(onset + dc))
        assert expanded == [frozenset({lit(0)})]

    def test_simplify_with_dc(self):
        rng = random.Random(17)
        for _ in range(20):
            onset = _random_cover(rng, ncubes=4)
            dc = _random_cover(rng, ncubes=2)
            simplified = simplify_cover(onset, dc)
            t_on = _truth(onset, 4)
            t_dc = _truth(dc, 4)
            t_simplified = _truth(simplified, 4)
            for got, on, d in zip(t_simplified, t_on, t_dc):
                if not d:
                    assert got == on
