"""Tests for window-permutation reordering and BDD serialization."""

import itertools
import random

import pytest

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.reorder import sift, window3
from repro.bdd.serialize import dumps, loads
from repro.bdd.traverse import evaluate, node_count


def _random_function(mgr, variables, rng, n_ops=30):
    refs = [mgr.var_ref(v) for v in variables]
    for _ in range(n_ops):
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
    return refs[-1]


def _truth(mgr, ref, variables):
    return tuple(evaluate(mgr, ref, dict(zip(variables, bits)))
                 for bits in itertools.product([False, True],
                                               repeat=len(variables)))


class TestWindow3:
    def test_preserves_semantics(self):
        rng = random.Random(41)
        for _ in range(8):
            mgr = BDD()
            vs = [mgr.new_var() for _ in range(6)]
            f = _random_function(mgr, vs, rng)
            before = _truth(mgr, f, vs)
            window3(mgr, [f])
            assert _truth(mgr, f, vs) == before

    def test_never_grows(self):
        rng = random.Random(43)
        for _ in range(6):
            mgr = BDD()
            vs = [mgr.new_var() for _ in range(7)]
            f = _random_function(mgr, vs, rng, n_ops=40)
            before = node_count(mgr, f)
            after = window3(mgr, [f])
            assert after <= before

    def test_improves_interleaved_and(self):
        mgr = BDD()
        a = [mgr.new_var("a%d" % i) for i in range(3)]
        b = [mgr.new_var("b%d" % i) for i in range(3)]
        f = ZERO
        for ai, bi in zip(a, b):
            f = mgr.or_(f, mgr.and_(mgr.var_ref(ai), mgr.var_ref(bi)))
        before = node_count(mgr, f)
        after = window3(mgr, [f], passes=4)
        assert after <= before

    def test_comparable_to_sift_on_small(self):
        rng = random.Random(47)
        mgr1, mgr2 = BDD(), BDD()
        for m in (mgr1, mgr2):
            [m.new_var("v%d" % i) for i in range(6)]
        vs1 = list(range(6))
        f1 = _random_function(mgr1, vs1, rng, n_ops=35)
        rng2 = random.Random(47)
        f2 = _random_function(mgr2, vs1, rng2, n_ops=35)
        s_window = window3(mgr1, [f1], passes=3)
        s_sift = sift(mgr2, [f2])
        # Window3 is weaker but should be in the same ballpark.
        assert s_window <= 2 * max(s_sift, 1) + 2


class TestSerialize:
    def test_roundtrip_fresh_manager(self):
        rng = random.Random(53)
        mgr = BDD()
        vs = [mgr.new_var("x%d" % i) for i in range(5)]
        f = _random_function(mgr, vs, rng)
        g = _random_function(mgr, vs, rng)
        text = dumps(mgr, [f, g])
        mgr2, roots = loads(text)
        for orig, loaded in zip((f, g), roots):
            for bits in itertools.product([False, True], repeat=5):
                env1 = dict(zip(vs, bits))
                env2 = {}
                for v, bit in env1.items():
                    name = mgr.var_name(v)
                    try:
                        env2[mgr2.var_by_name(name)] = bit
                    except KeyError:
                        pass
                assert evaluate(mgr, orig, env1) == evaluate(mgr2, loaded, env2)

    def test_roundtrip_into_existing_manager_other_order(self):
        mgr = BDD()
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.or_(mgr.and_(mgr.var_ref(a), mgr.var_ref(b)), mgr.var_ref(c))
        text = dumps(mgr, [f])
        target = BDD()
        # Reverse order in the target manager.
        c2, b2, a2 = (target.new_var(n) for n in "cba")
        _, roots = loads(text, target)
        expected = target.or_(target.and_(target.var_ref(a2),
                                          target.var_ref(b2)),
                              target.var_ref(c2))
        assert roots[0] == expected

    def test_constants(self):
        mgr = BDD()
        mgr.new_var("a")
        text = dumps(mgr, [ONE, ZERO])
        _, roots = loads(text)
        assert roots == [ONE, ZERO]

    def test_complement_shared(self):
        mgr = BDD()
        vs = [mgr.new_var("v%d" % i) for i in range(4)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        text = dumps(mgr, [f, f ^ 1])
        mgr2, roots = loads(text)
        assert roots[0] == roots[1] ^ 1

    def test_bad_input(self):
        with pytest.raises(ValueError):
            loads("garbage")
        with pytest.raises(ValueError):
            loads(".bdd 1\n.vars a\n.nodes\n1 0 99 98\n.roots 2\n")
