"""DOT export well-formedness and serialize round-trips after reordering.

The DOT graphs must be structurally closed (every edge endpoint declared)
even in the presence of complement edges, and serialization must survive
the variable permutations sift/window3 leave behind.
"""

import itertools
import random
import re

from repro.bdd import BDD
from repro.bdd.dot import to_dot
from repro.bdd.reorder import sift, window3
from repro.bdd.serialize import dumps, loads
from repro.bdd.traverse import evaluate

_NODE_DEF = re.compile(r"^\s*n(\d+)\s*\[")
_EDGE = re.compile(r"^\s*(\"[^\"]+\"|n\d+)\s*->\s*n(\d+)\s*\[style=(\w+)\]")


def _parse_dot(text):
    lines = text.splitlines()
    assert lines[0].startswith("digraph")
    assert lines[-1] == "}"
    defined, edges = set(), []
    for line in lines:
        m = _NODE_DEF.match(line)
        if m:
            defined.add(int(m.group(1)))
        m = _EDGE.match(line)
        if m:
            edges.append((m.group(1), int(m.group(2)), m.group(3)))
    return defined, edges


def _xor_chain(mgr, n):
    refs = [mgr.var_ref(mgr.new_var("x%d" % i)) for i in range(n)]
    f = refs[0]
    for r in refs[1:]:
        f = mgr.xor_(f, r)
    return f


class TestDot:
    def test_closed_graph_with_complement_edges(self):
        mgr = BDD()
        f = _xor_chain(mgr, 4)          # XOR chains are complement-heavy
        text = to_dot(mgr, [f, f ^ 1], names=["f", "fbar"])
        defined, edges = _parse_dot(text)
        assert 0 in defined              # the single terminal
        assert edges, "no edges rendered"
        for src, dst, style in edges:
            assert dst in defined, "edge to undeclared node n%d" % dst
            if src.startswith("n"):
                assert int(src[1:]) in defined
            assert style in ("solid", "dashed", "dotted")
        # The complemented root must be drawn with a dotted edge.
        root_styles = {src: style for src, dst, style in edges
                       if src.startswith('"')}
        assert root_styles['"fbar"'] != root_styles['"f"']

    def test_every_internal_node_has_two_out_edges(self):
        mgr = BDD()
        rng = random.Random(11)
        refs = [mgr.var_ref(mgr.new_var()) for _ in range(5)]
        for _ in range(20):
            a, b = rng.choice(refs), rng.choice(refs)
            refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(a, b))
        text = to_dot(mgr, [refs[-1]])
        defined, edges = _parse_dot(text)
        out_degree = {}
        for src, _dst, _style in edges:
            if src.startswith("n"):
                out_degree[int(src[1:])] = out_degree.get(int(src[1:]), 0) + 1
        for idx in defined - {0}:
            assert out_degree.get(idx) == 2, "node n%d out-degree" % idx


class TestSerializeAfterReorder:
    def _truth(self, mgr, ref, names):
        # Key assignments by variable *name*: a reloaded manager only
        # holds the roots' support variables, and functions are invariant
        # in the missing ones.
        var_of = {}
        for name in names:
            try:
                var_of[name] = mgr.var_by_name(name)
            except KeyError:
                pass
        return tuple(
            evaluate(mgr, ref, {var_of[n]: b for n, b in zip(names, bits)
                                if n in var_of})
            for bits in itertools.product([False, True], repeat=len(names)))

    def _random_refs(self, mgr, rng, n_vars=6, n_ops=30):
        variables = [mgr.new_var("v%d" % i) for i in range(n_vars)]
        refs = [mgr.var_ref(v) for v in variables]
        for _ in range(n_ops):
            a, b = rng.choice(refs), rng.choice(refs)
            if rng.random() < 0.3:
                a ^= 1
            refs.append(getattr(mgr,
                                rng.choice(["and_", "or_", "xor_"]))(a, b))
        return variables, refs[-3:]

    def test_roundtrip_after_sift(self):
        rng = random.Random(19)
        mgr = BDD()
        variables, roots = self._random_refs(mgr, rng)
        names = [mgr.var_name(v) for v in variables]
        sift(mgr, roots)
        before = [self._truth(mgr, r, names) for r in roots]
        mgr2, roots2 = loads(dumps(mgr, roots))
        after = [self._truth(mgr2, r, names) for r in roots2]
        assert after == before

    def test_roundtrip_after_window3(self):
        rng = random.Random(23)
        mgr = BDD()
        variables, roots = self._random_refs(mgr, rng, n_vars=7, n_ops=40)
        names = [mgr.var_name(v) for v in variables]
        window3(mgr, roots, passes=2)
        before = [self._truth(mgr, r, names) for r in roots]
        mgr2, roots2 = loads(dumps(mgr, roots))
        after = [self._truth(mgr2, r, names) for r in roots2]
        assert after == before
