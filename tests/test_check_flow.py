"""End-to-end: the BDS flow under ``check_level`` full/cheap.

The full sanitizer+lint must pass at every safe point of a real
optimization run, produce an equivalent network, and surface its counters
through ``BDSResult.perf``.
"""

import pytest

from repro.bds import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.verify import check_equivalence


def test_full_check_flow_clean_and_equivalent():
    net = build_circuit("cmp8")
    res_off = bds_optimize(net, BDSOptions(check_level="off"))
    res_full = bds_optimize(net, BDSOptions(check_level="full"))
    # Checks ran, found nothing, and did not change the result.
    assert res_full.perf["checks_run"] > 0
    assert res_full.perf["check_violations"] == 0
    assert check_equivalence(net, res_full.network).equivalent
    eq = check_equivalence(res_off.network, res_full.network)
    assert eq.equivalent


def test_cheap_check_flow_runs():
    net = build_circuit("add8")
    res = bds_optimize(net, BDSOptions(check_level="cheap"))
    assert res.perf["checks_run"] > 0
    assert res.perf["check_violations"] == 0
    assert check_equivalence(net, res.network).equivalent


def test_off_reports_zero_checks():
    net = build_circuit("rl_cm85")
    res = bds_optimize(net, BDSOptions(check_level="off"))
    assert res.perf["checks_run"] == 0
    assert res.perf["check_violations"] == 0


def test_invalid_check_level_rejected():
    net = build_circuit("rl_cm85")
    with pytest.raises(ValueError):
        bds_optimize(net, BDSOptions(check_level="paranoid"))


def test_full_check_parallel_workers():
    """The per-supernode sanitizer also runs inside pool workers."""
    net = build_circuit("rl_cm85")
    res = bds_optimize(net, BDSOptions(check_level="full", jobs=2))
    assert res.perf["checks_run"] > 0
    assert res.perf["check_violations"] == 0
    assert check_equivalence(net, res.network).equivalent
