"""RPL002 bad: hash-order iteration feeding a serialization path."""


def emit(items):
    names = set(items)
    lines = []
    for name in names:
        lines.append(".names %s" % name)
    return "\n".join(lines)
