"""RPL006 bad: signal handler outside the sanctioned worker entry and
module-level mutable state shared with forked workers."""

import signal

RESULT_CACHE = {}


def install(handler):
    signal.signal(signal.SIGALRM, handler)
