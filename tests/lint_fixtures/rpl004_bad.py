"""RPL004 bad: a handle from before the safe point is used after it."""


def build(mgr, a, b):
    f = mgr.ite(a, b, b)
    mgr.maybe_collect()
    return mgr.node(f)
