"""RPL005 bad: ambient nondeterminism on a deterministic path."""

import random
import time


def stamp():
    return time.time()


def shuffle(items):
    random.shuffle(items)
    return items
