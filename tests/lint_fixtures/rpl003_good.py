"""RPL003 good: public accessors outside; a class's own private state
(via self) is its business."""


def peek_node(mgr, ref):
    return mgr.node(ref)


class Owner:
    def __init__(self):
        self._ref = [0]

    def bump(self):
        self._ref[0] += 1
