"""RPL003 bad: reaching into another object's kernel-private arrays."""


def peek_refcount(mgr, ref):
    return mgr._ref[ref >> 1]
