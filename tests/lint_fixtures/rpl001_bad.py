"""RPL001 bad: broad handler swallows every contract exception."""


def run_quietly(run):
    try:
        return run()
    except Exception:
        return None
