"""RPL007 bad: a counter is bumped but missing from the snapshot."""


class Perf:
    def __init__(self):
        self.cache_hits = 0
        self.cache_misses = 0

    def perf_snapshot(self):
        return {"cache_hits": self.cache_hits}


def record_miss(perf):
    perf.cache_misses += 1
