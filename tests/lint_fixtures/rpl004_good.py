"""RPL004 good: the handle is protected (register_root / extra_roots)
or refreshed before use."""


def build_registered(mgr, a, b):
    f = mgr.ite(a, b, b)
    mgr.register_root(f)
    mgr.maybe_collect()
    return mgr.node(f)


def build_extra_roots(mgr, a, b):
    f = mgr.ite(a, b, b)
    mgr.maybe_collect([f])
    return mgr.node(f)


def build_refreshed(mgr, a, b):
    f = mgr.ite(a, b, b)
    mgr.maybe_collect()
    f = mgr.ite(a, b, b)
    return mgr.node(f)
