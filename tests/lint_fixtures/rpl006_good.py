"""RPL006 good: immutable module state; mutable state stays local."""

FROZEN_DEFAULTS = ("cec", "sim")
_LIMIT = 64


def worker(payload):
    scratch = {}
    scratch["payload"] = payload
    return scratch
