"""RPL005 good: monotonic timers are non-semantic; RNG is injected and
seeded."""

import random
import time


def elapsed(start):
    return time.monotonic() - start


def shuffle(items, seed):
    rng = random.Random(seed)
    rng.shuffle(items)
    return items
