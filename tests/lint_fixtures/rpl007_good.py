"""RPL007 good: every bumped counter appears in the snapshot schema."""


class Perf:
    def __init__(self):
        self.cache_hits = 0
        self.cache_misses = 0

    def perf_snapshot(self):
        return {"cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses}


def record_miss(perf):
    perf.cache_misses += 1


def record_hit(perf):
    perf.cache_hits += 1
