"""RPL008 good: write to a temp name, then publish atomically."""

import os


def save(path, text):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)
