"""RPL008 bad: direct write under a durable directory -- a reader can
observe the torn file."""


def save(path, text):
    with open(path, "w") as fh:
        fh.write(text)
