"""RPL009 good: ``with``-scoped spans; unrelated .span() receivers."""

import re


def traced_phase(tracer, work):
    with tracer.span("flow.sweep"):
        return work()


def nested(self, work):
    with self.tracer.span("flow.decompose", jobs=2) as span:
        span.attrs["extra"] = 1
        return work()


def regex_span(text):
    match = re.match(r"\d+", text)
    return match.span() if match else None


def run_span(run):
    # Receiver name tail "run" is not a tracer: out of scope.
    return run.span()
