"""RPL002 good: the set is sorted at the iteration site."""


def emit(items):
    names = set(items)
    lines = []
    for name in sorted(names):
        lines.append(".names %s" % name)
    return "\n".join(lines)
