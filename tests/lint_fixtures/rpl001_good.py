"""RPL001 good: contract exceptions escape (re-raise) or are handled
by an earlier narrower clause."""


def run_reraising(run):
    try:
        return run()
    except Exception:
        raise


def run_with_narrow_handlers(run, BddBudgetExceeded, CheckError, VerifyError):
    try:
        return run()
    except BddBudgetExceeded:
        return "budget"
    except (CheckError, VerifyError):
        return "verdict"
    except Exception:
        return None
