"""RPL009 bad: spans opened without ``with`` / driven by hand."""


def leaky_phase(tracer, work):
    tracer.span("flow.sweep")  # never entered: records nothing
    return work()


def manual_frames(tr, work):
    tr.begin("flow.decompose")
    try:
        return work()
    finally:
        tr.end()


def stored_context(self):
    ctx = self.tracer.span("bdd.gc")  # not a with-item either
    return ctx
