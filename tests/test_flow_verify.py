"""Verification as a first-class flow stage: BDSOptions(verify=...)."""

import pytest

import repro.bds.flow as flow_mod
from repro.bds import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.verify import VerifyError


def _corrupting_lowering(monkeypatch):
    """Patch the flow's lowering to stick the first output at constant 0."""
    original = flow_mod.trees_to_network

    def corrupt(*args, **kwargs):
        net = original(*args, **kwargs)
        out = net.outputs[0]
        if out in net.nodes:
            net.nodes[out].cover = []
        return net

    monkeypatch.setattr(flow_mod, "trees_to_network", corrupt)


class TestFlowVerify:
    @pytest.mark.parametrize("mode", ["sim", "cec", "full"])
    def test_clean_flow_passes_each_mode(self, mode):
        net = build_circuit("add4")
        result = bds_optimize(net, BDSOptions(verify=mode))
        assert result.perf["verify_outputs_checked"] >= len(net.outputs)
        assert result.perf["verify_unknown"] == 0
        assert result.verify_unknown_outputs == []
        assert "verify" in result.timings

    def test_off_mode_records_nothing(self):
        net = build_circuit("add4")
        result = bds_optimize(net, BDSOptions(verify="off"))
        assert "verify_outputs_checked" not in result.perf
        assert "verify" not in result.timings

    def test_invalid_mode_rejected_up_front(self):
        net = build_circuit("add4")
        with pytest.raises(ValueError, match="verify must be one of"):
            bds_optimize(net, BDSOptions(verify="yes"))

    @pytest.mark.parametrize("mode", ["sim", "cec", "full"])
    def test_miscompile_raises_verify_error(self, mode, monkeypatch):
        _corrupting_lowering(monkeypatch)
        net = build_circuit("add4")
        with pytest.raises(VerifyError) as info:
            bds_optimize(net, BDSOptions(verify=mode))
        err = info.value
        assert err.mode == mode
        assert set(err.counterexample) == set(net.inputs)

    def test_miscompile_unnoticed_without_verify(self, monkeypatch):
        # The guard the fuzzer exists to provide: verify="off" ships the bug.
        _corrupting_lowering(monkeypatch)
        net = build_circuit("add4")
        result = bds_optimize(net, BDSOptions(verify="off"))
        assert result.network is not None

    def test_size_cap_yields_unknowns_not_error(self):
        net = build_circuit("add4")
        result = bds_optimize(net, BDSOptions(verify="cec",
                                              verify_size_cap=1))
        assert result.verify_unknown_outputs
        assert result.perf["verify_unknown"] == len(
            result.verify_unknown_outputs)
