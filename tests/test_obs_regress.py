"""Tests for repro.obs.regress and the ``repro bench --compare`` gate:
exit 0 within tolerances, 1 on regressions (including an injected >=25%
CPU regression), 2 when runs are not comparable."""

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.obs.regress import (CPU_FLOOR_S, DEFAULT_BENCH_CIRCUITS,
                               collect_flow_payload, compare_payloads,
                               load_baseline)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: A canned payload so comparison tests never depend on wall-clock.
BASE = {
    "schema": "repro-bench-flow/1",
    "circuits": {
        "add8": {"cpu_s": 1.0, "nodes": 37, "literals": 74,
                 "counters": {"ite_calls": 100, "gc_sweeps": 1,
                              "gc_reclaimed": 10, "nodes_reused": 5,
                              "peak_live_nodes": 50,
                              "peak_allocated_nodes": 60,
                              "cache_hit_rate": 0.5}},
        "rl_mux": {"cpu_s": 0.5, "nodes": 5, "literals": 10,
                   "counters": {"ite_calls": 20, "gc_sweeps": 0,
                                "gc_reclaimed": 0, "nodes_reused": 0,
                                "peak_live_nodes": 9,
                                "peak_allocated_nodes": 12,
                                "cache_hit_rate": 0.1}},
    },
}


def _current(**tweaks):
    cur = copy.deepcopy(BASE)
    for circuit, fields in tweaks.items():
        cur["circuits"][circuit].update(fields)
    return cur


class TestComparePayloads:
    def test_identical_payloads_pass(self):
        report = compare_payloads(BASE, _current())
        assert report.exit_code() == 0
        assert report.regressions == [] and report.incomparable == []

    def test_cpu_regression_beyond_tolerance_exits_1(self):
        # Injected 30% slowdown against the default 25% tolerance.
        report = compare_payloads(BASE, _current(add8={"cpu_s": 1.3}))
        assert report.exit_code() == 1
        (diff,) = report.regressions
        assert (diff.circuit, diff.metric) == ("add8", "cpu_s")
        assert "slower" in diff.note

    def test_cpu_within_tolerance_passes(self):
        report = compare_payloads(BASE, _current(add8={"cpu_s": 1.2}))
        assert report.exit_code() == 0

    def test_cpu_improvement_passes_and_is_reported(self):
        report = compare_payloads(BASE, _current(add8={"cpu_s": 0.4}))
        assert report.exit_code() == 0
        assert any(d.status == "improved" for d in report.diffs)

    def test_wider_tolerance_forgives_the_same_slowdown(self):
        cur = _current(add8={"cpu_s": 1.3})
        assert compare_payloads(BASE, cur).exit_code() == 1
        assert compare_payloads(BASE, cur, cpu_tol=0.5).exit_code() == 0

    @pytest.mark.parametrize("metric", ["nodes", "literals"])
    @pytest.mark.parametrize("delta", [1, -1])
    def test_exact_metric_drift_either_direction_exits_1(self, metric,
                                                         delta):
        cur = _current(add8={metric: BASE["circuits"]["add8"][metric]
                             + delta})
        report = compare_payloads(BASE, cur)
        assert report.exit_code() == 1
        assert any(d.metric == metric and d.status == "regressed"
                   for d in report.diffs)

    def test_missing_circuit_exits_2(self):
        cur = _current()
        del cur["circuits"]["rl_mux"]
        assert compare_payloads(BASE, cur).exit_code() == 2
        # ...and in the other direction too.
        base = copy.deepcopy(BASE)
        del base["circuits"]["rl_mux"]
        assert compare_payloads(base, _current()).exit_code() == 2

    def test_inconsistent_counters_exit_2(self):
        cur = _current(add8={"counters": {"ite_calls": -1}})
        report = compare_payloads(BASE, cur)
        assert report.exit_code() == 2
        assert any("non-negative" in d.note for d in report.incomparable)

    def test_peak_live_above_allocated_exits_2(self):
        bad = dict(BASE["circuits"]["add8"]["counters"],
                   peak_live_nodes=100, peak_allocated_nodes=50)
        report = compare_payloads(BASE, _current(add8={"counters": bad}))
        assert report.exit_code() == 2

    def test_incomparable_takes_precedence_over_regression(self):
        cur = _current(add8={"cpu_s": 9.0,
                             "counters": {"ite_calls": -1}})
        assert compare_payloads(BASE, cur).exit_code() == 2

    def test_zero_cpu_baseline_neither_raises_nor_fails(self):
        # Regression: a 0.0s baseline (tiny circuit on fast hardware)
        # used to be rejected as incomparable -- and any sub-floor
        # baseline made the relative tolerance fire on pure noise.
        report = compare_payloads(_current(add8={"cpu_s": 0.0}),
                                  _current(add8={"cpu_s": 0.0009}))
        assert report.exit_code() == 0
        assert report.incomparable == []

    def test_sub_floor_jitter_is_not_a_regression(self):
        # 0.4ms -> 0.9ms is a 2.25x ratio but far below the floor.
        assert CPU_FLOOR_S > 0.001
        report = compare_payloads(_current(add8={"cpu_s": 0.0004}),
                                  _current(add8={"cpu_s": 0.0009}))
        assert report.exit_code() == 0

    def test_zero_baseline_still_catches_real_slowdowns(self):
        report = compare_payloads(_current(add8={"cpu_s": 0.0}),
                                  _current(add8={"cpu_s": 60.0}))
        assert report.exit_code() == 1
        (diff,) = report.regressions
        assert diff.metric == "cpu_s" and "floored" in diff.note

    def test_negative_baseline_is_incomparable(self):
        report = compare_payloads(_current(add8={"cpu_s": -1.0}),
                                  _current())
        assert report.exit_code() == 2
        assert any("negative baseline" in d.note
                   for d in report.incomparable)

    def test_custom_floor_is_honored(self):
        base = _current(add8={"cpu_s": 0.1})
        cur = _current(add8={"cpu_s": 0.3})
        assert compare_payloads(base, cur).exit_code() == 1
        assert compare_payloads(base, cur, cpu_floor=0.5).exit_code() == 0

    def test_render_summarizes_the_verdict(self):
        report = compare_payloads(BASE, _current(add8={"cpu_s": 1.3}))
        text = report.render()
        assert "add8" in text and "REGRESSED" in text
        assert "exit 1" in text


class TestLoadBaseline:
    def test_raw_payload(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(BASE))
        assert load_baseline(str(path))["circuits"].keys() \
            == BASE["circuits"].keys()

    def test_bench_all_aggregate_nests_under_flow(self, tmp_path):
        path = tmp_path / "BENCH_all.json"
        path.write_text(json.dumps({"kernel": {"x": 1}, "flow": BASE}))
        assert load_baseline(str(path))["circuits"].keys() \
            == BASE["circuits"].keys()

    def test_non_baseline_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"kernel": {"x": 1}}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestCollectAndCli:
    def test_collect_flow_payload_shape(self):
        payload = collect_flow_payload(("rl_mux",))
        assert payload["schema"] == "repro-bench-flow/1"
        entry = payload["circuits"]["rl_mux"]
        assert entry["cpu_s"] > 0
        assert entry["nodes"] > 0 and entry["literals"] > 0
        assert entry["counters"]["ite_calls"] > 0
        # Fresh payloads satisfy their own monotonicity rules.
        assert compare_payloads(payload, payload).exit_code() == 0

    def test_default_circuit_set_is_stable(self):
        assert DEFAULT_BENCH_CIRCUITS == ("C432", "C499", "C880", "C1908",
                                          "add8", "rl_mux")

    def _bench(self, tmp_path, *args):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "bench", "rl_mux", "add4"]
            + list(args),
            env=env, cwd=str(tmp_path), capture_output=True, text=True)

    def test_cli_gate_exit_codes(self, tmp_path):
        res = self._bench(tmp_path, "--out", "bench.json")
        assert res.returncode == 0, res.stderr
        baseline = tmp_path / "bench.json"

        # Self-comparison passes (generous tolerance: shared CI runners).
        res = self._bench(tmp_path, "--compare", str(baseline),
                          "--cpu-tol", "5.0")
        assert res.returncode == 0, res.stdout + res.stderr

        # Injected quality drift: exact metrics gate at exit 1.
        obj = json.loads(baseline.read_text())
        obj["circuits"]["add4"]["nodes"] += 1
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(obj))
        res = self._bench(tmp_path, "--compare", str(drifted),
                          "--cpu-tol", "5.0")
        assert res.returncode == 1, res.stdout + res.stderr
        assert "deliberate baseline update" in res.stdout

        # Unreadable baseline: exit 2.
        res = self._bench(tmp_path, "--compare", "missing.json")
        assert res.returncode == 2
