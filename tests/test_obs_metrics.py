"""Tests for repro.obs.metrics: metric semantics, deterministic
rendering, and the shared-registry reset contract."""

import json

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               get_registry)


class TestMetricTypes:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_histogram_cumulative_buckets(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.cumulative() == [("0.1", 1), ("1.0", 3), ("10.0", 4),
                                  ("+Inf", 5)]


class TestRegistry:
    def test_labels_key_into_distinct_metrics(self):
        reg = MetricsRegistry()
        reg.counter("jobs", status="ok").inc()
        reg.counter("jobs", status="ok").inc()
        reg.counter("jobs", status="failed").inc()
        assert reg.counter_value("jobs", status="ok") == 2
        assert reg.counter_value("jobs", status="failed") == 1
        assert reg.counter_value("jobs", status="timeout") == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").inc()
        assert reg.counter_value("x", b="2", a="1") == 1

    def test_reset_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.as_dict() == {"counters": {}, "gauges": {},
                                 "histograms": {}}

    def test_as_dict_is_json_able_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.gauge("depth").set(3)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        obj = json.loads(json.dumps(reg.as_dict()))
        assert list(obj["counters"]) == ["a", "b"]
        assert obj["gauges"]["depth"] == 3.0
        assert obj["histograms"]["lat"] == {
            "count": 1, "sum": 0.5, "buckets": {"1.0": 1, "+Inf": 1}}

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", status="ok").inc(3)
        reg.gauge("queue_depth").set(2)
        reg.histogram("job_seconds", buckets=(1.0,)).observe(0.5)
        text = reg.render_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE repro_jobs_total counter" in lines
        assert 'repro_jobs_total{status="ok"} 3' in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert "repro_queue_depth 2" in lines
        assert "# TYPE repro_job_seconds histogram" in lines
        assert 'repro_job_seconds_bucket{le="1.0"} 1' in lines
        assert 'repro_job_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_job_seconds_sum 0.5" in lines
        assert "repro_job_seconds_count 1" in lines

    def test_prometheus_histogram_with_labels_folds_le_in(self):
        reg = MetricsRegistry()
        reg.histogram("job_seconds", buckets=(1.0,),
                      worker="a").observe(2.0)
        text = reg.render_prometheus()
        assert 'repro_job_seconds_bucket{worker="a",le="1.0"} 0' in text
        assert 'repro_job_seconds_bucket{worker="a",le="+Inf"} 1' in text
        assert 'repro_job_seconds_sum{worker="a"} 2' in text

    def test_rendering_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("z").inc()
            reg.counter("a", x="1").inc()
            reg.gauge("m").set(1)
            return reg
        assert build().render_prometheus() == build().render_prometheus()
        assert json.dumps(build().as_dict()) == json.dumps(build().as_dict())

    def test_process_registry_is_shared(self):
        assert get_registry() is get_registry()


def _registry_probe_child(conn):
    # Module-level so it works under any multiprocessing start method.
    from repro.obs.metrics import get_registry

    reg = get_registry()
    inherited = reg.counter_value("fork_probe_total")
    reg.counter("fork_probe_total").inc(100)
    conn.send([inherited, reg.counter_value("fork_probe_total")])
    conn.close()


class TestForkSafety:
    """The registry is parent-side only: a forked worker inherits a
    *copy* (so importing repro.obs.metrics in a worker is harmless), its
    increments die with it, and worker counters reach the parent only
    through the result channel -- never by double-exporting the shared
    registry."""

    def test_forked_child_increments_stay_in_the_child(self):
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fork start method required to observe inheritance")
        reg = get_registry()
        base = reg.counter_value("fork_probe_total")
        reg.counter("fork_probe_total").inc()
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        proc = multiprocessing.Process(target=_registry_probe_child,
                                       args=(child_conn,))
        proc.start()
        child_conn.close()
        inherited, after_inc = parent_conn.recv()
        proc.join(30)
        assert proc.exitcode == 0
        assert inherited == base + 1          # fork copied parent state
        assert after_inc == inherited + 100   # child increments applied...
        # ...but never merged back: the parent registry is unchanged.
        assert reg.counter_value("fork_probe_total") == base + 1

    def test_decompose_workers_never_export_through_the_registry(self):
        # jobs=2 forks decompose workers that import the kernel (and
        # transitively repro.obs.metrics).  Their kernel counters must
        # arrive via the result channel (result.perf), leaving the
        # parent registry exactly as it was -- double-exporting would
        # corrupt every service-level jobs_total/histogram reading.
        from repro.bds.flow import BDSOptions, bds_optimize
        from repro.circuits import build_circuit

        reg = get_registry()
        before = json.dumps(reg.as_dict(), sort_keys=True)
        result = bds_optimize(build_circuit("add8"), BDSOptions(jobs=2))
        assert result.perf["ite_calls"] > 0   # counters did travel
        after = reg.as_dict()
        assert json.dumps(after, sort_keys=True) == before
        assert "ite_calls" not in after["counters"]
