"""Parallel per-supernode decomposition: jobs>1 must match jobs=1.

After eliminate, every supernode owns an independent BDD, so reorder +
decompose fan out over a process pool.  These tests pin the contract:
the parallel path is formally equivalent (CEC) to the serial path and to
the original circuit, produces the same supernode set, and accumulates
the same decomposition statistics.
"""

import pytest

from repro.bds import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.verify import check_equivalence

CIRCUITS = ["C432", "C880", "rot"]


def _run(net, jobs):
    return bds_optimize(net, BDSOptions(jobs=jobs))


@pytest.mark.parametrize("name", CIRCUITS)
def test_parallel_matches_serial(name):
    net = build_circuit(name)
    serial = _run(net, jobs=1)
    parallel = _run(net, jobs=4)

    res = check_equivalence(serial.network, parallel.network)
    assert res.equivalent, (
        "jobs=4 differs from jobs=1 on %s: %s" % (name, res.counterexample))
    assert not res.unknown_outputs

    res = check_equivalence(net, parallel.network)
    assert res.equivalent, (
        "jobs=4 differs from the source circuit on %s" % name)
    assert not res.unknown_outputs

    assert serial.supernodes == parallel.supernodes
    assert serial.decomp_stats.as_dict() == parallel.decomp_stats.as_dict()


def test_parallel_collects_kernel_counters():
    net = build_circuit("rot")
    result = _run(net, jobs=2)
    assert result.perf.get("ite_calls", 0) > 0
    assert 0.0 <= result.perf.get("cache_hit_rate", 0.0) <= 1.0
    assert result.perf.get("peak_live_nodes", 0) > 0
