"""Tests for sweep and eliminate (both cube- and BDD-domain variants)."""

import itertools
import random


from repro.network import Network, eliminate_bdd, eliminate_literal, sweep
from repro.network.eliminate import PartitionedNetwork, collapse_node_into
from repro.network.sweep import substitute_fanin
from repro.sop.cube import lit


def _equivalent(a: Network, b: Network, seed=1, rounds=64) -> bool:
    rng = random.Random(seed)
    assert set(a.inputs) == set(b.inputs)
    assert list(a.outputs) == list(b.outputs)
    for _ in range(rounds):
        assignment = {i: rng.random() < 0.5 for i in a.inputs}
        if a.eval(assignment) != b.eval(assignment):
            return False
    return True


def _exhaustive_equivalent(a: Network, b: Network) -> bool:
    for bits in itertools.product([False, True], repeat=len(a.inputs)):
        assignment = dict(zip(a.inputs, bits))
        if a.eval(assignment) != b.eval(assignment):
            return False
    return True


def small_circuit() -> Network:
    net = Network("c")
    for n in "abcd":
        net.add_input(n)
    net.add_output("y")
    net.add_output("z")
    net.add_and("p", ["a", "b"])
    net.add_and("q", ["a", "b"])       # structural duplicate of p
    net.add_buf("pb", "p")             # buffer
    net.add_not("pn", "p")             # inverter
    net.add_or("y", ["pb", "c"])
    net.add_and("z", ["pn", "q", "d"])
    return net


class TestSweep:
    def test_preserves_function(self):
        net = small_circuit()
        ref = net.copy()
        sweep(net)
        assert _exhaustive_equivalent(ref, net)

    def test_removes_buffers_and_duplicates(self):
        net = small_circuit()
        sweep(net)
        assert "pb" not in net.nodes
        # p and q merged into one.
        assert not ("p" in net.nodes and "q" in net.nodes)

    def test_constant_propagation(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_const("one", True)
        net.add_and("y", ["a", "one"])
        sweep(net)
        assert _exhaustive_equivalent_single(net, lambda a: a)
        assert "one" not in net.nodes

    def test_constant_zero_and(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_const("zero", False)
        net.add_and("y", ["a", "zero"])
        sweep(net)
        assert net.eval({"a": True})["y"] is False
        assert net.eval({"a": False})["y"] is False

    def test_functional_merge(self):
        # Two structurally different but equivalent nodes: a&b vs ~(~a|~b).
        net = Network()
        for n in "ab":
            net.add_input(n)
        net.add_output("y")
        net.add_and("u", ["a", "b"])
        net.add_node("v", ["a", "b"],
                     [frozenset({lit(0), lit(1)})])
        # Build v differently: ~( ~a + ~b ) as a two-node chain.
        net.add_node("w1", ["a", "b"],
                     [frozenset({lit(0, False)}), frozenset({lit(1, False)})])
        net.add_not("w", "w1")
        net.add_node("y", ["u", "v", "w"],
                     [frozenset({lit(0), lit(1), lit(2)})])
        ref = net.copy()
        sweep(net)
        assert _exhaustive_equivalent(ref, net)
        # u, v, w all compute a&b; only one should survive feeding y.
        survivors = [n for n in ("u", "v", "w", "w1") if n in net.nodes]
        assert len(survivors) <= 1

    def test_output_names_preserved(self):
        net = small_circuit()
        sweep(net)
        assert net.outputs == ["y", "z"]
        net.check()

    def test_inverter_chain(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_not("i1", "a")
        net.add_not("i2", "i1")
        net.add_not("i3", "i2")
        net.add_buf("y", "i3")
        ref = net.copy()
        sweep(net)
        assert _exhaustive_equivalent(ref, net)
        assert net.node_count() <= 1


def _exhaustive_equivalent_single(net, fn):
    for bits in itertools.product([False, True], repeat=len(net.inputs)):
        assignment = dict(zip(net.inputs, bits))
        if net.eval(assignment)[net.outputs[0]] != fn(*bits):
            return False
    return True


class TestSubstituteFanin:
    def test_rename(self):
        node = NetworkNodeHelper()
        n = node.make(["x", "y"], [frozenset({lit(0), lit(1, False)})])
        substitute_fanin(n, 0, "z", False)
        assert n.fanins == ["z", "y"]

    def test_invert(self):
        n = NetworkNodeHelper().make(["x"], [frozenset({lit(0)})])
        substitute_fanin(n, 0, "x", True)
        assert n.cover == [frozenset({lit(0, False)})]

    def test_merge_duplicate_fanin(self):
        # f = x & y; substitute y -> x gives f = x.
        n = NetworkNodeHelper().make(["x", "y"], [frozenset({lit(0), lit(1)})])
        substitute_fanin(n, 1, "x", False)
        assert n.fanins == ["x"]
        assert n.cover == [frozenset({lit(0)})]

    def test_contradiction_drops_cube(self):
        # f = x & y; substitute y -> ~x gives empty cover.
        n = NetworkNodeHelper().make(["x", "y"], [frozenset({lit(0), lit(1)})])
        substitute_fanin(n, 1, "x", True)
        assert n.cover == []


class NetworkNodeHelper:
    def make(self, fanins, cover):
        from repro.network.network import Node
        return Node("t", fanins, cover)


class TestEliminateLiteral:
    def test_preserves_function(self):
        net = small_circuit()
        ref = net.copy()
        eliminate_literal(net, threshold=5)
        assert _exhaustive_equivalent(ref, net)

    def test_collapses_single_use_nodes(self):
        net = Network()
        for n in "abc":
            net.add_input(n)
        net.add_output("y")
        net.add_and("t", ["a", "b"])
        net.add_or("y", ["t", "c"])
        eliminate_literal(net, threshold=0)
        assert "t" not in net.nodes
        assert _exhaustive_equivalent_single(net, lambda a, b, c: (a and b) or c)

    def test_threshold_respected(self):
        # A multi-literal node used by two output nodes has positive value
        # ((2-1)*(6-1)-1 = 4) and must survive threshold 0.
        net = Network()
        for n in "abcd":
            net.add_input(n)
        net.add_output("y1")
        net.add_output("y2")
        net.add_node("big", ["a", "b", "c"],
                     [frozenset({lit(0), lit(1)}), frozenset({lit(1), lit(2)}),
                      frozenset({lit(0), lit(2)})])
        net.add_and("y1", ["big", "d"])
        net.add_or("y2", ["big", "d"])
        ref = net.copy()
        eliminate_literal(net, threshold=0)
        assert "big" in net.nodes
        assert _exhaustive_equivalent(ref, net)
        # With a generous threshold it does collapse.
        eliminate_literal(net, threshold=10)
        assert "big" not in net.nodes
        assert _exhaustive_equivalent(ref, net)

    def test_collapse_node_into_negative_literal(self):
        from repro.network.network import Node
        consumer = Node("c", ["n", "x"], [frozenset({lit(0, False), lit(1)})])
        node = Node("n", ["a", "b"], [frozenset({lit(0), lit(1)})])
        assert collapse_node_into(consumer, node)
        # c = ~(a&b) & x = (~a + ~b) x.
        assert "n" not in consumer.fanins
        vals = {}
        for a, b, x in itertools.product([False, True], repeat=3):
            pos = {s: i for i, s in enumerate(consumer.fanins)}
            assignment = {}
            for s, v in (("a", a), ("b", b), ("x", x)):
                if s in pos:
                    assignment[pos[s]] = v
            got = consumer.eval([assignment[i] for i in range(len(consumer.fanins))])
            assert got == ((not (a and b)) and x)


class TestEliminateBdd:
    def test_roundtrip_no_eliminate(self):
        net = small_circuit()
        sweep(net)
        part = PartitionedNetwork.from_network(net)
        back = part.to_network()
        assert _exhaustive_equivalent(net, back)

    def test_eliminate_preserves_function(self):
        net = small_circuit()
        ref = net.copy()
        sweep(net)
        part = eliminate_bdd(net, threshold=0, size_cap=100)
        back = part.to_network()
        assert _exhaustive_equivalent(ref, back)

    def test_eliminate_collapses(self):
        net = Network()
        for n in "abcd":
            net.add_input(n)
        net.add_output("y")
        net.add_and("t1", ["a", "b"])
        net.add_and("t2", ["c", "d"])
        net.add_or("y", ["t1", "t2"])
        part = eliminate_bdd(net, threshold=0, size_cap=100)
        # Everything should collapse into the single output supernode.
        assert set(part.refs) == {"y"}

    def test_size_cap_prevents_collapse(self):
        # XOR chain: collapsing all into one is fine for BDDs, so use a
        # tiny cap to force survival of intermediates.
        net = Network()
        names = ["x%d" % i for i in range(8)]
        for n in names:
            net.add_input(n)
        net.add_output("y")
        prev = names[0]
        for i, n in enumerate(names[1:], 1):
            cur = "t%d" % i if i < 7 else "y"
            net.add_xor(cur, [prev, n])
            prev = cur
        part = eliminate_bdd(net, threshold=0, size_cap=3)
        assert len(part.refs) > 1

    def test_mapping_compacts_variables(self):
        net = Network()
        for n in "abcdef":
            net.add_input(n)
        net.add_output("y")
        net.add_and("t1", ["a", "b"])
        net.add_and("t2", ["t1", "c"])
        net.add_and("t3", ["t2", "d"])
        net.add_and("t4", ["t3", "e"])
        net.add_and("y", ["t4", "f"])
        part = eliminate_bdd(net, threshold=0, size_cap=1000, use_mapping=True)
        assert part.mapping_count >= 1
        # After full collapse only PI variables remain.
        assert part.mgr.num_vars <= len(net.inputs) + len(part.refs)

    def test_word_level_equivalence_random(self):
        rng = random.Random(99)
        net = _random_network(rng, n_inputs=6, n_nodes=15)
        ref = net.copy()
        part = eliminate_bdd(net, threshold=2, size_cap=50)
        back = part.to_network()
        assert _exhaustive_equivalent(ref, back)


def _random_network(rng, n_inputs=6, n_nodes=12):
    net = Network("rand")
    signals = []
    for i in range(n_inputs):
        signals.append(net.add_input("i%d" % i))
    for j in range(n_nodes):
        k = rng.choice([2, 2, 3])
        fanins = rng.sample(signals, min(k, len(signals)))
        kind = rng.choice(["and", "or", "xor"])
        name = "g%d" % j
        getattr(net, "add_" + kind)(name, fanins)
        signals.append(name)
    net.add_output("g%d" % (n_nodes - 1))
    net.add_output("g%d" % (n_nodes - 2))
    net.remove_dangling()
    return net
