"""Tests for the concurrent socket front door (repro.service.server)
and its client (repro.service.client): per-connection response order,
backpressure + retry, drain semantics, and the real optimize flow over
a Unix socket and TCP.

The server runs in a thread (signal handlers are skipped off the main
thread; tests drive the drain via ``request_shutdown``); workers are
module-level fault-injection callables, with blif strings doubling as
scripts (``sleep:<s>`` sleeps before echoing).
"""

import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.circuits import build_circuit
from repro.network.blif import write_blif
from repro.obs.metrics import get_registry
from repro.service import (ArtifactCache, OptimizationScheduler,
                           OptimizationService, ServiceClient,
                           ServiceUnavailable, SocketServer)


def _script_worker(payload):
    blif = payload["blif"]
    if blif.startswith("sleep:"):
        time.sleep(float(blif.split(":")[1].split("#")[0]))
    return {"status": "ok", "blif": "echo:" + blif}


def _scripted_service(max_workers=4, queue_cap=64, cache=None):
    return OptimizationService(
        cache=cache, max_workers=max_workers, queue_cap=queue_cap,
        scheduler_factory=lambda **kw: OptimizationScheduler(
            worker=_script_worker, **kw))


@contextmanager
def _running(server):
    outcome = {}

    def run():
        outcome["rc"] = server.serve_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert server.ready.wait(10), "server never became ready"
    try:
        yield outcome
    finally:
        server.request_shutdown()
        server.request_shutdown()      # second call forces cancellation
        thread.join(30)
        assert not thread.is_alive(), "server failed to drain"


def _raw_connect(path):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30)
    sock.connect(path)
    return sock, sock.makefile("r", encoding="utf-8", newline="\n")


def _send_lines(sock, objs):
    sock.sendall("".join(json.dumps(o) + "\n" for o in objs)
                 .encode("utf-8"))


class TestResponseOrdering:
    def test_per_connection_order_survives_out_of_order_completion(
            self, tmp_path):
        # Four workers: r1/r2 finish long before r0, but the wire must
        # still say r0, r1, r2.
        server = SocketServer(_scripted_service(max_workers=4),
                              socket_path=str(tmp_path / "srv.sock"))
        with _running(server):
            sock, reader = _raw_connect(server.address)
            _send_lines(sock, [{"id": "r0", "blif": "sleep:0.4#a"},
                               {"id": "r1", "blif": "b"},
                               {"id": "r2", "blif": "c"}])
            out = [json.loads(reader.readline()) for _ in range(3)]
            sock.close()
        assert [o["id"] for o in out] == ["r0", "r1", "r2"]
        assert [o["status"] for o in out] == ["ok"] * 3
        assert out[1]["blif"] == "echo:b"

    def test_eight_concurrent_clients_each_get_their_own_answers(
            self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=4),
                              socket_path=str(tmp_path / "srv.sock"))
        results = {}

        def one_client(i):
            with ServiceClient(socket_path=server.address) as client:
                blifs = ["client%d-req%d" % (i, j) for j in range(3)]
                if i % 2 == 0:            # stagger completion order
                    blifs[0] = "sleep:0.1#" + blifs[0]
                results[i] = (blifs, client.request_many(
                    [{"blif": b} for b in blifs]))

        with _running(server):
            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not any(t.is_alive() for t in threads)
        assert sorted(results) == list(range(8))
        for _i, (blifs, responses) in results.items():
            assert [r["status"] for r in responses] == ["ok"] * 3
            assert [r["blif"] for r in responses] \
                == ["echo:" + b for b in blifs]
        assert get_registry().counter_value("server_connections_total") >= 8


class TestBackpressure:
    def test_overloaded_reply_and_client_retry_to_success(self, tmp_path):
        # One worker, backlog 2: two slow jobs fill the scheduler, so a
        # third request is refused with an explicit overloaded reply --
        # and the client's backoff retries it to eventual success.
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"),
                              backlog=2, retry_after=0.05)
        with _running(server):
            before = get_registry().counter_value(
                "server_backpressure_total")
            filler_sock, filler_reader = _raw_connect(server.address)
            _send_lines(filler_sock, [{"id": "f0", "blif": "sleep:0.8"},
                                      {"id": "f1", "blif": "sleep:0.8"}])
            # Raw view of the refusal: no silent queueing, no drop.
            deadline = time.monotonic() + 5.0
            while True:
                probe_sock, probe_reader = _raw_connect(server.address)
                _send_lines(probe_sock, [{"id": "p", "blif": "x"}])
                reply = json.loads(probe_reader.readline())
                probe_sock.close()
                if reply["status"] == "overloaded":
                    break
                # Fillers had not been admitted yet; try again.
                assert time.monotonic() < deadline, reply
            assert reply["error"] == "overloaded"
            assert reply["retry_after"] == pytest.approx(0.05)
            assert reply["id"] == "p"
            # The client helper absorbs the refusals and succeeds.
            with ServiceClient(socket_path=server.address,
                               retries=20) as client:
                resp = client.request("retry-me")
            assert resp["status"] == "ok"
            assert resp["blif"] == "echo:retry-me"
            for reply_id in ("f0", "f1"):
                assert json.loads(
                    filler_reader.readline())["id"] == reply_id
            filler_sock.close()
            after = get_registry().counter_value("server_backpressure_total")
            assert after > before

    def test_retries_exhausted_raises_service_unavailable(self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"),
                              backlog=1, retry_after=0.01)
        with _running(server):
            filler_sock, _reader = _raw_connect(server.address)
            _send_lines(filler_sock, [{"id": "f", "blif": "sleep:20"}])
            time.sleep(0.2)           # let the filler be admitted
            client = ServiceClient(socket_path=server.address, retries=2,
                                   backoff_base=0.01, backoff_cap=0.02)
            with pytest.raises(ServiceUnavailable, match="overloaded"):
                client.request_many([{"blif": "nope"}])
            assert client.backpressure_seen >= 3   # initial + 2 retries
            client.close()
            filler_sock.close()


class TestDrain:
    def test_sigterm_drain_finishes_running_jobs_and_exits_0(
            self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=2),
                              socket_path=str(tmp_path / "srv.sock"))
        with _running(server) as outcome:
            sock, reader = _raw_connect(server.address)
            _send_lines(sock, [{"id": "inflight", "blif": "sleep:0.5"}])
            time.sleep(0.1)           # request admitted, job running
            server.request_shutdown()
            # The running job is finished and its response flushed, not
            # dropped: that is the drain contract.
            reply = json.loads(reader.readline())
            assert reply["id"] == "inflight"
            assert reply["status"] == "ok"
            assert reader.readline() == ""        # server closed cleanly
            sock.close()
        assert outcome["rc"] == 0

    def test_requests_during_drain_are_answered_cancelled(self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"))
        with _running(server):
            sock, reader = _raw_connect(server.address)
            # A slow in-flight job holds the drain open...
            _send_lines(sock, [{"id": "slow", "blif": "sleep:1.0"}])
            time.sleep(0.1)
            server.request_shutdown()
            # ...so this late request is processed -- and refused.
            _send_lines(sock, [{"id": "late", "blif": "x"}])
            late = json.loads(reader.readline())
            assert late["id"] == "late"
            assert late["status"] == "cancelled"
            assert "draining" in late["error"]
            slow = json.loads(reader.readline())
            assert (slow["id"], slow["status"]) == ("slow", "ok")
            sock.close()

    def test_second_sigterm_force_cancels_with_replies(self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"))
        with _running(server) as outcome:
            sock, reader = _raw_connect(server.address)
            _send_lines(sock, [{"id": "doomed", "blif": "sleep:60"}])
            time.sleep(0.1)
            server.request_shutdown()
            server.request_shutdown()        # force
            reply = json.loads(reader.readline())
            assert reply["id"] == "doomed"
            assert reply["status"] == "cancelled"   # answered, not hung
            sock.close()
        assert outcome["rc"] == 0

    def test_draining_server_refuses_new_connections(self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"))
        with _running(server):
            sock, reader = _raw_connect(server.address)
            _send_lines(sock, [{"id": "hold", "blif": "sleep:0.6"}])
            time.sleep(0.1)
            server.request_shutdown()
            time.sleep(0.15)                 # listener now closed
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(5)
            try:
                probe.connect(server.address)
                # Accepted by the kernel's listen backlog at best; the
                # server must close it without serving anything.
                probe_reader = probe.makefile("r")
                assert probe_reader.readline() == ""
            except (ConnectionRefusedError, FileNotFoundError,
                    BrokenPipeError, OSError):
                pass                          # equally acceptable
            finally:
                probe.close()
            assert json.loads(reader.readline())["id"] == "hold"
            sock.close()


class TestConnectionProtocol:
    def test_connection_shutdown_cancels_with_replies_then_ack(
            self, tmp_path):
        # The socket analogue of the stdin satellite fix: shutdown with
        # a request still pending answers it (cancelled) before the ack.
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"))
        with _running(server):
            sock, reader = _raw_connect(server.address)
            _send_lines(sock, [{"id": "pending", "blif": "sleep:60"},
                               {"cmd": "shutdown"}])
            first = json.loads(reader.readline())
            assert (first["id"], first["status"]) == ("pending",
                                                      "cancelled")
            ack = json.loads(reader.readline())
            assert ack == {"served": 1, "status": "ok"}
            assert reader.readline() == ""    # connection closed
            sock.close()

    def test_malformed_line_and_stats_over_socket(self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"))
        with _running(server):
            sock, reader = _raw_connect(server.address)
            sock.sendall(b"{not json\n")
            _send_lines(sock, [{"cmd": "stats"}])
            bad = json.loads(reader.readline())
            assert bad["status"] == "failed"
            assert "bad request" in bad["error"]
            stats = json.loads(reader.readline())
            assert stats["status"] == "ok"
            assert "scheduler" in stats and "metrics" in stats
            sock.close()

    def test_client_commands_and_metrics_text(self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"))
        with _running(server):
            with ServiceClient(socket_path=server.address) as client:
                assert client.request("ping")["status"] == "ok"
                stats = client.stats()
                assert stats["status"] == "ok"
                text = client.metrics_text()
                assert "# TYPE repro_server_connections gauge" in text
                assert "repro_server_request_seconds_count" in text
                ack = client.shutdown()
                assert ack["status"] == "ok" and ack["served"] == 1

    def test_dead_client_frees_its_scheduler_slots(self, tmp_path):
        server = SocketServer(_scripted_service(max_workers=1),
                              socket_path=str(tmp_path / "srv.sock"),
                              backlog=2)
        with _running(server):
            sock, reader = _raw_connect(server.address)
            _send_lines(sock, [{"id": "a", "blif": "sleep:30"},
                               {"id": "b", "blif": "sleep:30"}])
            time.sleep(0.2)
            # Close reader too: makefile() holds the fd open, and a
            # half-alive socket never sends FIN.
            sock.shutdown(socket.SHUT_RDWR)
            reader.close()
            sock.close()                       # client vanishes
            # Its jobs are cancelled, so a new client is served promptly
            # instead of being refused by a queue full of orphans.
            with ServiceClient(socket_path=server.address,
                               retries=20) as client:
                t0 = time.monotonic()
                assert client.request("fresh")["status"] == "ok"
                assert time.monotonic() - t0 < 10.0


class TestTransports:
    def test_tcp_ephemeral_port(self):
        server = SocketServer(_scripted_service(max_workers=1), port=0)
        with _running(server):
            host, port = server.address
            assert port != 0
            with ServiceClient(host=host, port=port) as client:
                assert client.request("over-tcp")["blif"] == "echo:over-tcp"

    def test_constructor_requires_exactly_one_transport(self):
        service = _scripted_service()
        with pytest.raises(ValueError):
            SocketServer(service)
        with pytest.raises(ValueError):
            SocketServer(service, socket_path="/tmp/x", port=1234)
        with pytest.raises(ValueError):
            ServiceClient()
        with pytest.raises(ValueError):
            ServiceClient(socket_path="/tmp/x", port=1234)


class TestRealFlow:
    def test_real_optimize_roundtrip_with_shared_cache(self, tmp_path):
        # Default worker, real cache: the second identical request on a
        # *different* connection is a cache hit -- sessions share one
        # cache and one scheduler.
        service = OptimizationService(
            cache=ArtifactCache(str(tmp_path / "cache")), max_workers=2)
        server = SocketServer(service,
                              socket_path=str(tmp_path / "srv.sock"))
        blif = write_blif(build_circuit("add4"))
        with _running(server):
            with ServiceClient(socket_path=server.address) as client:
                cold = client.request(blif, timeout=120)
            with ServiceClient(socket_path=server.address) as client:
                warm = client.request(blif, timeout=120)
        assert cold["status"] == "ok" and not cold["cached"]
        assert warm["status"] == "ok" and warm["cached"]
        assert warm["blif"] == cold["blif"]       # byte-identical


class TestClientBackoff:
    def test_backoff_grows_exponentially_with_jitter_and_floor(self):
        import random

        client = ServiceClient(socket_path="/nonexistent", retries=0,
                               backoff_base=0.1, backoff_cap=10.0,
                               rng=random.Random(42))
        delays = [client._backoff_delay(k) for k in range(6)]
        for k, delay in enumerate(delays):
            nominal = min(10.0, 0.1 * 2 ** k)
            assert 0.5 * nominal <= delay <= nominal
        assert client._backoff_delay(0, floor=5.0) == 5.0

    def test_connect_refusal_exhausts_into_service_unavailable(
            self, tmp_path):
        client = ServiceClient(socket_path=str(tmp_path / "nope.sock"),
                               retries=2, backoff_base=0.01,
                               backoff_cap=0.02)
        t0 = time.monotonic()
        with pytest.raises(ServiceUnavailable, match="3 attempts"):
            client.connect()
        assert time.monotonic() - t0 < 5.0
