"""Tests for the differential fuzzing harness (repro.fuzz).

The headline test plants a miscompile inside the flow's lowering stage and
asserts the fuzzer catches it within a small time budget, shrinks the
failing netlist to a handful of nodes, and writes a corpus entry that
replays the failure -- and stops replaying once the bug is "fixed".
"""

import random
import time

import pytest

import repro.bds.flow as flow_mod
from repro.bds import BDSOptions
from repro.circuits import build_circuit
from repro.circuits.randlogic import random_logic
from repro.fuzz import (
    load_entries,
    load_entry,
    options_from_dict,
    options_to_dict,
    replay_entry,
    run_case,
    run_fuzz,
    sample_options,
    sample_spec,
    save_entry,
    shrink_network,
)
from repro.fuzz.harness import _sample_payload
from repro.sop.cube import lit


def _plant_miscompile(monkeypatch):
    """Stick the first output of every lowered network at constant 0."""
    original = flow_mod.trees_to_network

    def corrupt(*args, **kwargs):
        net = original(*args, **kwargs)
        out = net.outputs[0]
        if out in net.nodes:
            net.nodes[out].cover = []
        return net

    monkeypatch.setattr(flow_mod, "trees_to_network", corrupt)


class TestGeneratorAndOptions:
    def test_sampling_is_deterministic(self):
        wave_a = [_sample_payload(random.Random(5), 300, 60.0)
                  for _ in range(20)]
        wave_b = [_sample_payload(random.Random(5), 300, 60.0)
                  for _ in range(20)]
        assert wave_a == wave_b

    def test_specs_build_valid_networks(self):
        rng = random.Random(9)
        for _ in range(10):
            net = sample_spec(rng).build()
            net.check()
            assert net.outputs

    def test_options_roundtrip(self):
        rng = random.Random(13)
        for _ in range(20):
            options, _mode = sample_options(rng)
            rebuilt = options_from_dict(options_to_dict(options))
            assert options_to_dict(rebuilt) == options_to_dict(options)
            assert rebuilt.decomp.enable_mux == options.decomp.enable_mux


class TestRunCase:
    def test_clean_on_real_circuit(self):
        net = build_circuit("add4")
        assert run_case(net, BDSOptions()) is None

    def test_catches_planted_miscompile(self, monkeypatch):
        _plant_miscompile(monkeypatch)
        net = build_circuit("add4")
        failure = run_case(net, BDSOptions())
        assert failure is not None
        assert failure.kind == "mismatch" and failure.stage == "flow"
        assert failure.counterexample


class TestShrink:
    def test_shrinks_to_core_under_predicate(self):
        net = random_logic(n_inputs=8, n_gates=30, n_outputs=4, seed=99,
                           xor_fraction=0.4)

        def has_xor(candidate):
            xor_cover = {frozenset({lit(0), lit(1, False)}),
                         frozenset({lit(0, False), lit(1)})}
            return any(set(n.cover) == xor_cover
                       for n in candidate.nodes.values())

        assert has_xor(net)
        shrunk = shrink_network(net, has_xor)
        shrunk.check()
        assert has_xor(shrunk)
        assert shrunk.node_count() <= 6
        assert len(shrunk.outputs) == 1

    def test_result_unchanged_when_predicate_never_fails(self):
        net = random_logic(n_inputs=5, n_gates=10, n_outputs=2, seed=7)
        shrunk = shrink_network(net, lambda c: False)
        assert shrunk.node_count() == net.node_count()

    def test_budget_bounds_predicate_calls(self):
        net = random_logic(n_inputs=8, n_gates=40, n_outputs=4, seed=3)
        calls = [0]

        def counting(candidate):
            calls[0] += 1
            return True

        shrink_network(net, counting, max_checks=25)
        assert calls[0] <= 25


class TestRunFuzz:
    def test_planted_miscompile_caught_and_shrunk(self, monkeypatch, tmp_path):
        _plant_miscompile(monkeypatch)
        corpus = str(tmp_path / "corpus")
        t0 = time.monotonic()
        report = run_fuzz(budget_seconds=60.0, seed=42, jobs=1,
                          corpus_dir=corpus, max_failures=1)
        elapsed = time.monotonic() - t0
        assert elapsed < 60.0, "fuzzer needed the whole budget"
        assert report.failures, "planted miscompile not caught"
        record = report.failures[0]
        assert record.failure.kind == "mismatch"
        assert record.shrunk_nodes <= 8, (
            "shrinker left %d nodes" % record.shrunk_nodes)
        assert record.corpus_path is not None

        # The corpus entry replays the failure while the bug is live...
        entry = load_entry(record.corpus_path)
        assert entry.kind == "mismatch"
        assert replay_entry(entry) is not None
        # ... and stops replaying once the bug is fixed.
        monkeypatch.undo()
        assert replay_entry(entry) is None

    def test_clean_run_reports_iterations(self, tmp_path):
        report = run_fuzz(budget_seconds=3.0, seed=1,
                          corpus_dir=str(tmp_path / "corpus"))
        assert report.iterations > 0
        assert report.failures == []
        assert report.elapsed >= 3.0


class TestCorpusIO:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.network.blif import write_blif

        net = build_circuit("add4")
        meta = {"kind": "mismatch", "stage": "flow", "detail": "planted",
                "options": options_to_dict(BDSOptions(use_sdc=True)),
                "map_mode": "lut4", "seed": 5}
        path = save_entry(str(tmp_path), write_blif(net), meta)
        again = save_entry(str(tmp_path), write_blif(net), meta)
        assert path == again, "content addressing must dedupe"
        entry = load_entry(path)
        assert entry.options.use_sdc is True
        assert entry.map_mode == "lut4"
        assert entry.seed == 5
        assert sorted(entry.network.outputs) == sorted(net.outputs)
        entries = load_entries(str(tmp_path))
        assert [e.path for e in entries] == [path]

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_entries(str(tmp_path / "nope")) == []


@pytest.mark.perf
def test_verify_full_overhead_bounded():
    """verify="full" must stay well under 2x the unverified flow (Table I)."""
    from repro.circuits.registry import TABLE1_CIRCUITS

    base = verified = 0.0
    for name in TABLE1_CIRCUITS:
        net = build_circuit(name)
        t0 = time.perf_counter()
        flow_mod.bds_optimize(net, BDSOptions(verify="off"))
        base += time.perf_counter() - t0
        t0 = time.perf_counter()
        flow_mod.bds_optimize(net, BDSOptions(verify="full"))
        verified += time.perf_counter() - t0
    assert verified < 2.0 * base, (
        "verify=full overhead %.2fx" % (verified / base))
