"""Tests for traversal utilities: paths, sat counting, leaf-edge stats."""

import itertools
import random

import pytest

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.traverse import (
    count_paths_from_root,
    count_paths_to_terminals,
    evaluate,
    iter_paths,
    leaf_edge_stats,
    live_nodes,
    node_count,
    phased_vertices,
    pick_assignment,
    sat_count,
    shared_node_count,
    support_many,
)


@pytest.fixture
def mgr():
    return BDD()


class TestSatCount:
    def test_constants(self, mgr):
        mgr.new_var("a")
        assert sat_count(mgr, ONE, 3) == 8
        assert sat_count(mgr, ZERO, 3) == 0

    def test_single_var(self, mgr):
        a = mgr.new_var("a")
        assert sat_count(mgr, mgr.var_ref(a), 1) == 1
        assert sat_count(mgr, mgr.var_ref(a), 4) == 8

    def test_and_or_xor(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        ra, rb, rc = (mgr.var_ref(v) for v in (a, b, c))
        assert sat_count(mgr, mgr.and_(ra, rb), 3) == 2
        assert sat_count(mgr, mgr.or_(ra, rb), 3) == 6
        assert sat_count(mgr, mgr.xor_many([ra, rb, rc]), 3) == 4

    def test_against_enumeration(self, mgr):
        rng = random.Random(5)
        vs = [mgr.new_var() for _ in range(6)]
        refs = [mgr.var_ref(v) for v in vs]
        for _ in range(30):
            f, g = rng.choice(refs), rng.choice(refs)
            refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
        f = refs[-1]
        expected = sum(
            evaluate(mgr, f, dict(zip(vs, bits)))
            for bits in itertools.product([False, True], repeat=6)
        )
        assert sat_count(mgr, f, 6) == expected

    def test_nvars_too_small(self, mgr):
        vs = [mgr.new_var() for _ in range(3)]
        f = mgr.and_many([mgr.var_ref(v) for v in vs])
        with pytest.raises(ValueError):
            sat_count(mgr, f, 2)


class TestPickAssignment:
    def test_unsat_raises(self, mgr):
        with pytest.raises(ValueError):
            pick_assignment(mgr, ZERO)

    def test_satisfies(self, mgr):
        rng = random.Random(9)
        vs = [mgr.new_var() for _ in range(5)]
        refs = [mgr.var_ref(v) for v in vs]
        for _ in range(20):
            f, g = rng.choice(refs), rng.choice(refs)
            refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f ^ (rng.random() < .5), g))
        for f in refs:
            if f == ZERO:
                continue
            partial = pick_assignment(mgr, f)
            full = {v: partial.get(v, False) for v in vs}
            assert evaluate(mgr, f, full)


class TestPaths:
    def test_path_enumeration_partitions_space(self, mgr):
        vs = [mgr.new_var() for _ in range(4)]
        f = mgr.or_(
            mgr.and_(mgr.var_ref(vs[0]), mgr.var_ref(vs[1])),
            mgr.and_(mgr.var_ref(vs[2]), mgr.var_ref(vs[3])),
        )
        total = 0
        for cube, value in iter_paths(mgr, f):
            total += 1 << (4 - len(cube))
        assert total == 16

    def test_path_counts_match_enumeration(self, mgr):
        rng = random.Random(13)
        vs = [mgr.new_var() for _ in range(5)]
        refs = [mgr.var_ref(v) for v in vs]
        for _ in range(25):
            f, g = rng.choice(refs), rng.choice(refs)
            refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
        f = refs[-1]
        one, zero = count_paths_to_terminals(mgr, f)
        n_one = sum(1 for _, v in iter_paths(mgr, f) if v)
        n_zero = sum(1 for _, v in iter_paths(mgr, f) if not v)
        assert one[f] == n_one
        assert zero[f] == n_zero

    def test_paths_from_root(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        incoming = count_paths_from_root(mgr, f)
        assert incoming[f] == 1
        # b node reachable one way (a=1); ZERO reachable two ways.
        rb = mgr.var_ref(b)
        assert incoming[rb] == 1
        assert incoming[ZERO] == 2
        assert incoming[ONE] == 1

    def test_total_path_flow_conservation(self, mgr):
        rng = random.Random(17)
        vs = [mgr.new_var() for _ in range(6)]
        refs = [mgr.var_ref(v) for v in vs]
        for _ in range(40):
            f, g = rng.choice(refs), rng.choice(refs)
            refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f ^ (rng.random() < .4), g))
        f = refs[-1]
        if mgr.is_const(f):
            return
        one, zero = count_paths_to_terminals(mgr, f)
        incoming = count_paths_from_root(mgr, f)
        # Total 1-paths equals the sum over terminal-incoming weight.
        assert incoming.get(ONE, 0) == one[f]
        assert incoming.get(ZERO, 0) == zero[f]

    def test_phased_vertices_topological(self, mgr):
        vs = [mgr.new_var() for _ in range(4)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        order = phased_vertices(mgr, f)
        position = {r: i for i, r in enumerate(order)}
        for r in order:
            if mgr.is_const(r):
                continue
            lo, hi = mgr.children(r)
            assert position[lo] < position[r]
            assert position[hi] < position[r]


class TestLeafEdgeStats:
    def test_and_function_has_zero_edges(self, mgr):
        # AND-intensive functions expose many leaf edges to 0.
        vs = [mgr.new_var() for _ in range(4)]
        f = mgr.and_many([mgr.var_ref(v) for v in vs])
        to_one, to_zero, comp = leaf_edge_stats(mgr, f)
        assert to_zero >= 4 - 1  # every level can fall off to 0
        assert to_one == 1

    def test_xor_function_has_complement_edges(self, mgr):
        vs = [mgr.new_var() for _ in range(5)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        _, _, comp = leaf_edge_stats(mgr, f)
        assert comp >= 1


class TestSharedCount:
    def test_shared_less_than_sum(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        g = mgr.and_(mgr.var_ref(b), mgr.var_ref(c))
        h = mgr.or_(f, mgr.var_ref(c))
        assert shared_node_count(mgr, [f, g, h]) <= (
            node_count(mgr, f) + node_count(mgr, g) + node_count(mgr, h))
        assert shared_node_count(mgr, [f, f]) == node_count(mgr, f)

    def test_live_nodes_includes_terminal(self, mgr):
        a = mgr.new_var("a")
        live = live_nodes(mgr, [mgr.var_ref(a)])
        assert 0 in live
        assert len(live) == 2

    def test_support_many(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.var_ref(a)
        g = mgr.and_(mgr.var_ref(b), mgr.var_ref(c))
        assert support_many(mgr, [f, g]) == {a, b, c}
