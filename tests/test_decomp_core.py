"""Tests for factoring trees, cuts, dominators, and the decomposition engine."""

import itertools
import random

import pytest

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.traverse import node_count
from repro.decomp import DecompOptions, decompose
from repro.decomp.cuts import cut_signatures, enumerate_cuts, rebuild_above_cut
from repro.decomp.dominators import find_simple_decompositions, verify_simple
from repro.decomp.engine import DecompStats
from repro.decomp.ftree import (
    CONST0,
    CONST1,
    FTree,
    mux,
    negate,
    op2,
    var_leaf,
)
from repro.decomp.generalized import conjunctive_candidates, disjunctive_candidates
from repro.decomp.xordec import boolean_xnor_candidates, generalized_x_dominators


@pytest.fixture
def mgr():
    return BDD()


def _random_function(mgr, variables, rng, n_ops=25):
    refs = [mgr.var_ref(v) for v in variables]
    for _ in range(n_ops):
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
    return refs[-1]


class TestFTree:
    def test_leaves(self):
        t = var_leaf(3)
        assert t.op == "var" and t.var == 3
        assert t.literal_count() == 1
        assert t.gate_count() == 0
        assert CONST0.evaluate({}) is False
        assert CONST1.evaluate({}) is True

    def test_negate_simplifications(self):
        t = var_leaf(0)
        assert negate(negate(t)) == t
        assert negate(CONST0) == CONST1
        x = op2("xor", var_leaf(0), var_leaf(1))
        assert negate(x).op == "xnor"

    def test_op2_folding(self):
        a = var_leaf(0)
        assert op2("and", a, CONST1) == a
        assert op2("and", a, CONST0) == CONST0
        assert op2("or", a, CONST0) == a
        assert op2("xor", a, CONST0) == a
        assert op2("xor", a, CONST1) == negate(a)
        assert op2("and", a, a) == a
        assert op2("xor", a, a) == CONST0
        assert op2("xnor", a, a) == CONST1

    def test_mux_folding(self):
        s, a, b = var_leaf(0), var_leaf(1), var_leaf(2)
        assert mux(CONST1, a, b) == a
        assert mux(CONST0, a, b) == b
        assert mux(s, a, a) == a
        assert mux(s, CONST1, CONST0) == s
        assert mux(s, CONST0, CONST1) == negate(s)
        assert mux(s, a, CONST0) == op2("and", s, a)
        assert mux(s, CONST1, b) == op2("or", s, b)
        assert mux(s, a, negate(a)).op == "xnor"
        assert mux(s, s, b) == op2("or", s, b)
        assert mux(s, a, s) == op2("and", s, a)

    def test_to_bdd_and_evaluate_agree(self, mgr):
        vs = [mgr.new_var() for _ in range(3)]
        t = mux(var_leaf(vs[0]),
                op2("xor", var_leaf(vs[1]), var_leaf(vs[2])),
                op2("and", var_leaf(vs[1]), negate(var_leaf(vs[2]))))
        ref = t.to_bdd(mgr)
        from repro.bdd.traverse import evaluate
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip(vs, bits))
            assert t.evaluate(assignment) == evaluate(mgr, ref, assignment)

    def test_map_vars(self):
        t = op2("and", var_leaf(0), var_leaf(1))
        m = t.map_vars(lambda v: "s%d" % v)
        assert m.support() == {"s0", "s1"}

    def test_expr_rendering(self):
        t = op2("or", op2("and", var_leaf(0), var_leaf(1)), negate(var_leaf(2)))
        s = t.to_expr(lambda v: "abc"[v])
        assert s == "(a & b) + ~c"

    def test_depth(self):
        t = op2("and", op2("or", var_leaf(0), var_leaf(1)), var_leaf(2))
        assert t.depth() == 2
        assert negate(t).depth() == 2  # NOT is free

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            FTree("nand", children=(var_leaf(0), var_leaf(1)))
        with pytest.raises(ValueError):
            FTree("and", children=(var_leaf(0),))


class TestCuts:
    def test_enumerate_basic(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.and_many([mgr.var_ref(v) for v in (a, b, c)])
        cuts = enumerate_cuts(mgr, f)
        # 3 used levels -> 3 cut positions (below a, below b, below c).
        assert len(cuts) == 3
        # Every cut of the AND chain is valid (leaf edge to 0 everywhere).
        assert all(cut.is_valid for cut in cuts)

    def test_constant_has_no_cuts(self, mgr):
        assert enumerate_cuts(mgr, ONE) == []

    def test_cut_targets_and_chain(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        cuts = enumerate_cuts(mgr, f)
        top = cuts[0]
        # Crossing the cut below a: edges to ZERO (a=0) and to node b.
        assert ZERO in top.targets
        assert any(t > 1 for t in top.targets)

    def test_equivalence_classes(self, mgr):
        # Fig. 6-style: cuts with the same zero-edge set are 0-equivalent.
        vs = [mgr.new_var() for _ in range(4)]
        f = mgr.and_many([mgr.var_ref(v) for v in vs])
        cuts = enumerate_cuts(mgr, f)
        zero_classes, one_classes = cut_signatures(cuts)
        # The AND chain has a distinct zero-edge set per cut.
        assert len(zero_classes) == len(cuts)
        # All cuts except the bottom share the same (empty until last) set
        # of one-edges... the last cut has the single edge to ONE.
        assert len(one_classes) == 2

    def test_rebuild_identity(self, mgr):
        rng = random.Random(5)
        vs = [mgr.new_var() for _ in range(5)]
        f = _random_function(mgr, vs, rng)
        if mgr.is_const(f):
            return
        for cut in enumerate_cuts(mgr, f):
            # Substituting every target by itself rebuilds f exactly.
            subst = {t: t for t in cut.targets}
            assert rebuild_above_cut(mgr, f, cut.level, subst) == f

    def test_rebuild_missing_substitution_raises(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        cuts = enumerate_cuts(mgr, f)
        with pytest.raises(ValueError):
            rebuild_above_cut(mgr, f, cuts[0].level, {})


class TestSimpleDominators:
    def test_and_chain_one_dominator(self, mgr):
        # F = a b c: node b is a 1-dominator -> F = a & (b c).
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.and_many([mgr.var_ref(v) for v in (a, b, c)])
        decomps = find_simple_decompositions(mgr, f)
        ands = [d for d in decomps if d.kind == "and"]
        assert ands, "AND chain must expose 1-dominators"
        for d in ands:
            assert verify_simple(mgr, f, d)

    def test_or_chain_zero_dominator(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.or_many([mgr.var_ref(v) for v in (a, b, c)])
        decomps = find_simple_decompositions(mgr, f)
        ors = [d for d in decomps if d.kind == "or"]
        assert ors
        for d in ors:
            assert verify_simple(mgr, f, d)

    def test_xor_chain_x_dominator(self, mgr):
        vs = [mgr.new_var() for _ in range(4)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        decomps = find_simple_decompositions(mgr, f)
        xnors = [d for d in decomps if d.kind == "xnor"]
        assert xnors, "XOR chain must expose x-dominators"
        for d in xnors:
            assert verify_simple(mgr, f, d)

    def test_karplus_fig2_conjunctive(self, mgr):
        # Fig. 2(a): F = (a+b)(c+d) -- the (c+d) node is a 1-dominator.
        a, b, c, d = (mgr.new_var(n) for n in "abcd")
        f = mgr.and_(mgr.or_(mgr.var_ref(a), mgr.var_ref(b)),
                     mgr.or_(mgr.var_ref(c), mgr.var_ref(d)))
        decomps = find_simple_decompositions(mgr, f)
        ands = [d_ for d_ in decomps if d_.kind == "and"]
        assert len(ands) >= 1
        d_ = ands[0]
        assert d_.upper == mgr.or_(mgr.var_ref(a), mgr.var_ref(b))
        assert d_.parts[0] == mgr.or_(mgr.var_ref(c), mgr.var_ref(d))

    def test_karplus_fig2_disjunctive(self, mgr):
        # Fig. 2(b): F = ab + b~c + ad ... use F = ab + cd: below the cut
        # after level b, the cd node is a 0-dominator.
        a, b, c, d = (mgr.new_var(n) for n in "abcd")
        f = mgr.or_(mgr.and_(mgr.var_ref(a), mgr.var_ref(b)),
                    mgr.and_(mgr.var_ref(c), mgr.var_ref(d)))
        decomps = find_simple_decompositions(mgr, f)
        ors = [x for x in decomps if x.kind == "or"]
        assert ors
        x = ors[0]
        assert x.upper == mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        assert x.parts[0] == mgr.and_(mgr.var_ref(c), mgr.var_ref(d))

    def test_functional_mux_pair(self, mgr):
        # Fig. 11: F = g z + ~g y with g = xw + ~x~w (over vars x,w,z,y).
        x, w, z, y = (mgr.new_var(n) for n in "xwzy")
        g = mgr.xnor_(mgr.var_ref(x), mgr.var_ref(w))
        f = mgr.ite(g, mgr.var_ref(z), mgr.var_ref(y))
        decomps = find_simple_decompositions(mgr, f)
        muxes = [d for d in decomps if d.kind == "mux"]
        assert muxes
        for d in muxes:
            assert verify_simple(mgr, f, d)
        # Some cut exposes the functional select g (or its complement).
        assert any(d.upper in (g, g ^ 1) for d in muxes)

    def test_no_false_positives_random(self, mgr):
        rng = random.Random(19)
        vs = [mgr.new_var() for _ in range(6)]
        for _ in range(15):
            f = _random_function(mgr, vs, rng)
            if mgr.is_const(f):
                continue
            for d in find_simple_decompositions(mgr, f):
                assert verify_simple(mgr, f, d)


class TestGeneralizedDominators:
    def test_paper_fig4_and4(self, mgr):
        # Example 3: F with best decomposition (af+b+c)(ag+d+e), 8 literals.
        # Build F = (~a f + ~b + c)(~a g + d + e) directly; the engine must
        # find a conjunctive Boolean decomposition of comparable quality.
        a, b, c, d, e, f_, g_ = (mgr.new_var(n) for n in "abcdefg")
        ra = mgr.var_ref(a)
        d1 = mgr.or_many([mgr.and_(ra ^ 1, mgr.var_ref(f_)), mgr.var_ref(b) ^ 1,
                          mgr.var_ref(c)])
        d2 = mgr.or_many([mgr.and_(ra ^ 1, mgr.var_ref(g_)), mgr.var_ref(d),
                          mgr.var_ref(e)])
        func = mgr.and_(d1, d2)
        candidates = conjunctive_candidates(mgr, func)
        assert candidates
        for cand in candidates:
            assert mgr.and_(cand.divisor, cand.quotient) == func
        # At least one candidate reproduces (a divisor equal to d1 or d2
        # up to the don't-care interval) -- check that some divisor covers
        # func and is covered by one of the intended factors' interval.
        assert any(node_count(mgr, c.divisor) <= node_count(mgr, d1) + 2
                   for c in candidates)

    def test_fig3_conjunctive(self, mgr):
        # Example 2: F = ~e + ~b d with order (e, d, b); the cut below d
        # gives divisor D = ~e + d and quotient Q = ~e + ~b.
        e, d, b = (mgr.new_var(n) for n in "edb")
        func = mgr.or_(mgr.var_ref(e) ^ 1,
                       mgr.and_(mgr.var_ref(b) ^ 1, mgr.var_ref(d)))
        candidates = conjunctive_candidates(mgr, func)
        divisors = {c.divisor for c in candidates}
        expected_d = mgr.or_(mgr.var_ref(e) ^ 1, mgr.var_ref(d))
        assert expected_d in divisors
        for c in candidates:
            if c.divisor == expected_d:
                assert mgr.and_(c.divisor, c.quotient) == func

    def test_fig5_disjunctive(self, mgr):
        # Example 4: F = ~a~b + b~c; G = ~a~b; H in [F~G, F]; H may be b~c.
        a, b, c = (mgr.new_var(n) for n in "abc")
        func = mgr.or_(mgr.and_(mgr.var_ref(a) ^ 1, mgr.var_ref(b) ^ 1),
                       mgr.and_(mgr.var_ref(b), mgr.var_ref(c) ^ 1))
        candidates = disjunctive_candidates(mgr, func)
        assert candidates
        for cand in candidates:
            assert mgr.or_(cand.divisor, cand.quotient) == func

    def test_random_soundness(self, mgr):
        rng = random.Random(23)
        vs = [mgr.new_var() for _ in range(6)]
        for _ in range(10):
            f = _random_function(mgr, vs, rng)
            if mgr.is_const(f):
                continue
            for c in conjunctive_candidates(mgr, f):
                assert mgr.and_(c.divisor, c.quotient) == f
            for c in disjunctive_candidates(mgr, f):
                assert mgr.or_(c.divisor, c.quotient) == f


class TestBooleanXnor:
    def test_generalized_x_dominator_detection(self, mgr):
        # a xor b: the b node is reached by a regular then-edge and a
        # complemented path (via the negated else edge of a).
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.xor_(mgr.var_ref(a), mgr.var_ref(b))
        doms = generalized_x_dominators(mgr, f)
        assert doms, "xor must expose a generalized x-dominator"

    def test_candidates_sound(self, mgr):
        rng = random.Random(29)
        vs = [mgr.new_var() for _ in range(6)]
        for _ in range(15):
            f = _random_function(mgr, vs, rng)
            if mgr.is_const(f):
                continue
            for c in boolean_xnor_candidates(mgr, f):
                assert mgr.xnor_(c.g, c.h) == f

    def test_fig9_rnd4_1(self, mgr):
        # Example 6: F = (x1 xnor ~x4) xnor (x2 (x5 + x1 x4)).
        x1, x2, x4, x5 = (mgr.new_var(n) for n in ("x1", "x2", "x4", "x5"))
        g = mgr.xnor_(mgr.var_ref(x1), mgr.var_ref(x4) ^ 1)
        h = mgr.and_(mgr.var_ref(x2),
                     mgr.or_(mgr.var_ref(x5),
                             mgr.and_(mgr.var_ref(x1), mgr.var_ref(x4))))
        f = mgr.xnor_(g, h)
        candidates = boolean_xnor_candidates(mgr, f)
        assert candidates
        # Some candidate must reproduce a compact split; the paper's own
        # split (G = x1 xnor ~x4, H = x2(x5 + x1 x4)) costs |F| + 1 nodes
        # but H then decomposes algebraically.
        fsize = node_count(mgr, f)
        assert any(node_count(mgr, c.g) + node_count(mgr, c.h) <= fsize + 1
                   for c in candidates)
        # The whole engine keeps the XNOR structure: at most 8 literals.
        tree = decompose(mgr, f)
        assert tree.to_bdd(mgr) == f
        assert tree.literal_count() <= 8


class TestEngine:
    def test_decompose_preserves_function_random(self, mgr):
        rng = random.Random(31)
        vs = [mgr.new_var() for _ in range(7)]
        for _ in range(10):
            f = _random_function(mgr, vs, rng, n_ops=40)
            tree = decompose(mgr, f)
            assert tree.to_bdd(mgr) == f

    def test_decompose_constants_and_literals(self, mgr):
        a = mgr.new_var("a")
        assert decompose(mgr, ONE) == CONST1
        assert decompose(mgr, ZERO) == CONST0
        assert decompose(mgr, mgr.var_ref(a)) == var_leaf(a)
        assert decompose(mgr, mgr.var_ref(a) ^ 1) == negate(var_leaf(a))

    def test_and_or_intensive(self, mgr):
        # (a+b)(c+d)(e+f): pure algebraic AND decomposition; no XOR gates.
        vs = [mgr.new_var() for _ in range(6)]
        f = mgr.and_many([
            mgr.or_(mgr.var_ref(vs[0]), mgr.var_ref(vs[1])),
            mgr.or_(mgr.var_ref(vs[2]), mgr.var_ref(vs[3])),
            mgr.or_(mgr.var_ref(vs[4]), mgr.var_ref(vs[5])),
        ])
        stats = DecompStats()
        tree = decompose(mgr, f, stats=stats)
        assert tree.to_bdd(mgr) == f
        assert stats.simple_and >= 2
        assert tree.literal_count() == 6

    def test_xor_intensive(self, mgr):
        vs = [mgr.new_var() for _ in range(8)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        stats = DecompStats()
        tree = decompose(mgr, f, stats=stats)
        assert tree.to_bdd(mgr) == f
        assert stats.simple_xnor + stats.boolean_xnor >= 1
        # Parity of 8 variables should stay linear-size, not 2^7 minterms.
        assert tree.literal_count() <= 16

    def test_engine_options_disable(self, mgr):
        vs = [mgr.new_var() for _ in range(5)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        opts = DecompOptions(enable_simple=False, enable_mux=False,
                             enable_generalized=False, enable_bool_xnor=False)
        stats = DecompStats()
        tree = decompose(mgr, f, options=opts, stats=stats)
        assert tree.to_bdd(mgr) == f
        assert stats.total() == stats.shannon  # only Shannon steps

    def test_memoization_shares_subtrees(self, mgr):
        # f = (a&b) | ((a&b) ^ c): the a&b subfunction appears twice.
        a, b, c = (mgr.new_var(n) for n in "abc")
        ab = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        f = mgr.or_(ab, mgr.xor_(ab, mgr.var_ref(c)))
        tree = decompose(mgr, f)
        assert tree.to_bdd(mgr) == f

    def test_stats_totals(self, mgr):
        rng = random.Random(37)
        vs = [mgr.new_var() for _ in range(6)]
        f = _random_function(mgr, vs, rng, n_ops=30)
        stats = DecompStats()
        decompose(mgr, f, stats=stats)
        assert stats.total() >= 0
        assert isinstance(stats.as_dict(), dict)

    def test_paper_example_quasi_algebraic(self, mgr):
        # Section III-B closing example: F = (ab + c)(ad + c) is found even
        # with the interleaved optimal order a, b, c?, d.
        a, b, c, d = (mgr.new_var(n) for n in "abcd")
        f = mgr.and_(
            mgr.or_(mgr.and_(mgr.var_ref(a), mgr.var_ref(b)), mgr.var_ref(c)),
            mgr.or_(mgr.and_(mgr.var_ref(a), mgr.var_ref(d)), mgr.var_ref(c)),
        )
        tree = decompose(mgr, f)
        assert tree.to_bdd(mgr) == f
        # The Boolean decomposition keeps the factored form compact
        # (the flat SOP has 8+ literals; factored needs at most 8).
        assert tree.literal_count() <= 8
