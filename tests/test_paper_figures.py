"""Executable reproductions of the paper's worked examples (Figures 1-14).

Each test constructs the figure's Boolean function, runs the decomposition
machinery the figure illustrates, and asserts the identity the paper
states.  Where the paper gives a concrete resulting formula (Examples 2-7)
the formula itself is checked.
"""

import pytest

from repro.bdd import BDD, ONE
from repro.bdd.traverse import node_count
from repro.decomp import decompose
from repro.decomp.cuts import cut_signatures, enumerate_cuts
from repro.decomp.dominators import find_simple_decompositions, verify_simple
from repro.decomp.engine import DecompStats
from repro.decomp.generalized import (
    conjunctive_candidates,
    disjunctive_candidates,
)
from repro.decomp.xordec import boolean_xnor_candidates, generalized_x_dominators


@pytest.fixture
def mgr():
    return BDD()


class TestFig1Ashenhurst:
    """Fig. 1: disjoint (Ashenhurst) decomposition via a BDD cut with
    column multiplicity 2 == a functional select covering all paths."""

    def test_column_multiplicity_two(self, mgr):
        x1, x2, x3 = (mgr.new_var(n) for n in ("x1", "x2", "x3"))
        g = mgr.xor_(mgr.var_ref(x1), mgr.var_ref(x2))
        f = mgr.ite(g, mgr.var_ref(x3) ^ 1, mgr.var_ref(x3))
        cuts = enumerate_cuts(mgr, f)
        # The cut between {x1,x2} and {x3} must cross exactly two
        # vertices: the two "columns" of the decomposition chart.
        chart_cut = [c for c in cuts
                     if mgr.var_of(min(c.nonterminal_targets(), default=0)) == x3
                     and len(c.nonterminal_targets()) == 2]
        assert chart_cut, "bound-set cut must have column multiplicity 2"
        decomps = find_simple_decompositions(mgr, f)
        assert any(d.kind in ("mux", "xnor") for d in decomps)
        for d in decomps:
            assert verify_simple(mgr, f, d)


class TestFig2Karplus:
    def test_conjunctive_1_dominator(self, mgr):
        # Fig. 2(a): F = (a+b)(c+d).
        a, b, c, d = (mgr.new_var(n) for n in "abcd")
        f = mgr.and_(mgr.or_(mgr.var_ref(a), mgr.var_ref(b)),
                     mgr.or_(mgr.var_ref(c), mgr.var_ref(d)))
        ands = [x for x in find_simple_decompositions(mgr, f) if x.kind == "and"]
        assert ands
        x = ands[0]
        assert x.upper == mgr.or_(mgr.var_ref(a), mgr.var_ref(b))
        assert x.parts[0] == mgr.or_(mgr.var_ref(c), mgr.var_ref(d))

    def test_disjunctive_0_dominator(self, mgr):
        # Fig. 2(b): ab + (below-part); 0-dominator exposes the OR.
        a, b, c, d = (mgr.new_var(n) for n in "abcd")
        f = mgr.or_(mgr.and_(mgr.var_ref(a), mgr.var_ref(b)),
                    mgr.and_(mgr.var_ref(c), mgr.var_ref(d)))
        ors = [x for x in find_simple_decompositions(mgr, f) if x.kind == "or"]
        assert ors
        x = ors[0]
        assert mgr.or_(x.upper, x.parts[0]) == f


class TestFig3Example2:
    """Example 2 / Fig. 3: F = ~e + ~b d, D = ~e + d, Q = ~e + ~b."""

    def test_divisor_and_quotient(self, mgr):
        e, d, b = (mgr.new_var(n) for n in "edb")
        re_, rd, rb = (mgr.var_ref(v) for v in (e, d, b))
        f = mgr.or_(re_ ^ 1, mgr.and_(rb ^ 1, rd))
        expected_d = mgr.or_(re_ ^ 1, rd)
        expected_q = mgr.or_(re_ ^ 1, rb ^ 1)
        cands = conjunctive_candidates(mgr, f)
        match = [c for c in cands if c.divisor == expected_d]
        assert match, "the paper's divisor ~e+d must be produced"
        c = match[0]
        assert mgr.and_(c.divisor, c.quotient) == f
        # Q must lie in the Theorem 2 interval [F, F + ~D].
        assert mgr.leq(f, c.quotient)
        assert mgr.leq(c.quotient, mgr.or_(f, expected_d ^ 1))
        # And the minimized quotient is as small as the paper's.
        assert node_count(mgr, c.quotient) <= node_count(mgr, expected_q)


class TestFig4Example3:
    """Example 3 / Fig. 4: and4.blif, best known form
    (\\~a f + ~b + c)(~a g + d + e) with 8 literals."""

    def test_eight_literal_form(self, mgr):
        # Variable order as drawn in Fig. 4: a, f, b, c above g, d, e.
        a, f_, b, c, g_, d, e = (mgr.new_var(n) for n in "afbcgde")
        ra = mgr.var_ref(a)
        d1 = mgr.or_many([mgr.and_(ra ^ 1, mgr.var_ref(f_)),
                          mgr.var_ref(b) ^ 1, mgr.var_ref(c)])
        d2 = mgr.or_many([mgr.and_(ra ^ 1, mgr.var_ref(g_)),
                          mgr.var_ref(d), mgr.var_ref(e)])
        func = mgr.and_(d1, d2)
        # The generalized dominator recovers exactly D = ~a f + ~b + c and
        # Q = ~a g + d + e (Example 3).
        cands = conjunctive_candidates(mgr, func)
        assert any(cc.divisor == d1 and cc.quotient == d2 for cc in cands)
        tree = decompose(mgr, func)
        assert tree.to_bdd(mgr) == func
        assert tree.literal_count() == 8, tree.to_expr(mgr.var_name)

    def test_order_sensitivity_documented(self, mgr):
        # With a fully interleaved order the 8-literal split is invisible
        # to horizontal cuts (the divisor's support must sit above the
        # cut); the engine still produces a correct, if larger, form.
        a, b, c, d, e, f_, g_ = (mgr.new_var(n) for n in "abcdefg")
        ra = mgr.var_ref(a)
        d1 = mgr.or_many([mgr.and_(ra ^ 1, mgr.var_ref(f_)),
                          mgr.var_ref(b) ^ 1, mgr.var_ref(c)])
        d2 = mgr.or_many([mgr.and_(ra ^ 1, mgr.var_ref(g_)),
                          mgr.var_ref(d), mgr.var_ref(e)])
        func = mgr.and_(d1, d2)
        tree = decompose(mgr, func)
        assert tree.to_bdd(mgr) == func
        assert tree.literal_count() <= 14  # flat SOP would be 18


class TestFig5Example4:
    """Example 4 / Fig. 5: F = ~a~b + b~c, G = ~a~b, H -> ~b... (b~c)."""

    def test_disjunctive_term(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.or_(mgr.and_(mgr.var_ref(a) ^ 1, mgr.var_ref(b) ^ 1),
                    mgr.and_(mgr.var_ref(b), mgr.var_ref(c) ^ 1))
        cands = disjunctive_candidates(mgr, f)
        assert cands
        for cand in cands:
            assert mgr.or_(cand.divisor, cand.quotient) == f
            # G <= F (Theorem 3).
            assert mgr.leq(cand.divisor, f)


class TestFig6CutEquivalence:
    """Fig. 6 / Theorem 4: 0-equivalent cuts give identical divisors."""

    def test_equivalent_cuts_same_divisor(self, mgr):
        vs = [mgr.new_var() for _ in range(5)]
        f = mgr.and_(mgr.or_(mgr.var_ref(vs[0]), mgr.var_ref(vs[1])),
                     mgr.and_(mgr.or_(mgr.var_ref(vs[2]), mgr.var_ref(vs[3])),
                              mgr.var_ref(vs[4])))
        cuts = enumerate_cuts(mgr, f)
        zero_classes, _ = cut_signatures(cuts)
        from repro.decomp.cuts import rebuild_above_cut
        for sig, members in zero_classes.items():
            if len(members) < 2 or not sig:
                continue
            divisors = {
                rebuild_above_cut(mgr, f, cut.level, {}, free_value=ONE)
                for cut in members
            }
            assert len(divisors) == 1, "0-equivalent cuts must agree"


class TestFig7_8XDominator:
    """Theorem 5 / Fig. 8: F = (x+y) xnor (~u + ~v + ~q)."""

    def test_algebraic_xnor(self, mgr):
        u, v, q, x, y = (mgr.new_var(n) for n in "uvqxy")
        g = mgr.or_(mgr.var_ref(x), mgr.var_ref(y))
        h = mgr.or_many([mgr.var_ref(u) ^ 1, mgr.var_ref(v) ^ 1,
                         mgr.var_ref(q) ^ 1])
        f = mgr.xnor_(g, h)
        xnors = [d for d in find_simple_decompositions(mgr, f)
                 if d.kind == "xnor"]
        assert xnors, "x-dominator must be detected"
        for d in xnors:
            assert verify_simple(mgr, f, d)
        # One of the splits is exactly the paper's (g, h) pair.
        pairs = {(d.upper, d.parts[0]) for d in xnors}
        pairs |= {(b_, a_) for a_, b_ in pairs}
        assert any(a_ in (g, g ^ 1) and b_ in (h, h ^ 1) for a_, b_ in pairs)

    def test_supports_disjoint(self, mgr):
        from repro.bdd.traverse import support
        u, v, q, x, y = (mgr.new_var(n) for n in "uvqxy")
        g = mgr.or_(mgr.var_ref(x), mgr.var_ref(y))
        h = mgr.or_many([mgr.var_ref(u) ^ 1, mgr.var_ref(v) ^ 1,
                         mgr.var_ref(q) ^ 1])
        f = mgr.xnor_(g, h)
        for d in find_simple_decompositions(mgr, f):
            if d.kind == "xnor":
                assert not (support(mgr, d.upper) & support(mgr, d.parts[0])), \
                    "Theorem 5 decomposition is algebraic (disjoint supports)"


class TestFig9Example6:
    """Example 6 / Fig. 9: rnd4-1, F = (x1 xnor ~x4) xnor (x2(x5+x1x4))."""

    def test_generalized_x_dominators_exist(self, mgr):
        x1, x2, x4, x5 = (mgr.new_var(n) for n in ("x1", "x2", "x4", "x5"))
        g = mgr.xnor_(mgr.var_ref(x1), mgr.var_ref(x4) ^ 1)
        h = mgr.and_(mgr.var_ref(x2),
                     mgr.or_(mgr.var_ref(x5),
                             mgr.and_(mgr.var_ref(x1), mgr.var_ref(x4))))
        f = mgr.xnor_(g, h)
        assert generalized_x_dominators(mgr, f)
        cands = boolean_xnor_candidates(mgr, f)
        for c in cands:
            assert mgr.xnor_(c.g, c.h) == f
        # The engine keeps the XNOR structure with paper-level literals.
        tree = decompose(mgr, f)
        assert tree.to_bdd(mgr) == f
        assert tree.literal_count() <= 8

    def test_theorem6_any_g_works(self, mgr):
        # Theorem 6: for any G, H = G xnor F satisfies F = G xnor H.
        import random
        rng = random.Random(3)
        vs = [mgr.new_var() for _ in range(4)]
        refs = [mgr.var_ref(v) for v in vs]
        for _ in range(20):
            fa, fb = rng.choice(refs), rng.choice(refs)
            refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(fa, fb))
        f, g = refs[-1], refs[-2]
        h = mgr.xnor_(g, f)
        assert mgr.xnor_(g, h) == f


class TestFig10_11FunctionalMux:
    """Theorem 7 / Fig. 11: F = ~g z + g ~y ... with g = xw + ~x~w."""

    def test_functional_select_recovered(self, mgr):
        x, w, z, y = (mgr.new_var(n) for n in "xwzy")
        g = mgr.xnor_(mgr.var_ref(x), mgr.var_ref(w))
        f = mgr.ite(g, mgr.var_ref(z), mgr.var_ref(y))
        muxes = [d for d in find_simple_decompositions(mgr, f)
                 if d.kind == "mux"]
        assert any(d.upper in (g, g ^ 1) for d in muxes)
        for d in muxes:
            assert verify_simple(mgr, f, d)

    def test_engine_emits_mux(self, mgr):
        x, w, z, y = (mgr.new_var(n) for n in "xwzy")
        g = mgr.xnor_(mgr.var_ref(x), mgr.var_ref(w))
        f = mgr.ite(g, mgr.var_ref(z), mgr.var_ref(y))
        stats = DecompStats()
        tree = decompose(mgr, f, stats=stats)
        assert tree.to_bdd(mgr) == f
        assert stats.functional_mux >= 1


class TestFig12Flows:
    """Fig. 12: both complete flows run and verify on the same input."""

    def test_both_flows(self):
        from repro.bds import bds_optimize
        from repro.circuits import build_circuit
        from repro.sis import script_rugged
        from repro.verify import check_equivalence
        net = build_circuit("add4")
        bds_net = bds_optimize(net).network
        sis_net = script_rugged(net).network
        assert check_equivalence(net, bds_net).equivalent
        assert check_equivalence(net, sis_net).equivalent


class TestFig13_14Sharing:
    """Sharing extraction across factoring trees of a two-output function."""

    def test_two_output_sharing(self):
        from repro.decomp.ftree import mux, op2, var_leaf
        from repro.decomp.sharing import count_shared_gates, extract_sharing
        # Fig. 14: f and g decomposed independently, then shared.
        xab = op2("xor", var_leaf("a"), var_leaf("b"))
        xba = op2("xor", var_leaf("b"), var_leaf("a"))
        f = mux(xab, var_leaf("c"), op2("and", var_leaf("c"), var_leaf("d")))
        g = op2("or", xba, var_leaf("d"))
        before = count_shared_gates({"f": f, "g": g})
        shared = extract_sharing({"f": f, "g": g})
        after = count_shared_gates(shared)
        assert after < before
        import itertools
        for bits in itertools.product([False, True], repeat=4):
            env = dict(zip("abcd", bits))
            assert shared["f"].evaluate(env) == f.evaluate(env)
            assert shared["g"].evaluate(env) == g.evaluate(env)
