"""Tests for cone analysis and full collapsing."""

import itertools


from repro.circuits import parity_tree, ripple_adder
from repro.network import Network
from repro.network.cones import (
    collapse_to_two_level,
    extract_cone,
    mffc,
    transitive_fanin,
    transitive_fanout,
)
from repro.verify import check_equivalence


def diamond() -> Network:
    """a,b -> shared t -> two outputs with private logic."""
    net = Network("diamond")
    for n in "abc":
        net.add_input(n)
    net.add_output("y1")
    net.add_output("y2")
    net.add_and("t", ["a", "b"])
    net.add_or("u1", ["t", "c"])
    net.add_not("y1", "u1")
    net.add_xor("y2", ["t", "c"])
    return net


class TestCones:
    def test_transitive_fanin(self):
        net = diamond()
        cone = transitive_fanin(net, "y1")
        assert cone == {"y1", "u1", "t", "a", "b", "c"}

    def test_transitive_fanout(self):
        net = diamond()
        fan = transitive_fanout(net, "t")
        assert fan == {"u1", "y1", "y2"}
        assert transitive_fanout(net, "y1") == set()

    def test_mffc_shared_node_excluded(self):
        net = diamond()
        # u1 is exclusively y1's; t is shared with y2 so not in y1's MFFC.
        cone = mffc(net, "y1")
        assert "u1" in cone
        assert "t" not in cone

    def test_mffc_of_whole_private_cone(self):
        net = Network("chain")
        net.add_input("a")
        net.add_input("b")
        net.add_output("y")
        net.add_and("t1", ["a", "b"])
        net.add_not("t2", "t1")
        net.add_buf("y", "t2")
        assert mffc(net, "y") == {"y", "t2", "t1"}

    def test_extract_cone_standalone(self):
        net = diamond()
        cone = extract_cone(net, ["y2"])
        assert set(cone.outputs) == {"y2"}
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            assert cone.eval(env)["y2"] == net.eval(env)["y2"]

    def test_extract_cone_drops_unused_inputs(self):
        net = Network("partial")
        for n in "abc":
            net.add_input(n)
        net.add_output("y")
        net.add_and("y", ["a", "b"])
        cone = extract_cone(net, ["y"])
        assert "c" not in cone.inputs


class TestCollapse:
    def test_collapse_preserves_function(self):
        net = ripple_adder(3)
        flat = collapse_to_two_level(net)
        assert flat is not None
        assert check_equivalence(net, flat).equivalent
        # Every node reads only PIs.
        for node in flat.nodes.values():
            for f in node.fanins:
                assert f in flat.inputs

    def test_collapse_parity_blows_up_gracefully(self):
        net = parity_tree(12)
        flat = collapse_to_two_level(net, max_cubes=100)
        assert flat is None  # 2^11 minterms needed

    def test_collapse_output_is_input(self):
        net = Network("thru")
        net.add_input("a")
        net.add_output("a")
        flat = collapse_to_two_level(net)
        assert flat is not None
        assert flat.eval({"a": True})["a"] is True
