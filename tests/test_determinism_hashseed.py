"""Byte-identical optimization output across PYTHONHASHSEED values.

The artifact cache keys results by sha256(canonical BLIF) x options
(docs/SERVICE.md): one hash-order byte in the emitted BLIF and every
warm lookup silently misses.  String sets reorder under
``PYTHONHASHSEED``; int sets reorder when their tables resize -- which
is why every set iteration feeding emission is sorted (RPL002,
docs/LINTING.md).  This test is the end-to-end guard: the whole
generate -> optimize -> verify -> emit pipeline, run under different
hash seeds in fresh interpreters, must produce identical bytes.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SEEDS = ("0", "1", "77")


def _run_cli(args, seed, cwd):
    env = dict(os.environ,
               PYTHONPATH=os.path.join(REPO_ROOT, "src"),
               PYTHONHASHSEED=seed)
    res = subprocess.run([sys.executable, "-m", "repro.cli"] + args,
                         cwd=cwd, env=env, capture_output=True, text=True)
    assert res.returncode == 0, res.stdout + res.stderr
    return res


#: rl_mux/add4 are the historical guards; rot and C880 come from Table I
#: (rot once emitted hash-seed-dependent gensym numbering through an
#: unsorted dependency-set DFS in trees_to_network -- the golden-digest
#: tests caught it, this pins the fix end to end).
@pytest.mark.parametrize("circuit", ["rl_mux", "add4", "rot", "C880"])
def test_flow_output_identical_across_hash_seeds(circuit, tmp_path):
    outputs = {}
    for seed in SEEDS:
        gen = tmp_path / ("%s_%s.blif" % (circuit, seed))
        opt = tmp_path / ("%s_%s_opt.blif" % (circuit, seed))
        _run_cli(["generate", circuit, "-o", str(gen)], seed, tmp_path)
        _run_cli(["optimize", str(gen), "-o", str(opt), "--verify"],
                 seed, tmp_path)
        outputs[seed] = (gen.read_bytes(), opt.read_bytes())
    first = outputs[SEEDS[0]]
    for seed in SEEDS[1:]:
        assert outputs[seed][0] == first[0], \
            "generated BLIF differs under PYTHONHASHSEED=%s" % seed
        assert outputs[seed][1] == first[1], \
            "optimized BLIF differs under PYTHONHASHSEED=%s" % seed
