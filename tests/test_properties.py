"""Property-based tests (hypothesis) on the core data structures.

Random Boolean expressions are generated as ASTs, evaluated both through
the data structure under test and through a reference truth-table
interpreter; key invariants of the BDD package, the cube algebra, the
decomposition engine and the reorderer are checked on every example.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.isop import cover_to_bdd, isop
from repro.bdd.restrict import constrain, minimize_with_dc, restrict
from repro.bdd.reorder import random_order, sift
from repro.bdd.traverse import evaluate, node_count, sat_count, support
from repro.decomp import decompose
from repro.sop.cover import complement as sop_complement
from repro.sop.cover import cover_eval, is_tautology, remove_contained
from repro.sop.cube import lit

NVARS = 5

# --- expression AST strategy ---------------------------------------------

_expr = st.deferred(lambda: st.one_of(
    st.integers(min_value=0, max_value=NVARS - 1).map(lambda v: ("var", v)),
    st.just(("const", False)),
    st.just(("const", True)),
    st.tuples(st.just("not"), _expr),
    st.tuples(st.sampled_from(["and", "or", "xor"]), _expr, _expr),
))


def expr_strategy():
    return _expr


def build_bdd(mgr, variables, e):
    tag = e[0]
    if tag == "var":
        return mgr.var_ref(variables[e[1]])
    if tag == "const":
        return ONE if e[1] else ZERO
    if tag == "not":
        return build_bdd(mgr, variables, e[1]) ^ 1
    a = build_bdd(mgr, variables, e[1])
    b = build_bdd(mgr, variables, e[2])
    return getattr(mgr, e[0] + "_")(a, b)


def eval_expr(e, bits):
    tag = e[0]
    if tag == "var":
        return bits[e[1]]
    if tag == "const":
        return e[1]
    if tag == "not":
        return not eval_expr(e[1], bits)
    a, b = eval_expr(e[1], bits), eval_expr(e[2], bits)
    return {"and": a and b, "or": a or b, "xor": a != b}[tag]


def _fresh():
    mgr = BDD()
    variables = [mgr.new_var("x%d" % i) for i in range(NVARS)]
    return mgr, variables


def _truth(mgr, variables, ref):
    return tuple(evaluate(mgr, ref, dict(zip(variables, bits)))
                 for bits in itertools.product([False, True], repeat=NVARS))


# --- BDD semantics ---------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(expr_strategy())
def test_bdd_matches_reference_semantics(e):
    mgr, variables = _fresh()
    ref = build_bdd(mgr, variables, e)
    for bits in itertools.product([False, True], repeat=NVARS):
        assert evaluate(mgr, ref, dict(zip(variables, bits))) == \
            eval_expr(e, bits)


@settings(max_examples=100, deadline=None)
@given(expr_strategy(), expr_strategy())
def test_bdd_canonicity(e1, e2):
    """Semantically equal functions get identical refs."""
    mgr, variables = _fresh()
    r1 = build_bdd(mgr, variables, e1)
    r2 = build_bdd(mgr, variables, e2)
    t1 = tuple(eval_expr(e1, bits)
               for bits in itertools.product([False, True], repeat=NVARS))
    t2 = tuple(eval_expr(e2, bits)
               for bits in itertools.product([False, True], repeat=NVARS))
    assert (r1 == r2) == (t1 == t2)


@settings(max_examples=100, deadline=None)
@given(expr_strategy())
def test_sat_count_matches_enumeration(e):
    mgr, variables = _fresh()
    ref = build_bdd(mgr, variables, e)
    expected = sum(eval_expr(e, bits)
                   for bits in itertools.product([False, True], repeat=NVARS))
    assert sat_count(mgr, ref, NVARS) == expected


@settings(max_examples=100, deadline=None)
@given(expr_strategy())
def test_shannon_reconstruction(e):
    mgr, variables = _fresh()
    ref = build_bdd(mgr, variables, e)
    for v in variables:
        f0 = mgr.cofactor(ref, v, False)
        f1 = mgr.cofactor(ref, v, True)
        assert mgr.ite(mgr.var_ref(v), f1, f0) == ref
        assert v not in support(mgr, f0)
        assert v not in support(mgr, f1)


@settings(max_examples=80, deadline=None)
@given(expr_strategy(), expr_strategy())
def test_restrict_and_constrain_agree_on_care(e1, e2):
    mgr, variables = _fresh()
    f = build_bdd(mgr, variables, e1)
    c = build_bdd(mgr, variables, e2)
    if c == ZERO:
        return
    for op in (restrict, constrain):
        r = op(mgr, f, c)
        assert mgr.and_(r, c) == mgr.and_(f, c)


@settings(max_examples=80, deadline=None)
@given(expr_strategy(), expr_strategy())
def test_minimize_with_dc_respects_interval(e1, e2):
    mgr, variables = _fresh()
    f = build_bdd(mgr, variables, e1)
    dc = build_bdd(mgr, variables, e2)
    onset = mgr.and_(f, dc ^ 1)
    g = minimize_with_dc(mgr, onset, dc)
    assert mgr.leq(onset, g)
    assert mgr.leq(g, mgr.or_(onset, dc))


@settings(max_examples=80, deadline=None)
@given(expr_strategy())
def test_isop_roundtrip(e):
    mgr, variables = _fresh()
    ref = build_bdd(mgr, variables, e)
    assert cover_to_bdd(mgr, isop(mgr, ref)) == ref


# --- reordering -------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(expr_strategy(), st.randoms(use_true_random=False))
def test_reordering_preserves_semantics(e, rnd):
    mgr, variables = _fresh()
    ref = build_bdd(mgr, variables, e)
    before = _truth(mgr, variables, ref)
    random_order(mgr, rnd)
    assert _truth(mgr, variables, ref) == before
    size_before = node_count(mgr, ref)
    after = sift(mgr, [ref])
    assert _truth(mgr, variables, ref) == before
    assert after <= max(size_before, 1)


# --- decomposition engine ----------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(expr_strategy())
def test_decompose_identity(e):
    mgr, variables = _fresh()
    ref = build_bdd(mgr, variables, e)
    tree = decompose(mgr, ref)
    assert tree.to_bdd(mgr) == ref
    # The factoring tree never mentions variables outside the support.
    assert tree.support() <= support(mgr, ref)


# --- cube algebra --------------------------------------------------------------


def _cover_strategy():
    cube = st.lists(
        st.tuples(st.integers(0, NVARS - 1), st.booleans()), max_size=3
    ).map(lambda pairs: frozenset(lit(v, p) for v, p in dict(pairs).items()))
    return st.lists(cube, max_size=5)


@settings(max_examples=100, deadline=None)
@given(_cover_strategy())
def test_sop_complement_is_complement(cover):
    comp = sop_complement(cover)
    for bits in itertools.product([False, True], repeat=NVARS):
        env = dict(enumerate(bits))
        assert cover_eval(cover, env) != cover_eval(comp, env)


@settings(max_examples=100, deadline=None)
@given(_cover_strategy())
def test_sop_tautology_decision(cover):
    expected = all(cover_eval(cover, dict(enumerate(bits)))
                   for bits in itertools.product([False, True], repeat=NVARS))
    assert is_tautology(cover) == expected


@settings(max_examples=100, deadline=None)
@given(_cover_strategy())
def test_remove_contained_preserves_function(cover):
    reduced = remove_contained(cover)
    for bits in itertools.product([False, True], repeat=NVARS):
        env = dict(enumerate(bits))
        assert cover_eval(cover, env) == cover_eval(reduced, env)
    assert len(reduced) <= len(cover)


# --- cross-representation agreement ------------------------------------------


@settings(max_examples=60, deadline=None)
@given(_cover_strategy())
def test_cover_to_bdd_to_isop_fixpoint(cover):
    mgr, variables = _fresh()
    ref = ZERO
    for cube in cover:
        term = ONE
        for l in cube:
            term = mgr.and_(term, mgr.literal(variables[l >> 1], not (l & 1)))
        ref = mgr.or_(ref, term)
    back = isop(mgr, ref)
    assert cover_to_bdd(mgr, back) == ref
