"""Hypothesis property tests for repro.perf snapshot merging.

The obs layer leans on the algebra of :func:`merge_snapshots`: the
flow's frozen-plus-live counter accounting re-merges overlapping
snapshot lists at every span boundary, which is only sound when merging
is associative and commutative and never loses a key.  Integer-valued
counters make the arithmetic exact, so the properties hold with ``==``
rather than approximation.
"""

from hypothesis import given, strategies as st

from repro.perf import DERIVED_KEYS, PEAK_KEYS, counter_delta, merge_snapshots

#: A closed key universe mixing count keys, both peak keys, and the
#: derived ratios (which merge must ignore on input and recompute).
KEYS = st.sampled_from([
    "ite_calls", "nodes_allocated", "gc_sweeps", "cache_hits",
    "cache_misses", "artifact_cache_hits",
    "peak_live_nodes", "peak_allocated_nodes",
    "cache_hit_rate", "unique_live_ratio",
])

SNAPSHOT = st.dictionaries(KEYS, st.integers(min_value=0, max_value=10**6)
                           .map(float), max_size=10)
SNAPSHOTS = st.lists(SNAPSHOT, max_size=6)


@given(a=SNAPSHOT, b=SNAPSHOT)
def test_merge_is_commutative(a, b):
    assert merge_snapshots([a, b]) == merge_snapshots([b, a])


@given(a=SNAPSHOT, b=SNAPSHOT, c=SNAPSHOT)
def test_merge_is_associative(a, b, c):
    left = merge_snapshots([merge_snapshots([a, b]), c])
    right = merge_snapshots([a, merge_snapshots([b, c])])
    assert left == right


@given(snaps=SNAPSHOTS)
def test_merge_never_drops_keys(snaps):
    merged = merge_snapshots(snaps)
    wanted = set()
    for snap in snaps:
        wanted |= set(snap) - DERIVED_KEYS
    assert wanted <= set(merged)
    # The derived ratios are always recomputed onto the result.
    assert DERIVED_KEYS <= set(merged)


@given(snaps=SNAPSHOTS)
def test_merged_counts_are_sums_and_peaks_are_maxima(snaps):
    merged = merge_snapshots(snaps)
    for key in set(merged) - DERIVED_KEYS:
        values = [s.get(key, 0.0) for s in snaps]
        if key in PEAK_KEYS:
            assert merged[key] == max([0.0] + values) \
                or merged[key] == max(v for s in snaps if key in s
                                      for v in [s[key]])
        else:
            assert merged[key] == sum(values)


@given(a=SNAPSHOT, b=SNAPSHOT)
def test_merge_is_idempotent_on_empty(a, b):
    assert merge_snapshots([a, {}]) == merge_snapshots([a])


@given(before=SNAPSHOT, bump=SNAPSHOT)
def test_counter_delta_telescopes_with_merge(before, bump):
    """delta(before, merge(before, bump)) recovers bump's count keys."""
    after = merge_snapshots([before, bump])
    delta = counter_delta(before, {k: v for k, v in after.items()
                                   if k not in DERIVED_KEYS})
    for key, value in bump.items():
        if key in PEAK_KEYS or key in DERIVED_KEYS:
            assert key not in delta or delta[key] >= 0
        elif value:
            assert delta.get(key, 0.0) == value
