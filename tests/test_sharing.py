"""Tests for sharing extraction across factoring trees and netlist lowering."""

import itertools


from repro.decomp import extract_sharing, trees_to_network
from repro.decomp.ftree import FTree, mux, negate, op2, var_leaf
from repro.decomp.sharing import count_shared_gates


def v(name):
    return var_leaf(name)


class TestExtractSharing:
    def test_identical_subtrees_shared(self):
        # Two trees both containing (a & b).
        ab1 = op2("and", v("a"), v("b"))
        ab2 = op2("and", v("b"), v("a"))  # commuted: same function
        t1 = op2("or", ab1, v("c"))
        t2 = op2("xor", ab2, v("d"))
        shared = extract_sharing({"f": t1, "g": t2})
        sub_f = [t for t in shared["f"].iter_nodes() if t.op == "and"]
        sub_g = [t for t in shared["g"].iter_nodes() if t.op == "and"]
        assert sub_f and sub_g
        assert sub_f[0] is sub_g[0], "commuted AND must become one object"

    def test_complement_shared_through_inverter(self):
        # f uses (a+b), g uses ~(a+b): one gate + one inverter after sharing.
        ab = op2("or", v("a"), v("b"))
        nab = op2("and", negate(v("a")), negate(v("b")))  # De Morgan complement
        t1 = op2("and", ab, v("c"))
        t2 = op2("and", nab, v("c"))
        before = count_shared_gates({"f": t1, "g": t2})
        shared = extract_sharing({"f": t1, "g": t2})
        after = count_shared_gates(shared)
        assert after <= before
        # Semantics preserved.
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            assert shared["f"].evaluate(env) == t1.evaluate(env)
            assert shared["g"].evaluate(env) == t2.evaluate(env)

    def test_semantics_preserved(self):
        t1 = mux(v("s"), op2("xor", v("a"), v("b")), op2("and", v("a"), v("b")))
        t2 = op2("xnor", op2("xor", v("a"), v("b")), v("s"))
        shared = extract_sharing({"x": t1, "y": t2})
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip(("s", "a", "b"), bits))
            assert shared["x"].evaluate(env) == t1.evaluate(env)
            assert shared["y"].evaluate(env) == t2.evaluate(env)

    def test_fig14_style_two_output_sharing(self):
        # Fig. 14: two outputs decomposed independently end up sharing
        # logic.  f = (a xor b) & c, g = MUX(a xor b; c, d): the (a xor b)
        # subtree must be extracted once.
        xab1 = op2("xor", v("a"), v("b"))
        xab2 = op2("xor", v("b"), v("a"))
        f = op2("and", xab1, v("c"))
        g = mux(xab2, v("c"), v("d"))
        shared = extract_sharing({"f": f, "g": g})
        xors = set()
        for tree in shared.values():
            for t in tree.iter_nodes():
                if t.op in ("xor", "xnor"):
                    xors.add(id(t))
        assert len(xors) == 1


class TestTreesToNetwork:
    def test_basic_lowering(self):
        t = op2("or", op2("and", v("a"), v("b")), negate(v("c")))
        net = trees_to_network({"y": t}, inputs=["a", "b", "c"], outputs=["y"])
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            assert net.eval(env)["y"] == t.evaluate(env)

    def test_shared_gates_emitted_once(self):
        ab = op2("and", v("a"), v("b"))
        t1 = op2("or", ab, v("c"))
        t2 = op2("xor", ab, v("c"))
        shared = extract_sharing({"f": t1, "g": t2})
        net = trees_to_network(shared, inputs=["a", "b", "c"],
                               outputs=["f", "g"])
        and_nodes = [n for n in net.nodes.values()
                     if len(n.fanins) == 2 and len(n.cover) == 1
                     and len(next(iter(n.cover))) == 2]
        assert len(and_nodes) == 1

    def test_tree_chaining(self):
        # Tree g references tree f by name.
        f = op2("and", v("a"), v("b"))
        g = op2("or", v("f"), v("c"))
        net = trees_to_network({"f": f, "g": g}, inputs=["a", "b", "c"],
                               outputs=["g"])
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            expected = (env["a"] and env["b"]) or env["c"]
            assert net.eval(env)["g"] == expected

    def test_mux_and_constants(self):
        t = mux(v("s"), v("a"), v("b"))
        c = FTree("const1")
        net = trees_to_network({"y": t, "k": c}, inputs=["s", "a", "b"],
                               outputs=["y", "k"])
        assert net.eval({"s": True, "a": False, "b": True})["y"] is False
        assert net.eval({"s": False, "a": False, "b": True})["k"] is True

    def test_output_that_is_leaf(self):
        t = v("a")
        net = trees_to_network({"y": t}, inputs=["a"], outputs=["y"])
        assert net.eval({"a": True})["y"] is True
        assert net.eval({"a": False})["y"] is False

    def test_identical_outputs_buffered(self):
        ab = op2("and", v("a"), v("b"))
        shared = extract_sharing({"y1": ab, "y2": op2("and", v("b"), v("a"))})
        net = trees_to_network(shared, inputs=["a", "b"], outputs=["y1", "y2"])
        out = net.eval({"a": True, "b": True})
        assert out["y1"] and out["y2"]
        net.check()
