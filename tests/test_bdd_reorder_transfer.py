"""Tests for in-place reordering (swap/sift) and inter-manager transfer.

The in-place adjacent swap is the most delicate piece of the BDD substrate:
these tests verify function preservation, canonicity invariants and size
behaviour under randomized reordering.
"""

import itertools
import random


from repro.bdd import BDD, ZERO, transfer, transfer_many
from repro.bdd.reorder import (
    force_order,
    move_var_to_level,
    random_order,
    sift,
    swap_adjacent,
)
from repro.bdd.traverse import evaluate, live_nodes, node_count, support


def _random_function(mgr, variables, rng, n_ops=30):
    refs = [mgr.var_ref(v) for v in variables]
    for _ in range(n_ops):
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
    return refs


def _truth_table(mgr, ref, variables):
    return tuple(
        evaluate(mgr, ref, dict(zip(variables, bits)))
        for bits in itertools.product([False, True], repeat=len(variables))
    )


def _check_canonical(mgr, roots):
    """Unique-table consistency + canonicity invariants on live nodes."""
    for idx in live_nodes(mgr, roots):
        if idx == 0:
            continue
        var, lo, hi = mgr._var[idx], mgr._lo[idx], mgr._hi[idx]
        assert not (hi & 1), "complemented then-edge"
        assert lo != hi, "redundant node"
        assert mgr._unique.get((var, lo, hi)) == idx, "unique table desync"
        for child in (lo >> 1, hi >> 1):
            if child:
                assert mgr.level_of_var(mgr._var[child]) > mgr.level_of_var(var)


class TestSwapAdjacent:
    def test_preserves_functions(self):
        rng = random.Random(61)
        for trial in range(15):
            mgr = BDD()
            vs = [mgr.new_var() for _ in range(5)]
            refs = _random_function(mgr, vs, rng)
            tables = [_truth_table(mgr, r, vs) for r in refs]
            for _ in range(10):
                swap_adjacent(mgr, rng.randrange(4))
                _check_canonical(mgr, refs)
            for r, table in zip(refs, tables):
                assert _truth_table(mgr, r, vs) == table

    def test_swap_is_involution(self):
        rng = random.Random(67)
        mgr = BDD()
        vs = [mgr.new_var() for _ in range(4)]
        refs = _random_function(mgr, vs, rng)
        order_before = mgr.current_order()
        size_before = len(live_nodes(mgr, refs))
        swap_adjacent(mgr, 1)
        swap_adjacent(mgr, 1)
        assert mgr.current_order() == order_before
        assert len(live_nodes(mgr, refs)) == size_before

    def test_swap_known_size_change(self):
        # f = a&b | c&d: order (a,c,b,d) is larger than (a,b,c,d).
        mgr = BDD()
        a, c, b, d = (mgr.new_var(n) for n in "acbd")
        f = mgr.or_(mgr.and_(mgr.var_ref(a), mgr.var_ref(b)),
                    mgr.and_(mgr.var_ref(c), mgr.var_ref(d)))
        bad_size = node_count(mgr, f)
        # Move b up next to a: order a,b,c,d.
        move_var_to_level(mgr, b, 1)
        good_size = node_count(mgr, f)
        assert good_size < bad_size
        assert good_size == 4


class TestSift:
    def test_sift_never_increases_size(self):
        rng = random.Random(71)
        for trial in range(8):
            mgr = BDD()
            vs = [mgr.new_var() for _ in range(7)]
            refs = _random_function(mgr, vs, rng, n_ops=40)
            roots = refs[-3:]
            before = len(live_nodes(mgr, roots)) - 1
            after = sift(mgr, roots)
            assert after <= before
            _check_canonical(mgr, roots)

    def test_sift_preserves_semantics(self):
        rng = random.Random(73)
        mgr = BDD()
        vs = [mgr.new_var() for _ in range(6)]
        refs = _random_function(mgr, vs, rng, n_ops=30)
        roots = refs[-2:]
        tables = [_truth_table(mgr, r, vs) for r in roots]
        sift(mgr, roots)
        for r, table in zip(roots, tables):
            assert _truth_table(mgr, r, vs) == table

    def test_sift_finds_good_order_for_interleaved_and(self):
        # f = a1&b1 | a2&b2 | a3&b3 with order a1,a2,a3,b1,b2,b3 is
        # exponential; sifting should recover near the linear optimum.
        mgr = BDD()
        a = [mgr.new_var("a%d" % i) for i in range(3)]
        b = [mgr.new_var("b%d" % i) for i in range(3)]
        f = ZERO
        for ai, bi in zip(a, b):
            f = mgr.or_(f, mgr.and_(mgr.var_ref(ai), mgr.var_ref(bi)))
        bad = node_count(mgr, f)
        good = sift(mgr, [f])
        assert good <= 6
        assert good < bad


class TestRandomOrder:
    def test_random_reorder_preserves_semantics(self):
        rng = random.Random(79)
        mgr = BDD()
        vs = [mgr.new_var() for _ in range(5)]
        refs = _random_function(mgr, vs, rng)
        tables = [_truth_table(mgr, r, vs) for r in refs[-4:]]
        for _ in range(5):
            random_order(mgr, rng)
            _check_canonical(mgr, refs[-4:])
        for r, table in zip(refs[-4:], tables):
            assert _truth_table(mgr, r, vs) == table


class TestTransfer:
    def test_roundtrip(self):
        rng = random.Random(83)
        src = BDD()
        vs = [src.new_var("x%d" % i) for i in range(5)]
        refs = _random_function(src, vs, rng)
        f = refs[-1]
        dst = BDD()
        g = transfer(src, dst, f)
        # Same truth table through name-matched variables (only support
        # variables exist in dst).
        for bits in itertools.product([False, True], repeat=5):
            a_src = dict(zip(vs, bits))
            a_dst = {dst.var_by_name(src.var_name(v)): bit
                     for v, bit in a_src.items() if v in support(src, f)}
            assert evaluate(src, f, a_src) == evaluate(dst, g, a_dst)

    def test_transfer_many_compacts_variables(self):
        src = BDD()
        vs = [src.new_var("x%d" % i) for i in range(10)]
        # Function uses only 3 of 10 variables.
        f = src.and_many([src.var_ref(vs[1]), src.var_ref(vs[5]), src.var_ref(vs[9])])
        result = transfer_many(src, [f])
        assert result.manager.num_vars == 3
        assert node_count(result.manager, result.refs[0]) == 3

    def test_transfer_with_different_order(self):
        src = BDD()
        a, b, c = (src.new_var(n) for n in "abc")
        f = src.or_(src.and_(src.var_ref(a), src.var_ref(b)), src.var_ref(c))
        result = transfer_many(src, [f], order=[c, b, a])
        dst = result.manager
        assert dst.current_order() == [dst.var_by_name("c"), dst.var_by_name("b"), dst.var_by_name("a")]
        for bits in itertools.product([False, True], repeat=3):
            a_src = dict(zip((a, b, c), bits))
            a_dst = {dst.var_by_name(n): v for n, v in zip("abc", bits)}
            assert evaluate(src, f, a_src) == evaluate(dst, result.refs[0], a_dst)

    def test_transfer_shares_structure(self):
        src = BDD()
        vs = [src.new_var("v%d" % i) for i in range(4)]
        f = src.xor_many([src.var_ref(v) for v in vs])
        g = src.not_(f)
        result = transfer_many(src, [f, g])
        assert result.refs[0] == result.refs[1] ^ 1


class TestForceOrder:
    def test_groups_cluster(self):
        # Two independent clusters {0,1,2} and {3,4,5} must not interleave.
        order = force_order([[0, 1, 2], [3, 4, 5], [0, 2], [3, 5]], 6)
        pos = {v: i for i, v in enumerate(order)}
        cluster1 = sorted(pos[v] for v in (0, 1, 2))
        cluster2 = sorted(pos[v] for v in (3, 4, 5))
        assert cluster1[-1] < cluster2[0] or cluster2[-1] < cluster1[0]

    def test_all_vars_present(self):
        order = force_order([[1, 3]], 5)
        assert sorted(order) == [0, 1, 2, 3, 4]
