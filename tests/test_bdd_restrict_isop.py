"""Tests for restrict/constrain don't-care minimization and ISOP extraction."""

import random

import pytest

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.isop import cover_literal_count, cover_to_bdd, isop, isop_interval
from repro.bdd.restrict import constrain, minimize_with_dc, restrict
from repro.bdd.traverse import node_count


@pytest.fixture
def mgr():
    return BDD()


def _random_function(mgr, variables, rng, n_ops=25):
    refs = [mgr.var_ref(v) for v in variables]
    for _ in range(n_ops):
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
    return refs[-1]


class TestRestrict:
    def test_care_one_is_identity(self, mgr):
        a = mgr.new_var("a")
        f = mgr.var_ref(a)
        assert restrict(mgr, f, ONE) == f

    def test_agrees_on_care_set(self, mgr):
        rng = random.Random(23)
        vs = [mgr.new_var() for _ in range(6)]
        for trial in range(20):
            f = _random_function(mgr, vs, rng)
            c = _random_function(mgr, vs, rng)
            if c == ZERO:
                continue
            r = restrict(mgr, f, c)
            assert mgr.and_(r, c) == mgr.and_(f, c), "restrict must agree on care set"

    def test_tends_to_shrink(self, mgr):
        # Classic example: f = a&b | ~a&c with care = a  ->  just b.
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.ite(mgr.var_ref(a), mgr.var_ref(b), mgr.var_ref(c))
        r = restrict(mgr, f, mgr.var_ref(a))
        assert r == mgr.var_ref(b)

    def test_never_introduces_new_support_blowup(self, mgr):
        rng = random.Random(29)
        vs = [mgr.new_var() for _ in range(6)]
        for trial in range(20):
            f = _random_function(mgr, vs, rng)
            c = _random_function(mgr, vs, rng)
            if c == ZERO:
                continue
            r = restrict(mgr, f, c)
            # restrict is a heuristic, but it should rarely grow; assert a
            # loose sanity bound rather than strict non-growth.
            assert node_count(mgr, r) <= 2 * node_count(mgr, f) + 2

    def test_care_zero(self, mgr):
        a = mgr.new_var("a")
        assert restrict(mgr, mgr.var_ref(a), ZERO) == ZERO


class TestConstrain:
    def test_agrees_on_care_set(self, mgr):
        rng = random.Random(31)
        vs = [mgr.new_var() for _ in range(5)]
        for trial in range(20):
            f = _random_function(mgr, vs, rng)
            c = _random_function(mgr, vs, rng)
            if c == ZERO:
                continue
            r = constrain(mgr, f, c)
            assert mgr.and_(r, c) == mgr.and_(f, c)

    def test_constrain_identity(self, mgr):
        # constrain(f, f) == 1 for satisfiable f.
        rng = random.Random(37)
        vs = [mgr.new_var() for _ in range(5)]
        f = _random_function(mgr, vs, rng)
        if f not in (ONE, ZERO):
            assert constrain(mgr, f, f) == ONE


class TestMinimizeWithDC:
    def test_interval_respected(self, mgr):
        rng = random.Random(41)
        vs = [mgr.new_var() for _ in range(6)]
        for trial in range(25):
            f = _random_function(mgr, vs, rng)
            dc = _random_function(mgr, vs, rng)
            onset = mgr.and_(f, dc ^ 1)
            g = minimize_with_dc(mgr, onset, dc)
            assert mgr.leq(onset, g)
            assert mgr.leq(g, mgr.or_(onset, dc))

    def test_no_dc_returns_onset(self, mgr):
        a = mgr.new_var("a")
        f = mgr.var_ref(a)
        assert minimize_with_dc(mgr, f, ZERO) == f

    def test_paper_fig3_quotient(self, mgr):
        # Fig. 3 / Example 2: F = ~e + ~b d; divisor D = ~e + d.
        # Minimizing F with offset(D) = e ~d as DC must give a quotient Q
        # with D & Q == F; the paper's minimum is Q = ~e + ~b (4 nodes).
        e, b, d = (mgr.new_var(n) for n in "ebd")
        rb, rd, re_ = (mgr.var_ref(v) for v in (b, d, e))
        f = mgr.or_(mgr.not_(re_), mgr.and_(mgr.not_(rb), rd))
        div = mgr.or_(mgr.not_(re_), rd)
        assert mgr.leq(f, div), "F must be contained in the divisor"
        q = minimize_with_dc(mgr, f, div ^ 1)
        assert mgr.and_(div, q) == f
        expected = mgr.or_(mgr.not_(re_), mgr.not_(rb))
        assert node_count(mgr, q) <= node_count(mgr, expected)


class TestIsop:
    def test_cover_equals_function(self, mgr):
        rng = random.Random(43)
        vs = [mgr.new_var() for _ in range(6)]
        for trial in range(25):
            f = _random_function(mgr, vs, rng)
            cover = isop(mgr, f)
            assert cover_to_bdd(mgr, cover) == f

    def test_constants(self, mgr):
        mgr.new_var("a")
        assert isop(mgr, ZERO) == []
        assert isop(mgr, ONE) == [{}]

    def test_irredundant(self, mgr):
        rng = random.Random(47)
        vs = [mgr.new_var() for _ in range(5)]
        for trial in range(10):
            f = _random_function(mgr, vs, rng)
            cover = isop(mgr, f)
            for i in range(len(cover)):
                reduced = cover[:i] + cover[i + 1:]
                assert cover_to_bdd(mgr, reduced) != f or f == ZERO, (
                    "cube %d is redundant" % i)

    def test_interval(self, mgr):
        rng = random.Random(53)
        vs = [mgr.new_var() for _ in range(6)]
        for trial in range(20):
            f = _random_function(mgr, vs, rng)
            g = _random_function(mgr, vs, rng)
            lower = mgr.and_(f, g)
            upper = mgr.or_(f, g)
            cover, cover_bdd = isop_interval(mgr, lower, upper)
            assert cover_to_bdd(mgr, cover) == cover_bdd
            assert mgr.leq(lower, cover_bdd)
            assert mgr.leq(cover_bdd, upper)

    def test_interval_validation(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        with pytest.raises(ValueError):
            isop_interval(mgr, mgr.or_(mgr.var_ref(a), mgr.var_ref(b)),
                          mgr.and_(mgr.var_ref(a), mgr.var_ref(b)))

    def test_literal_count(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        cover = isop(mgr, mgr.and_(mgr.var_ref(a), mgr.var_ref(b)))
        assert cover_literal_count(cover) == 2
        assert cover_literal_count([{}]) == 0

    def test_xor_cover(self, mgr):
        vs = [mgr.new_var() for _ in range(3)]
        f = mgr.xor_many([mgr.var_ref(v) for v in vs])
        cover = isop(mgr, f)
        assert len(cover) == 4  # 3-input parity needs 4 minterms
        assert cover_to_bdd(mgr, cover) == f
