"""Tests for the genlib text parser."""

import itertools

import pytest

from repro.mapping import map_network
from repro.mapping.genlib_parse import _Parser, parse_genlib
from repro.network import Network
from repro.sop.cover import cover_eval
from repro.verify import check_equivalence

SAMPLE = """
# a tiny mcnc-flavoured library
GATE inv1   1.0  O = !a;            PIN * INV 1 999 1.0 0.2 1.0 0.2
GATE nand2  2.0  O = !(a * b);      PIN * INV 1 999 1.2 0.2 1.2 0.2
GATE nor2   2.0  O = !(a + b);      PIN * INV 1 999 1.4 0.2 1.4 0.2
GATE and2   3.0  O = a * b;         PIN * NONINV 1 999 1.5 0.2 1.5 0.2
GATE or2    3.0  O = a + b;         PIN * NONINV 1 999 1.7 0.2 1.7 0.2
GATE aoi21  3.0  O = !(a * b + c);  PIN * INV 1 999 1.6 0.3 1.6 0.3
GATE xor2   5.0  O = a * !b + !a * b; PIN * UNKNOWN 2 999 2.0 0 2.0 0
"""


class TestExpressionParser:
    def _eval(self, text, env):
        from repro.mapping.genlib_parse import _expr_eval
        return _expr_eval(_Parser(text).parse(), env)

    def test_precedence(self):
        # AND binds tighter than OR.
        env = {"a": True, "b": False, "c": True}
        assert self._eval("a * b + c", env) is True
        assert self._eval("a * (b + c)", env) is True
        assert self._eval("a * b", env) is False

    def test_negation_forms(self):
        env = {"a": False}
        assert self._eval("!a", env) is True
        assert self._eval("a'", env) is True
        assert self._eval("!(a)", env) is True

    def test_juxtaposition_and(self):
        env = {"a": True, "b": True}
        assert self._eval("a b", env) is True
        env["b"] = False
        assert self._eval("a b", env) is False

    def test_trailing_garbage(self):
        with pytest.raises(ValueError):
            _Parser("a + ) b").parse()


class TestParseGenlib:
    def test_cells_present(self):
        lib = parse_genlib(SAMPLE)
        names = {c.name for c in lib}
        assert {"inv1", "nand2", "nor2", "and2", "or2", "aoi21", "xor2"} <= names
        assert lib.inverter.name == "inv1"

    def test_covers_match_expressions(self):
        lib = parse_genlib(SAMPLE)
        expected = {
            "inv1": lambda a: not a,
            "nand2": lambda a, b: not (a and b),
            "nor2": lambda a, b: not (a or b),
            "and2": lambda a, b: a and b,
            "or2": lambda a, b: a or b,
            "aoi21": lambda a, b, c: not ((a and b) or c),
            "xor2": lambda a, b: a != b,
        }
        for name, fn in expected.items():
            cell = lib.by_name(name)
            n = len(cell.inputs)
            for bits in itertools.product([False, True], repeat=n):
                got = cover_eval(cell.cover, dict(enumerate(bits)))
                assert got == fn(*bits), (name, bits)

    def test_areas_and_delays(self):
        lib = parse_genlib(SAMPLE)
        assert lib.by_name("xor2").area == 5.0
        assert lib.by_name("nand2").delay == pytest.approx(1.2)

    def test_missing_inverter_rejected(self):
        with pytest.raises(ValueError):
            parse_genlib("GATE and2 3.0 O = a * b; PIN * NONINV 1 999 1 0 1 0")

    def test_inverter_aliased(self):
        lib = parse_genlib(
            "GATE my_not 1.5 O = !a; PIN * INV 1 999 1.1 0 1.1 0")
        assert lib.inverter.name == "inv1"
        assert lib.inverter.area == 1.5

    def test_mapping_with_parsed_library(self):
        lib = parse_genlib(SAMPLE)
        net = Network("t")
        for n in "abc":
            net.add_input(n)
        net.add_output("y")
        net.add_xor("t1", ["a", "b"])
        net.add_or("y", ["t1", "c"])
        result = map_network(net, lib)
        assert check_equivalence(net, result.network).equivalent
        assert result.cell_histogram.get("xor2", 0) >= 1

    def test_comments_stripped(self):
        lib = parse_genlib("# nothing\n" + SAMPLE + "\n# trailing")
        assert lib.by_name("or2").area == 3.0
