"""Tests for the async job scheduler: ordering, per-job timeouts,
cancellation, worker-crash recovery, and leak-freedom.

The workers below are module-level so they pickle under any
multiprocessing start method; they are the fault-injection seam the
scheduler exposes (any ``payload -> dict`` callable).
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.bds.flow import BDSOptions
from repro.circuits import build_circuit
from repro.network.blif import parse_blif, write_blif
from repro.service.scheduler import (OptimizationScheduler, SchedulerFull,
                                     optimize_job_worker)
from repro.verify import verify_networks


def _quick_worker(payload):
    return {"status": "ok", "n": payload["n"]}


def _sleep_worker(payload):
    time.sleep(payload.get("sleep", 30))
    return {"status": "ok"}


def _crash_worker(payload):
    os._exit(13)  # simulates a segfaulting / OOM-killed worker


def _stubborn_worker(payload):
    # Defeats the graceful SIGALRM path: only the parent-side terminate
    # backstop can end this job.
    # repro-lint: disable=RPL006
    signal.signal(signal.SIGALRM, signal.SIG_IGN)
    time.sleep(30)
    return {"status": "ok"}


def _flaky_worker(payload):
    kind = payload["kind"]
    if kind == "crash":
        os._exit(7)
    if kind == "sleep":
        time.sleep(30)
    return {"status": "ok", "n": payload["n"]}


def _report_then_linger_worker(payload):
    # Writes its graceful result to the channel, then keeps the process
    # alive (a non-daemon thread blocks interpreter exit) -- the exact
    # window in which a parent-side terminate used to race the worker's
    # own verdict.
    import threading
    threading.Thread(target=time.sleep, args=(30,), daemon=False).start()
    return {"status": "ok", "n": payload.get("n", 0)}


def _sigterm_probe_worker(payload):
    # Reports whether the fork left SIGTERM at its default disposition.
    # repro-lint: disable=RPL006
    return {"status": "ok",
            "sigterm_default":
                signal.getsignal(signal.SIGTERM) is signal.SIG_DFL}


def _assert_no_leaked_children():
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not multiprocessing.active_children()


class TestOrdering:
    def test_results_in_submission_order(self):
        with OptimizationScheduler(max_workers=4,
                                   worker=_quick_worker) as sched:
            for i in range(10):
                sched.submit({"n": i})
            results = sched.wait(timeout=30)
        assert [r.value["n"] for r in results] == list(range(10))
        assert all(r.ok for r in results)
        _assert_no_leaked_children()

    def test_run_applies_backpressure_past_queue_cap(self):
        with OptimizationScheduler(max_workers=2, queue_cap=3,
                                   worker=_quick_worker) as sched:
            results = sched.run([{"n": i} for i in range(12)])
        assert [r.value["n"] for r in results] == list(range(12))

    def test_submit_past_cap_raises(self):
        with OptimizationScheduler(max_workers=1, queue_cap=2,
                                   worker=_sleep_worker) as sched:
            sched.submit({"sleep": 30})
            sched.submit({"sleep": 30})
            with pytest.raises(SchedulerFull):
                sched.submit({"sleep": 30})
        _assert_no_leaked_children()


class TestTimeout:
    def test_graceful_in_worker_timeout(self):
        """The SIGALRM/BddBudgetExceeded path reports within the budget."""
        with OptimizationScheduler(max_workers=1, worker=_sleep_worker,
                                   grace=5.0) as sched:
            sched.submit({"sleep": 30}, timeout=0.3)
            t0 = time.monotonic()
            results = sched.wait(timeout=30)
            took = time.monotonic() - t0
        assert results[0].status == "timeout"
        assert "budget" in (results[0].error or "")
        assert took < 4.0          # nowhere near the 30s sleep or the grace
        _assert_no_leaked_children()

    def test_backstop_terminates_uninterruptible_worker(self):
        with OptimizationScheduler(max_workers=1, worker=_stubborn_worker,
                                   grace=0.5) as sched:
            sched.submit({}, timeout=0.3)
            results = sched.wait(timeout=30)
        assert results[0].status == "timeout"
        assert "terminated" in (results[0].error or "")
        _assert_no_leaked_children()

    def test_timed_out_job_does_not_block_followers(self):
        with OptimizationScheduler(max_workers=1, worker=_sleep_worker,
                                   grace=0.5) as sched:
            sched.submit({"sleep": 30}, timeout=0.2)
            sched.submit({"sleep": 0.01})
            results = sched.wait(timeout=30)
        assert results[0].status == "timeout"
        assert results[1].status == "ok"


class TestCrashRecovery:
    def test_crash_marks_failed_and_slot_refills(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=_flaky_worker) as sched:
            sched.submit({"kind": "crash", "n": 0})
            sched.submit({"kind": "ok", "n": 1})
            results = sched.wait(timeout=30)
        assert results[0].status == "failed"
        assert "crashed" in results[0].error
        assert "13" not in results[0].error  # exit code 7 in this worker
        assert results[1].ok and results[1].value["n"] == 1
        _assert_no_leaked_children()

    def test_exit_code_is_reported(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=_crash_worker) as sched:
            sched.submit({})
            results = sched.wait(timeout=30)
        assert results[0].status == "failed"
        assert "13" in results[0].error

    def test_worker_exception_is_a_failure_not_a_crash(self):
        def boom(payload):
            raise RuntimeError("kaput")

        # Closures don't pickle under spawn, but the default Linux start
        # method forks; guard so the test degrades gracefully elsewhere.
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("needs fork start method for closure workers")
        with OptimizationScheduler(max_workers=1, worker=boom) as sched:
            sched.submit({})
            results = sched.wait(timeout=30)
        assert results[0].status == "failed"
        assert "kaput" in results[0].error


class TestCancellation:
    def test_cancel_pending_and_running(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=_sleep_worker) as sched:
            running = sched.submit({"sleep": 30})
            queued = sched.submit({"sleep": 30})
            assert sched.cancel(queued)
            assert sched.cancel(running)
            results = sched.wait(timeout=10)
        assert [r.status for r in results] == ["cancelled", "cancelled"]
        _assert_no_leaked_children()

    def test_cancel_completed_returns_false(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=_quick_worker) as sched:
            jid = sched.submit({"n": 0})
            sched.wait(timeout=30)
            assert not sched.cancel(jid)

    def test_shutdown_reaps_everything(self):
        sched = OptimizationScheduler(max_workers=2, worker=_sleep_worker)
        for _ in range(5):
            sched.submit({"sleep": 30})
        sched.shutdown()
        statuses = [r.status for r in sched.results()]
        assert len(statuses) == 5
        assert set(statuses) == {"cancelled"}
        _assert_no_leaked_children()


class TestFirstVerdictWins:
    """Satellite fix: a kill (timeout backstop / cancel) racing a worker
    that already reported must record the worker's verdict, once."""

    def _jobs_total(self):
        from repro.obs.metrics import get_registry
        reg = get_registry()
        return {s: reg.counter_value("scheduler_jobs_total", status=s)
                for s in ("ok", "failed", "timeout", "cancelled")}

    def test_cancel_after_report_keeps_worker_verdict(self):
        before = self._jobs_total()
        with OptimizationScheduler(max_workers=1,
                                   worker=_report_then_linger_worker) as sched:
            jid = sched.submit({"n": 7})
            # Wait for the worker's report to land in the pipe WITHOUT
            # letting the scheduler consume it (no poll/wait): the next
            # scheduler action is the cancel itself -- the race window,
            # made deterministic.
            deadline = time.monotonic() + 10.0
            while not sched._running[jid].conn.poll():
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert sched.cancel(jid)
            results = sched.results()
        assert [r.status for r in results] == ["ok"]
        assert results[0].value["n"] == 7
        after = self._jobs_total()
        # Single accounting: exactly one job counted, under the
        # worker's own status -- never ok *and* cancelled.
        assert after["ok"] == before["ok"] + 1
        assert after["cancelled"] == before["cancelled"]
        assert sum(after.values()) == sum(before.values()) + 1
        _assert_no_leaked_children()

    def test_shutdown_after_report_keeps_worker_verdict(self):
        before = self._jobs_total()
        sched = OptimizationScheduler(max_workers=1,
                                      worker=_report_then_linger_worker)
        jid = sched.submit({"n": 3})
        deadline = time.monotonic() + 10.0
        while not sched._running[jid].conn.poll():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        sched.shutdown()
        assert [r.status for r in sched.results()] == ["ok"]
        after = self._jobs_total()
        assert sum(after.values()) == sum(before.values()) + 1
        _assert_no_leaked_children()

    def test_double_record_is_an_assertion_error(self):
        from repro.service.scheduler import JobResult
        with OptimizationScheduler(max_workers=1,
                                   worker=_quick_worker) as sched:
            sched.submit({"n": 0})
            sched.wait(timeout=30)
            with pytest.raises(AssertionError, match="recorded twice"):
                sched._record(JobResult(0, "cancelled"), None)


class TestCompletionCallbacks:
    def test_callbacks_fire_once_per_job_with_the_result(self):
        seen = []
        with OptimizationScheduler(max_workers=4,
                                   worker=_quick_worker) as sched:
            for i in range(6):
                sched.submit({"n": i}, on_complete=seen.append)
            sched.wait(timeout=30)
        assert sorted(r.job_id for r in seen) == list(range(6))
        assert all(r.ok for r in seen)
        assert [r.value["n"] for r in sorted(seen, key=lambda r: r.job_id)] \
            == list(range(6))

    def test_callback_fires_for_cancelled_pending_job(self):
        seen = []
        with OptimizationScheduler(max_workers=1,
                                   worker=_sleep_worker) as sched:
            sched.submit({"sleep": 30}, on_complete=seen.append)
            queued = sched.submit({"sleep": 30}, on_complete=seen.append)
            sched.cancel(queued)
            assert [r.job_id for r in seen] == [queued]
            assert seen[0].status == "cancelled"
        # shutdown (via __exit__) completes the running job's callback.
        assert len(seen) == 2


class TestForkSafety:
    def test_worker_resets_inherited_sigterm_handler(self):
        # The socket server installs a SIGTERM drain handler; a forked
        # worker inheriting it would survive the scheduler's terminate().
        # repro-lint: disable=RPL006
        previous = signal.signal(signal.SIGTERM, lambda s, f: None)
        try:
            with OptimizationScheduler(
                    max_workers=1, worker=_sigterm_probe_worker) as sched:
                sched.submit({})
                results = sched.wait(timeout=30)
        finally:
            signal.signal(signal.SIGTERM, previous)  # repro-lint: disable=RPL006
        assert results[0].ok
        assert results[0].value["sigterm_default"] is True
        _assert_no_leaked_children()

    def test_terminate_still_kills_despite_parent_sigterm_handler(self):
        # repro-lint: disable=RPL006
        previous = signal.signal(signal.SIGTERM, lambda s, f: None)
        try:
            with OptimizationScheduler(max_workers=1,
                                       worker=_sleep_worker) as sched:
                jid = sched.submit({"sleep": 30})
                t0 = time.monotonic()
                sched.cancel(jid)
                results = sched.wait(timeout=10)
                took = time.monotonic() - t0
        finally:
            signal.signal(signal.SIGTERM, previous)  # repro-lint: disable=RPL006
        assert results[0].status == "cancelled"
        assert took < 5.0        # terminate worked; no 30s wait
        _assert_no_leaked_children()


class TestOptimizeWorker:
    def test_end_to_end_optimization_job(self):
        net = build_circuit("add4")
        payload = {"blif": write_blif(net),
                   "options": BDSOptions(verify="cec").to_dict()}
        with OptimizationScheduler(max_workers=1,
                                   worker=optimize_job_worker) as sched:
            sched.submit(payload)
            results = sched.wait(timeout=60)
        assert results[0].ok
        optimized = parse_blif(results[0].value["blif"])
        assert verify_networks(net, optimized, mode="cec").equivalent
        assert results[0].value["perf"]["ite_calls"] > 0

    def test_bad_blif_is_a_failure(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=optimize_job_worker) as sched:
            sched.submit({"blif": "this is not blif"})
            results = sched.wait(timeout=30)
        assert results[0].status == "failed"


@pytest.mark.perf
class TestFaultInjectionStress:
    """Nightly: a mixed wave of crashing / hanging / healthy jobs must
    drain completely with deterministic per-job verdicts and no leaks."""

    def test_mixed_fault_wave_drains(self):
        kinds = (["ok", "crash", "ok", "sleep", "ok"] * 6)[:30]
        payloads = [{"kind": k, "n": i} for i, k in enumerate(kinds)]
        with OptimizationScheduler(max_workers=4, worker=_flaky_worker,
                                   grace=0.5) as sched:
            results = sched.run(payloads, timeout=1.0)
        assert len(results) == len(payloads)
        for payload, result in zip(payloads, results):
            expected = {"ok": "ok", "crash": "failed",
                        "sleep": "timeout"}[payload["kind"]]
            assert result.status == expected, (payload, result)
        _assert_no_leaked_children()
