"""Tests for the async job scheduler: ordering, per-job timeouts,
cancellation, worker-crash recovery, and leak-freedom.

The workers below are module-level so they pickle under any
multiprocessing start method; they are the fault-injection seam the
scheduler exposes (any ``payload -> dict`` callable).
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.bds.flow import BDSOptions
from repro.circuits import build_circuit
from repro.network.blif import parse_blif, write_blif
from repro.service.scheduler import (OptimizationScheduler, SchedulerFull,
                                     optimize_job_worker)
from repro.verify import verify_networks


def _quick_worker(payload):
    return {"status": "ok", "n": payload["n"]}


def _sleep_worker(payload):
    time.sleep(payload.get("sleep", 30))
    return {"status": "ok"}


def _crash_worker(payload):
    os._exit(13)  # simulates a segfaulting / OOM-killed worker


def _stubborn_worker(payload):
    # Defeats the graceful SIGALRM path: only the parent-side terminate
    # backstop can end this job.
    # repro-lint: disable=RPL006
    signal.signal(signal.SIGALRM, signal.SIG_IGN)
    time.sleep(30)
    return {"status": "ok"}


def _flaky_worker(payload):
    kind = payload["kind"]
    if kind == "crash":
        os._exit(7)
    if kind == "sleep":
        time.sleep(30)
    return {"status": "ok", "n": payload["n"]}


def _assert_no_leaked_children():
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not multiprocessing.active_children()


class TestOrdering:
    def test_results_in_submission_order(self):
        with OptimizationScheduler(max_workers=4,
                                   worker=_quick_worker) as sched:
            for i in range(10):
                sched.submit({"n": i})
            results = sched.wait(timeout=30)
        assert [r.value["n"] for r in results] == list(range(10))
        assert all(r.ok for r in results)
        _assert_no_leaked_children()

    def test_run_applies_backpressure_past_queue_cap(self):
        with OptimizationScheduler(max_workers=2, queue_cap=3,
                                   worker=_quick_worker) as sched:
            results = sched.run([{"n": i} for i in range(12)])
        assert [r.value["n"] for r in results] == list(range(12))

    def test_submit_past_cap_raises(self):
        with OptimizationScheduler(max_workers=1, queue_cap=2,
                                   worker=_sleep_worker) as sched:
            sched.submit({"sleep": 30})
            sched.submit({"sleep": 30})
            with pytest.raises(SchedulerFull):
                sched.submit({"sleep": 30})
        _assert_no_leaked_children()


class TestTimeout:
    def test_graceful_in_worker_timeout(self):
        """The SIGALRM/BddBudgetExceeded path reports within the budget."""
        with OptimizationScheduler(max_workers=1, worker=_sleep_worker,
                                   grace=5.0) as sched:
            sched.submit({"sleep": 30}, timeout=0.3)
            t0 = time.monotonic()
            results = sched.wait(timeout=30)
            took = time.monotonic() - t0
        assert results[0].status == "timeout"
        assert "budget" in (results[0].error or "")
        assert took < 4.0          # nowhere near the 30s sleep or the grace
        _assert_no_leaked_children()

    def test_backstop_terminates_uninterruptible_worker(self):
        with OptimizationScheduler(max_workers=1, worker=_stubborn_worker,
                                   grace=0.5) as sched:
            sched.submit({}, timeout=0.3)
            results = sched.wait(timeout=30)
        assert results[0].status == "timeout"
        assert "terminated" in (results[0].error or "")
        _assert_no_leaked_children()

    def test_timed_out_job_does_not_block_followers(self):
        with OptimizationScheduler(max_workers=1, worker=_sleep_worker,
                                   grace=0.5) as sched:
            sched.submit({"sleep": 30}, timeout=0.2)
            sched.submit({"sleep": 0.01})
            results = sched.wait(timeout=30)
        assert results[0].status == "timeout"
        assert results[1].status == "ok"


class TestCrashRecovery:
    def test_crash_marks_failed_and_slot_refills(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=_flaky_worker) as sched:
            sched.submit({"kind": "crash", "n": 0})
            sched.submit({"kind": "ok", "n": 1})
            results = sched.wait(timeout=30)
        assert results[0].status == "failed"
        assert "crashed" in results[0].error
        assert "13" not in results[0].error  # exit code 7 in this worker
        assert results[1].ok and results[1].value["n"] == 1
        _assert_no_leaked_children()

    def test_exit_code_is_reported(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=_crash_worker) as sched:
            sched.submit({})
            results = sched.wait(timeout=30)
        assert results[0].status == "failed"
        assert "13" in results[0].error

    def test_worker_exception_is_a_failure_not_a_crash(self):
        def boom(payload):
            raise RuntimeError("kaput")

        # Closures don't pickle under spawn, but the default Linux start
        # method forks; guard so the test degrades gracefully elsewhere.
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("needs fork start method for closure workers")
        with OptimizationScheduler(max_workers=1, worker=boom) as sched:
            sched.submit({})
            results = sched.wait(timeout=30)
        assert results[0].status == "failed"
        assert "kaput" in results[0].error


class TestCancellation:
    def test_cancel_pending_and_running(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=_sleep_worker) as sched:
            running = sched.submit({"sleep": 30})
            queued = sched.submit({"sleep": 30})
            assert sched.cancel(queued)
            assert sched.cancel(running)
            results = sched.wait(timeout=10)
        assert [r.status for r in results] == ["cancelled", "cancelled"]
        _assert_no_leaked_children()

    def test_cancel_completed_returns_false(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=_quick_worker) as sched:
            jid = sched.submit({"n": 0})
            sched.wait(timeout=30)
            assert not sched.cancel(jid)

    def test_shutdown_reaps_everything(self):
        sched = OptimizationScheduler(max_workers=2, worker=_sleep_worker)
        for _ in range(5):
            sched.submit({"sleep": 30})
        sched.shutdown()
        statuses = [r.status for r in sched.results()]
        assert len(statuses) == 5
        assert set(statuses) == {"cancelled"}
        _assert_no_leaked_children()


class TestOptimizeWorker:
    def test_end_to_end_optimization_job(self):
        net = build_circuit("add4")
        payload = {"blif": write_blif(net),
                   "options": BDSOptions(verify="cec").to_dict()}
        with OptimizationScheduler(max_workers=1,
                                   worker=optimize_job_worker) as sched:
            sched.submit(payload)
            results = sched.wait(timeout=60)
        assert results[0].ok
        optimized = parse_blif(results[0].value["blif"])
        assert verify_networks(net, optimized, mode="cec").equivalent
        assert results[0].value["perf"]["ite_calls"] > 0

    def test_bad_blif_is_a_failure(self):
        with OptimizationScheduler(max_workers=1,
                                   worker=optimize_job_worker) as sched:
            sched.submit({"blif": "this is not blif"})
            results = sched.wait(timeout=30)
        assert results[0].status == "failed"


@pytest.mark.perf
class TestFaultInjectionStress:
    """Nightly: a mixed wave of crashing / hanging / healthy jobs must
    drain completely with deterministic per-job verdicts and no leaks."""

    def test_mixed_fault_wave_drains(self):
        kinds = (["ok", "crash", "ok", "sleep", "ok"] * 6)[:30]
        payloads = [{"kind": k, "n": i} for i, k in enumerate(kinds)]
        with OptimizationScheduler(max_workers=4, worker=_flaky_worker,
                                   grace=0.5) as sched:
            results = sched.run(payloads, timeout=1.0)
        assert len(results) == len(payloads)
        for payload, result in zip(payloads, results):
            expected = {"ok": "ok", "crash": "failed",
                        "sleep": "timeout"}[payload["kind"]]
            assert result.status == expected, (payload, result)
        _assert_no_leaked_children()
