"""Integration tests: the full BDS flow on small circuits + verification."""

import random

import pytest

from repro.bds import BDSOptions, bds_optimize
from repro.decomp.engine import DecompOptions
from repro.network import Network
from repro.verify import check_equivalence, simulate_equivalence


def _random_network(rng, n_inputs=6, n_nodes=14, n_outputs=3):
    net = Network("rand")
    signals = [net.add_input("i%d" % i) for i in range(n_inputs)]
    for j in range(n_nodes):
        k = rng.choice([2, 2, 3])
        fanins = rng.sample(signals, min(k, len(signals)))
        kind = rng.choice(["and", "or", "xor", "and", "or"])
        name = "g%d" % j
        getattr(net, "add_" + kind)(name, fanins)
        signals.append(name)
    for j in range(n_outputs):
        net.add_output("g%d" % (n_nodes - 1 - j))
    net.remove_dangling()
    return net


def parity_circuit(n=8):
    net = Network("parity")
    names = [net.add_input("x%d" % i) for i in range(n)]
    prev = names[0]
    for i in range(1, n):
        cur = "p%d" % i if i < n - 1 else "parity"
        net.add_xor(cur, [prev, names[i]])
        prev = cur
    net.add_output("parity")
    return net


def adder_circuit(bits=4):
    net = Network("adder")
    a = [net.add_input("a%d" % i) for i in range(bits)]
    b = [net.add_input("b%d" % i) for i in range(bits)]
    carry = None
    for i in range(bits):
        s = "s%d" % i
        if carry is None:
            net.add_xor(s, [a[i], b[i]])
            net.add_and("c0", [a[i], b[i]])
            carry = "c0"
        else:
            net.add_xor("t%d" % i, [a[i], b[i]])
            net.add_xor(s, ["t%d" % i, carry])
            net.add_and("u%d" % i, ["t%d" % i, carry])
            net.add_and("v%d" % i, [a[i], b[i]])
            net.add_or("c%d" % i, ["u%d" % i, "v%d" % i])
            carry = "c%d" % i
        net.add_output(s)
    net.add_output(carry)
    return net


class TestBdsFlow:
    def test_parity_preserved_and_compact(self):
        net = parity_circuit(8)
        result = bds_optimize(net)
        check = check_equivalence(net, result.network)
        assert check.equivalent, check
        # XOR structure must be recognized: a chain of 2-input XOR gates
        # (4 SOP literals each), not the exponential flat cover.
        assert result.network.node_count() <= 8
        assert result.network.literal_count() <= 4 * 8

    def test_adder_preserved(self):
        net = adder_circuit(4)
        result = bds_optimize(net)
        check = check_equivalence(net, result.network)
        assert check.equivalent, (check.failing_output, check.counterexample)

    def test_random_networks_equivalent(self):
        rng = random.Random(7)
        for trial in range(6):
            net = _random_network(rng)
            result = bds_optimize(net)
            check = check_equivalence(net, result.network)
            assert check.equivalent, (
                trial, check.failing_output, check.counterexample)

    def test_options_no_sharing_no_reorder(self):
        rng = random.Random(11)
        net = _random_network(rng)
        opts = BDSOptions(sharing=False, reorder=False)
        result = bds_optimize(net)
        result2 = bds_optimize(net, opts)
        assert check_equivalence(net, result.network).equivalent
        assert check_equivalence(net, result2.network).equivalent

    def test_decomp_disabled_fallback(self):
        rng = random.Random(13)
        net = _random_network(rng)
        opts = BDSOptions(decomp=DecompOptions(
            enable_simple=False, enable_mux=False,
            enable_generalized=False, enable_bool_xnor=False))
        result = bds_optimize(net, opts)
        assert check_equivalence(net, result.network).equivalent
        assert result.decomp_stats.total() == result.decomp_stats.shannon

    def test_timings_and_summary(self):
        net = parity_circuit(6)
        result = bds_optimize(net)
        assert set(result.timings) == {"sweep", "eliminate", "sdc",
                                       "decompose", "balance", "sharing",
                                       "lower"}
        assert "literals" in str(result.network.stats())
        assert "supernodes" in result.summary()

    def test_output_driven_by_input(self):
        net = Network("thru")
        net.add_input("a")
        net.add_input("b")
        net.add_output("a")
        net.add_output("y")
        net.add_and("y", ["a", "b"])
        result = bds_optimize(net)
        assert check_equivalence(net, result.network).equivalent

    def test_constant_output(self):
        net = Network("const")
        net.add_input("a")
        net.add_output("k")
        net.add_xor("k", ["a", "a2"])
        net.add_buf("a2", "a")  # k == a xor a == 0
        result = bds_optimize(net)
        assert result.network.eval({"a": True})["k"] is False
        assert result.network.eval({"a": False})["k"] is False


class TestVerify:
    def test_detects_inequivalence(self):
        net1 = parity_circuit(4)
        net2 = net1.copy()
        # Corrupt one gate: turn final xor into xnor.
        node = net2.nodes["parity"]
        from repro.sop.cube import lit
        node.cover = [frozenset({lit(0), lit(1)}),
                      frozenset({lit(0, False), lit(1, False)})]
        res = check_equivalence(net1, net2)
        assert not res.equivalent
        assert res.failing_output == "parity"
        # The counterexample really distinguishes them.
        assert net1.eval(res.counterexample) != net2.eval(res.counterexample)

    def test_simulation_agrees_with_cec(self):
        rng = random.Random(17)
        net = _random_network(rng)
        result = bds_optimize(net)
        ok, cex = simulate_equivalence(net, result.network)
        assert ok and cex is None

    def test_simulation_detects_difference(self):
        net1 = parity_circuit(4)
        net2 = net1.copy()
        from repro.sop.cube import lit
        net2.nodes["parity"].cover = [frozenset({lit(0), lit(1)}),
                                      frozenset({lit(0, False), lit(1, False)})]
        ok, cex = simulate_equivalence(net1, net2)
        assert not ok
        assert net1.eval(cex) != net2.eval(cex)

    def test_interface_mismatch_raises(self):
        net1 = parity_circuit(4)
        net2 = parity_circuit(5)
        with pytest.raises(ValueError):
            check_equivalence(net1, net2)
