"""Tests for repro.obs.trace: span trees, counter-delta accounting,
Chrome export, fork-safe grafting, and the flow integration contract
(per-span deltas partition BDSResult.perf)."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.bds.flow import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.network.blif import write_blif
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.perf import DERIVED_KEYS, PEAK_KEYS, counter_delta

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _count_totals(perf):
    return {k: v for k, v in perf.items()
            if k not in PEAK_KEYS and k not in DERIVED_KEYS and v}


def _sum_child_counters(spans):
    agg = {}
    for span in spans:
        for key, val in span.counters.items():
            agg[key] = agg.get(key, 0) + val
    return agg


class TestSpanTree:
    def test_nesting_reconstructs_a_valid_tree(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("a.1"):
                pass
            with tr.span("a.2", depth=2):
                with tr.span("a.2.x"):
                    pass
        with tr.span("b"):
            pass
        roots = tr.roots
        assert [r.name for r in roots] == ["a", "b"]
        a = roots[0]
        assert [c.name for c in a.children] == ["a.1", "a.2"]
        assert [c.name for c in a.children[1].children] == ["a.2.x"]
        assert a.children[1].attrs == {"depth": 2}
        # Parent windows contain their children.
        for parent in (a, a.children[1]):
            for child in parent.children:
                assert child.start >= parent.start
                assert child.start + child.duration \
                    <= parent.start + parent.duration + 1e-6
        assert len(a.walk()) == 4

    def test_exception_still_closes_the_span(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise ValueError("boom")
        assert tr.current is None
        assert [r.name for r in tr.roots] == ["outer"]
        assert [c.name for c in tr.roots[0].children] == ["inner"]

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end()

    def test_to_dict_from_dict_round_trip(self):
        tr = Tracer()
        with tr.span("root", circuit="x"):
            with tr.span("child"):
                pass
        exported = tr.export_spans()
        json.loads(json.dumps(exported))  # wire format is JSON-able
        rebuilt = Span.from_dict(exported[0], offset=1.5, tid=7)
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"circuit": "x"}
        assert rebuilt.tid == 7
        assert rebuilt.children[0].tid == 7
        orig = tr.roots[0]
        assert rebuilt.start == pytest.approx(orig.start + 1.5)
        assert rebuilt.children[0].start == pytest.approx(
            orig.children[0].start + 1.5)


class TestCounterDeltas:
    def test_span_captures_count_key_deltas_only(self):
        state = {"ite_calls": 0.0, "peak_live_nodes": 5.0,
                 "cache_hit_rate": 0.5}
        tr = Tracer(counter_source=lambda: dict(state))
        with tr.span("work"):
            state["ite_calls"] = 40.0
            state["peak_live_nodes"] = 99.0     # peak: excluded
            state["cache_hit_rate"] = 0.9       # derived: excluded
        assert tr.roots[0].counters == {"ite_calls": 40.0}

    def test_counter_delta_drops_zero_and_sorts_keys(self):
        before = {"a": 1.0, "b": 2.0}
        after = {"a": 1.0, "b": 5.0, "z": 1.0, "c": 2.0}
        delta = counter_delta(before, after)
        assert delta == {"b": 3.0, "c": 2.0, "z": 1.0}
        assert list(delta) == ["b", "c", "z"]

    def test_sequential_spans_telescope(self):
        state = {"n": 0.0}
        tr = Tracer(counter_source=lambda: dict(state))
        for bump in (3.0, 0.0, 7.0):
            with tr.span("step"):
                state["n"] += bump
        total = sum(r.counters.get("n", 0) for r in tr.roots)
        assert total == state["n"] == 10.0


class TestFlowIntegration:
    @pytest.mark.parametrize("circuit", ["rl_mux", "C880"])
    def test_phase_deltas_partition_flow_totals(self, circuit):
        tr = Tracer()
        result = bds_optimize(build_circuit(circuit),
                              BDSOptions(verify="sim"), tracer=tr)
        root = result.trace
        assert root is not None and root.name == "flow"
        agg = _sum_child_counters(root.children)
        totals = _count_totals(result.perf)
        for key, want in totals.items():
            assert agg.get(key, 0) == pytest.approx(want), \
                "phase deltas for %r do not sum to the flow total" % key
        assert set(agg) <= set(totals) | {k for k in agg if agg[k] == 0}

    def test_tracing_does_not_change_the_network(self):
        net = build_circuit("C432")
        plain = bds_optimize(net, BDSOptions())
        traced = bds_optimize(net, BDSOptions(), tracer=Tracer())
        assert write_blif(traced.network) == write_blif(plain.network)

    def test_parallel_flow_grafts_worker_spans(self):
        tr = Tracer()
        result = bds_optimize(build_circuit("add4"), BDSOptions(jobs=2),
                              tracer=tr)
        decompose = [c for c in result.trace.children
                     if c.name == "flow.decompose"]
        assert len(decompose) == 1
        workers = decompose[0].children
        assert workers and all(s.name == "decompose.supernode"
                               for s in workers)
        assert all(s.attrs.get("worker") for s in workers)
        # Fresh tid per graft; rebased into the parent span's window.
        assert len({s.tid for s in workers}) == len(workers)
        for s in workers:
            assert s.start >= decompose[0].start
        # Worker kernel counters still reach the flow totals.
        totals = _count_totals(result.perf)
        assert totals.get("ite_calls", 0) > 0

    def test_chrome_export_loads_and_covers_every_span(self):
        tr = Tracer()
        bds_optimize(build_circuit("rl_mux"), BDSOptions(), tracer=tr)
        doc = json.loads(json.dumps(tr.to_chrome()))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == sum(len(r.walk()) for r in tr.roots)
        for ev in events:
            assert set(ev) == {"name", "cat", "ph", "ts", "dur",
                               "pid", "tid", "args"}
            assert ev["ph"] == "X" and ev["cat"] == "repro"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        flow = [e for e in events if e["name"] == "flow"][0]
        assert flow["args"]["circuit"] == "rl_mux"
        assert flow["args"]["counters"]["ite_calls"] > 0


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", attr=1):
            pass
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.export_spans() == []
        assert NULL_TRACER.graft([{"name": "x"}]) == []
        assert not NULL_TRACER.enabled

    def test_null_tracer_rejects_manual_frames(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.begin("x")
        with pytest.raises(RuntimeError):
            NULL_TRACER.end()


class TestCliTrace:
    def test_optimize_trace_round_trips_under_jobs(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        gen = tmp_path / "add4.blif"
        opt = tmp_path / "add4.opt.blif"
        trace = tmp_path / "add4.trace.json"
        for args in (["generate", "add4", "-o", str(gen)],
                     ["optimize", str(gen), "-o", str(opt),
                      "--jobs", "2", "--trace", str(trace)]):
            res = subprocess.run([sys.executable, "-m", "repro.cli"] + args,
                                 env=env, capture_output=True, text=True)
            assert res.returncode == 0, res.stdout + res.stderr
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"flow", "flow.decompose", "decompose.supernode"} <= names
        tids = {e["tid"] for e in doc["traceEvents"]
                if e["name"] == "decompose.supernode"}
        assert len(tids) > 1     # workers land on their own rows


@pytest.mark.perf
class TestDisabledOverhead:
    """Acceptance: instrumentation with tracing disabled costs <2% of
    flow CPU (null-span micro-cost x the span count of a traced run)."""

    def test_null_span_cost_under_two_percent_of_flow(self):
        net = build_circuit("C499")
        t0 = time.perf_counter()
        bds_optimize(net, BDSOptions())
        flow_s = time.perf_counter() - t0

        tr = Tracer()
        bds_optimize(net, BDSOptions(), tracer=tr)
        spans = sum(len(r.walk()) for r in tr.roots)

        reps = 200_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with NULL_TRACER.span("x"):
                pass
        per_span = (time.perf_counter() - t0) / reps
        overhead = per_span * spans
        assert overhead < 0.02 * flow_s, \
            "disabled tracing costs %.3gs on a %.3gs flow (%d spans)" \
            % (overhead, flow_s, spans)
