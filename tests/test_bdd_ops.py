"""Tests for the higher-order BDD operators and the delay-mode mapper."""

import random

import pytest

from repro.bdd import BDD, ONE, ZERO, and_exists, rename_vars, swap_vars
from repro.mapping import map_network


@pytest.fixture
def mgr():
    return BDD()


def _random_function(mgr, variables, rng, n_ops=20):
    refs = [mgr.var_ref(v) for v in variables]
    for _ in range(n_ops):
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
    return refs[-1]


class TestAndExists:
    def test_matches_naive(self, mgr):
        rng = random.Random(3)
        vs = [mgr.new_var() for _ in range(6)]
        for _ in range(30):
            f = _random_function(mgr, vs, rng)
            g = _random_function(mgr, vs, rng)
            quantified = rng.sample(vs, rng.randint(0, 4))
            fused = and_exists(mgr, f, g, quantified)
            naive = mgr.exists(mgr.and_(f, g), quantified)
            assert fused == naive

    def test_terminal_cases(self, mgr):
        a = mgr.new_var("a")
        ra = mgr.var_ref(a)
        assert and_exists(mgr, ZERO, ra, [a]) == ZERO
        assert and_exists(mgr, ra, ra ^ 1, [a]) == ZERO
        assert and_exists(mgr, ra, ONE, [a]) == ONE

    def test_no_variables(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        ra, rb = mgr.var_ref(a), mgr.var_ref(b)
        assert and_exists(mgr, ra, rb, []) == mgr.and_(ra, rb)


class TestRenameSwap:
    def test_rename(self, mgr):
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        g = rename_vars(mgr, f, {a: c})
        assert g == mgr.and_(mgr.var_ref(c), mgr.var_ref(b))

    def test_swap(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b) ^ 1)
        g = swap_vars(mgr, f, [(a, b)])
        assert g == mgr.and_(mgr.var_ref(b), mgr.var_ref(a) ^ 1)
        # Swapping twice is the identity.
        assert swap_vars(mgr, g, [(a, b)]) == f


class TestDelayModeMapping:
    def _chain_network(self):
        from repro.network import Network
        net = Network("chain")
        names = [net.add_input("x%d" % i) for i in range(8)]
        prev = names[0]
        for i in range(1, 8):
            cur = "t%d" % i if i < 7 else "y"
            net.add_and(cur, [prev, names[i]])
            prev = cur
        net.add_output("y")
        return net

    def test_modes_verified_and_delay_ordering(self):
        from repro.verify import check_equivalence
        net = self._chain_network()
        area_map = map_network(net, mode="area")
        delay_map = map_network(net, mode="delay")
        assert check_equivalence(net, area_map.network).equivalent
        assert check_equivalence(net, delay_map.network).equivalent
        assert delay_map.delay <= area_map.delay
        assert area_map.area <= delay_map.area

    def test_invalid_mode(self):
        net = self._chain_network()
        with pytest.raises(ValueError):
            map_network(net, mode="power")
