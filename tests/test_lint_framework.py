"""Framework behavior of repro-lint: suppressions, baseline round-trip,
fingerprint stability, reporters, CLI exit codes, and the self-lint
gate (the linter must hold this repository to its own rules)."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.lint import (
    BaselineError,
    Finding,
    LintConfig,
    empty_baseline,
    lint_sources,
    load_baseline,
    write_baseline,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: RPL001 is scoped everywhere, so framework tests ride on it.
BAD = ("def f(run):\n"
       "    try:\n"
       "        return run()\n"
       "    except Exception:\n"
       "        return None\n")

CFG = LintConfig(select=frozenset({"RPL001"}))


def _run_cli(args, cwd):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint"] + args,
        cwd=cwd, env=env, capture_output=True, text=True)


# -- suppressions ------------------------------------------------------


def test_suppression_same_line():
    src = BAD.replace("    except Exception:",
                      "    except Exception:  # repro-lint: disable=RPL001")
    report = lint_sources({"x.py": src}, CFG)
    assert report.findings == [] and report.suppressed == 1


def test_suppression_comment_line_above():
    src = BAD.replace(
        "    except Exception:",
        "    # repro-lint: disable=RPL001\n    except Exception:")
    report = lint_sources({"x.py": src}, CFG)
    assert report.findings == [] and report.suppressed == 1


def test_suppression_disable_all():
    src = BAD.replace("    except Exception:",
                      "    except Exception:  # repro-lint: disable=all")
    report = lint_sources({"x.py": src}, CFG)
    assert report.findings == [] and report.suppressed == 1


def test_suppression_wrong_code_does_not_silence():
    src = BAD.replace("    except Exception:",
                      "    except Exception:  # repro-lint: disable=RPL005")
    report = lint_sources({"x.py": src}, CFG)
    assert [f.rule for f in report.findings] == ["RPL001"]


# -- baseline ----------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    findings = lint_sources({"x.py": BAD}, CFG).findings
    assert len(findings) == 1
    path = str(tmp_path / "baseline.json")
    write_baseline(path, findings, justification="grandfathered: see PR 8")
    baseline = load_baseline(path)
    report = lint_sources({"x.py": BAD}, CFG, baseline)
    assert report.findings == []
    assert report.baselined == 1
    assert report.stale_baseline == []
    assert report.exit_code() == 0


def test_baseline_fingerprint_survives_line_drift(tmp_path):
    findings = lint_sources({"x.py": BAD}, CFG).findings
    path = str(tmp_path / "baseline.json")
    write_baseline(path, findings, justification="grandfathered")
    drifted = "import os  # noqa: F401\n\n\n" + BAD
    report = lint_sources({"x.py": drifted}, CFG, load_baseline(path))
    assert report.findings == [] and report.baselined == 1


def test_baseline_goes_stale_when_fixed(tmp_path):
    findings = lint_sources({"x.py": BAD}, CFG).findings
    path = str(tmp_path / "baseline.json")
    write_baseline(path, findings, justification="grandfathered")
    fixed = BAD.replace("        return None\n", "        raise\n")
    report = lint_sources({"x.py": fixed}, CFG, load_baseline(path))
    assert report.findings == []
    assert [e.fingerprint for e in report.stale_baseline] \
        == [findings[0].fingerprint]


def test_baseline_rejects_empty_justification(tmp_path):
    path = str(tmp_path / "baseline.json")
    data = {"version": 1, "entries": [{
        "rule": "RPL001", "path": "x.py", "fingerprint": "0" * 16,
        "justification": "   "}]}
    with open(path, "w") as fh:
        json.dump(data, fh)
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_baseline_rejects_unknown_version(tmp_path):
    path = str(tmp_path / "baseline.json")
    with open(path, "w") as fh:
        json.dump({"version": 99, "entries": []}, fh)
    with pytest.raises(BaselineError):
        load_baseline(path)


# -- parse errors and reporters ----------------------------------------


def test_parse_error_is_inconclusive_not_clean():
    report = lint_sources({"broken.py": "def f(:\n"}, CFG)
    assert report.parse_errors == 1
    assert report.exit_code() == 2
    assert report.findings[0].rule == "RPL000"


def test_finding_str_is_path_line_col():
    f = lint_sources({"x.py": BAD}, CFG).findings[0]
    assert str(f).startswith("x.py:%d:" % f.line)
    assert "RPL001" in str(f)


# -- CLI ---------------------------------------------------------------


def test_cli_exit_codes_and_json(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def f():\n    return 1\n")
    bad = tmp_path / "bad.py"
    bad.write_text(BAD)
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")

    assert _run_cli([str(clean)], tmp_path).returncode == 0
    res = _run_cli([str(bad), "--format", "json"], tmp_path)
    assert res.returncode == 1
    obj = json.loads(res.stdout)
    assert obj["exit_code"] == 1
    assert [f["rule"] for f in obj["findings"]] == ["RPL001"]
    assert _run_cli([str(broken)], tmp_path).returncode == 2


def test_cli_write_baseline_then_clean(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD)
    res = _run_cli([str(bad), "--write-baseline"], tmp_path)
    assert res.returncode == 0, res.stderr
    assert (tmp_path / "lint-baseline.json").exists()
    # The default baseline (lint-baseline.json in the CWD) now covers it.
    assert _run_cli([str(bad)], tmp_path).returncode == 0
    # ... unless the baseline is explicitly ignored.
    assert _run_cli([str(bad), "--no-baseline"], tmp_path).returncode == 1


def test_cli_list_rules(tmp_path):
    res = _run_cli(["--list-rules"], tmp_path)
    assert res.returncode == 0
    for code in ("RPL001", "RPL008"):
        assert code in res.stdout


def test_self_lint_repo_is_clean():
    """The CI gate, as a tier-1 test: this repository passes its own
    linter (with the committed baseline)."""
    res = _run_cli(["src", "tests"], REPO_ROOT)
    assert res.returncode == 0, res.stdout + res.stderr


def test_committed_baseline_is_small_and_justified():
    baseline = load_baseline(os.path.join(REPO_ROOT, "lint-baseline.json"))
    assert 0 < len(baseline.entries) <= 5
    for entry in baseline.entries:
        assert len(entry.justification.strip()) >= 20
        assert "TODO" not in entry.justification


def test_config_select_unknown_rule_yields_nothing():
    cfg = dataclasses.replace(CFG, select=frozenset({"RPL999"}))
    assert lint_sources({"x.py": BAD}, cfg).findings == []


def test_fingerprint_ignores_whitespace():
    a = Finding(rule="RPL001", path="x.py", line=4, col=0,
                message="m", line_text="except Exception:")
    b = Finding(rule="RPL001", path="x.py", line=9, col=0,
                message="m", line_text="  except Exception:  ")
    assert a.fingerprint == b.fingerprint


def test_empty_baseline_matches_nothing():
    report = lint_sources({"x.py": BAD}, CFG, empty_baseline())
    assert len(report.findings) == 1 and report.baselined == 0
