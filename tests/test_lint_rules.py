"""Fixture-driven tests for every repro-lint rule (docs/LINTING.md).

Each rule has a minimal bad fixture it must fire on and a good fixture
it must stay silent on.  The fixture tree is excluded from directory
expansion (it holds deliberately-bad code), so the tests name the files
explicitly; scope patterns are overridden to point the path-scoped
rules at it.
"""

import dataclasses
import os

import pytest

from repro.lint import LintConfig, all_rules, lint_paths, lint_sources, rule_codes

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")

#: Every scope opened onto the fixture tree; allow-lists emptied so the
#: fixtures are "outside" the owning packages.
FIXTURE_CONFIG = LintConfig(
    determinism_modules=("*/lint_fixtures/*",),
    deterministic_modules=("*/lint_fixtures/*",),
    deterministic_exempt=(),
    kernel_private_allow=(),
    signal_handler_allow=(),
    fork_shared_modules=("*/lint_fixtures/*",),
    durable_write_modules=("*/lint_fixtures/*",),
    trace_internal_allow=(),
)

RULES = ["RPL001", "RPL002", "RPL003", "RPL004",
         "RPL005", "RPL006", "RPL007", "RPL008", "RPL009"]


def _lint_fixture(name, code):
    cfg = dataclasses.replace(FIXTURE_CONFIG, select=frozenset({code}))
    return lint_paths([os.path.join(FIXTURES, name)], cfg)


def test_all_rules_registered():
    assert rule_codes() == RULES
    for rule in all_rules():
        assert rule.name and rule.summary and rule.rationale


@pytest.mark.parametrize("code", RULES)
def test_bad_fixture_fires(code):
    report = _lint_fixture("%s_bad.py" % code.lower(), code)
    assert report.findings, "%s stayed silent on its bad fixture" % code
    assert all(f.rule == code for f in report.findings)
    assert report.exit_code() == 1


@pytest.mark.parametrize("code", RULES)
def test_good_fixture_silent(code):
    report = _lint_fixture("%s_good.py" % code.lower(), code)
    assert report.findings == [], "%s fired on its good fixture" % code
    assert report.exit_code() == 0


def test_rpl001_reference_counts_as_handling():
    # A broad handler that *reads* the contract exception name is
    # classifying it, not swallowing it.
    src = (
        "def f(run, VerifyError, CheckError, BddBudgetExceeded, log):\n"
        "    try:\n"
        "        return run()\n"
        "    except Exception as exc:\n"
        "        if isinstance(exc, (VerifyError, CheckError,\n"
        "                            BddBudgetExceeded)):\n"
        "            log(exc)\n"
        "        return None\n")
    cfg = dataclasses.replace(FIXTURE_CONFIG, select=frozenset({"RPL001"}))
    assert lint_sources({"x.py": src}, cfg).findings == []


def test_rpl002_out_of_scope_module_not_flagged():
    # The same shape outside determinism scope (and outside any sink
    # function -- `collect_names` matches no sink fragment) is not the
    # linter's business.
    src = ("def collect_names(items):\n"
           "    names = set(items)\n"
           "    out = []\n"
           "    for name in names:\n"
           "        out.append(name)\n"
           "    return out\n")
    cfg = dataclasses.replace(
        FIXTURE_CONFIG, select=frozenset({"RPL002"}),
        determinism_modules=("*/somewhere/else/*",))
    assert lint_sources({"free.py": src}, cfg).findings == []


def test_rpl002_sink_function_flagged_anywhere():
    # A function whose name marks it as a serialization sink is in
    # scope regardless of which module it lives in.
    src = ("def cache_key(parts):\n"
           "    tags = set(parts)\n"
           "    return ','.join(tags)\n")
    cfg = dataclasses.replace(
        FIXTURE_CONFIG, select=frozenset({"RPL002"}),
        determinism_modules=("*/somewhere/else/*",))
    report = lint_sources({"free.py": src}, cfg)
    assert [f.rule for f in report.findings] == ["RPL002"]


def test_rpl004_terminal_collect_not_a_safe_point_for_later_code():
    # A collect immediately followed by `continue` abandons the path;
    # uses on later lines never execute after it.
    src = ("def loop(mgr, items, a, b):\n"
           "    for it in items:\n"
           "        f = mgr.ite(a, b, b)\n"
           "        if it:\n"
           "            mgr.maybe_collect()\n"
           "            continue\n"
           "        mgr.use(f)\n")
    cfg = dataclasses.replace(FIXTURE_CONFIG, select=frozenset({"RPL004"}))
    assert lint_sources({"x.py": src}, cfg).findings == []


def test_rpl007_silent_without_schema():
    # Bumps alone prove nothing: the project may not define a snapshot.
    src = "def work(perf):\n    perf.misses += 1\n"
    cfg = dataclasses.replace(FIXTURE_CONFIG, select=frozenset({"RPL007"}))
    assert lint_sources({"x.py": src}, cfg).findings == []
