"""Kernel tests: mark-and-sweep GC, bounded computed table, variadic ops.

Covers the invariants the performance kernel must preserve:

* GC never changes the function of any registered root, keeps canonicity
  (hash-consing still returns identical refs after a sweep), and leaves
  no stale indices in the per-variable buckets.
* The bounded computed table may evict at will without ever changing a
  result -- only recomputation cost.
* ``maybe_collect`` honours its trigger and dead-ratio backoff.
* Balanced-tree ``and_many``/``or_many``/``xor_many`` match the
  pairwise-fold semantics.
"""

import itertools
import random

import pytest

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.manager import DEAD
from repro.bdd.traverse import evaluate


@pytest.fixture
def mgr():
    return BDD()


def _build_parity_and_majority(mgr, n=6):
    """A few non-trivial functions over n variables, plus lots of garbage."""
    vs = [mgr.new_var("x%d" % i) for i in range(n)]
    lits = [mgr.var_ref(v) for v in vs]
    parity = mgr.xor_many(lits)
    majority = mgr.or_many([
        mgr.and_many(c) for c in itertools.combinations(lits, (n // 2) + 1)
    ])
    # Dead intermediates: pairwise products never referenced again.
    for a, b in itertools.combinations(lits, 2):
        mgr.and_(a, mgr.not_(b))
    return vs, lits, parity, majority


def _truth_table(mgr, ref, vs):
    return [
        evaluate(mgr, ref, dict(zip(vs, bits)))
        for bits in itertools.product([False, True], repeat=len(vs))
    ]


class TestGarbageCollection:
    def test_registered_roots_survive_sweep(self, mgr):
        vs, lits, parity, majority = _build_parity_and_majority(mgr)
        mgr.register_root(parity)
        mgr.register_root(majority)
        before_parity = _truth_table(mgr, parity, vs)
        before_majority = _truth_table(mgr, majority, vs)
        live_before = mgr.num_nodes_live
        purged = mgr.collect_garbage()
        assert purged > 0, "garbage construction produced no dead nodes"
        assert mgr.num_nodes_live < live_before
        assert _truth_table(mgr, parity, vs) == before_parity
        assert _truth_table(mgr, majority, vs) == before_majority

    def test_canonicity_preserved_across_sweep(self, mgr):
        vs, lits, parity, majority = _build_parity_and_majority(mgr)
        mgr.register_root(parity)
        mgr.register_root(majority)
        f_before = mgr.ite(lits[0], parity, majority)
        mgr.register_root(f_before)
        mgr.collect_garbage()
        # Unregistered refs (the stored literals) are invalidated by the
        # sweep; re-fetch them.  Hash-consing must then find the same
        # surviving nodes: recomputing yields the identical refs.
        lits = [mgr.var_ref(v) for v in vs]
        assert mgr.ite(lits[0], parity, majority) == f_before
        assert mgr.xor_many(lits) == parity

    def test_extra_roots_protect_unregistered_refs(self, mgr):
        vs, lits, parity, majority = _build_parity_and_majority(mgr)
        tt = _truth_table(mgr, parity, vs)
        mgr.collect_garbage(extra_roots=[parity])
        assert _truth_table(mgr, parity, vs) == tt

    def test_no_stale_var_bucket_entries(self, mgr):
        vs, lits, parity, majority = _build_parity_and_majority(mgr)
        mgr.register_root(parity)
        mgr.collect_garbage()
        n = len(mgr._var)
        for var, bucket in mgr._nodes_by_var.items():
            for idx in bucket:
                assert idx < n, "bucket index past trimmed arrays"
                assert mgr._var[idx] == var, "bucket holds dead/foreign node"
                assert mgr._var[idx] != DEAD

    def test_free_slots_are_reused(self, mgr):
        vs, lits, parity, majority = _build_parity_and_majority(mgr)
        mgr.register_root(parity)
        mgr.register_root(majority)
        mgr.collect_garbage()
        allocated = mgr.num_nodes_allocated
        lits = [mgr.var_ref(v) for v in vs]  # old literal refs are swept
        # Rebuild work of comparable size; free-list reuse should keep the
        # arrays from growing much past their post-GC length.
        for a, b in itertools.combinations(lits, 2):
            mgr.and_(a, mgr.not_(b))
        assert mgr.perf.nodes_reused > 0
        assert mgr.num_nodes_allocated <= allocated + len(mgr._free) + 40

    def test_deregistered_root_is_collectable(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        mgr.register_root(f)
        mgr.deregister_root(f)
        assert f not in mgr.registered_roots()
        mgr.collect_garbage()
        # The AND node is gone; only the two variable nodes may remain at
        # most (they too are unreferenced, so everything can go).
        assert mgr.num_nodes_live == 0

    def test_refcounted_registration(self, mgr):
        a = mgr.new_var("a")
        f = mgr.var_ref(a)
        mgr.register_root(f)
        mgr.register_root(f)
        mgr.deregister_root(f)
        assert f in mgr.registered_roots()
        mgr.collect_garbage()
        assert mgr.num_nodes_live == 1


class TestMaybeCollect:
    def test_below_trigger_is_noop(self, mgr):
        a, b = mgr.new_var("a"), mgr.new_var("b")
        mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        assert mgr.maybe_collect() == 0
        assert mgr.perf.gc_sweeps == 0

    def test_fires_past_trigger_and_reclaims(self, mgr):
        mgr._gc_trigger = 16  # shrink the threshold for the test
        vs = [mgr.new_var("x%d" % i) for i in range(5)]
        lits = [mgr.var_ref(v) for v in vs]
        keep = mgr.xor_many(lits)
        for a, b in itertools.combinations(lits, 2):
            mgr.and_(a, mgr.not_(b))  # garbage
        reclaimed = mgr.maybe_collect(extra_roots=[keep])
        assert reclaimed > 0
        assert mgr.perf.gc_sweeps == 1
        lits = [mgr.var_ref(v) for v in vs]  # old literal refs are swept
        tt = _truth_table(mgr, keep, vs)
        assert tt == _truth_table(mgr, mgr.xor_many(lits), vs)


class TestBoundedComputedTable:
    def test_eviction_never_changes_results(self):
        """A tiny table thrashes constantly; functions must not change."""
        random.seed(42)
        big = BDD()
        small = BDD(cache_slots=16, cache_max_slots=16)
        refs = {}
        for m in (big, small):
            vs = [m.new_var("x%d" % i) for i in range(6)]
            lits = [m.var_ref(v) for v in vs]
            acc = [ONE, ZERO]
            ops = []
            rnd = random.Random(7)
            for _ in range(300):
                op = rnd.choice(["and", "or", "xor", "ite"])
                i, j, k = (rnd.randrange(len(lits) + len(acc))
                           for _ in range(3))
                pool = lits + acc
                if op == "and":
                    r = m.and_(pool[i], pool[j])
                elif op == "or":
                    r = m.or_(pool[i], pool[j])
                elif op == "xor":
                    r = m.xor_(pool[i], pool[j])
                else:
                    r = m.ite(pool[i], pool[j], pool[k])
                acc.append(r)
                if len(acc) > 12:
                    acc.pop(0)
                ops.append(r)
            refs[id(m)] = (vs, ops)
        vs_b, ops_b = refs[id(big)]
        vs_s, ops_s = refs[id(small)]
        assert small.perf_snapshot()["cache_evictions"] > 0, (
            "16-slot table never evicted; test is vacuous")
        for rb, rs in zip(ops_b, ops_s):
            assert _truth_table(big, rb, vs_b) == _truth_table(small, rs, vs_s)

    def test_same_manager_recomputation_is_identical(self):
        m = BDD(cache_slots=16, cache_max_slots=16)
        vs = [m.new_var("x%d" % i) for i in range(5)]
        lits = [m.var_ref(v) for v in vs]
        first = [m.ite(lits[i], lits[(i + 1) % 5], lits[(i + 2) % 5] ^ 1)
                 for i in range(5)]
        # Flood the cache so the originals are evicted, then recompute.
        for a, b in itertools.combinations(lits, 2):
            m.xor_(a, b)
        again = [m.ite(lits[i], lits[(i + 1) % 5], lits[(i + 2) % 5] ^ 1)
                 for i in range(5)]
        assert first == again

    def test_generation_clear(self):
        m = BDD()
        a, b = m.new_var("a"), m.new_var("b")
        m.and_(m.var_ref(a), m.var_ref(b))
        assert m._cache.valid_entries() > 0
        m.clear_cache()
        assert m._cache.valid_entries() == 0
        # And results stay correct after the O(1) generation clear.
        assert m.and_(m.var_ref(a), m.var_ref(b)) == m.and_(
            m.var_ref(b), m.var_ref(a))

    def test_table_growth_is_bounded(self):
        m = BDD(cache_slots=8, cache_max_slots=32)
        vs = [m.new_var("x%d" % i) for i in range(8)]
        lits = [m.var_ref(v) for v in vs]
        m.xor_many(lits)
        m.or_many([m.and_(a, b) for a, b in itertools.combinations(lits, 2)])
        assert len(m._cache.slots) <= 32


class TestVariadicOps:
    def test_matches_pairwise_fold(self, mgr):
        vs = [mgr.new_var("x%d" % i) for i in range(7)]
        lits = [mgr.var_ref(v) for v in vs]
        mixed = [l ^ (i & 1) for i, l in enumerate(lits)]
        for many, two in ((mgr.and_many, mgr.and_),
                          (mgr.or_many, mgr.or_),
                          (mgr.xor_many, mgr.xor_)):
            folded = mixed[0]
            for l in mixed[1:]:
                folded = two(folded, l)
            assert many(mixed) == folded

    def test_empty_and_singleton(self, mgr):
        a = mgr.new_var("a")
        l = mgr.var_ref(a)
        assert mgr.and_many([]) == ONE
        assert mgr.or_many([]) == ZERO
        assert mgr.xor_many([]) == ZERO
        assert mgr.and_many([l]) == l
        assert mgr.or_many([l ^ 1]) == l ^ 1
        assert mgr.xor_many([l]) == l

    def test_short_circuit_constants(self, mgr):
        vs = [mgr.new_var("x%d" % i) for i in range(4)]
        lits = [mgr.var_ref(v) for v in vs]
        assert mgr.and_many(lits + [ZERO]) == ZERO
        assert mgr.or_many(lits + [ONE]) == ONE

    def test_wide_inputs_no_recursion_issue(self, mgr):
        # 200-ary ops exercise the balanced tree depth (~8 levels).
        vs = [mgr.new_var("x%d" % i) for i in range(200)]
        lits = [mgr.var_ref(v) for v in vs]
        conj = mgr.and_many(lits)
        assert evaluate(mgr, conj, {v: True for v in vs})
        assert not evaluate(mgr, conj,
                            {v: (v != vs[137]) for v in vs})
        par = mgr.xor_many(lits)
        assert not evaluate(mgr, par, {v: True for v in vs})  # 200 even
