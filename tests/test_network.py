"""Tests for the Boolean network core and BLIF I/O."""

import itertools

import pytest

from repro.network import Network, parse_blif, write_blif
from repro.sop.cube import lit


def full_adder() -> Network:
    net = Network("fa")
    for n in ("a", "b", "cin"):
        net.add_input(n)
    net.add_output("sum")
    net.add_output("cout")
    net.add_xor("t", ["a", "b"])
    net.add_xor("sum", ["t", "cin"])
    net.add_and("ab", ["a", "b"])
    net.add_and("tc", ["t", "cin"])
    net.add_or("cout", ["ab", "tc"])
    return net


class TestConstruction:
    def test_gate_helpers(self):
        net = full_adder()
        net.check()
        assert net.node_count() == 5
        assert set(net.inputs) == {"a", "b", "cin"}

    def test_duplicate_rejected(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(ValueError):
            net.add_input("a")
        with pytest.raises(ValueError):
            net.add_node("a", [], [])

    def test_fresh_name(self):
        net = Network()
        net.add_input("n0")
        name = net.fresh_name()
        assert name not in net.nodes and name != "n0"

    def test_undriven_fanin_detected(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_and("y", ["a", "ghost"])
        with pytest.raises(ValueError):
            net.check()

    def test_cycle_detected(self):
        net = Network()
        net.add_input("a")
        net.add_output("x")
        net.add_and("x", ["a", "y"])
        net.add_and("y", ["a", "x"])
        with pytest.raises(ValueError):
            net.topological()


class TestEvaluation:
    def test_full_adder_truth(self):
        net = full_adder()
        for a, b, c in itertools.product([False, True], repeat=3):
            out = net.eval({"a": a, "b": b, "cin": c})
            total = int(a) + int(b) + int(c)
            assert out["sum"] == bool(total & 1)
            assert out["cout"] == bool(total >> 1)

    def test_word_simulation_matches_scalar(self):
        net = full_adder()
        # All 8 input combinations packed in one 8-bit word each.
        words = {"a": 0, "b": 0, "cin": 0}
        for i, (a, b, c) in enumerate(itertools.product([0, 1], repeat=3)):
            words["a"] |= a << i
            words["b"] |= b << i
            words["cin"] |= c << i
        result = net.eval_words(words, width=8)
        for i, (a, b, c) in enumerate(itertools.product([0, 1], repeat=3)):
            out = net.eval({"a": bool(a), "b": bool(b), "cin": bool(c)})
            assert bool((result["sum"] >> i) & 1) == out["sum"]
            assert bool((result["cout"] >> i) & 1) == out["cout"]

    def test_mux_helper(self):
        net = Network()
        for n in ("s", "a", "b"):
            net.add_input(n)
        net.add_output("y")
        net.add_mux("y", "s", "a", "b")
        assert net.eval({"s": True, "a": True, "b": False})["y"]
        assert not net.eval({"s": False, "a": True, "b": False})["y"]

    def test_output_can_be_input(self):
        net = Network()
        net.add_input("a")
        net.add_output("a")
        assert net.eval({"a": True})["a"] is True


class TestStructure:
    def test_depth(self):
        net = full_adder()
        # sum is 2 levels deep; cout = or(ab, and(t, cin)) is 3.
        assert net.depth() == 3

    def test_fanouts(self):
        net = full_adder()
        f = net.fanouts()
        assert sorted(f["t"]) == ["sum", "tc"]
        assert sorted(f["a"]) == ["ab", "t"]

    def test_remove_dangling(self):
        net = full_adder()
        net.add_and("orphan", ["a", "b"])
        assert net.remove_dangling() == 1
        assert "orphan" not in net.nodes

    def test_copy_independent(self):
        net = full_adder()
        cp = net.copy()
        cp.nodes["t"].fanins[0] = "cin"
        assert net.nodes["t"].fanins[0] == "a"

    def test_normalize_drops_unused_fanin(self):
        net = Network()
        for n in ("a", "b"):
            net.add_input(n)
        net.add_output("y")
        node = net.add_node("y", ["a", "b"], [frozenset({lit(0)})])
        node.normalize()
        assert node.fanins == ["a"]


class TestBlif:
    def test_roundtrip(self):
        net = full_adder()
        text = write_blif(net)
        back = parse_blif(text)
        assert back.inputs == net.inputs
        assert back.outputs == net.outputs
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip(["a", "b", "cin"], bits))
            assert back.eval(assignment) == net.eval(assignment)

    def test_parse_basic(self):
        text = """
# a comment
.model test
.inputs a b
.outputs y
.names a b y
11 1
0- 1
.end
"""
        net = parse_blif(text)
        assert net.name == "test"
        assert net.eval({"a": True, "b": True})["y"]
        assert net.eval({"a": False, "b": False})["y"]
        assert not net.eval({"a": True, "b": False})["y"]

    def test_parse_constants(self):
        text = """
.model c
.inputs a
.outputs k1 k0
.names k1
1
.names k0
.end
"""
        net = parse_blif(text)
        out = net.eval({"a": False})
        assert out["k1"] is True
        assert out["k0"] is False

    def test_continuation_lines(self):
        text = ".model t\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
        net = parse_blif(text)
        assert net.inputs == ["a", "b"]

    def test_unsupported_construct(self):
        with pytest.raises(ValueError):
            parse_blif(".model t\n.latch a b\n.end\n")

    def test_write_constant_zero(self):
        net = Network()
        net.add_input("a")
        net.add_output("z")
        net.add_const("z", False)
        text = write_blif(net)
        back = parse_blif(text)
        assert back.eval({"a": True})["z"] is False
