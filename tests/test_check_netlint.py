"""Network/partition lint tests plus the ``repro check`` CLI subcommand."""

import pytest

from repro.check import CheckError
from repro.check.net_lint import (
    INV_COVER_RANGE,
    INV_CYCLE,
    INV_DANGLING_FANIN,
    INV_DUPLICATE_FANIN,
    INV_DUPLICATE_OUTPUT,
    INV_FOREIGN_REF,
    INV_ORPHAN_NODE,
    INV_UNDRIVEN_OUTPUT,
    lint_network,
    lint_partition,
)
from repro.cli import main
from repro.network import parse_blif
from repro.network.eliminate import PartitionedNetwork

GOOD = """\
.model good
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
"""

CYCLIC = """\
.model cyc
.inputs a
.outputs y
.names a z y
11 1
.names w z
1 1
.names y w
1 1
.end
"""

BROKEN = """\
.model bad
.inputs a b
.outputs y y q
.names a b ghost t
111 1
.names t y
1 1
.names a a u
11 1
.names b orphaned
1 1
.end
"""


def lint_text(text, **kw):
    net = parse_blif(text, validate=False)
    return lint_network(net, raise_on_violation=False, **kw)


def test_clean_network_passes():
    report = lint_text(GOOD)
    assert report.ok
    assert report.stats["nodes"] == 2
    assert report.stats["outputs"] == 1


def test_cycle_detected_with_path():
    report = lint_text(CYCLIC)
    assert INV_CYCLE in report.invariants()
    [violation] = [v for v in report.violations if v.invariant == INV_CYCLE]
    assert set(violation.signals) == {"y", "z", "w"}


def test_cycle_raises_check_error():
    net = parse_blif(CYCLIC, validate=False)
    with pytest.raises(CheckError) as excinfo:
        lint_network(net)
    assert INV_CYCLE in excinfo.value.invariants


def test_broken_network_violations():
    report = lint_text(BROKEN)
    found = report.invariants()
    assert INV_DANGLING_FANIN in found      # ghost
    assert INV_DUPLICATE_OUTPUT in found    # y declared twice
    assert INV_DUPLICATE_FANIN in found     # node u lists a twice
    assert INV_UNDRIVEN_OUTPUT in found     # q driven by nothing
    assert INV_ORPHAN_NODE in found         # orphaned feeds no output


def test_orphan_check_is_full_level_only():
    report = lint_text(BROKEN, level="cheap")
    assert INV_ORPHAN_NODE not in report.invariants()


def test_cover_fanin_range():
    net = parse_blif(GOOD, validate=False)
    node = net.nodes["t"]
    node.cover.append(frozenset({2 << 1}))  # position 2, only 2 fanins
    report = lint_network(net, raise_on_violation=False)
    assert INV_COVER_RANGE in report.invariants()


def test_partition_lint_clean_and_foreign_ref():
    net = parse_blif(GOOD)
    part = PartitionedNetwork.from_network(net)
    assert lint_partition(part).ok
    name = sorted(part.refs)[0]
    part.refs[name] = (1 << 20)  # ref into storage the manager never had
    report = lint_partition(part, raise_on_violation=False)
    assert INV_FOREIGN_REF in report.invariants()
    assert name in {s for v in report.violations for s in v.signals}


# ----------------------------------------------------------------------
# CLI: repro check
# ----------------------------------------------------------------------


def test_cli_check_clean(tmp_path, capsys):
    p = tmp_path / "good.blif"
    p.write_text(GOOD)
    assert main(["check", str(p)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_check_violations_exit_1(tmp_path, capsys):
    p = tmp_path / "cyc.blif"
    p.write_text(CYCLIC)
    assert main(["check", str(p)]) == 1
    err = capsys.readouterr().err
    assert INV_CYCLE in err
    assert "FAILED" in err


def test_cli_check_parse_error_exit_2(tmp_path, capsys):
    p = tmp_path / "nonsense.blif"
    p.write_text(".model x\n.latch a b\n.end\n")
    assert main(["check", str(p)]) == 2
    assert "PARSE ERROR" in capsys.readouterr().err


def test_cli_check_cheap_level(tmp_path, capsys):
    p = tmp_path / "good.blif"
    p.write_text(GOOD)
    assert main(["check", str(p), "--level", "cheap"]) == 0
    assert "cheap lint" in capsys.readouterr().out
