"""Property-based tests at the network level: random networks through
BLIF roundtrips, sweep, eliminate, both synthesis flows and both mappers,
checked for functional equivalence throughout."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bds import bds_optimize
from repro.mapping import map_network
from repro.mapping.lut import map_luts
from repro.network import (
    Network,
    eliminate_literal,
    parse_blif,
    sweep,
    write_blif,
)
from repro.network.eliminate import eliminate_bdd
from repro.sis import script_rugged
from repro.sop.cube import lit

N_INPUTS = 4


@st.composite
def networks(draw, max_nodes=8):
    """A random acyclic single/multi-output network over 4 inputs."""
    net = Network("prop")
    signals = [net.add_input("i%d" % i) for i in range(N_INPUTS)]
    n_nodes = draw(st.integers(1, max_nodes))
    for j in range(n_nodes):
        arity = draw(st.integers(1, min(3, len(signals))))
        fanins = draw(st.permutations(signals)).copy()[:arity]
        kind = draw(st.sampled_from(["and", "or", "xor", "sop", "not"]))
        name = "g%d" % j
        if kind == "not":
            net.add_not(name, fanins[0])
        elif kind == "sop":
            n_cubes = draw(st.integers(0, 3))
            cubes = set()
            for _ in range(n_cubes):
                cube = []
                for pos in range(arity):
                    pol = draw(st.sampled_from(["pos", "neg", "skip"]))
                    if pol != "skip":
                        cube.append(lit(pos, pol == "pos"))
                cubes.add(frozenset(cube))
            net.add_node(name, fanins, list(cubes))
            net.nodes[name].normalize()
        elif kind == "xor" and arity > 2:
            net.add_xor(name, fanins[:2])
        else:
            getattr(net, "add_" + kind)(name, fanins)
        signals.append(name)
    n_outputs = draw(st.integers(1, min(3, n_nodes)))
    for j in range(n_outputs):
        net.add_output("g%d" % (n_nodes - 1 - j))
    net.remove_dangling()
    net.check()
    return net


def _truth(net):
    out = []
    for bits in itertools.product([False, True], repeat=N_INPUTS):
        assignment = dict(zip(net.inputs, bits))
        result = net.eval(assignment)
        out.append(tuple(result[o] for o in net.outputs))
    return tuple(out)


@settings(max_examples=40, deadline=None)
@given(networks())
def test_blif_roundtrip(net):
    back = parse_blif(write_blif(net))
    assert back.inputs == net.inputs
    assert back.outputs == net.outputs
    assert _truth(back) == _truth(net)


@settings(max_examples=30, deadline=None)
@given(networks())
def test_sweep_preserves_function(net):
    before = _truth(net)
    sweep(net)
    assert _truth(net) == before
    net.check()


@settings(max_examples=25, deadline=None)
@given(networks(), st.integers(-1, 6))
def test_eliminate_literal_preserves_function(net, threshold):
    before = _truth(net)
    eliminate_literal(net, threshold=threshold)
    assert _truth(net) == before


@settings(max_examples=20, deadline=None)
@given(networks(), st.integers(2, 40))
def test_eliminate_bdd_preserves_function(net, size_cap):
    before = _truth(net)
    part = eliminate_bdd(net, threshold=0, size_cap=size_cap)
    back = part.to_network()
    # Outputs may now be driven through different node sets; compare by
    # name on the original interface.
    assert back.outputs == net.outputs
    assert _truth(back) == before


@settings(max_examples=15, deadline=None)
@given(networks())
def test_bds_flow_preserves_function(net):
    result = bds_optimize(net)
    assert _truth(result.network) == _truth(net)


@settings(max_examples=10, deadline=None)
@given(networks())
def test_sis_flow_preserves_function(net):
    result = script_rugged(net)
    assert _truth(result.network) == _truth(net)


@settings(max_examples=10, deadline=None)
@given(networks())
def test_cell_mapping_preserves_function(net):
    mapped = map_network(net)
    assert _truth(mapped.network) == _truth(net)


@settings(max_examples=10, deadline=None)
@given(networks(), st.integers(2, 6))
def test_lut_mapping_preserves_function(net, k):
    mapped = map_luts(net, k=k)
    assert _truth(mapped.network) == _truth(net)
    for node in mapped.network.nodes.values():
        assert len(node.fanins) <= k
