"""Tests for satisfiability don't-care minimization (Section VI item 1)."""

import random


from repro.bdd.traverse import node_count, support
from repro.bds import BDSOptions, bds_optimize
from repro.bds.dontcare import minimize_with_sdc
from repro.network import Network
from repro.network.eliminate import PartitionedNetwork
from repro.sop.cube import lit
from repro.verify import check_equivalence


def _unreachable_pattern_network():
    """y1 = a&b and y2 = a|b feed z; the pattern (y1=1, y2=0) never occurs.

    z is chosen so that it simplifies dramatically once that pattern is
    declared don't-care: z = y1 | (~y1 & y2 & c) -- on the reachable space
    y1 implies y2, so z == y2 & (y1 | c).
    """
    net = Network("sdc")
    for n in "abc":
        net.add_input(n)
    net.add_output("z")
    net.add_and("y1", ["a", "b"])
    net.add_or("y2", ["a", "b"])
    net.add_node("z", ["y1", "y2", "c"],
                 [frozenset({lit(0)}),
                  frozenset({lit(0, False), lit(1), lit(2)})])
    return net


class TestMinimizeWithSdc:
    def test_shrinks_node_with_unreachable_input_pattern(self):
        net = _unreachable_pattern_network()
        part = PartitionedNetwork.from_network(net)
        before = node_count(part.mgr, part.refs["z"])
        changed = minimize_with_sdc(part)
        after = node_count(part.mgr, part.refs["z"])
        assert changed >= 1
        assert after <= before
        back = part.to_network()
        assert check_equivalence(net, back).equivalent

    def test_preserves_function_random(self):
        rng = random.Random(55)
        for trial in range(5):
            net = _random_network(rng)
            ref = net.copy()
            part = PartitionedNetwork.from_network(net)
            minimize_with_sdc(part)
            back = part.to_network()
            chk = check_equivalence(ref, back)
            assert chk.equivalent, (trial, chk.failing_output)

    def test_pi_only_nodes_untouched(self):
        net = Network("plain")
        for n in "ab":
            net.add_input(n)
        net.add_output("y")
        net.add_and("y", ["a", "b"])
        part = PartitionedNetwork.from_network(net)
        ref_before = part.refs["y"]
        assert minimize_with_sdc(part) == 0
        assert part.refs["y"] == ref_before

    def test_direct_pi_correlation_used(self):
        # z reads PI a directly AND s = a&b: pattern (a=0, s=1) never
        # occurs, so z = s | (~a & s & c) collapses to s.
        net = Network("corr")
        for n in "abc":
            net.add_input(n)
        net.add_output("z")
        net.add_and("s", ["a", "b"])
        net.add_node("z", ["s", "a", "c"],
                     [frozenset({lit(0), lit(1)}),
                      frozenset({lit(0), lit(1, False), lit(2)})])
        ref = net.copy()
        part = PartitionedNetwork.from_network(net)
        minimize_with_sdc(part)
        back = part.to_network()
        assert check_equivalence(ref, back).equivalent
        # z should have been reduced to just s (support of one signal).
        assert len(support(part.mgr, part.refs["z"])) == 1

    def test_flow_option(self):
        net = _unreachable_pattern_network()
        plain = bds_optimize(net, BDSOptions(use_sdc=False))
        sdc = bds_optimize(net, BDSOptions(use_sdc=True))
        assert check_equivalence(net, plain.network).equivalent
        assert check_equivalence(net, sdc.network).equivalent
        assert sdc.network.literal_count() <= plain.network.literal_count()


def _random_network(rng, n_inputs=5, n_nodes=10):
    net = Network("rand")
    signals = [net.add_input("i%d" % i) for i in range(n_inputs)]
    for j in range(n_nodes):
        fanins = rng.sample(signals, min(rng.choice([2, 2, 3]), len(signals)))
        getattr(net, "add_" + rng.choice(["and", "or", "xor"]))("g%d" % j, fanins)
        signals.append("g%d" % j)
    net.add_output("g%d" % (n_nodes - 1))
    net.add_output("g%d" % (n_nodes - 2))
    net.remove_dangling()
    return net
