"""Tests for the command-line interface."""


import pytest

from repro.cli import main
from repro.network import parse_blif


@pytest.fixture
def blif_file(tmp_path):
    path = tmp_path / "in.blif"
    path.write_text("""
.model t
.inputs a b c
.outputs y z
.names a b t1
11 1
.names t1 c y
10 1
01 1
.names a c z
11 1
.end
""")
    return str(path)


class TestOptimize:
    def test_bds_roundtrip(self, blif_file, tmp_path, capsys):
        out = str(tmp_path / "out.blif")
        rc = main(["optimize", blif_file, "-o", out, "--flow", "bds",
                   "--verify"])
        assert rc == 0
        net = parse_blif(open(out).read())
        assert set(net.outputs) == {"y", "z"}

    def test_sis_flow(self, blif_file, tmp_path):
        out = str(tmp_path / "out.blif")
        assert main(["optimize", blif_file, "-o", out, "--flow", "sis"]) == 0
        parse_blif(open(out).read())

    def test_stdout_output(self, blif_file, capsys):
        assert main(["optimize", blif_file]) == 0
        captured = capsys.readouterr()
        assert ".model" in captured.out

    def test_map_option(self, blif_file, tmp_path, capsys):
        out = str(tmp_path / "mapped.blif")
        assert main(["optimize", blif_file, "-o", out, "--map",
                     "--stats"]) == 0
        parse_blif(open(out).read())

    def test_lut_option(self, blif_file, tmp_path):
        out = str(tmp_path / "luts.blif")
        assert main(["optimize", blif_file, "-o", out, "--lut", "4"]) == 0
        net = parse_blif(open(out).read())
        for node in net.nodes.values():
            assert len(node.fanins) <= 4

    def test_balance_option(self, blif_file, tmp_path):
        out = str(tmp_path / "bal.blif")
        assert main(["optimize", blif_file, "-o", out, "--balance",
                     "--verify"]) == 0


class TestGenerateVerify:
    def test_generate(self, tmp_path):
        out = str(tmp_path / "gen.blif")
        assert main(["generate", "add4", "-o", out]) == 0
        net = parse_blif(open(out).read())
        assert len(net.inputs) == 8

    def test_verify_equivalent(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        b = str(tmp_path / "b.blif")
        main(["generate", "parity8", "-o", a])
        main(["optimize", a, "-o", b])
        assert main(["verify", a, b]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_verify_inequivalent(self, tmp_path, capsys):
        from repro.network import write_blif
        from repro.sop.cube import lit

        a = str(tmp_path / "a.blif")
        b = str(tmp_path / "b.blif")
        main(["generate", "add4", "-o", a])
        net = parse_blif(open(a).read())
        # Corrupt: turn the first sum node's XOR cover into XNOR.
        node = net.nodes["fa0_s"]
        node.cover = [frozenset({lit(0), lit(1)}),
                      frozenset({lit(0, False), lit(1, False)})]
        open(b, "w").write(write_blif(net))
        assert main(["verify", a, b]) == 1
        assert "NOT equivalent" in capsys.readouterr().out


class TestVerifyContract:
    """Exit-code contract: 0 proven, 1 mismatch, 2 inconclusive."""

    def test_inconclusive_exits_2_and_names_outputs(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        main(["generate", "add4", "-o", a])
        rc = main(["verify", a, a, "--size-cap", "1"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "UNPROVEN" in out
        assert "fa3_c" in out            # unproven outputs named explicitly

    def test_full_mode_breaks_the_tie(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        main(["generate", "add4", "-o", a])
        # Same tiny cap, but the exhaustive simulation cross-check proves
        # the capped outputs (add4 is small enough for a full truth table).
        rc = main(["verify", a, a, "--size-cap", "1", "--mode", "full"])
        assert rc == 0
        assert "equivalent" in capsys.readouterr().out

    def test_sim_mode(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        main(["generate", "parity8", "-o", a])
        assert main(["verify", a, a, "--mode", "sim"]) == 0

    def test_optimize_verify_mode_argument(self, blif_file, tmp_path):
        out = str(tmp_path / "out.blif")
        for mode in ("sim", "cec", "full"):
            assert main(["optimize", blif_file, "-o", out,
                         "--verify", mode]) == 0

    def test_optimize_verify_miscompile_exits_1(self, blif_file, tmp_path,
                                                capsys, monkeypatch):
        import repro.bds.flow as flow_mod

        original = flow_mod.trees_to_network

        def corrupt(*args, **kwargs):
            net = original(*args, **kwargs)
            out = net.outputs[0]
            if out in net.nodes:
                net.nodes[out].cover = []
            return net

        monkeypatch.setattr(flow_mod, "trees_to_network", corrupt)
        out = str(tmp_path / "out.blif")
        rc = main(["optimize", blif_file, "-o", out, "--verify", "full"])
        assert rc == 1
        assert "VERIFICATION FAILED" in capsys.readouterr().err
        # Silent shipping is exactly what the exit code must prevent.
        assert main(["optimize", blif_file, "-o", out]) == 0


class TestFuzzCommand:
    def test_smoke_run_exits_0(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        rc = main(["fuzz", "--minutes", "0.03", "--seed", "11",
                   "--corpus", corpus])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuzz: seed=11" in out
        assert "failures=0" in out

    def test_finds_exit_1_and_land_in_corpus(self, tmp_path, capsys,
                                             monkeypatch):
        import os

        import repro.bds.flow as flow_mod

        original = flow_mod.trees_to_network

        def corrupt(*args, **kwargs):
            net = original(*args, **kwargs)
            out = net.outputs[0]
            if out in net.nodes:
                net.nodes[out].cover = []
            return net

        monkeypatch.setattr(flow_mod, "trees_to_network", corrupt)
        corpus = str(tmp_path / "corpus")
        rc = main(["fuzz", "--minutes", "1.0", "--seed", "11",
                   "--corpus", corpus, "--max-failures", "1"])
        assert rc == 1
        assert "mismatch" in capsys.readouterr().out
        assert any(f.endswith(".blif") for f in os.listdir(corpus))
