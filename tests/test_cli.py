"""Tests for the command-line interface."""


import pytest

from repro.cli import main
from repro.network import parse_blif


@pytest.fixture
def blif_file(tmp_path):
    path = tmp_path / "in.blif"
    path.write_text("""
.model t
.inputs a b c
.outputs y z
.names a b t1
11 1
.names t1 c y
10 1
01 1
.names a c z
11 1
.end
""")
    return str(path)


class TestOptimize:
    def test_bds_roundtrip(self, blif_file, tmp_path, capsys):
        out = str(tmp_path / "out.blif")
        rc = main(["optimize", blif_file, "-o", out, "--flow", "bds",
                   "--verify"])
        assert rc == 0
        net = parse_blif(open(out).read())
        assert set(net.outputs) == {"y", "z"}

    def test_sis_flow(self, blif_file, tmp_path):
        out = str(tmp_path / "out.blif")
        assert main(["optimize", blif_file, "-o", out, "--flow", "sis"]) == 0
        parse_blif(open(out).read())

    def test_stdout_output(self, blif_file, capsys):
        assert main(["optimize", blif_file]) == 0
        captured = capsys.readouterr()
        assert ".model" in captured.out

    def test_map_option(self, blif_file, tmp_path, capsys):
        out = str(tmp_path / "mapped.blif")
        assert main(["optimize", blif_file, "-o", out, "--map",
                     "--stats"]) == 0
        parse_blif(open(out).read())

    def test_lut_option(self, blif_file, tmp_path):
        out = str(tmp_path / "luts.blif")
        assert main(["optimize", blif_file, "-o", out, "--lut", "4"]) == 0
        net = parse_blif(open(out).read())
        for node in net.nodes.values():
            assert len(node.fanins) <= 4

    def test_balance_option(self, blif_file, tmp_path):
        out = str(tmp_path / "bal.blif")
        assert main(["optimize", blif_file, "-o", out, "--balance",
                     "--verify"]) == 0


class TestGenerateVerify:
    def test_generate(self, tmp_path):
        out = str(tmp_path / "gen.blif")
        assert main(["generate", "add4", "-o", out]) == 0
        net = parse_blif(open(out).read())
        assert len(net.inputs) == 8

    def test_verify_equivalent(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        b = str(tmp_path / "b.blif")
        main(["generate", "parity8", "-o", a])
        main(["optimize", a, "-o", b])
        assert main(["verify", a, b]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_verify_inequivalent(self, tmp_path, capsys):
        from repro.network import write_blif
        from repro.sop.cube import lit

        a = str(tmp_path / "a.blif")
        b = str(tmp_path / "b.blif")
        main(["generate", "add4", "-o", a])
        net = parse_blif(open(a).read())
        # Corrupt: turn the first sum node's XOR cover into XNOR.
        node = net.nodes["fa0_s"]
        node.cover = [frozenset({lit(0), lit(1)}),
                      frozenset({lit(0, False), lit(1, False)})]
        open(b, "w").write(write_blif(net))
        assert main(["verify", a, b]) == 1
        assert "NOT equivalent" in capsys.readouterr().out
