"""Tests for the command-line interface."""


import pytest

from repro.cli import main
from repro.network import parse_blif


@pytest.fixture
def blif_file(tmp_path):
    path = tmp_path / "in.blif"
    path.write_text("""
.model t
.inputs a b c
.outputs y z
.names a b t1
11 1
.names t1 c y
10 1
01 1
.names a c z
11 1
.end
""")
    return str(path)


class TestOptimize:
    def test_bds_roundtrip(self, blif_file, tmp_path, capsys):
        out = str(tmp_path / "out.blif")
        rc = main(["optimize", blif_file, "-o", out, "--flow", "bds",
                   "--verify"])
        assert rc == 0
        net = parse_blif(open(out).read())
        assert set(net.outputs) == {"y", "z"}

    def test_sis_flow(self, blif_file, tmp_path):
        out = str(tmp_path / "out.blif")
        assert main(["optimize", blif_file, "-o", out, "--flow", "sis"]) == 0
        parse_blif(open(out).read())

    def test_stdout_output(self, blif_file, capsys):
        assert main(["optimize", blif_file]) == 0
        captured = capsys.readouterr()
        assert ".model" in captured.out

    def test_map_option(self, blif_file, tmp_path, capsys):
        out = str(tmp_path / "mapped.blif")
        assert main(["optimize", blif_file, "-o", out, "--map",
                     "--stats"]) == 0
        parse_blif(open(out).read())

    def test_lut_option(self, blif_file, tmp_path):
        out = str(tmp_path / "luts.blif")
        assert main(["optimize", blif_file, "-o", out, "--lut", "4"]) == 0
        net = parse_blif(open(out).read())
        for node in net.nodes.values():
            assert len(node.fanins) <= 4

    def test_balance_option(self, blif_file, tmp_path):
        out = str(tmp_path / "bal.blif")
        assert main(["optimize", blif_file, "-o", out, "--balance",
                     "--verify"]) == 0


class TestGenerateVerify:
    def test_generate(self, tmp_path):
        out = str(tmp_path / "gen.blif")
        assert main(["generate", "add4", "-o", out]) == 0
        net = parse_blif(open(out).read())
        assert len(net.inputs) == 8

    def test_verify_equivalent(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        b = str(tmp_path / "b.blif")
        main(["generate", "parity8", "-o", a])
        main(["optimize", a, "-o", b])
        assert main(["verify", a, b]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_verify_inequivalent(self, tmp_path, capsys):
        from repro.network import write_blif
        from repro.sop.cube import lit

        a = str(tmp_path / "a.blif")
        b = str(tmp_path / "b.blif")
        main(["generate", "add4", "-o", a])
        net = parse_blif(open(a).read())
        # Corrupt: turn the first sum node's XOR cover into XNOR.
        node = net.nodes["fa0_s"]
        node.cover = [frozenset({lit(0), lit(1)}),
                      frozenset({lit(0, False), lit(1, False)})]
        open(b, "w").write(write_blif(net))
        assert main(["verify", a, b]) == 1
        assert "NOT equivalent" in capsys.readouterr().out


class TestVerifyContract:
    """Exit-code contract: 0 proven, 1 mismatch, 2 inconclusive."""

    def test_inconclusive_exits_2_and_names_outputs(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        main(["generate", "add4", "-o", a])
        rc = main(["verify", a, a, "--size-cap", "1"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "UNPROVEN" in out
        assert "fa3_c" in out            # unproven outputs named explicitly

    def test_full_mode_breaks_the_tie(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        main(["generate", "add4", "-o", a])
        # Same tiny cap, but the exhaustive simulation cross-check proves
        # the capped outputs (add4 is small enough for a full truth table).
        rc = main(["verify", a, a, "--size-cap", "1", "--mode", "full"])
        assert rc == 0
        assert "equivalent" in capsys.readouterr().out

    def test_sim_mode(self, tmp_path, capsys):
        a = str(tmp_path / "a.blif")
        main(["generate", "parity8", "-o", a])
        assert main(["verify", a, a, "--mode", "sim"]) == 0

    def test_optimize_verify_mode_argument(self, blif_file, tmp_path):
        out = str(tmp_path / "out.blif")
        for mode in ("sim", "cec", "full"):
            assert main(["optimize", blif_file, "-o", out,
                         "--verify", mode]) == 0

    def test_optimize_verify_miscompile_exits_1(self, blif_file, tmp_path,
                                                capsys, monkeypatch):
        import repro.bds.flow as flow_mod

        original = flow_mod.trees_to_network

        def corrupt(*args, **kwargs):
            net = original(*args, **kwargs)
            out = net.outputs[0]
            if out in net.nodes:
                net.nodes[out].cover = []
            return net

        monkeypatch.setattr(flow_mod, "trees_to_network", corrupt)
        out = str(tmp_path / "out.blif")
        rc = main(["optimize", blif_file, "-o", out, "--verify", "full"])
        assert rc == 1
        assert "VERIFICATION FAILED" in capsys.readouterr().err
        # Silent shipping is exactly what the exit code must prevent.
        assert main(["optimize", blif_file, "-o", out]) == 0


class TestOptimizeJson:
    def test_json_object_on_stdout(self, blif_file, tmp_path, capsys):
        out = str(tmp_path / "out.blif")
        rc = main(["optimize", blif_file, "-o", out, "--json",
                   "--verify", "cec"])
        assert rc == 0
        import json

        obj = json.loads(capsys.readouterr().out)
        assert obj["exit_code"] == 0
        assert obj["verify_mode"] == "cec"
        assert obj["cached"] is False
        assert obj["input"]["nodes"] >= obj["output"]["nodes"] - 5
        assert obj["perf"]["ite_calls"] > 0
        parse_blif(open(out).read())     # BLIF went to -o, not stdout

    def test_json_without_output_file_keeps_stdout_clean(self, blif_file,
                                                         capsys):
        import json

        assert main(["optimize", blif_file, "--json"]) == 0
        # stdout must be exactly one JSON object -- no BLIF mixed in.
        json.loads(capsys.readouterr().out)

    def test_json_reports_cache_hit_on_second_run(self, blif_file, tmp_path,
                                                  capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        out = str(tmp_path / "out.blif")
        main(["optimize", blif_file, "-o", out, "--json",
              "--cache-dir", cache_dir])
        cold = json.loads(capsys.readouterr().out)
        assert cold["perf"]["artifact_cache_misses"] == 1
        main(["optimize", blif_file, "-o", out, "--json",
              "--cache-dir", cache_dir])
        warm = json.loads(capsys.readouterr().out)
        assert warm["cached"] is True
        assert warm["perf"]["artifact_cache_hits"] == 1


class TestBatchCommand:
    def _make_inputs(self, tmp_path, names=("add4", "cmp8", "parity8")):
        indir = tmp_path / "in"
        indir.mkdir()
        for name in names:
            main(["generate", name, "-o", str(indir / (name + ".blif"))])
        return str(indir)

    def test_two_pass_batch_second_all_cached(self, tmp_path, capsys):
        import json

        indir = self._make_inputs(tmp_path)
        cache_dir = str(tmp_path / "cache")
        args = ["batch", indir, "--cache-dir", cache_dir, "--json"]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache_hits"] == 0 and cold["cache_misses"] == 3
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache_hits"] == 3 and warm["cache_misses"] == 0
        assert all(r["cached"] for r in warm["results"])

    def test_out_dir_writes_optimized_blifs(self, tmp_path, capsys):
        import os

        indir = self._make_inputs(tmp_path, names=("add4",))
        outdir = str(tmp_path / "out")
        assert main(["batch", indir, "--out-dir", outdir]) == 0
        assert os.listdir(outdir) == ["add4.opt.blif"]
        parse_blif(open(os.path.join(outdir, "add4.opt.blif")).read())

    def test_bad_input_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.blif"
        bad.write_text("garbage\n")
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", str(bad), "--cache-dir", cache_dir]) == 1

    def test_no_inputs_exits_1(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["batch", str(empty)]) == 1


class TestServeCommand:
    def test_serve_round_trip(self, blif_file, tmp_path, capsys,
                              monkeypatch):
        import io
        import json
        import sys as _sys

        # The stats command drains in-flight work, so the shutdown that
        # follows finds nothing to cancel (a shutdown racing a pending
        # request answers it ``cancelled`` instead -- see
        # tests/test_service_api.py).
        request = json.dumps({"blif": open(blif_file).read(), "id": "r1"})
        stats = json.dumps({"cmd": "stats"})
        shutdown = json.dumps({"cmd": "shutdown"})
        monkeypatch.setattr(
            _sys, "stdin",
            io.StringIO(request + "\n" + stats + "\n" + shutdown + "\n"))
        rc = main(["serve", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        assert lines[0]["id"] == "r1" and lines[0]["status"] == "ok"
        parse_blif(lines[0]["blif"])
        assert lines[1]["cache"]["artifact_cache_misses"] == 1
        assert lines[2] == {"status": "ok", "served": 1}


class TestServeSocketCommand:
    def _spawn_server(self, tmp_path):
        import os
        import subprocess
        import sys as _sys
        import time

        sock_path = str(tmp_path / "srv.sock")
        repo_src = os.path.join(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))), "src")
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro.cli", "serve",
             "--socket", sock_path,
             "--cache-dir", str(tmp_path / "cache")],
            env=dict(os.environ, PYTHONPATH=repo_src),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        deadline = time.monotonic() + 30
        while not os.path.exists(sock_path):
            assert proc.poll() is None, proc.stderr.read()
            assert time.monotonic() < deadline, "server never bound"
            time.sleep(0.05)
        return proc, sock_path

    def test_socket_serve_sigterm_drains_exit_0(self, blif_file, tmp_path):
        import signal

        from repro.service import ServiceClient

        proc, sock_path = self._spawn_server(tmp_path)
        try:
            with ServiceClient(socket_path=sock_path) as client:
                resp = client.request(open(blif_file).read(), timeout=120)
            assert resp["status"] == "ok"
            parse_blif(resp["blif"])
        finally:
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "drained cleanly" in err

    def test_client_command_round_trip(self, blif_file, tmp_path):
        import signal

        proc, sock_path = self._spawn_server(tmp_path)
        try:
            out_dir = str(tmp_path / "out")
            rc = main(["client", blif_file, "--socket", sock_path,
                       "--out-dir", out_dir, "--timeout", "120"])
            assert rc == 0
            optimized = open(out_dir + "/in.opt.blif").read()
            parse_blif(optimized)
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=60)
        assert proc.returncode == 0

    def test_client_requires_exactly_one_transport(self, blif_file):
        assert main(["client", blif_file]) == 1
        assert main(["client", blif_file, "--socket", "/tmp/x",
                     "--port", "1"]) == 1

    def test_client_unreachable_server_exits_1(self, blif_file, tmp_path):
        assert main(["client", blif_file,
                     "--socket", str(tmp_path / "gone.sock"),
                     "--retries", "1"]) == 1


class TestFuzzCommand:
    def test_smoke_run_exits_0(self, tmp_path, capsys):
        corpus = str(tmp_path / "corpus")
        rc = main(["fuzz", "--minutes", "0.03", "--seed", "11",
                   "--corpus", corpus])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuzz: seed=11" in out
        assert "failures=0" in out

    def test_finds_exit_1_and_land_in_corpus(self, tmp_path, capsys,
                                             monkeypatch):
        import os

        import repro.bds.flow as flow_mod

        original = flow_mod.trees_to_network

        def corrupt(*args, **kwargs):
            net = original(*args, **kwargs)
            out = net.outputs[0]
            if out in net.nodes:
                net.nodes[out].cover = []
            return net

        monkeypatch.setattr(flow_mod, "trees_to_network", corrupt)
        corpus = str(tmp_path / "corpus")
        rc = main(["fuzz", "--minutes", "1.0", "--seed", "11",
                   "--corpus", corpus, "--max-failures", "1"])
        assert rc == 1
        assert "mismatch" in capsys.readouterr().out
        assert any(f.endswith(".blif") for f in os.listdir(corpus))
