"""Tests for kernel-intersection extraction and static timing analysis."""

import random

import pytest

from repro.circuits import ripple_adder
from repro.mapping import map_network
from repro.mapping.timing import analyze_timing, format_timing
from repro.network import Network
from repro.sis.kernel_extract import extract_kernels
from repro.sop.cube import lit
from repro.verify import check_equivalence


def C(*pairs):
    return frozenset(lit(v, p) for v, p in pairs)


class TestKernelExtract:
    def _shared_kernel_network(self):
        # Both outputs contain the kernel (c + d): y1 = a(c+d), y2 = b(c+d)+e.
        net = Network("kx")
        for n in "abcde":
            net.add_input(n)
        net.add_output("y1")
        net.add_output("y2")
        net.add_node("y1", ["a", "c", "d"],
                     [C((0, True), (1, True)), C((0, True), (2, True))])
        net.add_node("y2", ["b", "c", "d", "e"],
                     [C((0, True), (1, True)), C((0, True), (2, True)),
                      C((3, True))])
        return net

    def test_extracts_shared_kernel(self):
        net = self._shared_kernel_network()
        ref = net.copy()
        created = extract_kernels(net, min_saving=0)
        assert created >= 1
        assert check_equivalence(ref, net).equivalent
        # Some node computes c + d.
        found = False
        for node in net.nodes.values():
            if sorted(node.fanins) == ["c", "d"] and len(node.cover) == 2:
                found = True
        assert found

    def test_no_shared_kernel_no_change(self):
        net = Network("plain")
        for n in "ab":
            net.add_input(n)
        net.add_output("y")
        net.add_and("y", ["a", "b"])
        assert extract_kernels(net) == 0

    def test_random_preserves_function(self):
        rng = random.Random(61)
        for _ in range(4):
            net = _random_sop_network(rng)
            ref = net.copy()
            extract_kernels(net, min_saving=0)
            net.check()
            assert check_equivalence(ref, net).equivalent


class TestTiming:
    def test_arrival_and_critical_path(self):
        net = ripple_adder(4)
        result = map_network(net)
        report = analyze_timing(result)
        assert report.worst_delay == pytest.approx(result.delay)
        # The critical path ends at the worst output and starts at a PI.
        assert report.critical_path[0] in net.inputs
        assert report.critical_path[-1] in net.outputs
        # Arrival along the path is nondecreasing.
        arr = [report.arrival.get(s, 0.0) for s in report.critical_path]
        assert all(a <= b for a, b in zip(arr, arr[1:]))

    def test_slack_nonnegative_at_default_target(self):
        net = ripple_adder(3)
        result = map_network(net)
        report = analyze_timing(result)
        assert all(s >= -1e-9 for s in report.slack.values())
        # Critical-path signals have (near) zero slack.
        for sig in report.critical_path:
            if sig in report.slack:
                assert report.slack[sig] == pytest.approx(0.0, abs=1e-9)

    def test_tight_required_time_gives_negative_slack(self):
        net = ripple_adder(3)
        result = map_network(net)
        report = analyze_timing(result, required_time=0.5)
        assert min(report.slack.values()) < 0

    def test_format(self):
        net = ripple_adder(2)
        result = map_network(net)
        text = format_timing(analyze_timing(result))
        assert "worst delay" in text
        assert "critical path" in text


def _random_sop_network(rng, n_inputs=5, n_nodes=6):
    net = Network("rand")
    signals = [net.add_input("i%d" % i) for i in range(n_inputs)]
    for j in range(n_nodes):
        arity = rng.randint(2, min(4, len(signals)))
        fanins = rng.sample(signals, arity)
        cover = set()
        for _ in range(rng.randint(2, 4)):
            cube = []
            for p in range(arity):
                r = rng.random()
                if r < 0.5:
                    cube.append(lit(p, r < 0.35))
            if cube:
                cover.add(frozenset(cube))
        if not cover:
            cover = {frozenset({lit(0)})}
        net.add_node("g%d" % j, fanins, list(cover))
        net.nodes["g%d" % j].normalize()
        signals.append("g%d" % j)
    net.add_output("g%d" % (n_nodes - 1))
    net.add_output("g%d" % (n_nodes - 2))
    net.remove_dangling()
    return net
