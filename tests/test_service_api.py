"""Tests for the batched optimization service (repro.service.api):
cache routing, request/response ordering, the JSON-lines daemon, and
the warm-cache speedup acceptance criterion."""

import io
import json
import time

import pytest

from repro.bds.flow import BDSOptions
from repro.circuits import build_circuit
from repro.circuits.registry import TABLE1_CIRCUITS
from repro.network.blif import parse_blif, write_blif
from repro.obs.metrics import get_registry
from repro.service import (ArtifactCache, OptimizationService, ServiceRequest)
from repro.verify import verify_networks

SMALL = ["add4", "add8", "cmp8", "parity8", "rl_mux"]


def _slow_echo_worker(payload):
    # Module-level so it pickles; blif "sleep:<s>" sleeps, else instant.
    blif = payload["blif"]
    if blif.startswith("sleep:"):
        time.sleep(float(blif.split(":", 1)[1]))
    return {"status": "ok", "blif": "echo:" + blif}


def _slow_service(**kwargs):
    from repro.service import OptimizationScheduler

    return OptimizationService(
        scheduler_factory=lambda **kw: OptimizationScheduler(
            worker=_slow_echo_worker, **kw),
        **kwargs)


def _requests(names, **opt_kwargs):
    opts = BDSOptions(**opt_kwargs)
    return [ServiceRequest(blif=write_blif(build_circuit(n)), options=opts,
                           name=n) for n in names]


class TestBatchRouting:
    def test_two_pass_second_all_cached_byte_identical(self, tmp_path):
        service = OptimizationService(cache=ArtifactCache(str(tmp_path)),
                                      max_workers=2)
        cold = service.process(_requests(SMALL, verify="cec"))
        assert [r.name for r in cold] == SMALL
        assert all(r.ok and not r.cached for r in cold)
        warm = service.process(_requests(SMALL, verify="cec"))
        assert all(r.ok and r.cached for r in warm)
        for a, b in zip(cold, warm):
            assert b.blif == a.blif          # byte-identical, not re-emitted
            assert b.perf["artifact_cache_hits"] == 1
            assert b.verify_mode == a.verify_mode

    def test_responses_follow_request_order_with_mixed_hits(self, tmp_path):
        service = OptimizationService(cache=ArtifactCache(str(tmp_path)),
                                      max_workers=2)
        service.process(_requests(["add4", "cmp8"]))
        mixed = service.process(
            _requests(["parity8", "add4", "rl_mux", "cmp8"]))
        assert [r.name for r in mixed] == ["parity8", "add4", "rl_mux",
                                           "cmp8"]
        assert [r.cached for r in mixed] == [False, True, False, True]

    def test_parse_error_fails_only_that_request(self, tmp_path):
        service = OptimizationService(cache=ArtifactCache(str(tmp_path)))
        reqs = _requests(["add4"])
        reqs.insert(0, ServiceRequest(blif="not blif at all", name="bad"))
        responses = service.process(reqs)
        assert responses[0].status == "failed"
        assert "parse error" in responses[0].error
        assert responses[1].ok

    def test_results_are_equivalent_to_inputs(self, tmp_path):
        service = OptimizationService(cache=ArtifactCache(str(tmp_path)))
        for resp in service.process(_requests(["add8", "parity8"])):
            original = build_circuit(resp.name)
            assert verify_networks(original, parse_blif(resp.blif),
                                   mode="cec").equivalent

    def test_cacheless_service_still_optimizes(self):
        service = OptimizationService(cache=None)
        resp = service.optimize_one(_requests(["add4"])[0])
        assert resp.ok and not resp.cached
        assert parse_blif(resp.blif).stats()["outputs"] == 5


class TestServeLoop:
    def _serve(self, lines, cache=None):
        service = OptimizationService(cache=cache)
        out = io.StringIO()
        served = service.serve(io.StringIO("\n".join(lines) + "\n"), out)
        return served, [json.loads(line) for line in out.getvalue().splitlines()]

    def test_request_stats_shutdown(self, tmp_path):
        blif = write_blif(build_circuit("add4"))
        lines = [json.dumps({"blif": blif, "id": "job-a"}),
                 json.dumps({"cmd": "stats"}),
                 json.dumps({"cmd": "shutdown"}),
                 json.dumps({"blif": blif, "id": "never-reached"})]
        served, out = self._serve(lines, cache=ArtifactCache(str(tmp_path)))
        assert served == 1
        assert out[0]["id"] == "job-a" and out[0]["status"] == "ok"
        assert out[1]["cache"]["artifact_cache_misses"] == 1
        assert out[2] == {"status": "ok", "served": 1}
        assert len(out) == 3                 # nothing after shutdown

    def test_malformed_lines_do_not_kill_the_daemon(self):
        blif = write_blif(build_circuit("add4"))
        lines = ["{invalid json", json.dumps(["a", "list"]),
                 json.dumps({"no_blif": True}),
                 json.dumps({"blif": blif, "id": "ok-after-junk"})]
        served, out = self._serve(lines)
        assert served == 1
        assert [o["status"] for o in out] == ["failed", "failed", "failed",
                                              "ok"]
        assert out[3]["id"] == "ok-after-junk"

    def test_serve_hits_cache_across_lines(self, tmp_path):
        blif = write_blif(build_circuit("cmp8"))
        req = json.dumps({"blif": blif})
        _served, out = self._serve([req, req],
                                   cache=ArtifactCache(str(tmp_path)))
        assert [o["cached"] for o in out] == [False, True]
        assert out[0]["blif"] == out[1]["blif"]

    def test_stats_covers_scheduler_and_kernel_not_just_cache(self,
                                                              tmp_path):
        # Regression: the stats response used to expose only the
        # artifact-cache counters; scheduler queue state and the kernel
        # counters served were invisible to operators.
        get_registry().reset()
        blif = write_blif(build_circuit("add4"))
        lines = [json.dumps({"blif": blif, "id": "job-a"}),
                 json.dumps({"cmd": "stats"})]
        _served, out = self._serve(lines, cache=ArtifactCache(str(tmp_path)))
        stats = out[1]
        assert stats["cache"]["artifact_cache_misses"] == 1
        sched = stats["scheduler"]
        assert sched["queue_depth"] == 0 and sched["running"] == 0
        assert sched["jobs_total"] == {"ok": 1, "failed": 0,
                                       "timeout": 0, "cancelled": 0}
        # Kernel counters of the served flow are aggregated in.
        assert stats["kernel"]["ite_calls"] > 0
        assert stats["kernel"]["nodes_allocated"] > 0
        # And the raw registry rides along (counters/gauges/histograms).
        metrics = stats["metrics"]
        assert metrics["counters"][
            'service_requests_total{cached="false",status="ok"}'] == 1
        assert metrics["histograms"][
            "scheduler_job_seconds"]["count"] == 1

    def test_metrics_command_renders_prometheus_text(self, tmp_path):
        get_registry().reset()
        blif = write_blif(build_circuit("add4"))
        lines = [json.dumps({"blif": blif, "id": "job-a"}),
                 json.dumps({"cmd": "metrics"})]
        _served, out = self._serve(lines, cache=ArtifactCache(str(tmp_path)))
        assert out[1]["status"] == "ok"
        text = out[1]["text"]
        assert "# TYPE repro_scheduler_jobs_total counter" in text
        assert 'repro_scheduler_jobs_total{status="ok"} 1' in text
        assert "# TYPE repro_scheduler_job_seconds histogram" in text
        assert 'repro_scheduler_job_seconds_bucket{le="+Inf"} 1' in text

    def test_shutdown_with_pending_requests_emits_cancelled_replies(self):
        # Satellite fix: a shutdown interleaved with pending requests
        # used to drop their responses entirely -- clients hung waiting
        # for replies that never came.  Every unanswered request must
        # get its documented per-request cancelled error object, in
        # request order, before the ack.
        service = _slow_service(max_workers=1)
        lines = [json.dumps({"blif": "sleep:30", "id": "running"}),
                 json.dumps({"blif": "sleep:30", "id": "queued"}),
                 json.dumps({"cmd": "shutdown"})]
        out_io = io.StringIO()
        served = service.serve(io.StringIO("\n".join(lines) + "\n"), out_io)
        out = [json.loads(line) for line in
               out_io.getvalue().splitlines()]
        assert served == 2
        assert len(out) == 3
        assert [o["id"] for o in out[:2]] == ["running", "queued"]
        for o in out[:2]:
            assert o["status"] == "cancelled"
            assert "cancelled" in o["error"]
        assert out[2] == {"status": "ok", "served": 2}

    def test_pipelined_requests_respond_in_request_order(self):
        # The first request is slow, the second instant; the daemon may
        # run them concurrently but must answer in request order.
        service = _slow_service(max_workers=2)
        lines = [json.dumps({"blif": "sleep:0.4", "id": "slow"}),
                 json.dumps({"blif": "quick", "id": "quick"})]
        out_io = io.StringIO()
        service.serve(io.StringIO("\n".join(lines) + "\n"), out_io)
        out = [json.loads(line) for line in out_io.getvalue().splitlines()]
        assert [o["id"] for o in out] == ["slow", "quick"]
        assert [o["status"] for o in out] == ["ok", "ok"]
        assert out[1]["blif"] == "echo:quick"

    def test_serve_trace_request_returns_span_trees(self):
        blif = write_blif(build_circuit("add4"))
        lines = [json.dumps({"blif": blif, "id": "traced", "trace": True}),
                 json.dumps({"blif": blif, "id": "untraced"})]
        _served, out = self._serve(lines)
        assert out[0]["status"] == "ok"
        spans = out[0]["trace"]
        assert spans and spans[-1]["name"] == "flow"
        phase_names = [c["name"] for c in spans[-1]["children"]]
        assert "flow.sweep" in phase_names and "flow.lower" in phase_names
        assert "trace" not in out[1]


@pytest.mark.perf
class TestWarmCacheSpeedup:
    """Acceptance: warm-cache batch over the Table I suite is >=10x
    faster than the cold pass, with byte-identical outputs."""

    def test_table1_warm_pass_10x(self, tmp_path):
        service = OptimizationService(cache=ArtifactCache(str(tmp_path)),
                                      max_workers=2)
        requests = _requests(list(TABLE1_CIRCUITS))
        t0 = time.perf_counter()
        cold = service.process(requests)
        cold_s = time.perf_counter() - t0
        assert all(r.ok and not r.cached for r in cold)
        t0 = time.perf_counter()
        warm = service.process(_requests(list(TABLE1_CIRCUITS)))
        warm_s = time.perf_counter() - t0
        assert all(r.ok and r.cached for r in warm)
        assert [w.blif for w in warm] == [c.blif for c in cold]
        assert warm_s * 10 <= cold_s, (cold_s, warm_s)
