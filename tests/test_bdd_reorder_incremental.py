"""Differential tests of the incremental reordering engine.

The tentpole claim of the engine is that the manager's per-slot reference
counts and per-variable node counters stay *exact* through arbitrary
interleavings of ``mk``, adjacent swaps, sifting, window passes and
garbage collection -- exact enough that sifting's inner loop never has to
re-traverse from the roots to measure size.  These tests pin that claim
differentially (Hypothesis interleavings audited against ground truth
recomputed via ``live_nodes``), plus the engine's work-saving layers:
interaction-matrix swap skipping and lower-bound pruning change the work
done, never the resulting order or size.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, transfer_many
from repro.bdd.manager import DEAD
from repro.bdd.reorder import (
    move_var_to_level,
    random_order,
    sift,
    swap_adjacent,
    window3,
)
from repro.bdd.traverse import evaluate, live_nodes
from repro.check import sanitize_bdd


def _random_function(mgr, variables, rng, n_ops=30):
    refs = [mgr.var_ref(v) for v in variables]
    for _ in range(n_ops):
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
    return refs


def _truth_table(mgr, ref, variables):
    return tuple(
        evaluate(mgr, ref, dict(zip(variables, bits)))
        for bits in itertools.product([False, True], repeat=len(variables))
    )


def _assert_bookkeeping_exact(mgr):
    """Stored _ref/_var_counts must equal a from-scratch recount."""
    var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
    n = len(var_arr)
    assert len(mgr._ref) == n
    truth_ref = [0] * n
    truth_counts = [0] * mgr.num_vars
    for idx in range(1, n):
        var = var_arr[idx]
        if var == DEAD:
            continue
        truth_counts[var] += 1
        truth_ref[lo_arr[idx] >> 1] += 1
        truth_ref[hi_arr[idx] >> 1] += 1
    for root, count in mgr._roots.items():
        truth_ref[root >> 1] += count
    assert mgr._ref == truth_ref, "per-slot refcount drift"
    assert mgr._var_counts == truth_counts, "per-variable count drift"


def _assert_counts_match_live(mgr, roots):
    """At GC safe points the counters must agree with a live traversal."""
    live = live_nodes(mgr, roots)
    assert sum(mgr._var_counts) == len(live) - 1
    by_var = {}
    for idx in live:
        if idx:
            by_var[mgr._var[idx]] = by_var.get(mgr._var[idx], 0) + 1
    for var in range(mgr.num_vars):
        assert mgr._var_counts[var] == by_var.get(var, 0)


class TestDifferentialBookkeeping:
    """Satellite: counters/refcounts equal ground truth after arbitrary
    mk/swap/sift/GC interleavings (Hypothesis + the sanitizer invariant)."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_interleavings(self, data):
        nvars = 5
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(nvars)]
        rng = random.Random(data.draw(st.integers(0, 2 ** 16), label="seed"))
        refs = _random_function(mgr, variables, rng, n_ops=12)
        ops = data.draw(st.lists(
            st.sampled_from(["mk", "swap", "sift", "window", "move", "gc"]),
            min_size=1, max_size=8), label="ops")
        for op in ops:
            if op == "mk":
                f, g = rng.choice(refs), rng.choice(refs)
                refs.append(mgr.and_(f ^ (rng.random() < 0.5), g))
            elif op == "swap":
                swap_adjacent(mgr, rng.randrange(nvars - 1))
            elif op == "sift":
                sift(mgr, refs)
            elif op == "window":
                window3(mgr, refs, passes=1)
            elif op == "move":
                var = rng.randrange(nvars)
                move_var_to_level(mgr, var, rng.randrange(nvars), roots=refs)
            else:
                mgr.collect_garbage(extra_roots=refs)
            _assert_bookkeeping_exact(mgr)
            if op in ("sift", "window", "move", "gc"):
                # Safe points: everything allocated is reachable again.
                _assert_counts_match_live(mgr, refs)
        # The sanitizer's full level runs the same audits (plus the rest
        # of the canonicity battery) -- check_level="full" flows see this.
        sanitize_bdd(mgr, level="full")

    def test_truth_preserved_through_interleaving(self):
        rng = random.Random(7)
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(5)]
        refs = _random_function(mgr, variables, rng, n_ops=25)
        tracked = rng.sample(refs, 6)
        tables = [_truth_table(mgr, r, variables) for r in tracked]
        sift(mgr, tracked)
        window3(mgr, tracked, passes=1)
        move_var_to_level(mgr, variables[0], 4, roots=tracked)
        sift(mgr, tracked)
        assert [_truth_table(mgr, r, variables) for r in tracked] == tables


class TestNoTraversalInSiftLoop:
    """Acceptance: zero full ``live_nodes`` traversals inside the sifting
    engine -- size comes from the incremental counters alone."""

    def test_sift_never_traverses(self):
        rng = random.Random(11)
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(8)]
        refs = _random_function(mgr, variables, rng, n_ops=60)
        roots = refs[-4:]
        before = mgr.perf.live_traversals
        sift(mgr, roots)
        assert mgr.perf.reorder_swaps > 0
        assert mgr.perf.live_traversals == before, (
            "sift fell back to a full live-node traversal")

    def test_window_and_move_never_traverse(self):
        rng = random.Random(13)
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(6)]
        refs = _random_function(mgr, variables, rng, n_ops=40)
        roots = refs[-3:]
        before = mgr.perf.live_traversals
        window3(mgr, roots, passes=2)
        move_var_to_level(mgr, variables[2], 0, roots=roots)
        move_var_to_level(mgr, variables[2], 5, roots=roots)
        assert mgr.perf.live_traversals == before


def _two_group_manager():
    """Vars from two disjoint supports, interleaved in the order.

    Roots: a parity over the a-group and a conjunction over the b-group;
    no variable of one group interacts with any of the other.
    """
    mgr = BDD()
    a = [mgr.new_var("a%d" % i) for i in range(3)]
    b = [mgr.new_var("b%d" % i) for i in range(3)]
    # Interleave the groups in the level order: a0 b0 a1 b1 a2 b2.
    for i, var in enumerate([a[0], b[0], a[1], b[1], a[2], b[2]]):
        move_var_to_level(mgr, var, i)
    parity = mgr.var_ref(a[0])
    for v in a[1:]:
        parity = mgr.xor_(parity, mgr.var_ref(v))
    conj = mgr.var_ref(b[0])
    for v in b[1:]:
        conj = mgr.and_(conj, mgr.var_ref(v))
    return mgr, a + b, [parity, conj]


class TestInteractionMatrix:
    """Non-co-occurring variables swap as O(1) map flips; disabling the
    matrix changes the work done, never the resulting order or size."""

    def test_skips_on_disjoint_supports(self):
        mgr, variables, roots = _two_group_manager()
        tables = [_truth_table(mgr, r, variables) for r in roots]
        size = sift(mgr, roots)
        assert mgr.perf.reorder_swaps_skipped > 0
        assert [_truth_table(mgr, r, variables) for r in roots] == tables
        assert size == mgr.num_nodes_live

    def test_same_result_without_matrix(self):
        mgr1, _, roots1 = _two_group_manager()
        mgr2, _, roots2 = _two_group_manager()
        size1 = sift(mgr1, roots1, interactions=True)
        size2 = sift(mgr2, roots2, interactions=False)
        assert size1 == size2
        assert mgr1._level2var == mgr2._level2var
        assert mgr2.perf.reorder_swaps_skipped == 0

    def test_single_root_all_support_interacts(self):
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(4)]
        f = mgr.var_ref(variables[0])
        for v in variables[1:]:
            f = mgr.or_(f, mgr.var_ref(v))
        sift(mgr, [f])
        assert mgr.perf.reorder_swaps_skipped == 0


class TestLowerBoundPruning:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 16))
    def test_prune_parity(self, seed):
        rng = random.Random(seed)
        orders, sizes, swaps = [], [], []
        for prune in (True, False):
            mgr = BDD()
            variables = [mgr.new_var() for _ in range(6)]
            refs = _random_function(mgr, variables, random.Random(seed),
                                    n_ops=30)
            sizes.append(sift(mgr, refs[-4:], prune=prune))
            orders.append(list(mgr._level2var))
            swaps.append(mgr.perf.reorder_swaps)
        assert sizes[0] == sizes[1]
        assert orders[0] == orders[1]
        assert swaps[0] <= swaps[1], "pruning may only reduce swaps"


class TestAutoreorder:
    def _grow(self, mgr, variables, rng, n_ops):
        refs = _random_function(mgr, variables, rng, n_ops=n_ops)
        return refs[-6:]

    def test_trigger_fires_at_safe_point(self):
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(10)]
        mgr.enable_autoreorder(threshold=40)
        roots = self._grow(mgr, variables, random.Random(3), 120)
        tables = [_truth_table(mgr, r, variables) for r in roots]
        assert mgr._reorder_pending  # mk crossed the threshold
        mgr.maybe_collect(roots)
        assert mgr.perf.autoreorder_triggers == 1
        assert not mgr._reorder_pending
        assert mgr._autoreorder_threshold >= 40
        assert [_truth_table(mgr, r, variables) for r in roots] == tables
        _assert_bookkeeping_exact(mgr)

    def test_threshold_raised_after_fire(self):
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(10)]
        mgr.enable_autoreorder(threshold=40)
        roots = self._grow(mgr, variables, random.Random(3), 120)
        mgr.maybe_collect(roots)
        assert mgr._autoreorder_threshold >= 2 * mgr.num_nodes_live

    def test_disable_clears_pending(self):
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(10)]
        mgr.enable_autoreorder(threshold=10)
        roots = self._grow(mgr, variables, random.Random(5), 60)
        assert mgr._reorder_pending
        mgr.disable_autoreorder()
        mgr.maybe_collect(roots)
        assert mgr.perf.autoreorder_triggers == 0

    def test_window3_method(self):
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(8)]
        mgr.enable_autoreorder(threshold=30, method="window3")
        roots = self._grow(mgr, variables, random.Random(9), 80)
        mgr.maybe_collect(roots)
        assert mgr.perf.autoreorder_triggers == 1

    def test_rejects_bad_arguments(self):
        mgr = BDD()
        try:
            mgr.enable_autoreorder(threshold=10, method="nope")
            assert False, "unknown method accepted"
        except ValueError:
            pass
        try:
            mgr.enable_autoreorder(threshold=0)
            assert False, "non-positive threshold accepted"
        except ValueError:
            pass

    def test_flow_with_autoreorder_is_equivalent(self):
        from repro.bds import BDSOptions, bds_optimize
        from repro.circuits import build_circuit

        net = build_circuit("add8")
        result = bds_optimize(net, BDSOptions(autoreorder=64, verify="sim"))
        assert result.perf["autoreorder_triggers"] >= 0  # armed, may fire
        result2 = bds_optimize(
            net, BDSOptions(autoreorder=64, autoreorder_method="window3",
                            verify="sim"))
        assert result2.network.stats()["nodes"] > 0


class TestRandomOrderRoundTrip:
    """Satellite: ``random_order`` keeps every function and both
    var<->level maps intact for any permutation it lands on."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 ** 16), st.integers(0, 2 ** 16))
    def test_round_trip(self, fn_seed, order_seed):
        mgr = BDD()
        variables = [mgr.new_var() for _ in range(5)]
        refs = _random_function(mgr, variables, random.Random(fn_seed),
                                n_ops=20)
        roots = refs[-4:]
        tables = [_truth_table(mgr, r, variables) for r in roots]
        random_order(mgr, random.Random(order_seed))
        # var2level and level2var must still be inverse permutations.
        for var, lvl in enumerate(mgr._var2level):
            assert mgr._level2var[lvl] == var
        assert [_truth_table(mgr, r, variables) for r in roots] == tables
        _assert_bookkeeping_exact(mgr)
        sanitize_bdd(mgr, level="full")
        # And the shuffled manager still sifts back down.
        shuffled = mgr.num_nodes_live
        assert sift(mgr, roots) <= shuffled


class TestSessionReclamation:
    """In-session swaps reclaim dead nodes eagerly; sizes read from the
    counters equal a post-hoc traversal at every safe point."""

    def test_transfer_then_sift_matches_traversal(self):
        rng = random.Random(21)
        src = BDD()
        variables = [src.new_var() for _ in range(7)]
        refs = _random_function(src, variables, rng, n_ops=50)
        result = transfer_many(src, [refs[-1]])
        mgr, root = result.manager, result.refs[0]
        final = sift(mgr, [root])
        assert final == len(live_nodes(mgr, [root])) - 1
        _assert_bookkeeping_exact(mgr)

    def test_standalone_swap_keeps_unreachable_nodes(self):
        # Outside a session nothing may be reclaimed: callers can hold
        # refs the manager does not know about.
        mgr = BDD()
        a, b = mgr.new_var(), mgr.new_var()
        f = mgr.and_(mgr.var_ref(a), mgr.var_ref(b))
        allocated = mgr.num_nodes_live
        swap_adjacent(mgr, 0)
        swap_adjacent(mgr, 0)
        assert mgr.num_nodes_live >= allocated
        assert _truth_table(mgr, f, [a, b]) == (False, False, False, True)
