"""Property test: random operator/GC interleavings keep the manager clean.

Hypothesis drives a random sequence of kernel operations (ite, xor,
compose, negation) interleaved with explicit garbage collections against a
deliberately tiny computed table (to force evictions and resizes).  After
the sequence the manager must (a) pass the full sanitizer and (b) be
extensionally equivalent to a fresh manager that replayed the same
operations without any GC -- i.e. collection and cache pressure must never
change what a ref denotes.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD
from repro.bdd.traverse import evaluate
from repro.check import sanitize_bdd

NVARS = 4

_op = st.one_of(
    st.tuples(st.just("ite"), st.integers(0, 99), st.integers(0, 99),
              st.integers(0, 99)),
    st.tuples(st.just("xor"), st.integers(0, 99), st.integers(0, 99)),
    st.tuples(st.just("compose"), st.integers(0, 99), st.integers(0, 99),
              st.integers(0, 99)),
    st.tuples(st.just("not"), st.integers(0, 99)),
    st.tuples(st.just("collect")),
)


def _apply(mgr, ops, do_collect):
    """Replay ``ops``; returns the function list (every ref registered)."""
    variables = [mgr.new_var("x%d" % i) for i in range(NVARS)]
    funcs = [mgr.register_root(mgr.var_ref(v)) for v in variables]
    for op in ops:
        kind = op[0]
        if kind == "collect":
            if do_collect:
                mgr.collect_garbage()
            continue
        if kind == "ite":
            _, a, b, c = op
            n = len(funcs)
            out = mgr.ite(funcs[a % n], funcs[b % n], funcs[c % n])
        elif kind == "xor":
            _, a, b = op
            n = len(funcs)
            out = mgr.xor_(funcs[a % n], funcs[b % n])
        elif kind == "compose":
            _, a, v, b = op
            n = len(funcs)
            out = mgr.compose(funcs[a % n], variables[v % NVARS],
                              funcs[b % n])
        else:  # not
            out = funcs[op[1] % len(funcs)] ^ 1
        funcs.append(mgr.register_root(out))
    return variables, funcs


@settings(max_examples=25, deadline=None)
@given(st.lists(_op, max_size=30))
def test_ops_with_gc_stay_clean_and_equivalent(ops):
    # Tiny cache: every collision evicts, every clear() invalidates a lot.
    stressed = BDD(cache_slots=16, cache_max_slots=64)
    svars, sfuncs = _apply(stressed, ops, do_collect=True)
    stressed.collect_garbage()

    report = sanitize_bdd(stressed, level="full")
    assert report.ok

    # Replay in a pristine manager with no GC and a default-size cache.
    fresh = BDD()
    fvars, ffuncs = _apply(fresh, ops, do_collect=False)
    assert len(sfuncs) == len(ffuncs)
    for values in itertools.product([False, True], repeat=NVARS):
        s_assign = dict(zip(svars, values))
        f_assign = dict(zip(fvars, values))
        for sf, ff in zip(sfuncs, ffuncs):
            assert (evaluate(stressed, sf, s_assign)
                    == evaluate(fresh, ff, f_assign))


@settings(max_examples=10, deadline=None)
@given(st.lists(_op, max_size=20))
def test_maybe_collect_safe_points_stay_clean(ops):
    """Same property with the adaptive trigger instead of forced sweeps."""
    mgr = BDD(cache_slots=16, cache_max_slots=64)
    mgr._gc_min_trigger = mgr._gc_trigger = 8  # make auto-GC actually fire
    variables, funcs = _apply(mgr, ops, do_collect=False)
    mgr.maybe_collect()
    assert sanitize_bdd(mgr, level="full").ok
    # After an unconditional sweep the live count must match a recount of
    # what the registered roots actually reach.
    mgr.collect_garbage()
    report = sanitize_bdd(mgr, level="full")
    assert report.ok
    assert report.stats["reachable_from_roots"] == mgr.num_nodes_live
