"""Tests for classical Ashenhurst-Curtis functional decomposition."""

import random

import pytest

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.traverse import support
from repro.decomp.functional import (
    best_bound_level,
    column_multiplicity,
    functional_decompose,
    is_simple_disjoint_decomposable,
)


@pytest.fixture
def mgr():
    return BDD()


def _fig1_function(mgr):
    """Fig. 1's shape: F = G(x1,x2) ? x3-ish : other -- a function whose
    chart under bound set {x1,x2} has column multiplicity 2."""
    x1, x2, x3 = (mgr.new_var(n) for n in ("x1", "x2", "x3"))
    g = mgr.xor_(mgr.var_ref(x1), mgr.var_ref(x2))
    f = mgr.ite(g, mgr.var_ref(x3), mgr.var_ref(x3) ^ 1)
    return f, (x1, x2, x3)


class TestColumnMultiplicity:
    def test_fig1_has_two_columns(self, mgr):
        f, (x1, x2, x3) = _fig1_function(mgr)
        level = mgr.level_of_var(x3)
        assert column_multiplicity(mgr, f, level) == 2
        assert is_simple_disjoint_decomposable(mgr, f, level)

    def test_non_decomposable_function(self, mgr):
        # A 2-out-of-3 majority has multiplicity 3 under a 2-var bound set.
        a, b, c = (mgr.new_var(n) for n in "abc")
        maj = mgr.or_many([
            mgr.and_(mgr.var_ref(a), mgr.var_ref(b)),
            mgr.and_(mgr.var_ref(a), mgr.var_ref(c)),
            mgr.and_(mgr.var_ref(b), mgr.var_ref(c)),
        ])
        level = mgr.level_of_var(c)
        assert column_multiplicity(mgr, maj, level) == 3
        assert not is_simple_disjoint_decomposable(mgr, maj, level)


class TestFunctionalDecompose:
    def test_fig1_single_code_bit(self, mgr):
        f, (x1, x2, x3) = _fig1_function(mgr)
        d = functional_decompose(mgr, f, mgr.level_of_var(x3))
        assert d is not None
        assert d.columns == 2
        assert d.k == 1
        # G is the xor (or its complement).
        g = d.g_functions[0]
        expected = mgr.xor_(mgr.var_ref(x1), mgr.var_ref(x2))
        assert g in (expected, expected ^ 1)
        # H depends only on the code variable and x3.
        assert support(mgr, d.h) <= {d.code_vars[0], x3}

    def test_identity_random(self, mgr):
        rng = random.Random(31)
        vs = [mgr.new_var() for _ in range(6)]
        refs = [mgr.var_ref(v) for v in vs]
        for _ in range(10):
            for _ in range(25):
                a, b = rng.choice(refs), rng.choice(refs)
                refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(a, b))
            f = refs[-1]
            if mgr.is_const(f):
                continue
            level = 3
            d = functional_decompose(mgr, f, level)
            if d is None:
                continue
            # The assert inside functional_decompose already verified the
            # identity; double-check via explicit evaluation.
            recomposed = mgr.vector_compose(
                d.h, dict(zip(d.code_vars, d.g_functions)))
            assert recomposed == f

    def test_constant_and_shallow_return_none(self, mgr):
        a = mgr.new_var("a")
        assert functional_decompose(mgr, ONE, 1) is None
        assert functional_decompose(mgr, mgr.var_ref(a), 0) is None

    def test_multi_bit_encoding(self, mgr):
        # Majority of 3 with bound {a,b}: 3 columns -> 2 code bits.
        a, b, c = (mgr.new_var(n) for n in "abc")
        maj = mgr.or_many([
            mgr.and_(mgr.var_ref(a), mgr.var_ref(b)),
            mgr.and_(mgr.var_ref(a), mgr.var_ref(c)),
            mgr.and_(mgr.var_ref(b), mgr.var_ref(c)),
        ])
        d = functional_decompose(mgr, maj, mgr.level_of_var(c))
        assert d is not None
        assert d.columns == 3
        assert d.k == 2


class TestBestBoundLevel:
    def test_finds_low_multiplicity_cut(self, mgr):
        f, (x1, x2, x3) = _fig1_function(mgr)
        found = best_bound_level(mgr, f)
        assert found is not None
        level, m = found
        assert m == 2

    def test_constant_none(self, mgr):
        assert best_bound_level(mgr, ZERO) is None

    def test_respects_code_budget(self, mgr):
        vs = [mgr.new_var() for _ in range(6)]
        # A function with high multiplicity everywhere: addition-like.
        f = ZERO
        for i in range(0, 6, 2):
            f = mgr.xor_(f, mgr.and_(mgr.var_ref(vs[i]), mgr.var_ref(vs[i + 1])))
        found = best_bound_level(mgr, f, max_code_bits=1)
        if found is not None:
            _, m = found
            assert m <= 2
