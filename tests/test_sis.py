"""Tests for the SIS-like algebraic baseline: division, kernels, factoring,
fast-extract, resubstitution and the rugged script."""

import itertools
import random


from repro.network import Network
from repro.sis import (
    algebraic_divide,
    all_kernels,
    factor_cover,
    factored_literal_count,
    fast_extract,
    kernel_intersections,
    resubstitute_all,
    script_rugged,
)
from repro.sis.division import cube_free, largest_common_cube, make_cube_free
from repro.sop.cover import cover_eval, literal_count
from repro.sop.cube import lit
from repro.verify import check_equivalence


def C(*pairs_list):
    """Cover literal helper: C((0,True),(1,False)) builds one cube."""
    return frozenset(lit(v, p) for v, p in pairs_list)


class TestDivision:
    def test_textbook_example(self):
        # f = abc + abd + e; d = c + d  =>  q = ab, r = e.
        f = [C((0, True), (1, True), (2, True)),
             C((0, True), (1, True), (3, True)),
             C((4, True))]
        d = [C((2, True)), C((3, True))]
        q, r = algebraic_divide(f, d)
        assert q == [C((0, True), (1, True))]
        assert r == [C((4, True))]

    def test_no_quotient(self):
        f = [C((0, True))]
        d = [C((1, True)), C((2, True))]
        q, r = algebraic_divide(f, d)
        assert q == [] and r == f

    def test_division_by_one(self):
        f = [C((0, True)), C((1, True))]
        q, r = algebraic_divide(f, [frozenset()])
        assert q == f and r == []

    def test_identity_f_eq_qd_plus_r(self):
        rng = random.Random(3)
        for _ in range(30):
            nvars = 5
            f = [frozenset(lit(v, rng.random() < .5)
                           for v in rng.sample(range(nvars), rng.randint(1, 3)))
                 for _ in range(5)]
            d = [frozenset(lit(v, rng.random() < .5)
                           for v in rng.sample(range(nvars), rng.randint(1, 2)))
                 for _ in range(2)]
            try:
                q, r = algebraic_divide(f, d)
            except ValueError:
                continue
            # Rebuild q*d + r and compare as sets of cubes against f
            # (algebraic identity, not just Boolean).
            rebuilt = set(r)
            for qc in q:
                for dc in d:
                    rebuilt.add(frozenset(qc | dc))
            assert set(f) <= rebuilt

    def test_cube_free(self):
        assert cube_free([C((0, True)), C((1, True))])
        assert not cube_free([C((0, True), (1, True)), C((0, True))])
        assert largest_common_cube(
            [C((0, True), (1, True)), C((0, True), (2, True))]) == C((0, True))
        assert make_cube_free(
            [C((0, True), (1, True)), C((0, True))]) == [C((1, True)), frozenset()]


class TestKernels:
    def test_textbook(self):
        # f = adf + aef + bdf + bef + cdf + cef + g
        #   = (a+b+c)(d+e)f + g: kernels include (d+e) and (a+b+c).
        f = []
        for x in (0, 1, 2):
            for y in (3, 4):
                f.append(C((x, True), (y, True), (5, True)))
        f.append(C((6, True)))
        kernels = [frozenset(k) for _, k in all_kernels(f)]
        assert frozenset([C((3, True)), C((4, True))]) in kernels
        assert frozenset([C((0, True)), C((1, True)), C((2, True))]) in kernels

    def test_kernel_of_cube_is_empty(self):
        f = [C((0, True), (1, True))]
        assert all_kernels(f) == []

    def test_kernels_are_cube_free(self):
        rng = random.Random(11)
        for _ in range(20):
            f = [frozenset(lit(v, rng.random() < .5)
                           for v in rng.sample(range(5), rng.randint(1, 3)))
                 for _ in range(5)]
            for _, k in all_kernels(f):
                assert cube_free(k), k

    def test_intersections(self):
        shared = [C((0, True)), C((1, True))]
        f1 = [frozenset(c | C((2, True))) for c in shared]
        f2 = [frozenset(c | C((3, True))) for c in shared] + [C((4, True))]
        inter = kernel_intersections({"f1": all_kernels(f1),
                                      "f2": all_kernels(f2)})
        assert any(set(users) == {"f1", "f2"} for _, users in inter)


class TestFactor:
    def test_factored_smaller_than_flat(self):
        # (a+b)(c+d) flat = 8 literals, factored = 4.
        f = []
        for x in (0, 1):
            for y in (2, 3):
                f.append(C((x, True), (y, True)))
        assert literal_count(f) == 8
        assert factored_literal_count(f) <= 4

    def test_factor_preserves_function(self):
        rng = random.Random(17)
        for _ in range(25):
            f = [frozenset(lit(v, rng.random() < .5)
                           for v in rng.sample(range(4), rng.randint(1, 3)))
                 for _ in range(4)]
            tree = factor_cover(f)
            for bits in itertools.product([False, True], repeat=4):
                env = dict(enumerate(bits))
                assert tree.evaluate(env) == cover_eval(f, env)

    def test_constants(self):
        assert factor_cover([]).op == "const0"
        assert factor_cover([frozenset()]).op == "const1"

    def test_single_cube(self):
        t = factor_cover([C((0, True), (1, False))])
        assert t.literal_count() == 2


class TestFx:
    def _shared_network(self):
        net = Network("fx")
        for n in "abcde":
            net.add_input(n)
        net.add_output("y1")
        net.add_output("y2")
        # y1 = ab + ac + d; y2 = eb + ec: divisor (b+c) shared.
        net.add_node("y1", ["a", "b", "c", "d"],
                     [C((0, True), (1, True)), C((0, True), (2, True)),
                      C((3, True))])
        net.add_node("y2", ["e", "b", "c"],
                     [C((0, True), (1, True)), C((0, True), (2, True))])
        return net

    def test_extracts_shared_divisor(self):
        net = self._shared_network()
        ref = net.copy()
        created = fast_extract(net)
        assert created >= 1
        assert check_equivalence(ref, net).equivalent
        # Some new node computes b + c.
        found = False
        for node in net.nodes.values():
            if node.name in ("y1", "y2"):
                continue
            covers = sorted(map(sorted, node.cover))
            if sorted(node.fanins) == ["b", "c"] and covers == [[0], [2]]:
                found = True
        assert found, "fx must extract the shared (b + c) divisor"

    def test_no_divisor_no_change(self):
        net = Network("plain")
        for n in "ab":
            net.add_input(n)
        net.add_output("y")
        net.add_and("y", ["a", "b"])
        assert fast_extract(net) == 0


class TestResub:
    def test_resubstitutes_existing_node(self):
        net = Network("rs")
        for n in "abcd":
            net.add_input(n)
        net.add_output("y")
        net.add_output("g")
        # g = b + c exists; y = ab + ac + d should become a*g + d.
        net.add_node("g", ["b", "c"], [C((0, True)), C((1, True))])
        net.add_node("y", ["a", "b", "c", "d"],
                     [C((0, True), (1, True)), C((0, True), (2, True)),
                      C((3, True))])
        ref = net.copy()
        made = resubstitute_all(net)
        assert made >= 1
        assert "g" in net.nodes["y"].fanins
        assert check_equivalence(ref, net).equivalent

    def test_never_creates_cycle(self):
        net = Network("rs2")
        for n in "ab":
            net.add_input(n)
        net.add_output("y")
        net.add_node("u", ["a", "b"], [C((0, True)), C((1, True))])
        net.add_node("y", ["u", "a"], [C((0, True), (1, True))])
        resubstitute_all(net)
        net.check()  # would raise on a cycle


class TestRugged:
    def test_preserves_function_random(self):
        rng = random.Random(23)
        for trial in range(4):
            net = _random_network(rng)
            ref = net.copy()
            result = script_rugged(net)
            chk = check_equivalence(ref, result.network)
            assert chk.equivalent, (trial, chk.failing_output)

    def test_reduces_literals_on_redundant_logic(self):
        net = Network("red")
        for n in "abc":
            net.add_input(n)
        net.add_output("y")
        # y = ab + ab~c + abc: simplifies to ab.
        net.add_node("y", ["a", "b", "c"],
                     [C((0, True), (1, True)),
                      C((0, True), (1, True), (2, False)),
                      C((0, True), (1, True), (2, True))])
        result = script_rugged(net)
        assert result.network.literal_count() <= 2

    def test_timings_reported(self):
        rng = random.Random(29)
        net = _random_network(rng)
        result = script_rugged(net)
        for phase in ("sweep", "eliminate", "simplify", "fx", "resub"):
            assert phase in result.timings
        assert "literals" in result.summary()


def _random_network(rng, n_inputs=6, n_nodes=12):
    net = Network("rand")
    signals = [net.add_input("i%d" % i) for i in range(n_inputs)]
    for j in range(n_nodes):
        fanins = rng.sample(signals, min(rng.choice([2, 2, 3]), len(signals)))
        getattr(net, "add_" + rng.choice(["and", "or", "xor", "and", "or"]))(
            "g%d" % j, fanins)
        signals.append("g%d" % j)
    net.add_output("g%d" % (n_nodes - 1))
    net.add_output("g%d" % (n_nodes - 2))
    net.remove_dangling()
    return net


class TestRuggedExtras:
    def test_kernel_extraction_option(self):
        rng = random.Random(71)
        net = _random_network(rng)
        ref = net.copy()
        from repro.sis.rugged import SISOptions
        result = script_rugged(net, SISOptions(kernel_extraction=True))
        assert check_equivalence(ref, result.network).equivalent

    def test_full_espresso_option(self):
        rng = random.Random(73)
        net = _random_network(rng)
        ref = net.copy()
        from repro.sis.rugged import SISOptions
        base = script_rugged(net, SISOptions())
        full = script_rugged(net, SISOptions(full_espresso=True))
        assert check_equivalence(ref, full.network).equivalent
        assert full.network.literal_count() <= base.network.literal_count() + 2
