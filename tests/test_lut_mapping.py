"""Tests for the K-LUT FPGA mapper (Section VI item 4 extension)."""

import random

import pytest

from repro.bds import bds_optimize
from repro.circuits import build_circuit, parity_tree, ripple_adder
from repro.mapping.lut import map_luts
from repro.network import Network
from repro.verify import check_equivalence, simulate_equivalence


class TestLutMapping:
    def _check(self, net, k=5):
        result = map_luts(net, k=k)
        chk = check_equivalence(net, result.network)
        assert chk.equivalent, (chk.failing_output, chk.counterexample)
        for node in result.network.nodes.values():
            assert len(node.fanins) <= k, "LUT with too many inputs"
        return result

    def test_single_gate(self):
        net = Network()
        for n in "ab":
            net.add_input(n)
        net.add_output("y")
        net.add_and("y", ["a", "b"])
        result = self._check(net)
        assert result.lut_count == 1
        assert result.depth == 1

    def test_parity_packs_into_luts(self):
        net = parity_tree(8)
        result = self._check(net, k=4)
        # 8-input parity in 4-LUTs: 3 LUTs suffice (two 4-parities + join)
        # allow a little slack for the greedy cover.
        assert result.lut_count <= 4

    def test_adder(self):
        net = ripple_adder(4)
        result = self._check(net, k=5)
        assert result.lut_count <= 12

    def test_k_respected(self):
        net = parity_tree(16)
        for k in (3, 4, 6):
            result = self._check(net, k=k)
            assert result.k == k

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            map_luts(parity_tree(4), k=1)

    def test_random_networks(self):
        rng = random.Random(77)
        for _ in range(4):
            net = _random_network(rng)
            self._check(net)

    def test_output_alias(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_buf("y", "a")
        result = map_luts(net)
        assert result.network.eval({"a": True})["y"] is True

    def test_constants(self):
        net = Network()
        net.add_input("a")
        net.add_output("k")
        net.add_const("k", True)
        result = map_luts(net)
        assert result.network.eval({"a": False})["k"] is True

    def test_bds_improves_lut_count_on_xor_logic(self):
        # The paper's Section VI item 4 claim: BDS netlists map to fewer
        # LUTs on XOR-intensive logic than algebraic netlists do.
        from repro.sis import script_rugged
        net = build_circuit("C1355")
        bds_net = bds_optimize(net).network
        sis_net = script_rugged(net).network
        bds_luts = map_luts(bds_net, k=5)
        sis_luts = map_luts(sis_net, k=5)
        ok, _ = simulate_equivalence(net, bds_luts.network)
        assert ok
        assert bds_luts.lut_count <= sis_luts.lut_count


def _random_network(rng, n_inputs=5, n_nodes=12):
    net = Network("rand")
    signals = [net.add_input("i%d" % i) for i in range(n_inputs)]
    for j in range(n_nodes):
        fanins = rng.sample(signals, min(rng.choice([2, 2, 3]), len(signals)))
        getattr(net, "add_" + rng.choice(["and", "or", "xor"]))("g%d" % j, fanins)
        signals.append("g%d" % j)
    net.add_output("g%d" % (n_nodes - 1))
    net.add_output("g%d" % (n_nodes - 2))
    net.remove_dangling()
    return net
