"""Mutation tests for the BDD sanitizer: seed one corruption, assert the
sanitizer names the violated invariant.

Each test manufactures exactly the inconsistency a kernel bug would leave
behind (duplicate unique-table triple, stale computed-table entry,
order-violating edge, ...) by editing the manager's internals directly,
then checks that ``sanitize_bdd`` raises a :class:`CheckError` whose
``invariants`` list contains the right canonical name.
"""

import pytest

from repro.bdd import BDD, ONE, ZERO
from repro.bdd.manager import DEAD
from repro.check import CheckError, sanitize_bdd
from repro.check.bdd_sanitizer import (
    INV_COMPLEMENT,
    INV_COMPUTED,
    INV_DANGLING,
    INV_FREE_LIST,
    INV_NODES_BY_VAR,
    INV_ORDER,
    INV_REDUNDANT,
    INV_REFCOUNT,
    INV_VAR_COUNTS,
    INV_ROOTS,
    INV_TERMINAL,
    INV_TOMBSTONE,
    INV_UNIQUE,
    INV_VAR_MAPS,
)


def small_mgr():
    """A manager with three vars and two registered root functions."""
    mgr = BDD()
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.register_root(mgr.and_(mgr.var_ref(a), mgr.var_ref(b)))
    g = mgr.register_root(mgr.or_(f, mgr.var_ref(c)))
    return mgr, (a, b, c), (f, g)


def expect_invariant(mgr, invariant, level="full"):
    with pytest.raises(CheckError) as excinfo:
        sanitize_bdd(mgr, level=level)
    err = excinfo.value
    assert invariant in err.invariants, (
        "expected %r among %r" % (invariant, err.invariants))
    return err


def test_clean_manager_passes_both_levels():
    mgr, _, _ = small_mgr()
    for level in ("cheap", "full"):
        report = sanitize_bdd(mgr, level=level)
        assert report.ok
        assert report.invariants() == []
    assert mgr.perf.checks_run == 2
    assert mgr.perf.check_violations == 0


def test_clean_after_ops_and_gc():
    mgr, (a, b, c), (f, g) = small_mgr()
    h = mgr.register_root(mgr.xor_(f, g))
    mgr.compose(h, c, f)
    mgr.collect_garbage()
    report = sanitize_bdd(mgr, level="full")
    assert report.ok
    assert report.stats["reachable_from_roots"] == mgr.num_nodes_live


def test_invalid_level_rejected():
    mgr, _, _ = small_mgr()
    with pytest.raises(ValueError):
        sanitize_bdd(mgr, level="paranoid")


def test_duplicate_unique_triple():
    mgr, _, (f, _) = small_mgr()
    idx = f >> 1
    dup = len(mgr._var)
    mgr._var.append(mgr._var[idx])
    mgr._lo.append(mgr._lo[idx])
    mgr._hi.append(mgr._hi[idx])
    mgr._nodes_by_var[mgr._var[idx]].append(dup)
    err = expect_invariant(mgr, INV_UNIQUE)
    # Both slots of the duplicated triple are reported.
    refs = {r for v in err.report.violations for r in v.refs}
    assert (idx << 1) in refs and (dup << 1) in refs


def test_stale_computed_table_entry():
    mgr, (a, b, c), _ = small_mgr()
    tmp = mgr.and_(mgr.var_ref(b), mgr.var_ref(c))  # unregistered
    mgr.collect_garbage()  # tombstones tmp's node, clears the cache
    # A cache entry the kernel would still serve, pointing at the tombstone.
    mgr._cache.insert((0, tmp, ONE, ZERO), tmp)
    expect_invariant(mgr, INV_COMPUTED)
    # Cheap level skips the cache scan by design.
    report = sanitize_bdd(mgr, level="cheap")
    assert report.ok


def test_order_violating_edge():
    mgr = BDD()
    a, b = mgr.add_vars(["a", "b"])
    bad = mgr._mk_raw(b, mgr.var_ref(a), ONE)  # b (level 1) above a (level 0)
    mgr.register_root(bad)
    expect_invariant(mgr, INV_ORDER, level="cheap")


def test_redundant_node():
    mgr, (a, _, _), _ = small_mgr()
    mgr.register_root(mgr._mk_raw(a, ONE, ONE))
    expect_invariant(mgr, INV_REDUNDANT, level="cheap")


def test_complemented_then_edge():
    mgr, (a, _, _), _ = small_mgr()
    idx = len(mgr._var)
    mgr._var.append(a)
    mgr._lo.append(ONE)
    mgr._hi.append(ZERO)  # stored hi edges must never be complemented
    mgr._unique[(a, ONE, ZERO)] = idx
    mgr._nodes_by_var[a].append(idx)
    expect_invariant(mgr, INV_COMPLEMENT, level="cheap")


def test_dangling_edge():
    mgr, (_, _, c), _ = small_mgr()
    idx = len(mgr._var)
    mgr._var.append(c)
    mgr._lo.append(999 << 1)  # out-of-range child
    mgr._hi.append(ONE)
    mgr._unique[(c, 999 << 1, ONE)] = idx
    mgr._nodes_by_var[c].append(idx)
    err = expect_invariant(mgr, INV_DANGLING, level="cheap")
    assert err.dot  # the minimized dump renders despite the corruption


def test_live_slot_on_free_list():
    mgr, _, (f, _) = small_mgr()
    mgr._free.append(f >> 1)
    expect_invariant(mgr, INV_FREE_LIST, level="cheap")


def test_nonpositive_root_refcount():
    mgr, _, (f, _) = small_mgr()
    mgr._roots[f] = 0
    expect_invariant(mgr, INV_ROOTS, level="cheap")


def test_tombstone_leak_is_full_level_only():
    mgr, _, (f, g) = small_mgr()
    idx = g >> 1
    mgr.deregister_root(g)
    del mgr._unique[(mgr._var[idx], mgr._lo[idx], mgr._hi[idx])]
    mgr._var[idx] = DEAD  # tombstoned but never pushed onto the free list
    # Cheap must tolerate this: swap_adjacent legitimately leaves such
    # slots behind mid-sift (reclaimed at the next GC safe point).
    assert sanitize_bdd(mgr, level="cheap").ok
    expect_invariant(mgr, INV_TOMBSTONE, level="full")


def test_missing_nodes_by_var_entry():
    mgr, (a, _, _), _ = small_mgr()
    mgr._nodes_by_var[a] = []
    expect_invariant(mgr, INV_NODES_BY_VAR, level="full")


def test_refcount_drift():
    # The exact drift an unbalanced swap/reclaim would leave behind: a
    # stored per-slot count off by one versus the recount.
    mgr, _, (f, _) = small_mgr()
    mgr._ref[f >> 1] += 1
    expect_invariant(mgr, INV_REFCOUNT, level="full")
    mgr._ref[f >> 1] -= 1
    assert sanitize_bdd(mgr, level="full").ok


def test_refcount_array_length_mismatch():
    mgr, _, _ = small_mgr()
    mgr._ref.append(0)
    expect_invariant(mgr, INV_REFCOUNT, level="full")


def test_var_count_drift():
    mgr, (a, _, _), _ = small_mgr()
    mgr._var_counts[a] += 1
    expect_invariant(mgr, INV_VAR_COUNTS, level="full")
    # Cheap level does not recount (it is an O(slots) structural pass).
    mgr2, (a2, _, _), _ = small_mgr()
    mgr2._var_counts[a2] += 1
    assert sanitize_bdd(mgr2, level="cheap").ok


def test_corrupt_terminal_slot():
    mgr, _, _ = small_mgr()
    mgr._lo[0] = ZERO
    expect_invariant(mgr, INV_TERMINAL, level="cheap")


def test_corrupt_var_level_maps():
    mgr, (a, b, _), _ = small_mgr()
    mgr._var2level[a] = mgr._var2level[b]
    expect_invariant(mgr, INV_VAR_MAPS, level="cheap")


def test_violation_counters_and_report_shape():
    mgr, _, (f, _) = small_mgr()
    mgr._roots[f] = -1
    before = mgr.perf.check_violations
    report = sanitize_bdd(mgr, raise_on_violation=False)
    assert not report.ok
    assert mgr.perf.check_violations > before
    # Formatting mentions the subject and each violation's invariant.
    text = report.format()
    assert "BDD manager" in text and INV_ROOTS in text
