"""Tests for the additional circuit generators (extra.py)."""

import itertools
import random

import pytest

from repro.bds import bds_optimize
from repro.circuits.extra import (
    carry_lookahead_adder,
    decoder,
    gray_converter,
    priority_encoder,
    rnd4_1,
)
from repro.circuits.registry import build_circuit
from repro.verify import check_equivalence


class TestCarryLookahead:
    @pytest.mark.parametrize("bits,group", [(4, 2), (4, 4), (6, 3)])
    def test_adds_correctly(self, bits, group):
        net = carry_lookahead_adder(bits, group)
        rng = random.Random(7)
        for _ in range(50):
            a, b = rng.randrange(1 << bits), rng.randrange(1 << bits)
            assignment = {}
            for i in range(bits):
                assignment["a%d" % i] = bool(a >> i & 1)
                assignment["b%d" % i] = bool(b >> i & 1)
            vals = net.eval(assignment)
            got = sum(int(vals["s%d" % i]) << i for i in range(bits))
            got += int(vals["cout"]) << bits
            assert got == a + b, (a, b)

    def test_equivalent_to_ripple(self):
        from repro.circuits import ripple_adder
        cla = carry_lookahead_adder(4, 2)
        ripple = ripple_adder(4)
        # Same function despite different structure and output names.
        for a, b in itertools.product(range(16), repeat=2):
            assignment = {}
            for i in range(4):
                assignment["a%d" % i] = bool(a >> i & 1)
                assignment["b%d" % i] = bool(b >> i & 1)
            v1 = cla.eval(assignment)
            v2 = ripple.eval(assignment)
            got1 = sum(int(v1["s%d" % i]) << i for i in range(4))
            got2 = sum(int(v2["fa%d_s" % i]) << i for i in range(4))
            assert got1 == got2


class TestDecoder:
    def test_one_hot(self):
        net = decoder(3)
        for value in range(8):
            assignment = {"en": True}
            for i in range(3):
                assignment["s%d" % i] = bool(value >> i & 1)
            vals = net.eval(assignment)
            for out in range(8):
                assert vals["o%d" % out] == (out == value)

    def test_enable(self):
        net = decoder(2)
        assignment = {"en": False, "s0": True, "s1": False}
        assert not any(net.eval(assignment).values())


class TestPriorityEncoder:
    def test_highest_bit_wins(self):
        net = priority_encoder(8)
        rng = random.Random(11)
        for _ in range(60):
            word = rng.getrandbits(8)
            assignment = {"r%d" % i: bool(word >> i & 1) for i in range(8)}
            vals = net.eval(assignment)
            if word == 0:
                assert vals["valid"] is False
            else:
                expected = word.bit_length() - 1
                got = sum(int(vals["idx%d" % b]) << b for b in range(3))
                assert got == expected, bin(word)
                assert vals["valid"] is True


class TestGray:
    def test_roundtrip_functions(self):
        net = gray_converter(5)
        for value in range(32):
            assignment = {"x%d" % i: bool(value >> i & 1) for i in range(5)}
            vals = net.eval(assignment)
            gray = sum(int(vals["gray%d" % i]) << i for i in range(5))
            assert gray == value ^ (value >> 1)
            binary = sum(int(vals["bin%d" % i]) << i for i in range(5))
            expected = value
            # gray->binary of x (treated as gray): prefix xor from the top.
            acc = 0
            out = 0
            for i in range(4, -1, -1):
                acc ^= (value >> i) & 1
                out |= acc << i
            assert binary == out


class TestRnd41:
    def test_truth_table(self):
        net = rnd4_1()
        for bits in itertools.product([False, True], repeat=4):
            x1, x2, x4, x5 = bits
            g = (x1 == (not x4))
            h = x2 and (x5 or (x1 and x4))
            expected = g == h
            assignment = {"x1": x1, "x2": x2, "x4": x4, "x5": x5}
            assert net.eval(assignment)["F"] == expected

    def test_bds_recovers_xnor_structure(self):
        net = rnd4_1()
        result = bds_optimize(net)
        assert check_equivalence(net, result.network).equivalent
        # The paper's Example 6 keeps the XNOR structure (the flat SOP of
        # this function needs far more literals than the XNOR form).
        stats = result.decomp_stats
        assert stats.simple_xnor + stats.boolean_xnor >= 1
        assert result.network.literal_count() <= 20


class TestRegistryNames:
    @pytest.mark.parametrize("name", ["cla8", "dec3", "prio8", "gray6",
                                      "rnd4_1"])
    def test_buildable(self, name):
        net = build_circuit(name)
        net.check()
        assert net.node_count() >= 1

    def test_flows_on_new_circuits(self):
        for name in ("cla4", "dec3", "prio4"):
            net = build_circuit(name)
            result = bds_optimize(net)
            assert check_equivalence(net, result.network).equivalent, name
