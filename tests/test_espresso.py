"""Tests for the REDUCE step and the full espresso iteration."""

import itertools
import random


from repro.sop.cover import cover_eval, literal_count
from repro.sop.cube import lit
from repro.sop.minimize import espresso_minimize, reduce_cubes, simplify_cover


def _truth(cover, nvars):
    return tuple(
        cover_eval(cover, dict(enumerate(bits)))
        for bits in itertools.product([False, True], repeat=nvars)
    )


def _random_cover(rng, nvars=4, ncubes=6):
    cover = []
    for _ in range(ncubes):
        cube = []
        for v in range(nvars):
            r = rng.random()
            if r < 0.3:
                cube.append(lit(v, True))
            elif r < 0.6:
                cube.append(lit(v, False))
        cover.append(frozenset(cube))
    return cover


class TestReduce:
    def test_preserves_function(self):
        rng = random.Random(3)
        for _ in range(40):
            cover = _random_cover(rng)
            reduced = reduce_cubes(cover)
            assert _truth(reduced, 4) == _truth(cover, 4)

    def test_reduces_overlapping_cube(self):
        # f = a + ab... the cube 'ab' has no essential part of its own...
        # classic example: f = a b' + b (cube a b' is essential on a b'=1).
        # With f = a + a'b, the cube a can shrink? a's essential part is
        # a b' (a b is covered by nothing else)... use f = ab + b:
        # cube ab is fully covered by b -> untouched (irredundant's job);
        # use f = a + ab: second cube's minterms all covered by 'a'.
        cover = [frozenset({lit(0)}),
                 frozenset({lit(0), lit(1)})]
        reduced = reduce_cubes(cover)
        assert _truth(reduced, 2) == _truth(cover, 2)

    def test_reduce_enables_better_expand(self):
        # The textbook espresso case where one pass gets stuck:
        # f covered by overlapping primes; reduce frees a cube, the next
        # expand merges differently. At minimum, espresso never does worse
        # than the single pass.
        rng = random.Random(9)
        for _ in range(25):
            cover = _random_cover(rng, nvars=5, ncubes=8)
            single = simplify_cover(cover)
            full = espresso_minimize(cover)
            assert _truth(full, 5) == _truth(cover, 5)
            assert literal_count(full) <= literal_count(single)

    def test_respects_dc(self):
        rng = random.Random(13)
        for _ in range(20):
            onset = _random_cover(rng, ncubes=4)
            dc = _random_cover(rng, ncubes=2)
            out = espresso_minimize(onset, dc)
            t_on, t_dc, t_out = _truth(onset, 4), _truth(dc, 4), _truth(out, 4)
            for got, on, d in zip(t_out, t_on, t_dc):
                if not d:
                    assert got == on


class TestEspresso:
    def test_constants(self):
        assert espresso_minimize([]) == []
        assert espresso_minimize([frozenset()]) == [frozenset()]

    def test_classic_minimization(self):
        # f = a'b'c' + a'b'c + a'bc + abc + ab'c  (5 minterms over 3 vars)
        # minimal SOP: a'b' + c  ->  4 literals... verify <= 5.
        def mt(a, b, c):
            return frozenset({lit(0, a), lit(1, b), lit(2, c)})
        cover = [mt(False, False, False), mt(False, False, True),
                 mt(False, True, True), mt(True, True, True),
                 mt(True, False, True)]
        out = espresso_minimize(cover)
        assert _truth(out, 3) == _truth(cover, 3)
        assert literal_count(out) <= 4
