"""Tests for the technology mapper: subject graphs, matching, area/delay."""

import itertools
import random


from repro.mapping import map_network, mcnc_library
from repro.mapping.genlib import pattern_placeholders
from repro.mapping.subject import SubjectGraph, build_subject
from repro.network import Network
from repro.sop.cube import lit
from repro.verify import check_equivalence


class TestLibrary:
    def test_has_inverter_and_xor(self):
        lib = mcnc_library()
        assert lib.inverter.name == "inv1"
        names = {c.name for c in lib}
        assert {"nand2", "nor2", "xor2", "xnor2", "mux21", "aoi21"} <= names

    def test_pattern_placeholders(self):
        lib = mcnc_library()
        xor = lib.by_name("xor2")
        assert pattern_placeholders(xor.pattern) == ["a", "b"]

    def test_cell_covers_match_semantics(self):
        # Each cell's cover must agree with its pattern semantics.
        lib = mcnc_library()
        from repro.sop.cover import cover_eval

        def eval_pattern(p, env):
            if isinstance(p, str):
                return env[p]
            if p[0] == "inv":
                return not eval_pattern(p[1], env)
            return not (eval_pattern(p[1], env) and eval_pattern(p[2], env))

        for cell in lib:
            pins = cell.inputs
            for bits in itertools.product([False, True], repeat=len(pins)):
                env = dict(zip(pins, bits))
                got = cover_eval(cell.cover, dict(enumerate(bits)))
                assert got == eval_pattern(cell.pattern, env), cell.name


class TestSubjectGraph:
    def test_hash_consing(self):
        sg = SubjectGraph()
        a, b = sg.leaf("a"), sg.leaf("b")
        n1 = sg.nand(a, b)
        n2 = sg.nand(b, a)
        assert n1 == n2
        assert sg.inv(sg.inv(n1)) == n1

    def test_single_fanout_inlined(self):
        net = Network()
        for n in "abc":
            net.add_input(n)
        net.add_output("y")
        net.add_and("t", ["a", "b"])    # single consumer -> inlined
        net.add_and("y", ["t", "c"])
        sg = build_subject(net)
        assert "t" not in sg.roots
        assert "y" in sg.roots

    def test_multi_fanout_materialized(self):
        net = Network()
        for n in "ab":
            net.add_input(n)
        net.add_output("y1")
        net.add_output("y2")
        net.add_and("t", ["a", "b"])
        net.add_not("y1", "t")
        net.add_buf("y2", "t")
        sg = build_subject(net)
        assert "t" in sg.roots


class TestMapping:
    def _check(self, net):
        result = map_network(net)
        chk = check_equivalence(net, result.network)
        assert chk.equivalent, (chk.failing_output, chk.counterexample)
        return result

    def test_inverter(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_not("y", "a")
        result = self._check(net)
        assert result.gate_count == 1
        assert result.gates[0].cell.name == "inv1"

    def test_and_chain_uses_wide_nands(self):
        net = Network()
        for n in "abcd":
            net.add_input(n)
        net.add_output("y")
        net.add_and("y", ["a", "b", "c", "d"])
        result = self._check(net)
        # AND4 = nand4 + inv (5 units) beats 3x and2 (9 units).
        assert result.area <= 6 * 464.0

    def test_xor_preserved(self):
        net = Network()
        for n in "ab":
            net.add_input(n)
        net.add_output("y")
        net.add_xor("y", ["a", "b"])
        result = self._check(net)
        assert result.cell_histogram.get("xor2") == 1
        assert result.gate_count == 1

    def test_mux_preserved(self):
        net = Network()
        for n in "sab":
            net.add_input(n)
        net.add_output("y")
        net.add_mux("y", "s", "a", "b")
        result = self._check(net)
        assert result.cell_histogram.get("mux21") == 1

    def test_aoi_found(self):
        # y = ~(a b + c).
        net = Network()
        for n in "abc":
            net.add_input(n)
        net.add_output("y")
        net.add_node("y", ["a", "b", "c"],
                     [frozenset({lit(0, False), lit(2, False)}),
                      frozenset({lit(1, False), lit(2, False)})])
        result = self._check(net)
        assert "aoi21" in result.cell_histogram or result.area <= 4 * 464.0

    def test_random_networks_verified(self):
        rng = random.Random(41)
        for _ in range(5):
            net = _random_network(rng)
            self._check(net)

    def test_delay_positive_and_bounded(self):
        net = Network()
        names = [net.add_input("x%d" % i) for i in range(8)]
        prev = names[0]
        for i in range(1, 8):
            cur = "t%d" % i if i < 7 else "y"
            net.add_xor(cur, [prev, names[i]])
            prev = cur
        net.add_output("y")
        result = self._check(net)
        assert 0 < result.delay <= 7 * 2.0 + 1e-9

    def test_constant_output(self):
        net = Network()
        net.add_input("a")
        net.add_output("k")
        net.add_const("k", True)
        result = map_network(net)
        assert result.network.eval({"a": False})["k"] is True

    def test_output_alias_of_input(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_buf("y", "a")
        result = self._check(net)
        assert result.network.eval({"a": True})["y"] is True


def _random_network(rng, n_inputs=5, n_nodes=10):
    net = Network("rand")
    signals = [net.add_input("i%d" % i) for i in range(n_inputs)]
    for j in range(n_nodes):
        fanins = rng.sample(signals, min(rng.choice([2, 2, 3]), len(signals)))
        getattr(net, "add_" + rng.choice(["and", "or", "xor"]))("g%d" % j, fanins)
        signals.append("g%d" % j)
    net.add_output("g%d" % (n_nodes - 1))
    net.add_output("g%d" % (n_nodes - 2))
    net.remove_dangling()
    return net
