"""Kernel performance smoke tests (opt-in: ``pytest -m perf``).

Not part of the tier-1 suite -- these assert *perf-shaped* properties
(cache effectiveness, GC pressure, wall-clock ceilings) that are
environment-sensitive, with thresholds loose enough to only catch gross
regressions (an accidentally unbounded cache, GC never firing, a
quadratic hot path).
"""

import time

import pytest

from repro.bds import BDSOptions, bds_optimize
from repro.circuits import build_circuit

pytestmark = pytest.mark.perf


def test_flow_kernel_health_on_c880():
    net = build_circuit("C880")
    t0 = time.perf_counter()
    result = bds_optimize(net, BDSOptions())
    elapsed = time.perf_counter() - t0
    perf = result.perf

    # The computed table must be doing real work on a circuit this size.
    assert perf["ite_calls"] > 1000
    assert perf["cache_hit_rate"] > 0.10, (
        "cache hit rate collapsed: %.3f" % perf["cache_hit_rate"])
    # Bounded table: slot count can never exceed the configured maximum.
    assert perf["cache_slots"] <= 1 << 16

    # GC keeps the live set a bounded fraction of everything ever built.
    assert perf["peak_live_nodes"] > 0
    assert perf["peak_live_nodes"] <= perf["peak_allocated_nodes"]

    # Gross wall-clock ceiling only (C880 runs in well under a second on
    # any machine this repo targets; 30s means something is quadratic).
    assert elapsed < 30.0


def test_reorder_swap_budget_on_c1355():
    """Counter-based (deterministic) budget on the sifting engine.

    The flow's per-supernode sifts on C1355 take ~5.7k adjacent swaps
    with lower-bound pruning in place; losing the prune (or regressing to
    full per-variable sweeps) multiplies that by 3-4x.  Counters, not
    wall-clock, so the budget is machine-independent.
    """
    net = build_circuit("C1355")
    result = bds_optimize(net, BDSOptions())
    perf = result.perf
    assert perf["reorder_passes"] > 0
    assert perf["reorder_swaps"] <= 8000, (
        "sifting swap budget blown: %d swaps (pruning regression?)"
        % perf["reorder_swaps"])
    # The incremental engine never re-traverses from the roots to measure
    # size: the only full traversals are the decompose entry counts, one
    # per decomposition pass -- nowhere near one per swap.
    assert perf["live_traversals"] < perf["reorder_swaps"] / 10


def test_gc_reclaims_during_eliminate():
    net = build_circuit("C1355")
    result = bds_optimize(net, BDSOptions())
    perf = result.perf
    assert perf["gc_sweeps"] >= 1, "auto-GC never fired on C1355"
    assert perf["gc_reclaimed"] > 0
    # Reclaimed slots must actually be recycled by later allocations.
    assert perf["nodes_reused"] > 0
