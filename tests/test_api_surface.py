"""Coverage for remaining public API surface: network editing helpers,
partition queries, stats objects, and package exports."""

import itertools

import pytest

from repro.decomp.engine import DecompStats
from repro.decomp.ftree import op2, var_leaf
from repro.network import Network
from repro.network.eliminate import PartitionedNetwork
from repro.sop.cube import lit


class TestNetworkEditing:
    def test_replace_signal(self):
        net = Network()
        for n in "abc":
            net.add_input(n)
        net.add_output("y")
        net.add_and("y", ["a", "b"])
        net.replace_signal("b", "c")
        assert net.nodes["y"].fanins == ["a", "c"]
        assert net.eval({"a": True, "b": False, "c": True})["y"] is True

    def test_stats_dict(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_not("y", "a")
        s = net.stats()
        assert s == {"inputs": 1, "outputs": 1, "nodes": 1, "literals": 1,
                     "depth": 1}

    def test_repr(self):
        net = Network("named")
        assert "named" in repr(net)
        net.add_input("a")
        net.add_output("y")
        node = net.add_node("y", ["a"], [frozenset({lit(0)})])
        assert "y" in repr(node)

    def test_eval_words_custom_width(self):
        net = Network()
        net.add_input("a")
        net.add_output("y")
        net.add_not("y", "a")
        out = net.eval_words({"a": 0b1010}, width=4)
        assert out["y"] == 0b0101

    def test_node_constant_value(self):
        net = Network()
        net.add_input("a")
        k1 = net.add_node("k1", [], [frozenset()])
        k0 = net.add_node("k0", [], [])
        assert k1.constant_value() is True
        assert k0.constant_value() is False
        g = net.add_node("g", ["a"], [frozenset({lit(0)})])
        assert g.constant_value() is None


class TestPartitionQueries:
    def _net(self):
        net = Network()
        for n in "abc":
            net.add_input(n)
        net.add_output("y")
        net.add_and("t", ["a", "b"])
        net.add_or("y", ["t", "c"])
        return net

    def test_fanin_signals(self):
        part = PartitionedNetwork.from_network(self._net())
        assert part.fanin_signals("y") == ["c", "t"]
        assert part.fanin_signals("t") == ["a", "b"]

    def test_fanouts(self):
        part = PartitionedNetwork.from_network(self._net())
        assert part.fanouts()["t"] == ["y"]

    def test_pollution_zero_when_fresh(self):
        part = PartitionedNetwork.from_network(self._net())
        assert 0.0 <= part._pollution() < 1.0


class TestStatsObjects:
    def test_decomp_stats_total(self):
        s = DecompStats(simple_and=2, boolean_xnor=3, shannon=1)
        assert s.total() == 6
        d = s.as_dict()
        assert d["boolean_xnor"] == 3

    def test_ftree_iter_nodes_shares(self):
        shared = op2("and", var_leaf("a"), var_leaf("b"))
        tree = op2("or", shared, op2("xor", shared, var_leaf("c")))
        nodes = list(tree.iter_nodes())
        # The shared object appears exactly once in the iteration.
        assert sum(1 for t in nodes if t is shared) == 1


class TestPackageExports:
    def test_top_level_imports(self):
        import repro
        from repro.bdd import BDD, and_exists, sift, transfer
        from repro.bds import bds_optimize
        from repro.decomp import decompose, extract_sharing
        from repro.mapping import analyze_timing, map_luts, map_network, \
            parse_genlib
        from repro.network import parse_blif
        from repro.sis import script_rugged
        from repro.verify import check_equivalence
        assert repro.__version__
