"""Tests for the equivalence checkers: BDD CEC edge cases, exhaustive
simulation, and the unified verify runner."""

import pytest

from repro.circuits import build_circuit
from repro.network import Network, parse_blif
from repro.sop.cube import lit
from repro.verify import (
    EXHAUSTIVE_LIMIT,
    VerifyError,
    check_equivalence,
    require_equivalent,
    simulate_equivalence,
    verify_networks,
)


def _corrupted_add4():
    """add4 with the first sum node's XOR cover flipped to XNOR."""
    net = build_circuit("add4")
    bad = net.copy()
    bad.nodes["fa0_s"].cover = [frozenset({lit(0), lit(1)}),
                                frozenset({lit(0, False), lit(1, False)})]
    return net, bad


class TestCheckEquivalence:
    def test_counterexample_actually_distinguishes(self):
        net, bad = _corrupted_add4()
        res = check_equivalence(net, bad)
        assert not res.equivalent
        assert res.failing_output is not None
        cex = res.counterexample
        assert set(cex) == set(net.inputs)
        got_a = net.eval(cex)
        got_b = bad.eval(cex)
        assert got_a[res.failing_output] != got_b[res.failing_output]

    def test_mismatched_inputs_raise(self):
        a = parse_blif(".model a\n.inputs x\n.outputs y\n"
                       ".names x y\n1 1\n.end")
        b = parse_blif(".model b\n.inputs z\n.outputs y\n"
                       ".names z y\n1 1\n.end")
        with pytest.raises(ValueError, match="input sets differ"):
            check_equivalence(a, b)

    def test_mismatched_outputs_raise(self):
        a = parse_blif(".model a\n.inputs x\n.outputs y\n"
                       ".names x y\n1 1\n.end")
        b = parse_blif(".model b\n.inputs x\n.outputs w\n"
                       ".names x w\n1 1\n.end")
        with pytest.raises(ValueError, match="output sets differ"):
            check_equivalence(a, b)

    def test_size_cap_reports_unknown_not_pass(self):
        net = build_circuit("add4")
        res = check_equivalence(net, net.copy(), size_cap=1)
        assert not res.equivalent           # unknown is not a pass
        assert res.counterexample is None
        assert res.unknown_outputs
        assert set(res.unknown_outputs) | set(res.checked_outputs) \
            == set(net.outputs)

    def test_identical_networks_prove_all_outputs(self):
        net = build_circuit("parity8")
        res = check_equivalence(net, net.copy())
        assert res.equivalent
        assert sorted(res.checked_outputs) == sorted(net.outputs)
        assert not res.unknown_outputs


class TestSimulateEquivalence:
    def test_exhaustive_catches_single_minterm_bug(self):
        # AND of 12 inputs vs constant 0: they differ on exactly one of
        # the 4096 assignments -- random patterns would almost surely
        # miss it, the exhaustive path cannot.
        n = EXHAUSTIVE_LIMIT
        names = ["i%d" % k for k in range(n)]
        a = Network("wide_and")
        b = Network("const0")
        for net in (a, b):
            for name in names:
                net.add_input(name)
            net.add_output("y")
        a.add_node("y", names,
                   [frozenset(lit(k) for k in range(n))])
        b.add_const("y", False)
        agree, cex = simulate_equivalence(a, b)
        assert not agree
        assert cex == {name: True for name in names}

    def test_exhaustive_agreement_is_a_proof(self):
        net = build_circuit("add4")
        assert len(net.inputs) <= EXHAUSTIVE_LIMIT
        agree, cex = simulate_equivalence(net, net.copy())
        assert agree and cex is None

    def test_seeded_random_fallback_reproduces(self):
        net = build_circuit("bshift32")   # > EXHAUSTIVE_LIMIT inputs
        assert len(net.inputs) > EXHAUSTIVE_LIMIT
        bad = net.copy()
        out = bad.outputs[0]
        node = bad.nodes[out]
        node.cover = [frozenset()]                 # stuck-at-1 miscompile
        first = simulate_equivalence(net, bad, seed=7)
        second = simulate_equivalence(net, bad, seed=7)
        assert first == second
        assert not first[0]


class TestVerifyRunner:
    def test_modes_agree_on_equivalent(self):
        net = build_circuit("add4")
        for mode in ("sim", "cec", "full"):
            outcome = verify_networks(net, net.copy(), mode=mode)
            assert outcome.equivalent, mode
            assert outcome.outputs_checked > 0

    def test_full_mode_exhaustive_crosscheck_is_a_proof(self):
        net = build_circuit("add4")        # <= EXHAUSTIVE_LIMIT inputs
        outcome = verify_networks(net, net.copy(), mode="full", size_cap=1)
        assert outcome.equivalent
        assert outcome.proven              # full truth table = proof
        assert not outcome.unknown_outputs

    def test_full_mode_random_crosscheck_stays_unproven(self):
        net = build_circuit("bshift32")    # > EXHAUSTIVE_LIMIT inputs
        outcome = verify_networks(net, net.copy(), mode="full", size_cap=1)
        assert outcome.equivalent          # simulation vouches for them
        assert not outcome.proven          # ... but it is not a proof
        assert outcome.unknown_outputs

    def test_require_equivalent_raises_with_counterexample(self):
        net, bad = _corrupted_add4()
        with pytest.raises(VerifyError) as info:
            require_equivalent(net, bad, mode="full")
        err = info.value
        assert err.mode == "full"
        assert err.failing_output is not None
        assert set(err.counterexample) == set(net.inputs)

    def test_unknowns_do_not_raise(self):
        net = build_circuit("add4")
        outcome = require_equivalent(net, net.copy(), mode="cec",
                                     size_cap=1)
        assert outcome.unknown_outputs

    def test_bad_mode_rejected(self):
        net = build_circuit("add4")
        with pytest.raises(ValueError):
            verify_networks(net, net.copy(), mode="nope")
