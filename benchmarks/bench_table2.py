"""Table II: BDS vs SIS on the arithmetic circuit family.

Regenerates the paper's Table II: barrel shifters (bshiftN) and array
multipliers (mNxN) of growing size, with gates/area/delay/CPU per system
and the *speedup* column.  The paper's shape: BDS ~100x faster on average,
with the speedup growing with circuit size (3.9x at bshift16 up to >560x
at bshift512), at slightly larger (+-few %) area.

Sizes are scaled to a pure-Python runtime (see DESIGN.md); the assertion
is on the trend, not the absolute factor.
"""

import pytest

from common import format_table, run_system
from conftest import register_table
from repro.circuits import TABLE2_MULTIPLIERS, TABLE2_SHIFTERS, build_circuit

# Paper's Table II (gates, area, delay, CPU) and speedup for reference.
PAPER_TABLE2 = {
    "bshift16": ((158, 406.0, 19.0, 3.9), (145, 376.0, 21.8, 1.0), 3.9),
    "bshift32": ((292, 774.0, 27.5, 19.1), (255, 704.0, 31.1, 2.3), 8.3),
    "bshift64": ((653, 1796.0, 34.9, 100.2), (570, 1656.0, 47.2, 6.5), 15.4),
    "bshift128": ((1478, 4237.0, 55.5, 643.9), (1193, 3750.0, 75.3, 22.9), 28.1),
    "m2x2": ((8, 17.0, 9.1, 0.2), (11, 22.0, 5.7, 0.1), 2.0),
    "m4x4": ((97, 220.0, 56.1, 2.7), (112, 256.0, 37.5, 0.4), 6.7),
    "m8x8": ((514, 1224.0, 121.2, 42.4), (561, 1351.0, 81.8, 2.2), 19.3),
    "m16x16": ((2312, 5678.0, 264.0, 110.8), (2517, 6111.0, 186.5, 9.7), 11.4),
}

import os

CIRCUITS = TABLE2_SHIFTERS + TABLE2_MULTIPLIERS
if os.environ.get("REPRO_TABLE2_LARGE"):
    # Opt-in larger sizes (minutes of runtime in pure Python); the trend
    # toward the paper's biggest entries continues.
    CIRCUITS = CIRCUITS + ["bshift128", "m12x12"]

_results = {}


@pytest.mark.parametrize("name", CIRCUITS)
def test_table2_circuit(benchmark, name):
    net = build_circuit(name)
    sis = run_system(net, "sis")

    def bds_run():
        return run_system(net, "bds")

    bds = benchmark.pedantic(bds_run, rounds=1, iterations=1)
    assert sis.verified and bds.verified, name
    benchmark.extra_info["speedup"] = sis.cpu / max(bds.cpu, 1e-9)
    _results[name] = (sis, bds)
    if len(_results) == len(CIRCUITS):
        _emit()


def _emit():
    header = ("%-9s | %6s %9s %7s %8s | %6s %9s %7s %8s | %8s"
              % ("circuit", "gates", "area", "delay", "CPU[s]",
                 "gates", "area", "delay", "CPU[s]", "speedup"))
    rows = []
    shifter_speedups = []
    mult_speedups = []
    for name in CIRCUITS:
        sis, bds = _results[name]
        speedup = sis.cpu / max(bds.cpu, 1e-9)
        rows.append("%-9s | %6d %9.0f %7.2f %8.3f | %6d %9.0f %7.2f %8.3f | %7.1fx"
                    % (name, sis.gates, sis.area, sis.delay, sis.cpu,
                       bds.gates, bds.area, bds.delay, bds.cpu, speedup))
        (shifter_speedups if name.startswith("bshift") else mult_speedups
         ).append(speedup)
    footer = [
        "SHAPE     shifter speedups by size: %s"
        % " ".join("%.1fx" % s for s in shifter_speedups),
        "          multiplier speedups by size: %s"
        % " ".join("%.1fx" % s for s in mult_speedups),
        "          (paper: 3.9x -> 8.3x -> 15.4x -> 28.1x -> 300x shifters;"
        " 2.0x -> 6.7x -> 19.3x multipliers)",
    ]
    register_table("table2", format_table(
        "Table II -- arithmetic circuits, SIS (left) vs BDS (right)",
        header, rows, "\n".join(footer)))


def test_table2_speedup_grows_with_size(benchmark):
    """The Table II headline: the BDS speedup grows with circuit size."""

    def measure():
        small = _speedup("bshift8")
        large = _speedup("bshift64")
        return small, large

    small, large = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert large > small, (
        "speedup should grow with size: bshift8 %.1fx vs bshift64 %.1fx"
        % (small, large))


def _speedup(name):
    net = build_circuit(name)
    sis = run_system(net, "sis", verify=False)
    bds = run_system(net, "bds", verify=False)
    return sis.cpu / max(bds.cpu, 1e-9)
