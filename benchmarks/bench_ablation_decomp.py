"""Ablation (Sections III-IV): contribution of each decomposition type.

DESIGN.md calls out the engine's priority list as the core design choice;
this bench switches each decomposition family off and measures the damage
on one AND/OR-intensive and one XOR-intensive circuit:

* full engine (paper configuration),
* no XNOR decompositions (neither x-dominators nor Theorem 6),
* no functional MUX,
* no generalized (Boolean) dominators,
* Shannon-only (every structural search disabled).

The paper's expectation: XOR circuits collapse to much worse literal
counts without XNOR decomposition; random logic barely cares.
"""

import pytest

from common import format_table
from conftest import register_table
from repro.bds import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.decomp.engine import DecompOptions
from repro.verify import simulate_equivalence

CONFIGS = [
    ("full", DecompOptions()),
    ("no-xnor", DecompOptions(enable_bool_xnor=False,
                              enable_x_dominator=False)),
    ("no-mux", DecompOptions(enable_mux=False)),
    ("no-generalized", DecompOptions(enable_generalized=False)),
    ("shannon-only", DecompOptions(enable_simple=False, enable_mux=False,
                                   enable_generalized=False,
                                   enable_bool_xnor=False)),
]

CIRCUITS = ["C1355", "pair"]

_results = {}


@pytest.mark.parametrize("circuit", CIRCUITS)
@pytest.mark.parametrize("config_name",
                         [name for name, _ in CONFIGS])
def test_decomposition_ablation(benchmark, circuit, config_name):
    options = dict(CONFIGS)[config_name]
    net = build_circuit(circuit)

    def run():
        return bds_optimize(net, BDSOptions(decomp=options))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ok, _ = simulate_equivalence(net, result.network)
    assert ok, (circuit, config_name)
    stats = result.decomp_stats
    _results[(circuit, config_name)] = (
        result.network.literal_count(),
        result.network.node_count(),
        stats.simple_xnor + stats.boolean_xnor,
        stats.functional_mux,
        stats.shannon,
    )
    if len(_results) == len(CIRCUITS) * len(CONFIGS):
        _emit()


def _emit():
    header = ("%-9s %-14s | %8s %6s %6s %5s %8s"
              % ("circuit", "config", "literals", "nodes", "xnors", "muxes",
                 "shannon"))
    rows = []
    for circuit in CIRCUITS:
        for config_name, _ in CONFIGS:
            lits, nodes, xnors, muxes, shannon = _results[(circuit, config_name)]
            rows.append("%-9s %-14s | %8d %6d %6d %5d %8d"
                        % (circuit, config_name, lits, nodes, xnors, muxes,
                           shannon))
    full_xor = _results[("C1355", "full")][0]
    crippled_xor = _results[("C1355", "no-xnor")][0]
    footer = ("shape: disabling XNOR on the XOR-intensive circuit costs "
              "%.0f%% extra literals" % (100.0 * (crippled_xor - full_xor)
                                         / max(full_xor, 1)))
    register_table("ablation_decomp", format_table(
        "Decomposition-type ablation (BDS engine)", header, rows, footer))
    assert crippled_xor >= full_xor