"""Microbenchmarks of the BDD substrate.

Not a paper table -- these keep the performance of the primitives that
every experiment depends on (ITE throughput, sifting, transfer, ISOP)
visible in the benchmark report, so regressions in the substrate are
caught next to the system-level numbers.
"""

import random


from repro.bdd import BDD, transfer_many
from repro.bdd.isop import isop
from repro.bdd.reorder import sift
from repro.bdd.traverse import node_count


def _build_alu_like(mgr, n=10, seed=17):
    rng = random.Random(seed)
    vs = [mgr.new_var() for _ in range(n)]
    refs = [mgr.var_ref(v) for v in vs]
    for _ in range(120):
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
    return vs, refs[-1]


def test_ite_throughput(benchmark):
    def run():
        mgr = BDD()
        _, f = _build_alu_like(mgr)
        return mgr.num_nodes_allocated

    nodes = benchmark(run)
    assert nodes > 100


def test_adder_bdd_construction(benchmark):
    def run():
        mgr = BDD()
        bits = 12
        a = [mgr.new_var("a%d" % i) for i in range(bits)]
        b = [mgr.new_var("b%d" % i) for i in range(bits)]
        carry = None
        outs = []
        for i in range(bits):
            ra, rb = mgr.var_ref(a[i]), mgr.var_ref(b[i])
            if carry is None:
                outs.append(mgr.xor_(ra, rb))
                carry = mgr.and_(ra, rb)
            else:
                t = mgr.xor_(ra, rb)
                outs.append(mgr.xor_(t, carry))
                carry = mgr.or_(mgr.and_(t, carry), mgr.and_(ra, rb))
        return node_count(mgr, carry)

    size = benchmark(run)
    assert size > 10


def test_sifting(benchmark):
    def run():
        mgr = BDD()
        # Interleaved-AND function: sifting has real work to do.
        a = [mgr.new_var("a%d" % i) for i in range(6)]
        b = [mgr.new_var("b%d" % i) for i in range(6)]
        f = 1  # ZERO
        for ai, bi in zip(a, b):
            f = mgr.or_(f, mgr.and_(mgr.var_ref(ai), mgr.var_ref(bi)))
        return sift(mgr, [f])

    final = benchmark(run)
    assert final <= 12


def test_transfer(benchmark):
    mgr = BDD()
    _, f = _build_alu_like(mgr)

    def run():
        return transfer_many(mgr, [f]).manager.num_nodes_allocated

    nodes = benchmark(run)
    assert nodes > 1


def test_isop_extraction(benchmark):
    mgr = BDD()
    _, f = _build_alu_like(mgr, n=8, seed=23)

    def run():
        return len(isop(mgr, f))

    cubes = benchmark(run)
    assert cubes >= 1
