"""Microbenchmarks of the BDD substrate.

Not a paper table -- these keep the performance of the primitives that
every experiment depends on (ITE throughput, sifting, transfer, ISOP)
visible in the benchmark report, so regressions in the substrate are
caught next to the system-level numbers.  ``test_reorder_microbench``
additionally emits ``BENCH_reorder.json`` (results dir + repo root):
the reordering engine's CPU numbers on the Table I circuits, with the
pre-incremental-engine baseline recorded for before/after evidence.
"""

import random
import time

from common import write_bench_json

from repro.bdd import BDD, transfer_many
from repro.bdd.isop import isop
from repro.bdd.reorder import sift
from repro.bdd.traverse import live_node_count, node_count


def _build_alu_like(mgr, n=10, seed=17):
    rng = random.Random(seed)
    vs = [mgr.new_var() for _ in range(n)]
    refs = [mgr.var_ref(v) for v in vs]
    for _ in range(120):
        f, g = rng.choice(refs), rng.choice(refs)
        if rng.random() < 0.3:
            f ^= 1
        refs.append(getattr(mgr, rng.choice(["and_", "or_", "xor_"]))(f, g))
    return vs, refs[-1]


def test_ite_throughput(benchmark):
    def run():
        mgr = BDD()
        _, f = _build_alu_like(mgr)
        return mgr.num_nodes_allocated

    nodes = benchmark(run)
    assert nodes > 100


def test_adder_bdd_construction(benchmark):
    def run():
        mgr = BDD()
        bits = 12
        a = [mgr.new_var("a%d" % i) for i in range(bits)]
        b = [mgr.new_var("b%d" % i) for i in range(bits)]
        carry = None
        outs = []
        for i in range(bits):
            ra, rb = mgr.var_ref(a[i]), mgr.var_ref(b[i])
            if carry is None:
                outs.append(mgr.xor_(ra, rb))
                carry = mgr.and_(ra, rb)
            else:
                t = mgr.xor_(ra, rb)
                outs.append(mgr.xor_(t, carry))
                carry = mgr.or_(mgr.and_(t, carry), mgr.and_(ra, rb))
        return node_count(mgr, carry)

    size = benchmark(run)
    assert size > 10


def test_sifting(benchmark):
    def run():
        mgr = BDD()
        # Interleaved-AND function: sifting has real work to do.
        a = [mgr.new_var("a%d" % i) for i in range(6)]
        b = [mgr.new_var("b%d" % i) for i in range(6)]
        f = 1  # ZERO
        for ai, bi in zip(a, b):
            f = mgr.or_(f, mgr.and_(mgr.var_ref(ai), mgr.var_ref(bi)))
        return sift(mgr, [f])

    final = benchmark(run)
    assert final <= 12


def test_transfer(benchmark):
    mgr = BDD()
    _, f = _build_alu_like(mgr)

    def run():
        return transfer_many(mgr, [f]).manager.num_nodes_allocated

    nodes = benchmark(run)
    assert nodes > 1


def test_isop_extraction(benchmark):
    mgr = BDD()
    _, f = _build_alu_like(mgr, n=8, seed=23)

    def run():
        return len(isop(mgr, f))

    cubes = benchmark(run)
    assert cubes >= 1


# ----------------------------------------------------------------------
# Reordering engine CPU on the Table I circuits -> BENCH_reorder.json
# ----------------------------------------------------------------------

#: Seed-implementation numbers (commit a9d3316, best of 3 on the CI
#: container): the pre-incremental sift re-traversed every live node per
#: swap, so its cost was O(live * swaps).  Kept as the "before" side of
#: the before/after evidence; the microbench re-measures "after" live.
_SEED_BASELINE = {
    "global_sift_s": {"C1355": 13.405, "C499": 15.436, "C880": 0.043},
    "flow_sift_s": {"C1355": 0.0426, "C499": 0.0503, "C880": 0.0053},
    "global_sifted_size": {"C1355": 10394, "C499": 10394, "C880": 112},
}

_REORDER_CIRCUITS = ("C1355", "C499", "C880")


def _global_sift_once(cname):
    """Build the monolithic global BDD of a circuit and sift it once."""
    from repro.circuits import build_circuit
    from repro.verify.cec import _global_bdd, _initial_order

    net = build_circuit(cname)
    mgr = BDD()
    var_of = {name: mgr.new_var(name) for name in _initial_order(net)}
    cache = {}
    roots = []
    for out in net.outputs:
        ref = _global_bdd(mgr, net, out, var_of, cache, size_cap=10 ** 9)
        roots.append(mgr.register_root(ref))
    before = live_node_count(mgr, roots)
    t0 = time.perf_counter()
    after = sift(mgr, roots, size_limit=10 ** 9)
    elapsed = time.perf_counter() - t0
    return {
        "sift_s": round(elapsed, 4),
        "size_before": before,
        "size_after": after,
        "swaps": mgr.perf.reorder_swaps,
        "swaps_skipped": mgr.perf.reorder_swaps_skipped,
        "live_traversals": mgr.perf.live_traversals,
    }


def _flow_reorder_metrics(cname):
    """Per-supernode reorder CPU as the Table I harness exercises it."""
    from repro.bds import BDSOptions, bds_optimize
    from repro.circuits import build_circuit

    net = build_circuit(cname)
    best = None
    for _ in range(3):
        perf = bds_optimize(net, BDSOptions()).perf
        if best is None or perf["reorder_time_s"] < best["reorder_time_s"]:
            best = perf
    return {
        "flow_sift_s": round(best["reorder_time_s"], 4),
        "flow_passes": int(best["reorder_passes"]),
        "flow_swaps": int(best["reorder_swaps"]),
        "flow_swaps_skipped": int(best["reorder_swaps_skipped"]),
    }


def test_reorder_microbench():
    """Measure reorder CPU (global sift + in-flow sift) and emit
    ``BENCH_reorder.json`` with the seed baseline alongside."""
    payload = {"baseline_seed": _SEED_BASELINE, "current": {}}
    for cname in _REORDER_CIRCUITS:
        entry = _global_sift_once(cname)
        entry.update(_flow_reorder_metrics(cname))
        entry["speedup_global"] = round(
            _SEED_BASELINE["global_sift_s"][cname] / entry["sift_s"], 2)
        entry["speedup_flow"] = round(
            _SEED_BASELINE["flow_sift_s"][cname] / entry["flow_sift_s"], 2)
        payload["current"][cname] = entry
        # Sifted sizes must never be worse than the seed implementation's.
        assert entry["size_after"] <= _SEED_BASELINE[
            "global_sifted_size"][cname]
    write_bench_json(payload, "BENCH_reorder.json", root_copy=True)
