"""Table I: BDS vs SIS on the large circuit set.

Regenerates the paper's Table I rows -- per circuit: area, delay, CPU and
memory for both systems, plus the totals row.  The paper's headline shape:

* BDS area slightly larger (~+11% on this set),
* BDS delay slightly smaller (~-6%),
* BDS CPU much smaller (>8x on the paper's set, growing with size),
* BDS memory much smaller (~-82%).

Absolute numbers differ (functional-equivalent circuits, Python runtime,
different mapper); the assertions check the *shape*.
"""

import pytest

from common import format_table, run_system, write_kernel_json
from conftest import register_table
from repro.circuits import TABLE1_CIRCUITS, build_circuit
from repro.perf import merge_snapshots

# Paper's Table I values (area lambda^2, delay ns, CPU s, mem MB).
PAPER_TABLE1 = {
    "C1355": ((689, 39.40, 6.6, 3.3), (711, 45.60, 0.4, 1.0)),
    "C1908": ((695, 68.60, 8.1, 3.1), (730, 65.00, 0.8, 1.0)),
    "C3540": ((1695, 81.40, 16.1, 15.1), (1713, 81.20, 3.6, 1.9)),
    "C432": ((290, 75.90, 46.1, 6.4), (357, 78.40, 0.2, 0.5)),
    "C499": ((689, 39.40, 6.8, 3.5), (708, 43.60, 0.6, 0.5)),
    "C5315": ((2286, 68.60, 10.2, 5.6), (2402, 70.50, 5.3, 3.0)),
    "C6288": ((4631, 237.8, 21.8, 14.8), (4677, 178.3, 3.8, 1.1)),
    "C7552": ((3038, 115.70, 54.2, 45.2), (3112, 83.30, 4.2, 4.8)),
    "C880": ((567, 56.10, 1.9, 2.2), (563, 43.20, 0.7, 0.8)),
    "pair": ((2274, 74.30, 16.1, 6.8), (2466, 52.60, 2.1, 2.0)),
    "rot": ((965, 51.60, 4.5, 2.7), (1025, 51.90, 1.0, 0.9)),
    "dalu": ((1306, 61.0, 70.5, 4.8), (2604, 117.2, 7.2, 2.6)),
    "vda": ((837, 39.8, 19.7, 3.3), (1054, 47.8, 7.1, 1.4)),
}

_results = {}


@pytest.mark.parametrize("name", TABLE1_CIRCUITS)
def test_table1_circuit(benchmark, name):
    net = build_circuit(name)
    sis = run_system(net, "sis")

    def bds_run():
        return run_system(net, "bds")

    bds = benchmark.pedantic(bds_run, rounds=1, iterations=1)
    assert sis.verified, "SIS result failed verification on %s" % name
    assert bds.verified, "BDS result failed verification on %s" % name
    benchmark.extra_info["bds_area"] = bds.area
    benchmark.extra_info["sis_cpu"] = sis.cpu
    benchmark.extra_info["bds_cpu"] = bds.cpu
    _results[name] = (sis, bds)
    if len(_results) == len(TABLE1_CIRCUITS):
        _emit()


def _emit():
    header = ("%-8s | %7s %8s %7s %8s %7s %4s | %7s %8s %7s %8s %7s %4s"
              % ("circuit", "gates", "areaL2", "delay", "CPU[s]", "MemMB", "ok",
                 "gates", "areaL2", "delay", "CPU[s]", "MemMB", "ok"))
    rows = []
    tot = {"sis": [0.0] * 4, "bds": [0.0] * 4}
    for name in TABLE1_CIRCUITS:
        sis, bds = _results[name]
        rows.append("%-8s | %s | %s" % (name, sis.row(), bds.row()))
        for key, m in (("sis", sis), ("bds", bds)):
            tot[key][0] += m.area
            tot[key][1] += m.delay
            tot[key][2] += m.cpu
            tot[key][3] += m.mem_mb
    s, b = tot["sis"], tot["bds"]
    footer = [
        "TOTAL     SIS: area=%.0f delay=%.1f cpu=%.2fs mem=%.1fMB"
        % tuple(s),
        "          BDS: area=%.0f delay=%.1f cpu=%.2fs mem=%.1fMB"
        % tuple(b),
        "SHAPE     area ratio BDS/SIS=%.2f (paper 1.11), "
        "delay ratio=%.2f (paper 0.95)," % (b[0] / s[0], b[1] / s[1]),
        "          CPU speedup SIS/BDS=%.1fx (paper 7.6x), "
        "mem ratio=%.2f (paper 0.18)" % (s[2] / b[2], b[3] / s[3]),
        "",
        "paper Table I (SIS | BDS) for reference:",
    ]
    for name in TABLE1_CIRCUITS:
        if name in PAPER_TABLE1:
            ps, pb = PAPER_TABLE1[name]
            footer.append("  %-8s %6d L2 %6.1f ns %6.1f s %5.1f MB | "
                          "%6d L2 %6.1f ns %6.1f s %5.1f MB"
                          % ((name,) + ps + pb))
    register_table("table1", format_table(
        "Table I -- large circuits, SIS (left) vs BDS (right)",
        header, rows, "\n".join(footer)))
    _emit_kernel_json(tot)


def _emit_kernel_json(tot):
    """Machine-readable kernel metrics: per-circuit and aggregated BDS
    counters plus the table CPU/mem totals, for cross-PR tracking."""
    per_circuit = {}
    snaps = []
    for name in TABLE1_CIRCUITS:
        _, bds = _results[name]
        k = bds.kernel
        snaps.append(k)
        per_circuit[name] = {
            "cpu_s": round(bds.cpu, 4),
            "mem_mb": round(bds.mem_mb, 3),
            "ite_calls": k.get("ite_calls", 0),
            "cache_hit_rate": round(k.get("cache_hit_rate", 0.0), 4),
            "peak_live_nodes": k.get("peak_live_nodes", 0),
            "gc_sweeps": k.get("gc_sweeps", 0),
            "gc_reclaimed": k.get("gc_reclaimed", 0),
        }
    agg = merge_snapshots(snaps)
    bds_cpu = tot["bds"][2]
    payload = {
        "kernel": {
            "ite_calls": agg.get("ite_calls", 0),
            "ite_ops_per_sec": round(agg.get("ite_calls", 0) / bds_cpu)
            if bds_cpu else 0,
            "cache_hit_rate": round(agg.get("cache_hit_rate", 0.0), 4),
            "cache_evictions": agg.get("cache_evictions", 0),
            "peak_live_nodes": agg.get("peak_live_nodes", 0),
            "peak_allocated_nodes": agg.get("peak_allocated_nodes", 0),
            "gc_sweeps": agg.get("gc_sweeps", 0),
            "gc_reclaimed": agg.get("gc_reclaimed", 0),
            "nodes_allocated": agg.get("nodes_allocated", 0),
            "nodes_reused": agg.get("nodes_reused", 0),
        },
        "table1_totals": {
            "sis_cpu_s": round(tot["sis"][2], 3),
            "sis_mem_mb": round(tot["sis"][3], 2),
            "bds_cpu_s": round(bds_cpu, 3),
            "bds_mem_mb": round(tot["bds"][3], 2),
            "mem_ratio_bds_over_sis":
                round(tot["bds"][3] / tot["sis"][3], 3),
            "cpu_speedup_sis_over_bds":
                round(tot["sis"][2] / bds_cpu, 2) if bds_cpu else 0,
        },
        "per_circuit": per_circuit,
    }
    write_kernel_json(payload)
