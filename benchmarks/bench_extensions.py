"""Section VI extensions: FPGA LUT mapping (item 4) and tree balancing
(item 3).

* LUT mapping: "BDS is also amenable to FPGA synthesis ... over 30%
  improvement in the LUT count" [35].  We map BDS and SIS netlists of the
  same circuits onto 5-LUTs and compare counts per circuit class.
* Balancing: the paper names unbalanced factoring trees as its delay
  weakness; the implemented balancer should cut mapped delay on deep
  XOR-chain circuits without changing the function.
"""

import pytest

from common import format_table
from conftest import register_table
from repro.bds import BDSOptions, bds_optimize
from repro.circuits import build_circuit
from repro.mapping import map_network
from repro.mapping.lut import map_luts
from repro.sis import script_rugged
from repro.verify import simulate_equivalence

LUT_CIRCUITS = ["C1355", "C1908", "add8", "pair", "rot"]

_lut_results = {}
_balance_results = {}


@pytest.mark.parametrize("name", LUT_CIRCUITS)
def test_lut_mapping(benchmark, name):
    net = build_circuit(name)
    sis_net = script_rugged(net).network

    def bds_then_lut():
        bds_net = bds_optimize(net).network
        return map_luts(bds_net, k=5)

    bds_luts = benchmark.pedantic(bds_then_lut, rounds=1, iterations=1)
    sis_luts = map_luts(sis_net, k=5)
    ok_b, _ = simulate_equivalence(net, bds_luts.network)
    ok_s, _ = simulate_equivalence(net, sis_luts.network)
    assert ok_b and ok_s, name
    _lut_results[name] = (sis_luts, bds_luts)
    if len(_lut_results) == len(LUT_CIRCUITS):
        _emit_luts()


def _emit_luts():
    header = ("%-8s | %6s %6s | %6s %6s | %8s"
              % ("circuit", "sisLUT", "depth", "bdsLUT", "depth", "ratio"))
    rows = []
    for name in LUT_CIRCUITS:
        s, b = _lut_results[name]
        rows.append("%-8s | %6d %6d | %6d %6d | %7.2fx"
                    % (name, s.lut_count, s.depth, b.lut_count, b.depth,
                       b.lut_count / max(s.lut_count, 1)))
    total_s = sum(s.lut_count for s, _ in _lut_results.values())
    total_b = sum(b.lut_count for _, b in _lut_results.values())
    footer = ("TOTAL: SIS %d LUTs, BDS %d LUTs (%.0f%% change; paper's "
              "FPGA work reports ~30%% fewer)"
              % (total_s, total_b, 100.0 * (total_b - total_s) / total_s))
    register_table("extension_lut", format_table(
        "Section VI item 4 -- 5-LUT mapping, SIS vs BDS netlists",
        header, rows, footer))
    assert total_b <= total_s


def test_tree_balancing_delay(benchmark):
    """Balancing must reduce mapped delay on deep-chain circuits."""
    from repro.network import Network
    net = Network("chain")
    names = [net.add_input("x%d" % i) for i in range(16)]
    prev = names[0]
    for i in range(1, 16):
        cur = "p%d" % i if i < 15 else "out"
        net.add_xor(cur, [prev, names[i]])
        prev = cur
    net.add_output("out")

    def run_both():
        plain = bds_optimize(net, BDSOptions(balance_trees=False)).network
        balanced = bds_optimize(net, BDSOptions(balance_trees=True)).network
        return map_network(plain), map_network(balanced)

    plain_map, balanced_map = benchmark.pedantic(run_both, rounds=1,
                                                 iterations=1)
    ok, _ = simulate_equivalence(net, balanced_map.network)
    assert ok
    header = "%-22s | %8s %8s" % ("config", "delay", "area")
    rows = [
        "%-22s | %8.2f %8.0f" % ("unbalanced (paper)", plain_map.delay,
                                 plain_map.area),
        "%-22s | %8.2f %8.0f" % ("balanced (Sec. VI.3)", balanced_map.delay,
                                 balanced_map.area),
    ]
    register_table("extension_balance", format_table(
        "Section VI item 3 -- factoring-tree balancing, 16-input XOR chain",
        header, rows))
    assert balanced_map.delay <= plain_map.delay


SDC_CIRCUITS = ["C432", "dalu", "vda", "rot"]

_sdc_results = {}


@pytest.mark.parametrize("name", SDC_CIRCUITS)
def test_sdc_minimization(benchmark, name):
    """Section VI item 1: satisfiability don't-cares, the feature whose
    absence the paper blames for its dalu/vda area losses."""
    net = build_circuit(name)
    plain = bds_optimize(net, BDSOptions(use_sdc=False))

    def with_sdc():
        return bds_optimize(net, BDSOptions(use_sdc=True))

    sdc = benchmark.pedantic(with_sdc, rounds=1, iterations=1)
    ok, _ = simulate_equivalence(net, sdc.network)
    assert ok, name
    plain_map = map_network(plain.network)
    sdc_map = map_network(sdc.network)
    _sdc_results[name] = (plain.network.literal_count(), plain_map.area,
                          sdc.network.literal_count(), sdc_map.area)
    if len(_sdc_results) == len(SDC_CIRCUITS):
        _emit_sdc()


def _emit_sdc():
    header = ("%-8s | %9s %9s | %9s %9s | %7s"
              % ("circuit", "lits", "area", "lits+sdc", "area+sdc", "ratio"))
    rows = []
    for name in SDC_CIRCUITS:
        pl, pa, sl, sa = _sdc_results[name]
        rows.append("%-8s | %9d %9.0f | %9d %9.0f | %6.2fx"
                    % (name, pl, pa, sl, sa, sa / max(pa, 1)))
    total_plain = sum(v[1] for v in _sdc_results.values())
    total_sdc = sum(v[3] for v in _sdc_results.values())
    footer = ("TOTAL area: %d -> %d (%.1f%%); the paper expected SDCs to "
              "close its random-logic area gap"
              % (total_plain, total_sdc,
                 100.0 * (total_sdc - total_plain) / total_plain))
    register_table("extension_sdc", format_table(
        "Section VI item 1 -- satisfiability don't-care minimization",
        header, rows, footer))
    assert total_sdc <= total_plain * 1.05