"""Shared benchmark infrastructure.

Every bench module registers its finished result table here; the tables
are printed in the terminal summary (so they appear even under pytest's
output capture) and written to ``results/`` next to this directory.
"""

import os
from typing import Dict

_TABLES: Dict[str, str] = {}

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def register_table(name: str, text: str) -> None:
    """Record a finished experiment table for summary printing + saving."""
    _TABLES[name] = text
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as fh:
        fh.write(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for name in sorted(_TABLES):
        terminalreporter.write_sep("=", name)
        terminalreporter.write_line(_TABLES[name])
