"""Benchmark runner utilities: synthesize with both systems, map, verify,
and collect the metrics the paper's tables report (gates, area, delay,
CPU time, peak memory) plus the kernel-health counters (cache hit rate,
GC sweeps, peak live nodes) that ``BENCH_kernel.json`` tracks across PRs."""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bds import BDSOptions, bds_optimize
from repro.mapping import map_network, mcnc_library
from repro.network.network import Network
from repro.sis import SISOptions, script_rugged
from repro.verify import simulate_equivalence

_LIBRARY = mcnc_library()

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@dataclass
class RunMetrics:
    """Everything one table row needs about one (circuit, system) run."""

    system: str
    literals: int
    nodes: int
    gates: int
    area: float
    delay: float
    cpu: float
    mem_mb: float
    verified: bool
    # Kernel perf counters (BDS only; empty for SIS, which is cube-based).
    kernel: Dict[str, float] = field(default_factory=dict)

    def row(self) -> str:
        return ("%7d %8.0f %7.2f %8.3f %7.2f  %s"
                % (self.gates, self.area, self.delay, self.cpu, self.mem_mb,
                   "ok" if self.verified else "MISMATCH"))


def run_system(net: Network, system: str, verify: bool = True,
               bds_options: Optional[BDSOptions] = None,
               sis_options: Optional[SISOptions] = None) -> RunMetrics:
    """Optimize ``net`` with one system, map it, verify, return metrics.

    CPU time covers optimization only (like the paper's CPU column, which
    times synthesis; both systems share the same mapper here).  Peak
    memory is the tracemalloc high-water mark during optimization.
    """
    kernel: Dict[str, float] = {}

    def optimize():
        if system == "bds":
            result = bds_optimize(net, bds_options)
            kernel.clear()
            kernel.update(result.perf)
            return result.network
        if system == "sis":
            return script_rugged(net, sis_options).network
        raise ValueError(system)

    # Clean CPU timing first; tracemalloc's instrumentation would bias
    # allocation-heavy code, so memory is measured in a second run.
    t0 = time.perf_counter()
    optimized = optimize()
    cpu = time.perf_counter() - t0
    tracemalloc.start()
    optimize()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    mapped = map_network(optimized, _LIBRARY)
    verified = True
    if verify:
        ok, _ = simulate_equivalence(net, mapped.network)
        verified = ok
    return RunMetrics(
        system=system,
        literals=optimized.literal_count(),
        nodes=optimized.node_count(),
        gates=mapped.gate_count,
        area=mapped.area,
        delay=mapped.delay,
        cpu=cpu,
        mem_mb=peak / (1024.0 * 1024.0),
        verified=verified,
        kernel=dict(kernel),
    )


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_bench_json(payload: Dict, filename: str,
                     root_copy: bool = True) -> str:
    """Write machine-readable bench metrics next to the text tables.

    Future PRs diff these files to track the perf trajectory.  Every
    ``BENCH_*.json`` lands in *both* canonical locations -- the results
    dir and the repository root -- so cross-PR tooling finds them without
    knowing the results layout (``root_copy=False`` opts out for
    non-baseline payloads).  ``aggregate_bench_json`` folds all of them
    into ``BENCH_all.json``.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    with open(path, "w") as fh:
        fh.write(text)
    if root_copy:
        with open(os.path.join(REPO_ROOT, filename), "w") as fh:
            fh.write(text)
    return path


def write_kernel_json(payload: Dict, filename: str = "BENCH_kernel.json") -> str:
    """Write the kernel-health metrics (ops/sec, peak live nodes, cache
    hit rate, table CPU/mem totals) tracked across PRs."""
    return write_bench_json(payload, filename)


def aggregate_bench_json(filename: str = "BENCH_all.json") -> Dict:
    """Merge every committed ``BENCH_*.json`` baseline into one document.

    The aggregate maps each baseline's short name (``kernel`` for
    ``BENCH_kernel.json``, ...) to its payload and is written to both
    canonical locations like any other baseline.  Run directly as
    ``python benchmarks/common.py`` after regenerating benchmarks.
    """
    merged: Dict[str, Dict] = {}
    for name in sorted(os.listdir(RESULTS_DIR)):
        if (not name.startswith("BENCH_") or not name.endswith(".json")
                or name == filename):
            continue
        with open(os.path.join(RESULTS_DIR, name)) as fh:
            merged[name[len("BENCH_"):-len(".json")]] = json.load(fh)
    write_bench_json(merged, filename)
    return merged


def format_table(title: str, header: str, rows: list, footer: str = "") -> str:
    lines = [title, "-" * len(header), header, "-" * len(header)]
    lines.extend(rows)
    lines.append("-" * len(header))
    if footer:
        lines.append(footer)
    return "\n".join(lines)


if __name__ == "__main__":
    merged = aggregate_bench_json()
    print("BENCH_all.json: merged %d baseline(s): %s"
          % (len(merged), ", ".join(sorted(merged))))
