"""Figures 1-11, 13-14: executable regeneration of the worked examples.

The paper's figures are worked decomposition examples, not measured plots;
each one is regenerated here by running the corresponding machinery on the
figure's function and printing the decomposition the paper draws.  The
exact identities are asserted (the full per-figure test coverage lives in
tests/test_paper_figures.py; this bench times the engine on the set and
emits the human-readable table).
"""


from common import format_table
from conftest import register_table
from repro.bdd import BDD
from repro.decomp import decompose
from repro.decomp.dominators import find_simple_decompositions
from repro.decomp.generalized import conjunctive_candidates, disjunctive_candidates
from repro.decomp.xordec import boolean_xnor_candidates


def _figures():
    """(figure, description, callable) for every worked example."""
    out = []

    def fig1():
        # Ashenhurst decomposition via a cut: F = g(x1,x2) xor-ish chart
        # reproduced as a functional MUX with column multiplicity 2.
        mgr = BDD()
        x1, x2, x3 = (mgr.new_var(n) for n in ("x1", "x2", "x3"))
        g = mgr.xor_(mgr.var_ref(x1), mgr.var_ref(x2))
        f = mgr.ite(g, mgr.var_ref(x3), mgr.var_ref(x3) ^ 1)
        muxes = [d for d in find_simple_decompositions(mgr, f)
                 if d.kind in ("mux", "xnor")]
        assert muxes
        return "F decomposes through a 2-column cut (functional select)"

    def fig2():
        mgr = BDD()
        a, b, c, d = (mgr.new_var(n) for n in "abcd")
        f = mgr.and_(mgr.or_(mgr.var_ref(a), mgr.var_ref(b)),
                     mgr.or_(mgr.var_ref(c), mgr.var_ref(d)))
        ands = [x for x in find_simple_decompositions(mgr, f)
                if x.kind == "and"]
        assert ands
        return "(a+b)(c+d): 1-dominator found -> algebraic AND"

    def fig3_4():
        mgr = BDD()
        e, d, b = (mgr.new_var(n) for n in "edb")
        f = mgr.or_(mgr.var_ref(e) ^ 1,
                    mgr.and_(mgr.var_ref(b) ^ 1, mgr.var_ref(d)))
        cands = conjunctive_candidates(mgr, f)
        target = mgr.or_(mgr.var_ref(e) ^ 1, mgr.var_ref(d))
        assert any(c.divisor == target for c in cands)
        return "F=~e+~bd: divisor ~e+d recovered (Lemma 1)"

    def fig5():
        mgr = BDD()
        a, b, c = (mgr.new_var(n) for n in "abc")
        f = mgr.or_(mgr.and_(mgr.var_ref(a) ^ 1, mgr.var_ref(b) ^ 1),
                    mgr.and_(mgr.var_ref(b), mgr.var_ref(c) ^ 1))
        cands = disjunctive_candidates(mgr, f)
        assert cands
        return "F=~a~b+b~c: disjunctive Boolean term found (Lemma 2)"

    def fig8():
        mgr = BDD()
        x, y, u, v, q = (mgr.new_var(n) for n in "xyuvq")
        g = mgr.or_(mgr.var_ref(x), mgr.var_ref(y))
        h = mgr.or_many([mgr.var_ref(u) ^ 1, mgr.var_ref(v) ^ 1,
                         mgr.var_ref(q) ^ 1])
        f = mgr.xnor_(g, h)
        xnors = [d for d in find_simple_decompositions(mgr, f)
                 if d.kind == "xnor"]
        assert xnors
        return "x-dominator -> F=(x+y) xnor (~u+~v+~q) (Theorem 5)"

    def fig9():
        mgr = BDD()
        x1, x2, x4, x5 = (mgr.new_var(n) for n in ("x1", "x2", "x4", "x5"))
        g = mgr.xnor_(mgr.var_ref(x1), mgr.var_ref(x4) ^ 1)
        h = mgr.and_(mgr.var_ref(x2),
                     mgr.or_(mgr.var_ref(x5),
                             mgr.and_(mgr.var_ref(x1), mgr.var_ref(x4))))
        f = mgr.xnor_(g, h)
        cands = boolean_xnor_candidates(mgr, f)
        assert cands
        tree = decompose(mgr, f)
        assert tree.to_bdd(mgr) == f
        return "rnd4-1: Boolean XNOR split, %d literals" % tree.literal_count()

    def fig11():
        mgr = BDD()
        x, w, z, y = (mgr.new_var(n) for n in "xwzy")
        g = mgr.xnor_(mgr.var_ref(x), mgr.var_ref(w))
        f = mgr.ite(g, mgr.var_ref(z), mgr.var_ref(y))
        muxes = [d for d in find_simple_decompositions(mgr, f)
                 if d.kind == "mux" and d.upper in (g, g ^ 1)]
        assert muxes
        return "functional MUX with select g=x xnor w (Theorem 7)"

    def fig13_14():
        from repro.decomp.ftree import op2, var_leaf
        from repro.decomp.sharing import count_shared_gates, extract_sharing
        t1 = op2("and", op2("xor", var_leaf("a"), var_leaf("b")), var_leaf("c"))
        t2 = op2("or", op2("xor", var_leaf("b"), var_leaf("a")), var_leaf("d"))
        before = count_shared_gates({"f": t1, "g": t2})
        shared = extract_sharing({"f": t1, "g": t2})
        after = count_shared_gates(shared)
        assert after < before
        return "sharing extraction: %d -> %d gates" % (before, after)

    out.append(("Fig.1", "Ashenhurst via BDD cut", fig1))
    out.append(("Fig.2", "Karplus dominators", fig2))
    out.append(("Fig.3/4", "conjunctive generalized dominator", fig3_4))
    out.append(("Fig.5", "disjunctive generalized dominator", fig5))
    out.append(("Fig.7/8", "algebraic XNOR (x-dominator)", fig8))
    out.append(("Fig.9", "Boolean XNOR (rnd4-1)", fig9))
    out.append(("Fig.10/11", "functional MUX", fig11))
    out.append(("Fig.13/14", "sharing extraction", fig13_14))
    return out


def test_paper_figures(benchmark):
    figures = _figures()

    def run_all():
        return [(fig, desc, fn()) for fig, desc, fn in figures]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    header = "%-10s %-36s | %s" % ("figure", "example", "result")
    rows = ["%-10s %-36s | %s" % r for r in results]
    register_table("paper_figures", format_table(
        "Figures 1-14 -- worked examples regenerated", header, rows))
