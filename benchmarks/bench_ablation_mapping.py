"""Ablation (Section IV-B): BDD mapping vs reordering a polluted manager.

The paper: after the first eliminate iteration ~63% of manager variables
are dead, and transferring live BDDs into a fresh manager ("BDD mapping")
makes eliminate on average 85x faster than reordering the full manager.

We measure three quantities on a circuit whose eliminate leaves many dead
variables:

* the dead-variable fraction after eliminate (paper: ~63%),
* eliminate runtime with BDD mapping vs without,
* the cost of sifting the polluted manager vs sifting the compacted one
  (the direct subject of the 85x claim).
"""

import time


from conftest import register_table
from common import format_table
from repro.bdd.reorder import sift
from repro.circuits import build_circuit
from repro.network.eliminate import PartitionedNetwork

CIRCUIT = "C7552"


def _eliminate(use_mapping):
    net = build_circuit(CIRCUIT)
    part = PartitionedNetwork.from_network(net)
    t0 = time.perf_counter()
    part.eliminate(threshold=0, size_cap=600, use_mapping=use_mapping)
    return part, time.perf_counter() - t0


def test_dead_variable_fraction(benchmark):
    """Without mapping, eliminate leaves most manager variables unused."""

    def run():
        part, _ = _eliminate(use_mapping=False)
        return part._pollution()

    pollution = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pollution > 0.3, "eliminate should orphan many variables"
    benchmark.extra_info["dead_fraction"] = pollution
    _RESULTS["dead_fraction"] = pollution


def test_mapping_speeds_up_reordering(benchmark):
    """Sifting the compacted manager vs the polluted one (the 85x claim)."""
    part, _ = _eliminate(use_mapping=False)
    names = sorted(part.refs)[:8]
    refs = [part.refs[n] for n in names]

    t0 = time.perf_counter()
    sift(part.mgr, refs)
    polluted = time.perf_counter() - t0

    part2, _ = _eliminate(use_mapping=True)  # compacted via BDD mapping
    refs2 = [part2.refs[n] for n in sorted(part2.refs)[:8]]

    def compact_sift():
        return sift(part2.mgr, refs2)

    t0 = time.perf_counter()
    benchmark.pedantic(compact_sift, rounds=1, iterations=1)
    compacted = time.perf_counter() - t0

    ratio = polluted / max(compacted, 1e-9)
    _RESULTS["sift_polluted"] = polluted
    _RESULTS["sift_compacted"] = compacted
    _RESULTS["sift_ratio"] = ratio
    benchmark.extra_info["polluted_over_compacted"] = ratio


def test_eliminate_with_and_without_mapping(benchmark):
    part_nm, t_nomap = _eliminate(use_mapping=False)

    def with_mapping():
        return _eliminate(use_mapping=True)

    part_m, t_map = benchmark.pedantic(with_mapping, rounds=1, iterations=1)
    _RESULTS["eliminate_nomap"] = t_nomap
    _RESULTS["eliminate_map"] = t_map
    _RESULTS["mappings"] = part_m.mapping_count
    _emit()


_RESULTS = {}


def _emit():
    header = "%-34s | %12s" % ("quantity", "value")
    rows = [
        "%-34s | %11.0f%%" % ("dead vars after eliminate (paper ~63%)",
                              100 * _RESULTS.get("dead_fraction", 0)),
        "%-34s | %11.3fs" % ("sift polluted manager",
                             _RESULTS.get("sift_polluted", 0)),
        "%-34s | %11.3fs" % ("sift compacted manager",
                             _RESULTS.get("sift_compacted", 0)),
        "%-34s | %10.1fx" % ("pollution penalty (paper ~85x)",
                             _RESULTS.get("sift_ratio", 0)),
        "%-34s | %11.3fs" % ("eliminate w/o BDD mapping",
                             _RESULTS.get("eliminate_nomap", 0)),
        "%-34s | %11.3fs" % ("eliminate with BDD mapping",
                             _RESULTS.get("eliminate_map", 0)),
        "%-34s | %12d" % ("BDD-mapping compactions run",
                          _RESULTS.get("mappings", 0)),
    ]
    register_table("ablation_mapping", format_table(
        "Section IV-B ablation -- BDD mapping (circuit: %s)" % CIRCUIT,
        header, rows))
