"""Section V in-text aggregates: small/medium circuits by class.

The paper (first paragraphs of Section V, summarizing [32]) reports for
small and medium circuits:

* AND/OR-intensive (random logic): BDS -4% gates, +5% area, -37% CPU
  versus SIS;
* XOR-intensive / arithmetic: BDS -40% literals, -23% gates, -12% area,
  -84% CPU.

This bench regenerates those two aggregate comparisons over the
corresponding circuit classes from the registry.
"""

import pytest

from common import format_table, run_system
from conftest import register_table
from repro.circuits import SMALL_ANDOR, SMALL_XOR, build_circuit

_results = {"andor": {}, "xor": {}}


@pytest.mark.parametrize("name", SMALL_ANDOR + SMALL_XOR)
def test_small_medium_circuit(benchmark, name):
    cls = "andor" if name in SMALL_ANDOR else "xor"
    net = build_circuit(name)
    sis = run_system(net, "sis")

    def bds_run():
        return run_system(net, "bds")

    bds = benchmark.pedantic(bds_run, rounds=1, iterations=1)
    assert sis.verified and bds.verified, name
    _results[cls][name] = (sis, bds)
    done = sum(len(v) for v in _results.values())
    if done == len(SMALL_ANDOR) + len(SMALL_XOR):
        _emit()


def _ratio(cls, attr):
    sis_total = sum(getattr(s, attr) for s, _ in _results[cls].values())
    bds_total = sum(getattr(b, attr) for _, b in _results[cls].values())
    return bds_total / max(sis_total, 1e-9)


def _emit():
    header = "%-10s | %9s %9s %9s %9s" % ("class", "literals", "gates",
                                          "area", "CPU")
    rows = []
    for cls, label in (("andor", "AND/OR"), ("xor", "XOR/arith")):
        rows.append("%-10s | %8.2fx %8.2fx %8.2fx %8.2fx"
                    % (label, _ratio(cls, "literals"), _ratio(cls, "gates"),
                       _ratio(cls, "area"), _ratio(cls, "cpu")))
    footer = ("BDS/SIS ratios. paper: AND/OR gates 0.96x area 1.05x CPU 0.63x;"
              " XOR literals 0.60x gates 0.77x area 0.88x CPU 0.16x")
    register_table("small_medium", format_table(
        "Section V in-text -- small/medium circuits, BDS/SIS ratios by class",
        header, rows, footer))

    # Shape assertions: BDS must clearly win literals on the XOR class and
    # must not lose the AND/OR class by a large factor.
    assert _ratio("xor", "literals") < 1.0
    assert _ratio("andor", "area") < 1.6
