"""Structured flow tracing: nested spans over monotonic timers.

A :class:`Tracer` records a tree of :class:`Span` objects.  Spans are
opened with the ``with`` statement (RPL009 enforces this -- manual
``begin``/``end`` leaks a frame on any exception path)::

    with tracer.span("reorder.sift", var=v):
        ...

Each span captures, besides its wall-clock window (``time.perf_counter``
only; wall-clock epochs are RPL005-banned on deterministic paths), the
*delta* of the tracer's counter source across its lifetime -- by
convention the merged :mod:`repro.perf` snapshot of every manager a flow
owns.  Because count-type keys are linear under
:func:`repro.perf.merge_snapshots`, the top-level phase deltas of a flow
partition its ``BDSResult.perf`` totals exactly (peaks and derived
ratios are excluded from deltas; they do not sum).

Spans produced in worker *processes* cannot share the parent's tracer:
workers export their finished span trees as JSON-able dicts
(:meth:`Tracer.export_spans`) and ship them back through the result
channel; the parent re-attaches them with :meth:`Tracer.graft`, which
rebases child-local times onto the enclosing span and gives each grafted
subtree its own Chrome ``tid`` so parallel workers do not overlap on one
timeline row.

The disabled path is :data:`NULL_TRACER`: a shared no-op whose ``span``
returns a singleton context manager, so instrumentation left in place
costs a dict-free call per span and nothing else.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.perf import counter_delta

#: JSON-able span attribute values.
Attr = Any

#: A counter source: returns the *current* merged perf snapshot.
CounterSource = Callable[[], Dict[str, float]]


class Span:
    """One node of the trace tree (times in seconds since tracer epoch)."""

    __slots__ = ("name", "attrs", "start", "duration", "children",
                 "counters", "tid", "_before")

    def __init__(self, name: str, attrs: Dict[str, Attr], start: float,
                 tid: int = 1) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.duration = 0.0
        self.children: List["Span"] = []
        #: Count-key deltas of the tracer's counter source over this span.
        self.counters: Dict[str, float] = {}
        self.tid = tid
        self._before: Dict[str, float] = {}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able tree snapshot (the worker -> parent wire format)."""
        return {
            "name": self.name,
            "start": self.start,
            "dur": self.duration,
            "attrs": dict(sorted(self.attrs.items())),
            "counters": dict(sorted(self.counters.items())),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], offset: float = 0.0,
                  tid: int = 1) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output, shifting every
        start time by ``offset`` (used by :meth:`Tracer.graft`)."""
        span = cls(str(data.get("name", "?")),
                   dict(data.get("attrs") or {}),
                   float(data.get("start", 0.0)) + offset, tid=tid)
        span.duration = float(data.get("dur", 0.0))
        span.counters = dict(data.get("counters") or {})
        span.children = [cls.from_dict(c, offset, tid)
                         for c in (data.get("children") or [])]
        return span

    def walk(self) -> List["Span"]:
        """This span and every descendant, depth-first."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def __repr__(self) -> str:
        return ("Span(%r, start=%.6f, dur=%.6f, children=%d)"
                % (self.name, self.start, self.duration, len(self.children)))


class _SpanContext:
    """The ``with``-handle returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Attr]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.begin(self._name, **self._attrs)
        return self.span

    def __exit__(self, *exc: Any) -> None:
        self._tracer.end()


class _NullSpanContext:
    """Shared no-op span context (the disabled-tracing hot path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Records a span tree; single-threaded by design (one per flow)."""

    enabled = True

    def __init__(self, counter_source: Optional[CounterSource] = None) -> None:
        self.epoch = time.perf_counter()
        self.counter_source = counter_source
        self._stack: List[Span] = []
        self._roots: List[Span] = []
        self._next_tid = 2  # tid 1 is the tracer's own timeline

    # -- span lifecycle -------------------------------------------------

    def set_counter_source(self, source: Optional[CounterSource]) -> None:
        self.counter_source = source

    def span(self, name: str, **attrs: Attr) -> _SpanContext:
        """Context manager opening a nested span (always use ``with``)."""
        return _SpanContext(self, name, attrs)

    def begin(self, name: str, **attrs: Attr) -> Span:
        """Open a span manually (prefer :meth:`span`; see RPL009)."""
        span = Span(name, attrs, time.perf_counter() - self.epoch)
        if self.counter_source is not None:
            span._before = self.counter_source()
        self._stack.append(span)
        return span

    def end(self) -> Span:
        """Close the innermost open span."""
        if not self._stack:
            raise RuntimeError("no span is open")
        span = self._stack.pop()
        span.duration = (time.perf_counter() - self.epoch) - span.start
        if self.counter_source is not None:
            span.counters = counter_delta(span._before, self.counter_source())
            span._before = {}
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def roots(self) -> List[Span]:
        """Completed top-level spans, in completion order."""
        return list(self._roots)

    # -- cross-process grafting ----------------------------------------

    def export_spans(self) -> List[Dict[str, Any]]:
        """Completed span trees as JSON-able dicts (worker wire format)."""
        return [span.to_dict() for span in self._roots]

    def graft(self, spans: Sequence[Dict[str, Any]]) -> List[Span]:
        """Attach serialized span trees (from a worker's
        :meth:`export_spans`) under the currently open span.

        Child-local times are rebased so the grafted subtree starts where
        the enclosing span starts (the worker's clock is not comparable
        to the parent's); each graft gets a fresh ``tid`` so concurrent
        workers render on separate Chrome rows.
        """
        parent = self.current
        offset = (parent.start if parent is not None
                  else time.perf_counter() - self.epoch)
        tid = self._next_tid
        self._next_tid += 1
        grafted = [Span.from_dict(d, offset, tid) for d in spans]
        if parent is not None:
            parent.children.extend(grafted)
        else:
            self._roots.extend(grafted)
        return grafted

    # -- export ---------------------------------------------------------

    def to_chrome(self, pid: int = 1) -> Dict[str, Any]:
        """The span tree as a Chrome ``trace_event`` document
        (load via ``chrome://tracing`` or https://ui.perfetto.dev)."""
        events: List[Dict[str, Any]] = []
        for root in self._roots:
            for span in root.walk():
                args: Dict[str, Any] = dict(sorted(span.attrs.items()))
                if span.counters:
                    args["counters"] = dict(sorted(span.counters.items()))
                events.append({
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": pid,
                    "tid": span.tid,
                    "args": args,
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


class _NullTracer(Tracer):
    """Disabled tracing: every operation is a near-free no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def set_counter_source(self, source: Optional[CounterSource]) -> None:
        return None

    def span(self, name: str, **attrs: Attr) -> _SpanContext:
        # Shared singleton: no allocation beyond the kwargs dict at the
        # call site.  The return-type covariance is intentional.
        return _NULL_SPAN_CONTEXT  # type: ignore[return-value]

    def begin(self, name: str, **attrs: Attr) -> Span:
        raise RuntimeError("NULL_TRACER cannot open spans manually")

    def end(self) -> Span:
        raise RuntimeError("NULL_TRACER has no open spans")

    def graft(self, spans: Sequence[Dict[str, Any]]) -> List[Span]:
        return []

    def export_spans(self) -> List[Dict[str, Any]]:
        return []


#: The shared disabled tracer: thread instrumentation through
#: unconditionally, pass a real :class:`Tracer` only when tracing.
NULL_TRACER = _NullTracer()
