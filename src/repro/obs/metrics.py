"""Process-wide service metrics: counters, gauges, histograms.

One :class:`MetricsRegistry` per process (:func:`get_registry`), updated
*parent-side only*: forked workers ship their numbers back through the
scheduler's result channel as perf snapshots / span trees, so nothing
here needs to survive a fork (child-side increments would be silently
lost -- which is why no repro.service worker code touches the registry).

Determinism contract: metrics record *facts about a run* (request
counts, queue depths, job latencies) and are never part of a cache key
or serialized artifact; :meth:`MetricsRegistry.reset` restores a clean
slate so tests can assert exact values.  Rendering is deterministic:
keys sort lexicographically, labels sort by name.

Two export shapes:

* :meth:`MetricsRegistry.as_dict` -- the JSON object embedded in the
  ``repro serve`` ``{"cmd": "stats"}`` response;
* :meth:`MetricsRegistry.render_prometheus` -- a Prometheus-style text
  dump (``{"cmd": "metrics"}``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

MetricValue = Union[int, float]

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


def _label_key(labels: Mapping[str, str]) -> str:
    """Deterministic ``{a="x",b="y"}`` suffix (empty for no labels)."""
    if not labels:
        return ""
    inner = ",".join('%s="%s"' % (k, labels[k]) for k in sorted(labels))
    return "{%s}" % inner


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % amount)
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, live workers)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +1 = +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, cumulative count)`` rows ending with ``+Inf``."""
        rows: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            rows.append((repr(bound), running))
        rows.append(("+Inf", self.count))
        return rows


class MetricsRegistry:
    """Name -> metric map with explicit reset (see module doc)."""

    def __init__(self, prefix: str = "repro_") -> None:
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._histogram_base: Dict[str, str] = {}

    # -- access (create on first use) ----------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = name + _label_key(labels)
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = name + _label_key(labels)
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: str) -> Histogram:
        key = name + _label_key(labels)
        if key not in self._histograms:
            self._histograms[key] = Histogram(buckets or DEFAULT_BUCKETS)
            self._histogram_base[key] = name
        return self._histograms[key]

    # -- reads ----------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> float:
        metric = self._counters.get(name + _label_key(labels))
        return metric.value if metric is not None else 0.0

    def gauge_value(self, name: str, **labels: str) -> float:
        metric = self._gauges.get(name + _label_key(labels))
        return metric.value if metric is not None else 0.0

    def reset(self) -> None:
        """Forget every metric (tests / fresh service epochs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._histogram_base.clear()

    # -- export ---------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic JSON object (the ``stats`` wire shape)."""
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value
                       for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": round(h.sum, 9),
                    "buckets": {le: n for le, n in h.cumulative()},
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition (one final newline, sorted names)."""
        lines: List[str] = []
        for key in sorted(self._counters):
            lines.append("# TYPE %s%s counter" % (self.prefix, _base(key)))
            lines.append("%s%s %g" % (self.prefix, key,
                                      self._counters[key].value))
        for key in sorted(self._gauges):
            lines.append("# TYPE %s%s gauge" % (self.prefix, _base(key)))
            lines.append("%s%s %g" % (self.prefix, key,
                                      self._gauges[key].value))
        for key in sorted(self._histograms):
            hist = self._histograms[key]
            base = self.prefix + self._histogram_base[key]
            labels = key[len(self._histogram_base[key]):]
            lines.append("# TYPE %s histogram" % base)
            for le, n in hist.cumulative():
                lines.append('%s_bucket%s %d'
                             % (base, _merge_labels(labels, le), n))
            lines.append("%s_sum%s %g" % (base, labels, hist.sum))
            lines.append("%s_count%s %d" % (base, labels, hist.count))
        return "\n".join(lines) + "\n" if lines else ""


def _base(key: str) -> str:
    """Metric name with any label suffix stripped."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def _merge_labels(labels: str, le: str) -> str:
    """Fold ``le="..."`` into an existing (possibly empty) label set."""
    if not labels:
        return '{le="%s"}' % le
    return '%s,le="%s"}' % (labels[:-1], le)


#: The process-wide registry (see module doc for the fork contract).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
