"""Observability: structured tracing, metrics, and regression gates.

The BDS paper's argument is empirical (Table I: CPU, memory, literals),
so the reproduction treats observability as a subsystem, not an
afterthought:

* :mod:`repro.obs.trace` -- nested span API over monotonic timers,
  capturing per-span deltas of the :mod:`repro.perf` counters and
  exporting Chrome ``trace_event`` JSON (``repro optimize --trace``).
* :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges and histograms with explicit reset, surfaced by the ``stats``
  JSON-lines command and a Prometheus-style text dump from
  ``repro serve``.
* :mod:`repro.obs.regress` -- the regression harness behind
  ``repro bench --compare``: diffs a fresh run against committed
  ``BENCH_*.json`` baselines with per-metric tolerances and exits 0/1/2.

See ``docs/OBSERVABILITY.md`` for the span catalog, metric names and
tolerance policy.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               get_registry)
from repro.obs.regress import (DEFAULT_BENCH_CIRCUITS, RegressionReport,
                               collect_flow_payload, compare_payloads,
                               load_baseline)
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BENCH_CIRCUITS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "RegressionReport",
    "Span",
    "Tracer",
    "collect_flow_payload",
    "compare_payloads",
    "get_registry",
    "load_baseline",
]
