"""Perf/quality regression harness behind ``repro bench --compare``.

Turns the ``BENCH_*.json`` trajectory from advisory JSON into an
enforced contract: a fresh run of the standard circuit set is diffed
against a committed baseline with per-metric tolerances, and the exit
code says whether the contract held.

Tolerance policy (docs/OBSERVABILITY.md):

* ``cpu_s`` -- ratio tolerance, default +/-25% (machines differ; pass a
  wider ``cpu_tol`` on shared CI runners).  Slower than baseline by more
  than the tolerance is a **regression**; faster is reported as an
  improvement and passes (refresh the baseline to lock it in).  Both
  sides are clamped to an absolute floor (``CPU_FLOOR_S``) before the
  ratio: a sub-millisecond baseline (tiny circuit, fast machine) would
  otherwise blow any relative tolerance on scheduler noise alone -- or
  divide by zero outright.  Only a *negative* baseline is incomparable.
* ``nodes`` / ``literals`` -- **exact**.  The flow is deterministic, so
  *any* drift in result quality, in either direction, demands a
  deliberate baseline update, never a silent one.
* counter monotonicity -- internal-consistency rules over the kernel
  counters of the *fresh* run (non-negative, free-list reuse implies a
  reclamation source, ``peak_live_nodes <= peak_allocated_nodes``, hit
  rate in [0, 1]).  A violation means the telemetry itself is broken,
  which poisons every other comparison: exit 2.

Exit codes: 0 = within tolerances; 1 = regression; 2 = not comparable
(schema mismatch, circuits missing from either side, or inconsistent
counters).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Payload schema tag (bump on incompatible layout changes).
SCHEMA = "repro-bench-flow/1"

#: The standard bench set: Table I circuits small enough that the whole
#: sweep stays under a few seconds, plus two arithmetic/control shapes.
DEFAULT_BENCH_CIRCUITS: Tuple[str, ...] = (
    "C432", "C499", "C880", "C1908", "add8", "rl_mux")

#: Exact result-quality metrics (determinism contract: no tolerance).
EXACT_METRICS: Tuple[str, ...] = ("nodes", "literals")

#: Absolute floor for the CPU ratio comparison: timings below this are
#: measurement noise, so both sides are clamped to it before dividing.
#: A 0.0 s baseline thus compares as ``floor`` rather than raising
#: ZeroDivisionError or failing the gate on an 0.4 ms -> 0.9 ms "2.2x".
CPU_FLOOR_S = 0.05

#: ``(description, predicate)`` consistency rules over one circuit's
#: fresh counter snapshot; a False verdict poisons the comparison.
MONOTONICITY_RULES: Tuple[Tuple[str, Callable[[Dict[str, float]], bool]], ...] = (
    ("all counters non-negative",
     lambda c: all(v >= 0 for v in c.values())),
    ("no free-list reuse without a reclamation source (GC sweep or "
     "reorder-session swap)",
     lambda c: c.get("nodes_reused", 0) == 0
     or c.get("gc_reclaimed", 0) + c.get("reorder_swaps", 0) > 0),
    ("peak_live_nodes <= peak_allocated_nodes",
     lambda c: c.get("peak_live_nodes", 0) <= c.get("peak_allocated_nodes", 0)),
    ("cache_hit_rate within [0, 1]",
     lambda c: 0.0 <= c.get("cache_hit_rate", 0.0) <= 1.0),
    ("gc_reclaimed consistent with sweeps (no reclaim without a sweep)",
     lambda c: c.get("gc_sweeps", 0) > 0 or c.get("gc_reclaimed", 0) == 0),
)


@dataclass
class Diff:
    """One compared metric on one circuit."""

    circuit: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    status: str          # "ok" | "improved" | "regressed" | "incomparable"
    note: str = ""

    def render(self) -> str:
        return ("%-10s %-12s baseline=%-12s current=%-12s %s%s"
                % (self.circuit, self.metric,
                   _fmt(self.baseline), _fmt(self.current),
                   self.status.upper(),
                   " (%s)" % self.note if self.note else ""))


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return "%d" % int(value)
    return "%.4f" % value


@dataclass
class RegressionReport:
    """Outcome of one baseline comparison."""

    diffs: List[Diff] = field(default_factory=list)

    @property
    def regressions(self) -> List[Diff]:
        return [d for d in self.diffs if d.status == "regressed"]

    @property
    def incomparable(self) -> List[Diff]:
        return [d for d in self.diffs if d.status == "incomparable"]

    def exit_code(self) -> int:
        if self.incomparable:
            return 2
        return 1 if self.regressions else 0

    def render(self) -> str:
        lines = [d.render() for d in self.diffs
                 if d.status != "ok"] or ["all metrics within tolerance"]
        lines.append("bench compare: %d metric(s), %d regressed, "
                     "%d incomparable -> exit %d"
                     % (len(self.diffs), len(self.regressions),
                        len(self.incomparable), self.exit_code()))
        return "\n".join(lines)


def collect_flow_payload(circuits: Optional[Tuple[str, ...]] = None,
                         options: Optional[Any] = None) -> Dict[str, Any]:
    """Run the BDS flow over ``circuits`` and collect the bench payload.

    CPU is measured with a monotonic timer around the optimization only
    (mirrors the paper's CPU column); node/literal counts come from the
    optimized network; counters are the flow's ``BDSResult.perf``.
    """
    from repro.bds.flow import BDSOptions, bds_optimize
    from repro.circuits import build_circuit

    per_circuit: Dict[str, Dict[str, Any]] = {}
    for name in sorted(circuits or DEFAULT_BENCH_CIRCUITS):
        net = build_circuit(name)
        t0 = time.perf_counter()
        result = bds_optimize(net, options or BDSOptions())
        cpu = time.perf_counter() - t0
        stats = result.network.stats()
        per_circuit[name] = {
            "cpu_s": round(cpu, 6),
            "nodes": stats["nodes"],
            "literals": stats["literals"],
            "counters": {k: result.perf[k] for k in sorted(result.perf)},
        }
    return {"schema": SCHEMA, "circuits": per_circuit}


def load_baseline(path: str) -> Dict[str, Any]:
    """Load a baseline payload from a bench JSON file.

    Accepts either a raw payload (has ``circuits``) or a
    ``BENCH_all.json`` aggregate (payload nested under ``flow``).
    """
    with open(path) as fh:
        obj = json.load(fh)
    if isinstance(obj, dict) and "circuits" not in obj \
            and isinstance(obj.get("flow"), dict):
        obj = obj["flow"]
    if not isinstance(obj, dict) or not isinstance(obj.get("circuits"), dict):
        raise ValueError("%s: no 'circuits' payload found "
                         "(not a bench baseline?)" % path)
    return obj


def compare_payloads(baseline: Dict[str, Any], current: Dict[str, Any],
                     cpu_tol: float = 0.25,
                     cpu_floor: float = CPU_FLOOR_S) -> RegressionReport:
    """Diff ``current`` against ``baseline`` (see module doc)."""
    report = RegressionReport()
    base_circuits = baseline.get("circuits")
    cur_circuits = current.get("circuits")
    if not isinstance(base_circuits, dict) or not isinstance(cur_circuits, dict):
        report.diffs.append(Diff("*", "schema", None, None, "incomparable",
                                 "missing 'circuits' payload"))
        return report
    for name in sorted(set(base_circuits) | set(cur_circuits)):
        base = base_circuits.get(name)
        cur = cur_circuits.get(name)
        if base is None or cur is None:
            report.diffs.append(Diff(
                name, "presence", None, None, "incomparable",
                "circuit missing from %s"
                % ("current run" if cur is None else "baseline")))
            continue
        _compare_circuit(report, name, base, cur, cpu_tol, cpu_floor)
    return report


def _compare_circuit(report: RegressionReport, name: str,
                     base: Dict[str, Any], cur: Dict[str, Any],
                     cpu_tol: float, cpu_floor: float = CPU_FLOOR_S) -> None:
    # Counter consistency first: broken telemetry poisons everything.
    counters = {str(k): float(v)
                for k, v in (cur.get("counters") or {}).items()}
    for desc, rule in MONOTONICITY_RULES:
        if not rule(counters):
            report.diffs.append(Diff(name, "counters", None, None,
                                     "incomparable", "violates: %s" % desc))
    for metric in EXACT_METRICS:
        b, c = base.get(metric), cur.get(metric)
        if b is None or c is None:
            report.diffs.append(Diff(name, metric, b, c, "incomparable",
                                     "metric missing"))
        elif c != b:
            report.diffs.append(Diff(
                name, metric, float(b), float(c), "regressed",
                "exact metric drifted; quality changes require a "
                "deliberate baseline update"))
        else:
            report.diffs.append(Diff(name, metric, float(b), float(c), "ok"))
    b_cpu, c_cpu = base.get("cpu_s"), cur.get("cpu_s")
    if b_cpu is None or c_cpu is None:
        report.diffs.append(Diff(name, "cpu_s", b_cpu, c_cpu,
                                 "incomparable", "metric missing"))
    elif float(b_cpu) < 0:
        report.diffs.append(Diff(name, "cpu_s", float(b_cpu), float(c_cpu),
                                 "incomparable", "negative baseline"))
    else:
        # max(x, floor) on both sides: a near-zero baseline is noise, not
        # a denominator (satellite fix for ZeroDivisionError / spurious
        # failures on sub-millisecond circuits).
        ratio = max(float(c_cpu), cpu_floor) / max(float(b_cpu), cpu_floor)
        floored = float(b_cpu) < cpu_floor or float(c_cpu) < cpu_floor
        if ratio > 1.0 + cpu_tol:
            status, note = "regressed", "%.2fx slower (tol %.0f%%)" % (
                ratio, cpu_tol * 100)
        elif ratio < 1.0 - cpu_tol:
            status, note = "improved", "%.2fx of baseline" % ratio
        else:
            status, note = "ok", ""
        if floored and note:
            note += "; floored at %gs" % cpu_floor
        report.diffs.append(Diff(name, "cpu_s", float(b_cpu), float(c_cpu),
                                 status, note))
