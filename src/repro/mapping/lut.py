"""K-LUT technology mapping for FPGAs (the paper's Section VI item 4).

The paper reports that BDS is "amenable to FPGA synthesis" with "over 30%
improvement in the LUT count" ([35], BDS-pga's ancestor).  This module
implements an area-oriented K-feasible-cut mapper:

1. the network is lowered to the same NAND2/INV subject DAG the cell
   mapper uses (so both targets see identical structure),
2. K-feasible cuts are enumerated per vertex (bounded cut sets, standard
   cut-enumeration with dominance pruning),
3. a depth-then-area cover chooses one cut per needed output, emitting one
   K-input LUT per chosen cut.

The mapped result is rebuilt as a :class:`Network` whose nodes are LUT
truth tables, so it can be verified like any other netlist.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.mapping.subject import SubjectGraph, build_subject
from repro.network.network import Network
from repro.sop.cube import lit


@dataclass
class LutMappingResult:
    network: Network
    lut_count: int
    depth: int
    k: int

    def summary(self) -> str:
        return "luts=%d depth=%d (K=%d)" % (self.lut_count, self.depth, self.k)


def map_luts(net: Network, k: int = 5, max_cuts: int = 12) -> LutMappingResult:
    """Map a network onto K-input LUTs; returns the LUT netlist + metrics."""
    if k < 2:
        raise ValueError("LUTs need at least 2 inputs")
    sg = build_subject(net)
    depth, choice = _enumerate_and_choose(sg, k, max_cuts)

    out_net = Network(net.name + "_luts")
    for i in net.inputs:
        out_net.add_input(i)
    for o in net.outputs:
        out_net.add_output(o)

    emitted: Dict[int, str] = {}
    signal_of_root = {v: name for name, v in sg.roots.items()}
    counter = [0]

    def emit(v: int) -> str:
        """Materialize vertex ``v`` as a LUT; returns its signal name."""
        if sg.kind[v] == "leaf":
            return sg.signal[v]
        if v in emitted:
            return emitted[v]
        cut = choice[v]
        # Global structural hashing can place both a multi-fanout signal's
        # leaf and its root operator vertex in one cut; both emit the same
        # signal name, so merge such pins (they are the same logical
        # signal) to keep the LUT's fanins duplicate-free.
        pin_signals: List[str] = []
        pin_groups: List[List[int]] = []
        index_of: Dict[str, int] = {}
        for u in sorted(cut):
            s = emit(u)
            i = index_of.get(s)
            if i is None:
                index_of[s] = len(pin_signals)
                pin_signals.append(s)
                pin_groups.append([u])
            else:
                pin_groups[i].append(u)
        name = signal_of_root.get(v)
        if name is None:
            counter[0] += 1
            name = "_lut%d" % counter[0]
        cover = _cut_truth_cover(sg, v, pin_groups)
        out_net.add_node(name, pin_signals, cover)
        emitted[v] = name
        return name

    lut_depth = 0
    for name, root in sg.roots.items():
        if sg.kind[root] == "leaf":
            out_net.add_buf(name, sg.signal[root])
            continue
        # Structural hashing can collapse two roots onto one vertex, in
        # which case only one of the names materializes a LUT; the other
        # root gets a buffer so every root signal stays driven.
        sig = emit(root)
        if sig != name:
            out_net.add_buf(name, sig)
        lut_depth = max(lut_depth, depth[root])
    _materialize_constants(out_net)
    out_net.check()
    luts = sum(1 for n in out_net.nodes.values() if n.fanins)
    return LutMappingResult(out_net, luts, lut_depth, k)


def _enumerate_and_choose(sg: SubjectGraph, k: int, max_cuts: int
                          ) -> Tuple[Dict[int, int], Dict[int, FrozenSet[int]]]:
    """Enumerate K-feasible cuts bottom-up, pruning by (depth, size), and
    pick the best implementation cut per vertex.

    Returns ``(depth, choice)``: the LUT depth and the chosen cut of every
    operator vertex.
    """
    cuts: List[List[FrozenSet[int]]] = [[] for _ in range(len(sg))]
    depth: Dict[int, int] = {}
    choice: Dict[int, FrozenSet[int]] = {}

    def cut_depth(cut: FrozenSet[int]) -> int:
        return 1 + max((depth[u] for u in cut if sg.kind[u] != "leaf"),
                       default=0)

    for v in range(len(sg)):
        if sg.kind[v] == "leaf":
            cuts[v] = [frozenset({v})]
            depth[v] = 0
            continue
        merged: Set[FrozenSet[int]] = set()
        children = sg.children[v]
        if len(children) == 1:
            merged.update(cuts[children[0]])
        else:
            a, b = children
            for ca in cuts[a]:
                for cb in cuts[b]:
                    u = ca | cb
                    if len(u) <= k:
                        merged.add(u)
        # Prune: best (depth, size) first, then dominance (drop supersets
        # of an already kept cut with no better depth).
        ranked = sorted(merged, key=lambda c: (cut_depth(c), len(c)))
        kept: List[FrozenSet[int]] = []
        for cut in ranked:
            if any(prev <= cut and cut_depth(prev) <= cut_depth(cut)
                   for prev in kept):
                continue
            kept.append(cut)
            if len(kept) >= max_cuts:
                break
        assert kept, "no feasible cut at vertex %d" % v
        best = kept[0]
        depth[v] = cut_depth(best)
        choice[v] = best
        # The trivial cut must be visible to parents.
        cuts[v] = kept + [frozenset({v})]
    return depth, choice


def _cut_truth_cover(sg: SubjectGraph, root: int, pin_groups: List[List[int]]):
    """Truth table of ``root`` as a function of the cut pins, as a cover.

    ``pin_groups[i]`` lists the cut vertices that all carry LUT input
    ``i``'s signal; every vertex of a group is assigned that input's value.
    """
    cover = []
    for bits in itertools.product([False, True], repeat=len(pin_groups)):
        env = {u: bits[i] for i, group in enumerate(pin_groups) for u in group}
        if _eval_vertex(sg, root, env):
            cover.append(frozenset(
                lit(i, bits[i]) for i in range(len(pin_groups))))
    from repro.sop.minimize import simplify_cover

    return simplify_cover(cover)


def _eval_vertex(sg: SubjectGraph, v: int, env: Dict[int, bool]) -> bool:
    if v in env:
        return env[v]
    kind = sg.kind[v]
    if kind == "leaf":
        name = sg.signal[v]
        if name == "__const0__":
            return False
        if name == "__const1__":
            return True
        raise KeyError("leaf %r outside the cut" % name)
    if kind == "inv":
        return not _eval_vertex(sg, sg.children[v][0], env)
    a, b = sg.children[v]
    return not (_eval_vertex(sg, a, env) and _eval_vertex(sg, b, env))


def _materialize_constants(net: Network) -> None:
    used = {f for node in net.nodes.values() for f in node.fanins}
    for cname, value in (("__const0__", False), ("__const1__", True)):
        if cname in used and cname not in net.nodes:
            net.add_const(cname, value)
