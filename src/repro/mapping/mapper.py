"""Tree-based technology mapping by dynamic programming.

For every tree root of the subject graph, the mapper tries every library
pattern at every vertex (with commutative NAND matching and consistent
bindings for repeated placeholders), choosing the minimum-area cover.
Delay is computed afterwards over the selected netlist with the cells'
pin delays; the mapped netlist is rebuilt as a :class:`Network` so results
can be formally verified against the optimized network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mapping.genlib import Cell, Library, mcnc_library
from repro.mapping.subject import SubjectGraph, build_subject
from repro.network.network import Network


@dataclass
class MappedGate:
    output: str
    cell: Cell
    inputs: List[str]


@dataclass
class MappingResult:
    gates: List[MappedGate]
    area: float
    delay: float
    network: Network
    cell_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def summary(self) -> str:
        return "gates=%d area=%.0f delay=%.2f" % (
            self.gate_count, self.area, self.delay)


def map_network(net: Network, library: Optional[Library] = None,
                mode: str = "area") -> MappingResult:
    """Map a Boolean network onto the library; returns gates + metrics.

    ``mode`` selects the covering objective: ``"area"`` (minimum total cell
    area, the SIS default the paper's tables use) or ``"delay"`` (minimum
    worst-case arrival, ties broken by area).
    """
    if mode not in ("area", "delay"):
        raise ValueError("mode must be 'area' or 'delay'")
    library = library or mcnc_library()
    sg = build_subject(net)
    gates: List[MappedGate] = []
    counter = [0]

    def fresh(prefix="m"):
        counter[0] += 1
        return "_%s%d" % (prefix, counter[0])

    for signal in _root_order(net, sg):
        root = sg.roots[signal]
        best = {} if sg.kind[root] == "leaf" else _map_tree(sg, root, library,
                                                            mode)
        _emit(sg, root, best, signal, gates, fresh, library)

    mapped_net = _gates_to_network(net, gates)
    area = sum(g.cell.area for g in gates)
    delay = _critical_delay(net, gates)
    hist: Dict[str, int] = {}
    for g in gates:
        hist[g.cell.name] = hist.get(g.cell.name, 0) + 1
    return MappingResult(gates, area, delay, mapped_net, hist)


def _root_order(net: Network, sg: SubjectGraph) -> List[str]:
    order = [n.name for n in net.topological() if n.name in sg.roots]
    return order


# ----------------------------------------------------------------------
# DP over one tree
# ----------------------------------------------------------------------


class _Match:
    __slots__ = ("cell", "bindings", "cost")

    def __init__(self, cell: Cell, bindings: Dict[str, int], cost):
        self.cell = cell
        self.bindings = bindings  # placeholder -> subject vertex
        self.cost = cost          # (area,) or (arrival, area)


def _map_tree(sg: SubjectGraph, root: int, library: Library,
              mode: str = "area") -> Dict[int, _Match]:
    """Best match per vertex of the tree rooted at ``root``."""
    best: Dict[int, _Match] = {}

    def cost_of(v: int):
        if sg.kind[v] == "leaf":
            return (0.0, 0.0)
        return solve(v).cost

    def solve(v: int) -> _Match:
        if v in best:
            return best[v]
        choice: Optional[_Match] = None
        choice_key = None
        for cell in library:
            for bindings in _match(sg, v, cell.pattern):
                input_costs = [cost_of(b) for b in bindings.values()]
                area = cell.area + sum(c[1] for c in input_costs)
                arrival = cell.delay + max((c[0] for c in input_costs),
                                           default=0.0)
                key = (area, arrival) if mode == "area" else (arrival, area)
                if choice_key is None or key < choice_key:
                    choice_key = key
                    choice = _Match(cell, bindings, (arrival, area))
        if choice is None:
            raise RuntimeError("no library cell matches subject vertex %d (%s)"
                               % (v, sg.kind[v]))
        best[v] = choice
        return choice

    solve(root)
    return best


def _match(sg: SubjectGraph, v: int, pattern) -> List[Dict[str, int]]:
    """All consistent bindings of ``pattern`` at vertex ``v``."""
    if isinstance(pattern, str):
        return [{pattern: v}]
    kind = pattern[0]
    if sg.kind[v] != kind:
        return []
    out: List[Dict[str, int]] = []
    if kind == "inv":
        for b in _match(sg, sg.children[v][0], pattern[1]):
            out.append(b)
        return out
    # NAND: try both argument orders.
    a, b = sg.children[v]
    for pa, pb in ((pattern[1], pattern[2]), (pattern[2], pattern[1])):
        for ba in _match(sg, a, pa):
            for bb in _match(sg, b, pb):
                merged = _merge(ba, bb)
                if merged is not None and merged not in out:
                    out.append(merged)
    return out


def _merge(a: Dict[str, int], b: Dict[str, int]) -> Optional[Dict[str, int]]:
    merged = dict(a)
    for k, v in b.items():
        if merged.get(k, v) != v:
            return None
        merged[k] = v
    return merged


# ----------------------------------------------------------------------
# Netlist emission
# ----------------------------------------------------------------------


def _emit(sg: SubjectGraph, root: int, best: Dict[int, _Match],
          out_signal: str, gates: List[MappedGate], fresh, library: Library) -> None:
    """Materialize the chosen cover of one tree as gates."""

    def signal_for(v: int) -> str:
        if sg.kind[v] == "leaf":
            return sg.signal[v]
        return emit_vertex(v, None)

    emitted: Dict[int, str] = {}

    def emit_vertex(v: int, target: Optional[str]) -> str:
        if target is None and v in emitted:
            return emitted[v]
        match = best[v]
        pins = [signal_for(match.bindings[p]) for p in match.cell.inputs]
        name = target or fresh()
        gates.append(MappedGate(name, match.cell, pins))
        if target is None:
            emitted[v] = name
        return name

    if sg.kind[root] == "leaf":
        # Root degenerated to a wire: emit a buffer via double inverter.
        inv = library.inverter
        t = fresh()
        gates.append(MappedGate(t, inv, [sg.signal[root]]))
        gates.append(MappedGate(out_signal, inv, [t]))
        return
    emit_vertex(root, out_signal)


def _gates_to_network(net: Network, gates: List[MappedGate]) -> Network:
    out = Network(net.name + "_mapped")
    for i in net.inputs:
        out.add_input(i)
    for o in net.outputs:
        out.add_output(o)
    const_needed = set()
    for g in gates:
        for pin in g.inputs:
            if pin in ("__const0__", "__const1__"):
                const_needed.add(pin)
    for c in const_needed:
        out.add_const(c, c == "__const1__")
    for g in gates:
        fanins, cover = _dedupe_pins(g.inputs, g.cell.cover)
        out.add_node(g.output, fanins, cover)
    # Outputs driven directly by PIs need nothing; outputs driven by
    # constants in the original network need a constant node.
    for o in net.outputs:
        if o not in out.nodes and o not in out.inputs:
            node = net.nodes.get(o)
            if node is not None and node.constant_value() is not None:
                out.add_const(o, node.constant_value())
    out.check()
    return out


def _dedupe_pins(pins: List[str], cover) -> Tuple[List[str], list]:
    """Merge pins tied to the same signal (a pattern may bind one subject
    vertex to several placeholders); contradictory cubes drop out."""
    if len(set(pins)) == len(pins):
        return list(pins), list(cover)
    unique: List[str] = []
    pos_of: Dict[str, int] = {}
    for s in pins:
        if s not in pos_of:
            pos_of[s] = len(unique)
            unique.append(s)
    from repro.sop.cube import lit
    new_cover = []
    for cube in cover:
        merged: Dict[int, bool] = {}
        ok = True
        for l in cube:
            p = pos_of[pins[l >> 1]]
            positive = not (l & 1)
            if p in merged and merged[p] != positive:
                ok = False
                break
            merged[p] = positive
        if ok:
            new_cover.append(frozenset(lit(p, v) for p, v in merged.items()))
    return unique, new_cover


def _critical_delay(net: Network, gates: List[MappedGate]) -> float:
    arrival: Dict[str, float] = {i: 0.0 for i in net.inputs}
    arrival["__const0__"] = arrival["__const1__"] = 0.0
    remaining = list(gates)
    # Gates are emitted roughly topologically, but resolve iteratively.
    guard = 0
    while remaining:
        progressed = []
        for g in remaining:
            if all(p in arrival for p in g.inputs):
                arrival[g.output] = g.cell.delay + max(
                    (arrival[p] for p in g.inputs), default=0.0)
            else:
                progressed.append(g)
        if len(progressed) == len(remaining):
            guard += 1
            if guard > 2:
                raise RuntimeError("unresolvable gate ordering in delay calc")
        remaining = progressed
    return max((arrival.get(o, 0.0) for o in net.outputs), default=0.0)
