"""The gate library: an ``mcnc.genlib``-style cell set.

Each cell carries an area (lambda^2-flavoured, so totals land in the same
magnitude as the paper's tables), a pin-to-output delay, a *pattern* over
the NAND2/INV subject basis, and a cube cover used to rebuild the mapped
netlist for verification.

Patterns are nested tuples: ``("nand", p, q)``, ``("inv", p)`` or a leaf
placeholder string.  A placeholder appearing twice (XOR/XNOR/MUX cells)
must bind to the *same* subject DAG node -- structural hashing makes that
an identity check.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sop.cube import lit

Pattern = object  # nested tuples / placeholder strings


class Cell:
    """One library cell."""

    def __init__(self, name: str, area: float, delay: float,
                 pattern: Pattern, inputs: Sequence[str],
                 cover: List[frozenset]):
        self.name = name
        self.area = area
        self.delay = delay
        self.pattern = pattern
        self.inputs = list(inputs)       # placeholder order = pin order
        self.cover = cover               # over pin positions

    def __repr__(self) -> str:
        return "Cell(%s, area=%.0f)" % (self.name, self.area)


class Library:
    """A collection of cells plus the mandatory inverter."""

    def __init__(self, cells: Sequence[Cell]):
        self.cells = list(cells)
        by_name = {c.name: c for c in self.cells}
        if "inv1" not in by_name:
            raise ValueError("library must contain an inv1 cell")
        self.inverter = by_name["inv1"]

    def __iter__(self):
        return iter(self.cells)

    def by_name(self, name: str) -> Cell:
        for c in self.cells:
            if c.name == name:
                return c
        raise KeyError(name)


def _and_cover(n):
    return [frozenset(lit(i) for i in range(n))]


def _or_cover(n):
    return [frozenset({lit(i)}) for i in range(n)]


def _inv_cover(cover):
    """Complement of a small cover via BDD-free De Morgan on these shapes is
    error-prone; use the sop complement directly."""
    from repro.sop.cover import complement
    return complement(cover)


def mcnc_library() -> Library:
    """The default library (areas/delays in mcnc.genlib magnitudes)."""
    A = 464.0  # lambda^2 per area unit, putting totals in table range
    cells: List[Cell] = []

    def cell(name, units, delay, pattern, inputs, cover):
        cells.append(Cell(name, units * A, delay, pattern, inputs, cover))

    inv = lambda p: ("inv", p)
    nand = lambda p, q: ("nand", p, q)

    cell("inv1", 1, 1.0, inv("a"), ["a"], [frozenset({lit(0, False)})])
    cell("nand2", 2, 1.2, nand("a", "b"), ["a", "b"],
         _inv_cover(_and_cover(2)))
    cell("nand3", 3, 1.4,
         nand(inv(nand("a", "b")), "c"), ["a", "b", "c"],
         _inv_cover(_and_cover(3)))
    cell("nand4", 4, 1.6,
         nand(inv(nand(inv(nand("a", "b")), "c")), "d"), ["a", "b", "c", "d"],
         _inv_cover(_and_cover(4)))
    cell("and2", 3, 1.5, inv(nand("a", "b")), ["a", "b"], _and_cover(2))
    cell("nor2", 2, 1.4, inv(nand(inv("a"), inv("b"))), ["a", "b"],
         _inv_cover(_or_cover(2)))
    cell("nor3", 3, 1.6,
         inv(nand(inv(nand(inv("a"), inv("b"))), inv("c"))), ["a", "b", "c"],
         _inv_cover(_or_cover(3)))
    cell("or2", 3, 1.7, nand(inv("a"), inv("b")), ["a", "b"], _or_cover(2))
    cell("aoi21", 3, 1.6, inv(nand(nand("a", "b"), inv("c"))),
         ["a", "b", "c"],
         _inv_cover([frozenset({lit(0), lit(1)}), frozenset({lit(2)})]))
    cell("oai21", 3, 1.6, nand(nand(inv("a"), inv("b")), "c"),
         ["a", "b", "c"],
         _inv_cover([frozenset({lit(0), lit(2)}), frozenset({lit(1), lit(2)})]))
    cell("aoi22", 4, 1.8, inv(nand(nand("a", "b"), nand("c", "d"))),
         ["a", "b", "c", "d"],
         _inv_cover([frozenset({lit(0), lit(1)}), frozenset({lit(2), lit(3)})]))
    cell("oai22", 4, 1.8, nand(nand(inv("a"), inv("b")), nand(inv("c"), inv("d"))),
         ["a", "b", "c", "d"],
         _inv_cover([frozenset({lit(0), lit(2)}), frozenset({lit(0), lit(3)}),
                     frozenset({lit(1), lit(2)}), frozenset({lit(1), lit(3)})]))
    # XOR lowered from SOP is nand(nand(a, inv b), nand(inv a, b)).
    cell("xor2", 5, 2.0,
         nand(nand("a", inv("b")), nand(inv("a"), "b")), ["a", "b"],
         [frozenset({lit(0), lit(1, False)}), frozenset({lit(0, False), lit(1)})])
    # XNOR lowered from SOP is nand(nand(a, b), nand(inv a, inv b)).
    cell("xnor2", 5, 2.0,
         nand(nand("a", "b"), nand(inv("a"), inv("b"))), ["a", "b"],
         [frozenset({lit(0), lit(1)}), frozenset({lit(0, False), lit(1, False)})])
    # MUX lowered from SOP {s a, ~s b} is nand(nand(s, a), nand(inv s, b)).
    cell("mux21", 5, 2.0,
         nand(nand("s", "a"), nand(inv("s"), "b")), ["s", "a", "b"],
         [frozenset({lit(0), lit(1)}), frozenset({lit(0, False), lit(2)})])
    return Library(cells)


def pattern_placeholders(pattern: Pattern) -> List[str]:
    """Placeholder names of a pattern, in first-occurrence order."""
    out: List[str] = []

    def rec(p):
        if isinstance(p, str):
            if p not in out:
                out.append(p)
        else:
            for child in p[1:]:
                rec(child)

    rec(pattern)
    return out
