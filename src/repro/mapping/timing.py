"""Static timing analysis over mapped netlists.

Arrival/required/slack computation and critical-path extraction on a
:class:`MappingResult` -- the reporting layer behind the Delay columns of
the experiment tables, exposed for downstream use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mapping.mapper import MappedGate, MappingResult


@dataclass
class TimingReport:
    arrival: Dict[str, float]
    required: Dict[str, float]
    slack: Dict[str, float]
    critical_path: List[str]      # signals from a PI to the worst output
    worst_delay: float

    def worst_output(self) -> Optional[str]:
        return self.critical_path[-1] if self.critical_path else None


def analyze_timing(result: MappingResult,
                   required_time: Optional[float] = None) -> TimingReport:
    """Compute arrival/required/slack and the critical path of a mapping."""
    net = result.network
    gates: Dict[str, MappedGate] = {g.output: g for g in result.gates}
    arrival: Dict[str, float] = {i: 0.0 for i in net.inputs}
    arrival["__const0__"] = arrival["__const1__"] = 0.0
    worst_input: Dict[str, Optional[str]] = {}
    for node in net.topological():
        gate = gates.get(node.name)
        if gate is None:
            # constant node or buffer introduced during reconstruction
            arrival[node.name] = max(
                (arrival.get(f, 0.0) for f in node.fanins), default=0.0)
            worst_input[node.name] = max(
                node.fanins, key=lambda f: arrival.get(f, 0.0), default=None
            ) if node.fanins else None
            continue
        ins = gate.inputs
        worst = max(ins, key=lambda p: arrival.get(p, 0.0)) if ins else None
        base = arrival.get(worst, 0.0) if worst is not None else 0.0
        arrival[node.name] = base + gate.cell.delay
        worst_input[node.name] = worst
    worst_delay = max((arrival.get(o, 0.0) for o in net.outputs), default=0.0)
    target = required_time if required_time is not None else worst_delay

    # Required times propagate backwards.
    required: Dict[str, float] = {}
    for o in net.outputs:
        required[o] = min(required.get(o, target), target)
    for node in reversed(net.topological()):
        gate = gates.get(node.name)
        req = required.get(node.name)
        if req is None:
            continue
        delay = gate.cell.delay if gate is not None else 0.0
        pins = gate.inputs if gate is not None else node.fanins
        for pin in pins:
            cand = req - delay
            if pin not in required or cand < required[pin]:
                required[pin] = cand

    slack = {name: required[name] - arrival.get(name, 0.0)
             for name in required}

    # Critical path: walk worst inputs backwards from the worst output.
    path: List[str] = []
    if net.outputs:
        cur = max(net.outputs, key=lambda o: arrival.get(o, 0.0))
        while cur is not None:
            path.append(cur)
            cur = worst_input.get(cur)
        path.reverse()
    return TimingReport(arrival, required, slack, path, worst_delay)


def format_timing(report: TimingReport, top: int = 10) -> str:
    """Readable summary: worst path and the tightest-slack signals."""
    lines = ["worst delay: %.2f" % report.worst_delay,
             "critical path: " + " -> ".join(report.critical_path)]
    tight = sorted(report.slack.items(), key=lambda kv: kv[1])[:top]
    lines.append("tightest slacks:")
    for name, s in tight:
        lines.append("  %-20s %8.2f" % (name, s))
    return "\n".join(lines)
