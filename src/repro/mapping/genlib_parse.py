"""Parser for the genlib gate-library format (SIS/mcnc.genlib style).

Accepts the classic syntax::

    GATE nand2  2.0  O = !(a * b);         PIN * INV 1 999 1.0 0.2 1.0 0.2
    GATE aoi21  3.0  O = !(a * b + c);     PIN * INV 1 999 1.6 0.3 1.6 0.3
    GATE xor2   5.0  O = a * !b + !a * b;  PIN * UNKNOWN 2 999 2.0 0 2.0 0

and produces :class:`repro.mapping.genlib.Cell` objects: the output
expression is parsed to an AST, lowered to the NAND2/INV pattern basis
(the subject-graph basis of the tree mapper), and evaluated to a cube
cover for netlist reconstruction.  The cell delay is taken as the maximum
pin block delay (a simplified timing view).
"""

from __future__ import annotations

import itertools
import re
from typing import Dict, List, Optional

from repro.mapping.genlib import Cell, Library
from repro.sop.cube import lit

# ----------------------------------------------------------------------
# Expression AST
# ----------------------------------------------------------------------


class _Parser:
    """Recursive-descent parser for genlib output expressions.

    Grammar:  expr := term (('+'|' ') term)* ;  '+' = OR
              term := factor ('*'? factor)*   ;  '*' or juxtaposition = AND
              factor := '!' factor | '(' expr ')' | IDENT | CONST0 | CONST1
    """

    def __init__(self, text: str):
        self.tokens = re.findall(r"[A-Za-z_][A-Za-z_0-9]*|[()!*+']|0|1", text)
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def parse(self):
        e = self.expr()
        if self.peek() is not None:
            raise ValueError("trailing tokens in expression: %r" % self.peek())
        return e

    def expr(self):
        terms = [self.term()]
        while self.peek() == "+":
            self.take()
            terms.append(self.term())
        out = terms[0]
        for t in terms[1:]:
            out = ("or", out, t)
        return out

    def term(self):
        factors = [self.factor()]
        while True:
            nxt = self.peek()
            if nxt == "*":
                self.take()
                factors.append(self.factor())
            elif nxt is not None and nxt not in ("+", ")"):
                factors.append(self.factor())
            else:
                break
        out = factors[0]
        for f in factors[1:]:
            out = ("and", out, f)
        return out

    def factor(self):
        tok = self.take()
        if tok == "!":
            return ("not", self.factor())
        if tok == "(":
            e = self.expr()
            if self.take() != ")":
                raise ValueError("missing )")
            return self._postfix(e)
        if tok == "0":
            return ("const", False)
        if tok == "1":
            return ("const", True)
        if re.match(r"[A-Za-z_]", tok):
            return self._postfix(("var", tok))
        raise ValueError("unexpected token %r" % tok)

    def _postfix(self, e):
        # genlib also allows postfix complement with '.
        while self.peek() == "'":
            self.take()
            e = ("not", e)
        return e


def _expr_vars(e, out: List[str]) -> None:
    tag = e[0]
    if tag == "var":
        if e[1] not in out:
            out.append(e[1])
    elif tag == "not":
        _expr_vars(e[1], out)
    elif tag in ("and", "or"):
        _expr_vars(e[1], out)
        _expr_vars(e[2], out)


def _expr_eval(e, env: Dict[str, bool]) -> bool:
    tag = e[0]
    if tag == "var":
        return env[e[1]]
    if tag == "const":
        return e[1]
    if tag == "not":
        return not _expr_eval(e[1], env)
    a, b = _expr_eval(e[1], env), _expr_eval(e[2], env)
    return (a and b) if tag == "and" else (a or b)


def _expr_to_pattern(e):
    """Lower the AST to the ('nand',..)/('inv',..)/placeholder basis."""
    tag = e[0]
    if tag == "var":
        return e[1]
    if tag == "not":
        inner = _expr_to_pattern(e[1])
        if isinstance(inner, tuple) and inner[0] == "inv":
            # !(a*b) lowers to not(inv(nand)) == nand — cancel the pair.
            return inner[1]
        return ("inv", inner)
    if tag == "and":
        return ("inv", ("nand", _expr_to_pattern(e[1]), _expr_to_pattern(e[2])))
    if tag == "or":
        return ("nand", ("inv", _expr_to_pattern(e[1])),
                ("inv", _expr_to_pattern(e[2])))
    raise ValueError("constants are not mappable patterns")


def _simplify_pattern(p):
    """Cancel inv(inv(x)) pairs introduced by the mechanical lowering."""
    if isinstance(p, str):
        return p
    if p[0] == "inv":
        inner = _simplify_pattern(p[1])
        if isinstance(inner, tuple) and inner[0] == "inv":
            return inner[1]
        return ("inv", inner)
    return ("nand", _simplify_pattern(p[1]), _simplify_pattern(p[2]))


# ----------------------------------------------------------------------
# The genlib file format
# ----------------------------------------------------------------------

_GATE_RE = re.compile(
    r"GATE\s+(?P<name>\S+)\s+(?P<area>[\d.]+)\s+(?P<out>\w+)\s*=\s*"
    r"(?P<expr>[^;]+);(?P<pins>[^G]*)", re.S)

_PIN_RE = re.compile(
    r"PIN\s+(?P<pin>\S+)\s+(?P<phase>\S+)\s+(?P<load>[\d.]+)\s+"
    r"(?P<maxload>[\d.eE+]+)\s+(?P<rb>[\d.]+)\s+(?P<rf>[\d.]+)\s+"
    r"(?P<fb>[\d.]+)\s+(?P<ff>[\d.]+)")


def parse_genlib(text: str) -> Library:
    """Parse genlib text into a :class:`Library`.

    Constant gates and latches are skipped; an inverter cell named or
    behaving as INV must be present (``inv1`` is synthesized from the
    smallest single-input complement gate if its name differs).
    """
    cells: List[Cell] = []
    inv_candidate: Optional[Cell] = None
    for m in _GATE_RE.finditer(_strip_comments(text)):
        name = m.group("name").strip('"')
        area = float(m.group("area"))
        expr = _Parser(m.group("expr")).parse()
        inputs: List[str] = []
        _expr_vars(expr, inputs)
        if not inputs:
            continue  # constant cells are modelled separately
        delays = [max(float(p.group("rb")), float(p.group("fb")))
                  for p in _PIN_RE.finditer(m.group("pins"))]
        delay = max(delays) if delays else 1.0
        pattern = _simplify_pattern(_expr_to_pattern(expr))
        cover = _cover_from_expr(expr, inputs)
        cell = Cell(name, area, delay, pattern, inputs, cover)
        cells.append(cell)
        if (len(inputs) == 1 and not _expr_eval(expr, {inputs[0]: True})
                and _expr_eval(expr, {inputs[0]: False})):
            if inv_candidate is None or area < inv_candidate.area:
                inv_candidate = cell
    if not any(c.name == "inv1" for c in cells):
        if inv_candidate is None:
            raise ValueError("genlib library has no inverter")
        cells.append(Cell("inv1", inv_candidate.area, inv_candidate.delay,
                          inv_candidate.pattern, inv_candidate.inputs,
                          inv_candidate.cover))
    return Library(cells)


def _cover_from_expr(expr, inputs: List[str]):
    cover = []
    for bits in itertools.product([False, True], repeat=len(inputs)):
        env = dict(zip(inputs, bits))
        if _expr_eval(expr, env):
            cover.append(frozenset(lit(i, bits[i])
                                   for i in range(len(inputs))))
    from repro.sop.minimize import simplify_cover

    return simplify_cover(cover)


def _strip_comments(text: str) -> str:
    out = []
    for line in text.splitlines():
        out.append(line.split("#", 1)[0])
    return "\n".join(out)
