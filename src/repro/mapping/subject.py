"""Subject graph: lowering a network to a structurally hashed NAND2/INV DAG.

Every network node's cover is factored algebraically and lowered to
2-input NAND and INV vertices.  XOR/XNOR/MUX-shaped covers are lowered in
their canonical NAND shapes so that the corresponding library patterns can
match (the SIS tree mapper the paper used preserved only a third of the
XORs; this lowering is what lets ours keep them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.decomp.ftree import FTree
from repro.network.network import Network, Node
from repro.sis.factor import factor_cover
from repro.sop.cube import lit


class SubjectGraph:
    """Hash-consed NAND/INV DAG.

    Vertices are ints; a vertex is either a *leaf* (carrying a signal name)
    or an operator ("nand" with two children / "inv" with one).
    """

    def __init__(self):
        self.kind: List[str] = []       # "leaf" | "nand" | "inv"
        self.children: List[Tuple[int, ...]] = []
        self.signal: List[Optional[str]] = []
        self._leaf_of: Dict[str, int] = {}
        self._hash: Dict[Tuple, int] = {}
        self.roots: Dict[str, int] = {}  # network signal -> vertex

    def leaf(self, name: str) -> int:
        v = self._leaf_of.get(name)
        if v is None:
            v = self._push("leaf", (), name)
            self._leaf_of[name] = v
        return v

    def inv(self, a: int) -> int:
        # Cancel double inversion structurally.
        if self.kind[a] == "inv":
            return self.children[a][0]
        return self._hashed("inv", (a,))

    def nand(self, a: int, b: int) -> int:
        if b < a:
            a, b = b, a
        return self._hashed("nand", (a, b))

    def and_(self, a: int, b: int) -> int:
        return self.inv(self.nand(a, b))

    def or_(self, a: int, b: int) -> int:
        return self.nand(self.inv(a), self.inv(b))

    def _hashed(self, kind: str, children: Tuple[int, ...]) -> int:
        key = (kind,) + children
        v = self._hash.get(key)
        if v is None:
            v = self._push(kind, children, None)
            self._hash[key] = v
        return v

    def _push(self, kind: str, children: Tuple[int, ...],
              signal: Optional[str]) -> int:
        self.kind.append(kind)
        self.children.append(children)
        self.signal.append(signal)
        return len(self.kind) - 1

    def __len__(self) -> int:
        return len(self.kind)


def build_subject(net: Network) -> SubjectGraph:
    """Lower the network into one shared subject DAG, split into trees.

    Signals with a single consumer (and not primary outputs) are inlined
    into their consumer's tree, so the maximal-tree partition happens here:
    ``sg.roots`` holds exactly the signals that must materialize as mapped
    gate outputs -- primary outputs and multi-fanout signals.  Everything
    else is internal subject structure that multi-gate cells may swallow.
    """
    sg = SubjectGraph()
    fanouts = net.fanouts()
    inline: Dict[str, int] = {}
    for node in net.topological():
        inputs = []
        for f in node.fanins:
            if f in inline:
                inputs.append(inline[f])
            else:
                inputs.append(sg.leaf(f))
        v = _lower_node(sg, node, inputs)
        single_use = (len(fanouts.get(node.name, ())) == 1
                      and node.name not in net.outputs)
        if single_use:
            inline[node.name] = v
        else:
            sg.roots[node.name] = v
    return sg


def _lower_node(sg: SubjectGraph, node: Node, inputs: List[int]) -> int:
    special = _special_shape(node)
    if special is not None:
        return special(sg, inputs)
    tree = factor_cover(node.cover)
    return _lower_tree(sg, tree, inputs)


def _lower_tree(sg: SubjectGraph, tree: FTree, inputs: List[int]) -> int:
    memo: Dict[int, int] = {}
    for t in tree.iter_nodes():
        if t.op == "var":
            v = inputs[t.var]
        elif t.op == "const0":
            v = sg.leaf("__const0__")
        elif t.op == "const1":
            v = sg.leaf("__const1__")
        elif t.op == "not":
            v = sg.inv(memo[id(t.children[0])])
        elif t.op == "and":
            v = sg.and_(memo[id(t.children[0])], memo[id(t.children[1])])
        elif t.op == "or":
            v = sg.or_(memo[id(t.children[0])], memo[id(t.children[1])])
        elif t.op == "xor":
            a, b = memo[id(t.children[0])], memo[id(t.children[1])]
            v = sg.nand(sg.nand(a, sg.inv(b)), sg.nand(sg.inv(a), b))
        elif t.op == "xnor":
            a, b = memo[id(t.children[0])], memo[id(t.children[1])]
            v = sg.nand(sg.nand(a, b), sg.nand(sg.inv(a), sg.inv(b)))
        else:  # mux
            s, hi, lo = (memo[id(c)] for c in t.children)
            v = sg.nand(sg.nand(s, hi), sg.nand(sg.inv(s), lo))
        memo[id(t)] = v
    return memo[id(tree)]


def _special_shape(node: Node):
    """Detect 2-input XOR/XNOR and MUX covers; return a lowering callback."""
    n = len(node.fanins)
    cubes = set(node.cover)
    if n == 2:
        xor_cover = {frozenset({lit(0), lit(1, False)}),
                     frozenset({lit(0, False), lit(1)})}
        xnor_cover = {frozenset({lit(0), lit(1)}),
                      frozenset({lit(0, False), lit(1, False)})}
        if cubes == xor_cover:
            return lambda sg, ins: sg.nand(sg.nand(ins[0], sg.inv(ins[1])),
                                           sg.nand(sg.inv(ins[0]), ins[1]))
        if cubes == xnor_cover:
            return lambda sg, ins: sg.nand(sg.nand(ins[0], ins[1]),
                                           sg.nand(sg.inv(ins[0]), sg.inv(ins[1])))
    if n == 3:
        mux_cover = {frozenset({lit(0), lit(1)}),
                     frozenset({lit(0, False), lit(2)})}
        if cubes == mux_cover:
            return lambda sg, ins: sg.nand(sg.nand(ins[0], ins[1]),
                                           sg.nand(sg.inv(ins[0]), ins[2]))
    return None
