"""Technology mapping: tree-based DAG covering over a gate library.

The paper maps both BDS and SIS results onto ``mcnc.genlib`` with the SIS
tree mapper.  This package rebuilds that machinery:

``genlib``   the embedded gate library (INV/NAND/NOR/AND/OR families,
             AOI/OAI, XOR/XNOR, MUX) with areas and pin delays
``subject``  lowering a Boolean network to a structurally hashed
             NAND2/INV subject DAG
``mapper``   partition into maximal trees at fanout points, dynamic-
             programming pattern matching, area/delay reporting, and
             reconstruction of the mapped netlist for verification
"""

from repro.mapping.genlib import Cell, Library, mcnc_library
from repro.mapping.genlib_parse import parse_genlib
from repro.mapping.lut import LutMappingResult, map_luts
from repro.mapping.mapper import MappingResult, map_network
from repro.mapping.timing import TimingReport, analyze_timing, format_timing

__all__ = ["Cell", "Library", "mcnc_library", "parse_genlib",
           "MappingResult", "map_network", "LutMappingResult", "map_luts",
           "TimingReport", "analyze_timing", "format_timing"]
