"""repro: a full reproduction of "BDS: A BDD-Based Logic Optimization System"
(Yang & Ciesielski, DAC 2000 / IEEE TCAD 21(7), 2002).

Subpackages
-----------
``repro.bdd``
    From-scratch ROBDD package with complement edges (the substrate).
``repro.sop``
    Cube/cover algebra and two-level minimization (SIS-side substrate).
``repro.network``
    Boolean networks, BLIF I/O, sweep, eliminate (partial collapsing).
``repro.decomp``
    The paper's core contribution: structural BDD decompositions
    (dominators, cuts, generalized dominators, XNOR, functional MUX) and
    factoring trees with sharing extraction.
``repro.bds``
    The complete BDS synthesis flow (Fig. 12, right).
``repro.sis``
    The algebraic baseline flow mirroring SIS ``script.rugged`` (Fig. 12,
    left): kernels, fast-extract, algebraic factoring, resubstitution.
``repro.mapping``
    Tree-based technology mapper with an embedded genlib-style library.
``repro.circuits``
    Benchmark circuit generators standing in for MCNC/ISCAS/LGSynth91.
``repro.verify``
    BDD-based combinational equivalence checking and simulation.
"""

import sys

# The ITE hot path is iterative (explicit stack) and needs no headroom,
# but other kernel recursions (compose, quantification, isop, traversals)
# still descend one level per variable; keep room for deep orders.
if sys.getrecursionlimit() < 100000:
    sys.setrecursionlimit(100000)

__version__ = "1.0.0"
