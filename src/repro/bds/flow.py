"""The top-level BDS optimization flow (Section IV).

Mirrors Fig. 12's right-hand column:

1. *Sweep* -- constant propagation, removal of single-input and
   functionally equivalent nodes (Section IV-A).
2. *Eliminate* -- partial collapsing into supernodes with the BDD-node-count
   value function and periodic BDD mapping (Section IV-B).
3. Per supernode: *variable reordering* (sifting) as initial logic
   simplification, then *recursive BDD decomposition* into a factoring
   tree (Section IV-C).
4. *Sharing extraction* across all factoring trees via BDD canonicity.
5. Lowering to a 2-input gate network (AND/OR/XOR/XNOR/NOT/MUX),
   followed by a final structural sweep.

The returned :class:`BDSResult` carries the optimized network plus the
statistics the experiments report (decomposition mix, phase timings,
supernode count, BDD-mapping invocations).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bdd import transfer_many
from repro.bdd.reorder import sift
from repro.bdd.serialize import dumps as bdd_dumps, loads as bdd_loads
from repro.check import Checker, sanitize_bdd
from repro.decomp import extract_sharing, trees_to_network
from repro.decomp.engine import DecompOptions, DecompStats, decompose
from repro.network import Network, sweep
from repro.network.eliminate import PartitionedNetwork
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.perf import merge_snapshots
from repro.verify import VERIFY_MODES, require_equivalent


@dataclass
class BDSOptions:
    """Knobs of the BDS flow; defaults match the paper's described setup."""

    eliminate_threshold: int = 0
    eliminate_size_cap: int = 1000
    use_bdd_mapping: bool = True
    reorder: bool = True
    sift_size_limit: int = 20000
    # Growth-triggered dynamic reordering (CUDD-style): when > 0 every
    # manager the flow owns is armed with ``enable_autoreorder``, so a
    # live-size blowup (eliminate's partial collapses, decomposition
    # intermediates) fires the method at the next GC safe point instead
    # of waiting for the per-supernode sift.  0 = off.
    autoreorder: int = 0
    autoreorder_method: str = "sift"
    decomp: DecompOptions = field(default_factory=DecompOptions)
    sharing: bool = True
    final_sweep: bool = True
    sweep_merge_equivalent: bool = True
    # Section VI item 3 (future work in the paper, implemented here):
    # depth-balance the factoring trees before sharing extraction.
    balance_trees: bool = False
    # Section VI item 1 (future work in the paper, implemented here):
    # minimize supernodes against satisfiability don't-cares.
    use_sdc: bool = False
    # Worker processes for per-supernode decomposition.  After eliminate,
    # every supernode owns an independent BDD, so reorder+decompose fan out
    # embarrassingly; 1 = in-process serial (deterministic either way).
    jobs: int = 1
    # Invariant sanitizer level ("off" / "cheap" / "full"): runs the
    # repro.check audits at the flow's GC safe points (sweep boundaries,
    # network construction, the eliminate loop, decomposition merge) and
    # raises repro.check.CheckError on the first violated invariant.
    check_level: str = "off"
    # First-class result verification (Section V): compare the optimized
    # network against the input inside the flow.  "sim" simulates
    # (exhaustive <= 12 inputs), "cec" builds global BDDs with a size cap,
    # "full" is CEC plus a simulation cross-check of capped outputs.
    # A mismatch raises repro.verify.VerifyError with the counterexample;
    # capped outputs land in BDSResult.verify_unknown_outputs and the
    # verify_outputs_checked / verify_unknown counters in BDSResult.perf.
    verify: str = "off"
    verify_size_cap: int = 2_000_000
    verify_seed: int = 1355
    # Wall-clock budget (seconds) for the BDD proof attempt.  None means
    # "as long as the flow itself took" -- verification then never
    # dominates the run, and outputs not proven in time are cross-checked
    # by simulation in mode "full".  Use float("inf") for an unbounded
    # proof attempt.
    verify_budget: Optional[float] = None

    #: Fields that never change the optimized network or its verdict:
    #: ``jobs`` only fans the same deterministic work out over processes,
    #: and ``check_level`` runs (or skips) internal audits.  They are
    #: excluded from :meth:`cache_key` so e.g. a ``jobs=4`` batch run can
    #: reuse artifacts produced by a ``jobs=1`` run.
    NON_SEMANTIC_FIELDS = ("jobs", "check_level")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot (nested :class:`DecompOptions` inline)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BDSOptions":
        """Rebuild options from :meth:`to_dict` output.

        Unknown keys are ignored and missing keys take their defaults, so
        snapshots recorded by an older or newer revision still load.
        """
        decomp_data = data.get("decomp") or {}
        decomp_fields = {f.name for f in fields(DecompOptions)}
        decomp = DecompOptions(**{k: v for k, v in decomp_data.items()
                                  if k in decomp_fields})
        opt_fields = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items()
                  if k in opt_fields and k != "decomp"}
        return cls(decomp=decomp, **kwargs)

    def cache_key(self) -> str:
        """Stable content hash of every *semantic* option field.

        Two option objects with the same key produce the same optimized
        network and verify verdict, so artifacts may be shared between
        them; any semantic field change changes the key.  The key is
        independent of field declaration/insertion order (the snapshot is
        serialized with sorted keys) and of :data:`NON_SEMANTIC_FIELDS`.
        """
        snap = self.to_dict()
        for name in self.NON_SEMANTIC_FIELDS:
            snap.pop(name, None)
        # None and inf survive JSON poorly (inf is not valid JSON); repr
        # through default=str keeps the encoding total and deterministic.
        text = json.dumps(snap, sort_keys=True, default=str,
                          allow_nan=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class BDSResult:
    network: Network
    decomp_stats: DecompStats
    timings: Dict[str, float]
    supernodes: int
    mapping_count: int
    # Aggregated kernel perf counters (cache hit rate, GC sweeps, peak live
    # nodes, ...) from every manager the flow touched; see repro.perf.
    perf: Dict[str, float] = field(default_factory=dict)
    # Outputs the size-capped verifier could not prove (verify="cec"/"full").
    verify_unknown_outputs: List[str] = field(default_factory=list)
    # Root span of the flow's trace when a Tracer was passed (see
    # repro.obs.trace and docs/OBSERVABILITY.md); None otherwise.  Count
    # deltas of the top-level phase spans partition the ``perf`` totals.
    trace: Optional[Span] = None

    def summary(self) -> str:
        s = self.network.stats()
        return ("nodes=%d literals=%d depth=%d supernodes=%d | %s"
                % (s["nodes"], s["literals"], s["depth"], self.supernodes,
                   " ".join("%s=%.3fs" % kv for kv in sorted(self.timings.items()))))


def bds_optimize(net: Network, options: Optional[BDSOptions] = None,
                 cache: Optional[Any] = None,
                 tracer: Optional[Tracer] = None) -> BDSResult:
    """Run the full BDS flow on a copy of ``net``.

    ``cache`` (a :class:`repro.service.cache.ArtifactCache`) short-circuits
    the whole flow on a content hit -- the stored network, perf counters
    and verify verdict are returned without recomputation -- and stores
    the artifact on a miss.  Cache traffic lands in ``BDSResult.perf`` as
    the ``artifact_cache_*`` counters.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) records one span per
    flow phase plus kernel safe-point and per-supernode sub-spans; the
    finished root span lands on ``BDSResult.trace``.  Tracing never
    changes the optimized network.
    """
    opts = options or BDSOptions()
    tr = tracer if tracer is not None else NULL_TRACER
    if opts.verify not in VERIFY_MODES:
        raise ValueError("verify must be one of %r, got %r"
                         % (VERIFY_MODES, opts.verify))
    cache_key = None
    if cache is not None:
        t0 = time.perf_counter()
        with tr.span("flow.cache_lookup", circuit=net.name):
            cache_key = cache.key_for(net, opts)
            artifact = cache.lookup(cache_key)
        if artifact is not None:
            result = _result_from_artifact(artifact,
                                           time.perf_counter() - t0)
            if tr.enabled and tr.roots:
                result.trace = tr.roots[-1]
            return result
    checker = Checker(opts.check_level)
    timings: Dict[str, float] = {}
    work = net.copy()

    # Perf accounting: every counter source the flow owns is either a
    # frozen snapshot (append-only ``perf_snaps``) or a live provider in
    # ``live_sources``.  The tracer's counter source merges both, and a
    # source only ever *moves* from live to frozen (atomically, between
    # no span boundary), so the count deltas of the sequential top-level
    # phase spans telescope to the final ``BDSResult.perf`` totals.
    perf_snaps: List[Dict[str, float]] = []
    live_sources: List[Callable[[], Dict[str, float]]] = []

    def _perf_now() -> Dict[str, float]:
        return merge_snapshots(perf_snaps + [src() for src in live_sources])

    if tr.enabled:
        tr.set_counter_source(_perf_now)
    live_sources.append(checker.snapshot)

    with tr.span("flow", circuit=net.name, jobs=opts.jobs,
                 verify=opts.verify):
        with tr.span("flow.sweep"):
            t0 = time.perf_counter()
            sweep(work, merge_equivalent=opts.sweep_merge_equivalent)
            checker.check_network(work, "network after initial sweep")
            timings["sweep"] = time.perf_counter() - t0

        with tr.span("flow.eliminate"):
            t0 = time.perf_counter()
            part = PartitionedNetwork.from_network(work)
            if tr.enabled:
                part.mgr.tracer = tr
                # Late-bound through ``part``: compact() retires managers
                # into part.perf_history and installs a fresh part.mgr.
                live_sources.append(lambda: part.mgr.perf_snapshot())
                live_sources.append(
                    lambda: merge_snapshots(part.perf_history))
            if opts.autoreorder:
                part.mgr.enable_autoreorder(opts.autoreorder,
                                            opts.autoreorder_method)
            checker.check_partition(part, "partition after construction")
            part.eliminate(threshold=opts.eliminate_threshold,
                           size_cap=opts.eliminate_size_cap,
                           use_mapping=opts.use_bdd_mapping,
                           checker=checker)
            checker.check_partition(part, "partition after eliminate")
            timings["eliminate"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        if opts.use_sdc:
            from repro.bds.dontcare import minimize_with_sdc

            with tr.span("flow.sdc"):
                minimize_with_sdc(part)
        timings["sdc"] = time.perf_counter() - t0

        with tr.span("flow.decompose"):
            t0 = time.perf_counter()
            stats = DecompStats()
            trees = {}
            names = sorted(part.refs)
            if opts.jobs > 1 and len(names) > 1:
                _decompose_parallel(part, names, opts, stats, trees,
                                    perf_snaps, tracer=tr)
            else:
                for name in names:
                    with tr.span("decompose.supernode", supernode=name):
                        trees[name] = _decompose_supernode(
                            part, name, opts, stats, tracer=tr,
                            live_sources=live_sources,
                            perf_snaps=perf_snaps)
            timings["decompose"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        if opts.balance_trees:
            from repro.decomp.balance import balance_forest

            with tr.span("flow.balance"):
                trees = balance_forest(trees)
        timings["balance"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        if opts.sharing:
            with tr.span("flow.sharing"):
                trees = extract_sharing(trees)
        timings["sharing"] = time.perf_counter() - t0

        with tr.span("flow.lower"):
            t0 = time.perf_counter()
            gate_net = trees_to_network(trees, inputs=work.inputs,
                                        outputs=work.outputs, name=net.name)
            # SDC minimization (and in principle any decomposition) can
            # drop a supernode's dependence on another supernode,
            # stranding that tree; reachability pruning is a
            # well-formedness requirement of the output (the lint below
            # enforces it), not part of the optional sweep.
            gate_net.remove_dangling()
            if opts.final_sweep:
                sweep(gate_net, merge_equivalent=False)
            checker.check_network(gate_net, "network after lowering")
            timings["lower"] = time.perf_counter() - t0

        verify_unknown: List[str] = []
        t0 = time.perf_counter()
        if opts.verify != "off":
            with tr.span("flow.verify", mode=opts.verify):
                budget = opts.verify_budget
                if budget is None:
                    budget = max(0.05, 0.8 * sum(timings.values()))
                deadline = (None if budget == float("inf")
                            else time.monotonic() + budget)
                outcome = require_equivalent(
                    net, gate_net, mode=opts.verify,
                    size_cap=opts.verify_size_cap,
                    seed=opts.verify_seed,
                    deadline=deadline,
                    subject="BDS result for %r" % net.name)
                verify_unknown = outcome.unknown_outputs
                perf_snaps.append({
                    "verify_outputs_checked": float(outcome.outputs_checked),
                    "verify_unknown": float(len(outcome.unknown_outputs)),
                })
                timings["verify"] = time.perf_counter() - t0

        if not tr.enabled:
            # The traced path registered these as live sources up front.
            perf_snaps.extend(part.perf_history)
            perf_snaps.append(part.mgr.perf_snapshot())
        result = BDSResult(gate_net, stats, timings, supernodes=len(trees),
                           mapping_count=part.mapping_count,
                           perf=_perf_now(),
                           verify_unknown_outputs=verify_unknown)
    if tr.enabled and tr.roots:
        result.trace = tr.roots[-1]
    if cache is not None and cache_key is not None:
        # Store the artifact *without* cache-traffic counters (they
        # describe this call, not the artifact), then report the miss.
        from repro.service.cache import Artifact

        cache.store(cache_key, Artifact.from_result(result, opts))
        result.perf = merge_snapshots([result.perf,
                                       {"artifact_cache_misses": 1.0,
                                        "artifact_cache_stores": 1.0}])
    return result


def _result_from_artifact(artifact: Any, lookup_time: float) -> BDSResult:
    """Rebuild a :class:`BDSResult` from a cache hit."""
    stats = DecompStats()
    stats.merge(artifact.decomp_stats)
    perf = merge_snapshots([artifact.perf, {"artifact_cache_hits": 1.0}])
    return BDSResult(artifact.network(), stats,
                     {"cache_lookup": lookup_time},
                     supernodes=artifact.supernodes,
                     mapping_count=artifact.mapping_count,
                     perf=perf,
                     verify_unknown_outputs=list(
                         artifact.verify_unknown_outputs))


def _decompose_supernode(part: PartitionedNetwork, name: str,
                         opts: BDSOptions, stats: DecompStats,
                         tracer: Tracer = NULL_TRACER,
                         live_sources: Optional[
                             List[Callable[[], Dict[str, float]]]] = None,
                         perf_snaps: Optional[
                             List[Dict[str, float]]] = None):
    """Reorder and decompose one supernode in a private manager.

    When traced, the private manager is registered as a live counter
    source for its lifetime (so kernel safe-point spans inside it see
    real deltas), then atomically retired to a frozen snapshot -- no
    span boundary may fall between the two, or phase deltas stop
    telescoping to the flow totals.
    """
    ref = part.refs[name]
    result = transfer_many(part.mgr, [ref])
    mgr, local = result.manager, result.refs[0]
    if tracer.enabled:
        mgr.tracer = tracer
    if live_sources is not None:
        live_sources.append(mgr.perf_snapshot)
    try:
        if opts.autoreorder:
            mgr.enable_autoreorder(opts.autoreorder, opts.autoreorder_method)
        if opts.reorder and not mgr.is_const(local):
            sift(mgr, [local], size_limit=opts.sift_size_limit)
        tree = decompose(mgr, local, options=opts.decomp, stats=stats)
        if opts.check_level != "off":
            # Decomposition-merge safe point: the supernode's private
            # manager must still be canonical after reorder + decompose.
            sanitize_bdd(mgr, level=opts.check_level,
                         subject="supernode %r manager after decompose" % name)
    finally:
        snap = mgr.perf_snapshot()
        if live_sources is not None:
            live_sources.remove(mgr.perf_snapshot)
        if perf_snaps is not None:
            perf_snaps.append(snap)
    return tree.map_vars(mgr.var_name)


def _decompose_worker(payload: Tuple[str, str, BDSOptions, bool]):
    """Process-pool entry point: rebuild one supernode BDD from its
    serialized form, reorder, decompose, and ship the name-mapped tree
    back with the worker's stats, kernel counters and (when tracing)
    its serialized span tree -- a forked child cannot share the parent
    tracer, so spans travel back through the result channel."""
    name, text, opts, trace_enabled = payload
    mgr, roots = bdd_loads(text)
    local = roots[0]
    stats = DecompStats()
    tracer = Tracer(counter_source=mgr.perf_snapshot) \
        if trace_enabled else NULL_TRACER
    if tracer.enabled:
        mgr.tracer = tracer
    with tracer.span("decompose.supernode", supernode=name, worker=True):
        if opts.autoreorder:
            mgr.enable_autoreorder(opts.autoreorder, opts.autoreorder_method)
        if opts.reorder and not mgr.is_const(local):
            sift(mgr, [local], size_limit=opts.sift_size_limit)
        tree = decompose(mgr, local, options=opts.decomp, stats=stats)
        if opts.check_level != "off":
            sanitize_bdd(mgr, level=opts.check_level,
                         subject="supernode %r manager after decompose" % name)
    return (name, tree.map_vars(mgr.var_name), stats.as_dict(),
            mgr.perf_snapshot(), tracer.export_spans())


def _decompose_parallel(part: PartitionedNetwork, names: List[str],
                        opts: BDSOptions, stats: DecompStats,
                        trees: Dict[str, object],
                        perf_snaps: List[Dict[str, float]],
                        tracer: Tracer = NULL_TRACER) -> None:
    """Fan supernodes out over a process pool (opts.jobs workers).

    Supernodes own independent BDDs after eliminate, so each worker gets
    one serialized BDD and returns one factoring tree; results are merged
    in sorted-name order, keeping the flow's output deterministic.
    Worker span trees are grafted under the caller's open span.
    """
    from concurrent.futures import ProcessPoolExecutor

    payloads = [(name, bdd_dumps(part.mgr, [part.refs[name]]), opts,
                 tracer.enabled)
                for name in names]
    with ProcessPoolExecutor(max_workers=opts.jobs) as pool:
        for name, tree, stats_dict, snap, spans in pool.map(
                _decompose_worker, payloads):
            trees[name] = tree
            stats.merge(stats_dict)
            perf_snaps.append(snap)
            if spans:
                tracer.graft(spans)
