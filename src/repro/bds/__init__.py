"""The BDS synthesis system: the complete flow of Fig. 12 (right side).

``bds_optimize`` runs: network sweep -> BDD-based eliminate (partitioning
into supernodes, with BDD mapping) -> per-supernode variable reordering ->
recursive BDD decomposition into factoring trees -> sharing extraction ->
gate-level network.
"""

from repro.bds.flow import BDSOptions, BDSResult, bds_optimize

__all__ = ["BDSOptions", "BDSResult", "bds_optimize"]
