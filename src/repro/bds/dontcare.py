"""Satisfiability don't-care (SDC) minimization of local BDDs.

Section VI item 1 of the paper: "BDD-based logic minimization with
satisfiability don't cares, similar to full_simplify of SIS, should be
developed to improve the area performance of BDS" -- and Section V blames
the missing feature for the `dalu`/`vda` area losses.  This module
implements it on the partitioned network:

For a supernode n with fanin signals s_1..s_k realized by global functions
g_1..g_k over the primary inputs, the *care set* of n's input space is the
image  care(s) = exists_PI  prod_i (s_i xnor g_i(PI)).  Patterns outside
the image never occur, so n's local BDD may be freely minimized against
them (Coudert-Madre restrict, as everywhere else in BDS).

All computations are bounded: global functions and care sets that exceed
their node caps simply skip the node.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bdd.manager import BDD, ONE, ZERO
from repro.bdd.restrict import minimize_with_dc
from repro.bdd.traverse import node_count, support
from repro.network.eliminate import PartitionedNetwork


def minimize_with_sdc(part: PartitionedNetwork, global_cap: int = 3000,
                      care_cap: int = 2000) -> int:
    """Minimize every supernode's local BDD against its input-image care
    set.  Returns the number of nodes whose BDD changed."""
    mgr = part.mgr
    global_of: Dict[str, Optional[int]] = {}
    for name in part.inputs:
        global_of[name] = mgr.var_ref(part.sig_var[name])

    def build_global(name: str) -> Optional[int]:
        if name in global_of:
            return global_of[name]
        ref = part.refs[name]
        subst: Dict[int, int] = {}
        ok = True
        for v in sorted(support(mgr, ref)):
            sig = mgr.var_name(v)
            if sig in part.inputs:
                continue
            g = build_global(sig)
            if g is None:
                ok = False
                break
            subst[v] = g
        if not ok:
            global_of[name] = None
            return None
        g = mgr.vector_compose(ref, subst)
        if node_count(mgr, g) > global_cap:
            g = None
        global_of[name] = g
        return g

    all_pi_vars = {part.sig_var[i] for i in part.inputs}
    changed = 0
    for name in sorted(part.refs):
        ref = part.refs[name]
        node_support = support(mgr, ref)
        fanin_sigs = [mgr.var_name(v) for v in sorted(node_support)
                      if mgr.var_name(v) not in part.inputs]
        if not fanin_sigs:
            continue  # node reads only PIs: every pattern reachable
        terms = []
        feasible = True
        for sig in sorted(fanin_sigs):
            g = build_global(sig)
            if g is None:
                feasible = False
                break
            terms.append(mgr.xnor_(mgr.var_ref(part.sig_var[sig]), g))
        if not feasible:
            continue
        care = ONE
        for term in terms[:-1]:
            care = mgr.and_(care, term)
            if node_count(mgr, care) > 4 * care_cap:
                feasible = False
                break
        if not feasible:
            continue
        # PIs the node reads directly stay in the care set: their
        # correlation with the fanin signals is exactly what SDCs capture.
        # The last conjunction is fused with the quantification
        # (relational product) to avoid the biggest intermediate.
        from repro.bdd.ops import and_exists

        quantify = [v for v in sorted(all_pi_vars) if v not in node_support]
        care = and_exists(mgr, care, terms[-1], quantify)
        if care in (ONE, ZERO) or node_count(mgr, care) > care_cap:
            continue
        onset = mgr.and_(ref, care)
        minimized = minimize_with_dc(mgr, onset, care ^ 1)
        if minimized != ref and node_count(mgr, minimized) <= node_count(mgr, ref):
            part.refs[name] = minimized
            # Downstream global functions must see the minimized node...
            # but on the care set the function is unchanged, so cached
            # globals remain valid images.
            changed += 1
    return changed
