"""The unit of lint output: one finding at one source location.

A finding is identified by its rule code and location, and carries a
*fingerprint* -- a digest of ``rule:path:stripped-source-line`` -- that
stays stable when unrelated edits shift line numbers.  Fingerprints are
what the committed baseline (:mod:`repro.lint.baseline`) matches on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict

#: Pseudo-rule code reported for files the linter could not parse.
#: Parse errors map to exit code 2 (the repo-wide "inconclusive" code):
#: the file was not *checked*, which is different from "checked, clean".
PARSE_ERROR = "RPL000"


def fingerprint(rule: str, path: str, line_text: str) -> str:
    """Location-independent identity of a finding (baseline matching)."""
    blob = "%s:%s:%s" % (rule, path, line_text.strip())
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str               # normalized, "/"-separated, relative when possible
    line: int               # 1-based
    col: int                # 0-based (ast convention)
    message: str
    line_text: str = ""     # the offending source line, stripped
    extra: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.rule, self.path, self.line_text)

    def sort_key(self) -> Any:
        return (self.path, self.line, self.col, self.rule, self.message)

    def __str__(self) -> str:
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col + 1,
                                    self.rule, self.message)

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
            "fingerprint": self.fingerprint,
        }
