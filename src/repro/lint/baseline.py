"""The committed baseline: grandfathered findings with justifications.

The baseline lets the lint gate turn on with zero noise while keeping
every accepted finding *visible and justified*: each entry names its
rule, file, a stable content fingerprint (so unrelated edits moving the
line do not invalidate it), and a mandatory human-written justification.
An entry with an empty justification is a configuration error (exit 2),
not a silent pass -- the point of the baseline is accountability, not a
mute button.

Entries that no longer match any finding are reported as *stale* so the
file shrinks as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.lint.finding import Finding

FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is unreadable or has unjustified entries."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    justification: str

    def to_json_obj(self) -> Dict[str, Any]:
        return {"rule": self.rule, "path": self.path,
                "fingerprint": self.fingerprint,
                "justification": self.justification}


@dataclass
class Baseline:
    entries: List[BaselineEntry]

    def __len__(self) -> int:
        return len(self.entries)

    def match(self, finding: Finding) -> bool:
        fp = finding.fingerprint
        return any(e.rule == finding.rule and e.path == finding.path
                   and e.fingerprint == fp for e in self.entries)

    def stale_entries(self, findings: List[Finding]) -> List[BaselineEntry]:
        """Entries that matched nothing in this run (debt already paid)."""
        seen: Set[str] = {
            "%s:%s:%s" % (f.rule, f.path, f.fingerprint) for f in findings}
        return [e for e in self.entries
                if "%s:%s:%s" % (e.rule, e.path, e.fingerprint) not in seen]


def empty_baseline() -> Baseline:
    return Baseline(entries=[])


def load_baseline(path: str) -> Baseline:
    try:
        with open(path) as fh:
            obj = json.load(fh)
    except OSError as exc:
        raise BaselineError("cannot read baseline %s: %s" % (path, exc))
    except ValueError as exc:
        raise BaselineError("baseline %s is not valid JSON: %s" % (path, exc))
    if not isinstance(obj, dict) or obj.get("version") != FORMAT_VERSION:
        raise BaselineError("baseline %s: unsupported version %r"
                            % (path, obj.get("version")
                               if isinstance(obj, dict) else obj))
    entries: List[BaselineEntry] = []
    for raw in obj.get("entries", []):
        try:
            entry = BaselineEntry(rule=str(raw["rule"]),
                                  path=str(raw["path"]),
                                  fingerprint=str(raw["fingerprint"]),
                                  justification=str(raw["justification"]))
        except (KeyError, TypeError) as exc:
            raise BaselineError("baseline %s: malformed entry %r (%s)"
                                % (path, raw, exc))
        if not entry.justification.strip():
            raise BaselineError(
                "baseline %s: entry %s/%s has no justification -- every "
                "grandfathered finding must say why it is acceptable"
                % (path, entry.rule, entry.path))
        entries.append(entry)
    return Baseline(entries=entries)


def write_baseline(path: str, findings: List[Finding],
                   justification: str = "TODO: justify or fix") -> None:
    """Serialize ``findings`` as a fresh baseline (placeholder
    justifications -- the committer must edit them before the file
    loads cleanly in CI... which is exactly the point)."""
    entries = [BaselineEntry(rule=f.rule, path=f.path,
                             fingerprint=f.fingerprint,
                             justification=justification)
               for f in sorted(findings, key=lambda f: f.sort_key())]
    # Entries are content-addressed; drop duplicates, keep order.
    seen: Set[str] = set()
    unique: List[BaselineEntry] = []
    for e in entries:
        key = "%s:%s:%s" % (e.rule, e.path, e.fingerprint)
        if key not in seen:
            seen.add(key)
            unique.append(e)
    obj = {"version": FORMAT_VERSION,
           "entries": [e.to_json_obj() for e in unique]}
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=2, sort_keys=True)
        fh.write("\n")
