"""RPL003 + RPL004: the BDD kernel's encapsulation and GC contracts.

* **RPL003** -- the manager's node arrays (``_var``/``_lo``/``_hi``),
  refcount vector ``_ref``, per-level live counters ``_var_counts``,
  unique/computed tables and order maps are maintained *incrementally*
  (PR 5); a write from outside silently desynchronizes the O(1)
  bookkeeping and only the ``repro.check`` sanitizer -- at the next safe
  point, far from the culprit -- notices.  Only ``repro.bdd`` (owner)
  and ``repro.check`` (auditor) may touch them.

* **RPL004** -- node handles are indices into arrays compacted by the
  mark-and-sweep collector.  A handle obtained before
  ``maybe_collect``/``collect_garbage`` and used after is dangling
  unless it was registered as a root (``register_root``) or passed in
  that call's ``extra_roots``.  The rule is a per-function, line-order
  heuristic over local names: it catches the shape that bit the
  eliminate loop, not aliasing through containers (the runtime
  sanitizer owns the general case).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.astutil import call_arg_names, call_name, tail_name
from repro.lint.config import LintConfig, match_any
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import SourceModule


@register
class KernelPrivateStateRule(Rule):
    code = "RPL003"
    name = "kernel-private-state"
    summary = ("BDD-manager private state accessed outside repro.bdd / "
               "repro.check")
    rationale = ("the swap bookkeeping keeps _ref/_var_counts exact "
                 "incrementally; an outside write desynchronizes them and "
                 "surfaces only as a sanitizer violation at a later safe "
                 "point, far from the bug")

    def check(self, module: SourceModule,
              config: LintConfig) -> Iterator[Finding]:
        if match_any(module.path, config.kernel_private_allow):
            return
        private = set(config.kernel_private_attrs)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in private:
                continue
            # A class's *own* private attribute is its business; the rule
            # targets reaching into another object's kernel state.
            if isinstance(node.value, ast.Name) \
                    and node.value.id in ("self", "cls"):
                continue
            yield self.finding(
                module, node,
                "access to BDD-manager private state '.%s' outside "
                "repro.bdd/repro.check; use the public API" % node.attr)


@register
class HandleAcrossGcRule(Rule):
    code = "RPL004"
    name = "handle-across-gc"
    summary = ("BDD node handle held across a maybe_collect/collect_garbage "
               "safe point without root registration")
    rationale = ("the collector tombstones unreachable slots and reuses "
                 "them; an unregistered handle that survives a safe point "
                 "is a use-after-free on the node arrays")

    def check(self, module: SourceModule,
              config: LintConfig) -> Iterator[Finding]:
        if match_any(module.path, config.kernel_private_allow):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, config)

    @staticmethod
    def _terminal_collect_lines(func: ast.AST,
                                safe_points: Set[str]) -> Set[int]:
        """Lines of safe-point calls whose next sibling statement exits
        the current path (continue/break/raise).  ``return`` is *not*
        terminal: its value expression evaluates after the collect --
        the exact use-after-free shape the rule exists for."""
        terminal: Set[int] = set()
        for node in ast.walk(func):
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if not isinstance(block, list):
                    continue
                for stmt, nxt in zip(block, block[1:]):
                    if not isinstance(nxt, (ast.Continue, ast.Break,
                                            ast.Raise)):
                        continue
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Call) and \
                                tail_name(call_name(sub)) in safe_points:
                            terminal.add(sub.lineno)
        return terminal

    def _check_function(self, module: SourceModule, func: ast.AST,
                        config: LintConfig) -> Iterator[Finding]:
        handle_ops = set(config.bdd_handle_ops)
        safe_points = set(config.gc_safe_points)
        registrations = set(config.root_registrations)

        handle_assigns: Dict[str, int] = {}    # name -> first assign line
        all_assigns: Dict[str, List[int]] = {}  # name -> every assign line
        protects: Dict[str, int] = {}          # name -> first protect line
        collects: List[Tuple[int, Set[str]]] = []  # (line, names in args)
        uses: Dict[str, List[int]] = {}        # name -> load lines

        # A safe point immediately followed by continue/break/return/raise
        # abandons the current path: later lines are not "after" it in
        # control flow (the eliminate loop's trial-composition bailout).
        terminal_lines = self._terminal_collect_lines(func, safe_points)

        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        all_assigns.setdefault(target.id, []).append(
                            node.lineno)
                        if isinstance(node.value, ast.Call) and \
                                tail_name(call_name(node.value)) \
                                in handle_ops:
                            prev = handle_assigns.get(target.id)
                            if prev is None or node.lineno < prev:
                                handle_assigns[target.id] = node.lineno
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node.target, ast.Name):
                    all_assigns.setdefault(node.target.id, []).append(
                        node.lineno)
            elif isinstance(node, ast.Call):
                name = tail_name(call_name(node))
                if name in registrations:
                    for arg in call_arg_names(node):
                        prev = protects.get(arg)
                        if prev is None or node.lineno < prev:
                            protects[arg] = node.lineno
                elif name in safe_points \
                        and node.lineno not in terminal_lines:
                    collects.append((node.lineno, call_arg_names(node)))
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                uses.setdefault(node.id, []).append(node.lineno)

        reported: Set[str] = set()
        for collect_line, collect_args in collects:
            for name, assign_line in sorted(handle_assigns.items()):
                if name in reported or assign_line >= collect_line:
                    continue
                if name in collect_args:
                    continue  # kept alive as an extra root of this collect
                if protects.get(name, 10 ** 9) <= collect_line:
                    continue  # registered as a root before the safe point
                for use_line in sorted(uses.get(name, [])):
                    if use_line <= collect_line:
                        continue
                    # A reassignment between the collect and the use means
                    # the use reads a fresh (post-GC) handle.
                    if any(collect_line < a <= use_line
                           for a in all_assigns.get(name, [])):
                        continue
                    reported.add(name)
                    yield Finding(
                        rule=self.code, path=module.path, line=use_line,
                        col=0, line_text=module.line_text(use_line),
                        message="handle '%s' (assigned line %d) is used "
                                "after the GC safe point on line %d "
                                "without register_root/extra_roots"
                                % (name, assign_line, collect_line))
                    break
