"""RPL007: every bumped perf counter must be in the snapshot schema.

``repro.perf`` aggregates per-manager snapshots; flows, benchmarks and
the service all report through ``perf_snapshot()`` dicts.  A counter
that is incremented (``mgr.perf.foo += 1``) but never emitted by any
``perf_snapshot()`` is dead telemetry: the cost of maintaining it is
paid on the hot path, and the number silently never reaches
``BDSResult.perf``, the JSON CLI output, or the benchmark files.  (PR 5
shipped exactly this bug for an early draft of ``reorder_swaps``.)

This is a whole-project rule: bump sites are collected from every
module, the schema is the union of string keys of dict literals inside
any function named ``perf_snapshot``, and unmatched bumps are reported
at their site in ``finish``.  When the linted tree contains no
``perf_snapshot`` at all (e.g. linting a single unrelated file) the
rule stays silent rather than flagging everything.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import Project, SourceModule


def _snapshot_keys(tree: ast.Module) -> Set[str]:
    """String keys of every dict literal inside ``perf_snapshot`` defs."""
    keys: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == "perf_snapshot":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    for key in sub.keys:
                        if isinstance(key, ast.Constant) \
                                and isinstance(key.value, str):
                            keys.add(key.value)
    return keys


def _perf_bumps(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """``(counter, node)`` for every ``<x>.perf.<counter> += ...`` /
    ``perf.<counter> += ...`` augmented assignment."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.AugAssign):
            continue
        target = node.target
        if not isinstance(target, ast.Attribute):
            continue
        owner = target.value
        if isinstance(owner, ast.Name) and owner.id == "perf":
            yield target.attr, node
        elif isinstance(owner, ast.Attribute) and owner.attr == "perf":
            yield target.attr, node


@register
class PerfSchemaRule(Rule):
    code = "RPL007"
    name = "perf-counter-not-in-snapshot"
    summary = ("perf counter bumped but absent from every perf_snapshot() "
               "schema")
    rationale = ("a counter that never reaches a snapshot is dead "
                 "telemetry paid for on the hot path; benchmarks and the "
                 "service report only what perf_snapshot() emits")

    def finish(self, project: Project,
               config: LintConfig) -> Iterator[Finding]:
        schema: Set[str] = set()
        bumps: List[Tuple[str, SourceModule, ast.AST]] = []
        for module in project.modules:
            schema |= _snapshot_keys(module.tree)
            for counter, node in _perf_bumps(module.tree):
                bumps.append((counter, module, node))
        if not schema:
            return
        for counter, module, node in bumps:
            if counter not in schema:
                yield self.finding(
                    module, node,
                    "perf counter '%s' is bumped here but missing from "
                    "every perf_snapshot() schema; add it to the snapshot "
                    "or drop the bump" % counter)
