"""RPL006: fork-safety of the scheduler's worker processes.

``repro.service.scheduler`` forks one process per job.  Two classes of
state make that unsafe:

* **Signal handlers** installed anywhere except the sanctioned worker
  entry (``_child_main`` arms SIGALRM *after* the fork, inside the
  child -- the safe direction).  A handler installed in the parent, or
  at import time, is inherited by every worker and fires in a context
  its author never considered; a handler installed by library code
  clobbers the scheduler's own SIGALRM timeout contract.

* **Module-level mutable state** in service modules.  With the default
  ``fork`` start method a worker inherits a snapshot of parent globals;
  mutations in either process silently diverge (and with ``spawn`` the
  state is re-imported empty).  Anything a worker needs must travel in
  its payload; anything the parent aggregates must live on an instance.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.astutil import call_name, tail_name
from repro.lint.config import LintConfig, match_any
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import SourceModule

_SIGNAL_CALLS = {"signal.signal", "signal.setitimer", "signal.alarm",
                 "signal.siginterrupt", "signal.set_wakeup_fd"}

_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "deque", "Counter", "OrderedDict"}


def _is_mutable_ctor(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return tail_name(call_name(node)) in _MUTABLE_CTORS
    return False


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into top-level If/Try blocks but
    never into function or class bodies."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body + stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body + stmt.orelse + stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


@register
class ForkSafetyRule(Rule):
    code = "RPL006"
    name = "fork-unsafe-state"
    summary = ("signal handler installed outside the scheduler worker "
               "entry, or module-level mutable state in worker-shared "
               "modules")
    rationale = ("scheduler workers are forked processes: inherited "
                 "signal handlers clobber the SIGALRM timeout contract, "
                 "and module-level mutable state silently diverges "
                 "between parent and child")

    def check(self, module: SourceModule,
              config: LintConfig) -> Iterator[Finding]:
        if not match_any(module.path, config.signal_handler_allow):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) \
                        and call_name(node) in _SIGNAL_CALLS:
                    yield self.finding(
                        module, node,
                        "%s() outside the sanctioned worker entry "
                        "(repro.service.scheduler) breaks the fork/"
                        "SIGALRM timeout contract" % call_name(node))
        if match_any(module.path, config.fork_shared_modules):
            for stmt in _module_level_statements(module.tree):
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) \
                        and stmt.value is not None:
                    targets = [stmt.target]
                    value = stmt.value
                else:
                    continue
                if not _is_mutable_ctor(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and not target.id.startswith("__"):
                        yield self.finding(
                            module, stmt,
                            "module-level mutable state '%s' is shared "
                            "with forked scheduler workers; move it onto "
                            "an instance or into the job payload"
                            % target.id)
