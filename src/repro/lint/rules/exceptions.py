"""RPL001: broad ``except`` that can swallow contract exceptions.

The flow's control-flow contracts ride on three exceptions:
:class:`repro.bdd.manager.BddBudgetExceeded` (a resource verdict -- the
size-capped verifier and the scheduler's SIGALRM timeout both *depend*
on it propagating), :class:`repro.check.CheckError` (an invariant
violation -- state is corrupt, continuing computes garbage), and
:class:`repro.verify.VerifyError` (a miscompile).  A ``except
Exception:`` / ``except BaseException:`` / bare ``except:`` handler that
neither re-raises nor names these types turns a verdict into silence --
the PR-4 fuzzer found exactly this shape masking budget interrupts as
"crash" findings.

A broad handler passes when any of these hold for *each* guarded name:

* an earlier, narrower ``except`` clause of the same ``try`` already
  catches it (so the broad handler can never see it);
* the handler body references the name (an ``isinstance`` allowlist or
  explicit re-raise of that type);
* the handler body contains a ``raise`` (conservatively accepted:
  re-raising handlers are reporting, not swallowing).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.astutil import exception_names, names_loaded
from repro.lint.config import LintConfig
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import SourceModule

_BROAD = {"Exception", "BaseException"}


def _has_raise(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for stmt in handler.body
               for n in ast.walk(stmt))


@register
class BroadExceptRule(Rule):
    code = "RPL001"
    name = "broad-except-swallows-contract"
    summary = ("broad `except` can swallow BddBudgetExceeded / CheckError /"
               " VerifyError without re-raising")
    rationale = ("budget interrupts, invariant violations and miscompile "
                 "verdicts are control flow; swallowing them silently "
                 "converts a hard verdict into wrong results (seen in the "
                 "fuzz harness before PR 8)")

    def check(self, module: SourceModule,
              config: LintConfig) -> Iterator[Finding]:
        guarded = set(config.guarded_exceptions)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            covered: Set[str] = set()
            for handler in node.handlers:
                names = exception_names(handler.type)
                if handler.type is not None and not (names & _BROAD):
                    covered |= names
                    continue
                # Bare except / Exception / BaseException.
                body_names = set()
                for stmt in handler.body:
                    body_names |= names_loaded(stmt)
                uncovered: List[str] = sorted(
                    guarded - covered - body_names)
                if uncovered and not _has_raise(handler):
                    yield self.finding(
                        module, handler,
                        "broad except can swallow %s; re-raise, narrow the "
                        "clause, or handle them explicitly"
                        % "/".join(uncovered))
                covered |= names
