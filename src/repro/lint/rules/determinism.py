"""RPL002 + RPL005: byte-level reproducibility of the optimization path.

The artifact cache keys results by ``sha256(canonical BLIF) x
cache_key()``; the fuzz corpus content-addresses entries; CI diffs BLIF
output across runs.  One nondeterministic byte is a silent warm-cache
miss -- the result is still *correct*, which is exactly why nobody
notices until cache hit rates crater.  Two rule families guard this:

* **RPL002** -- iterating an unsorted ``set`` where the order reaches
  serialized bytes (BLIF emission, cache keys, corpus files) or a
  tie-broken heuristic choice that feeds them.  String sets reorder
  under ``PYTHONHASHSEED``; int sets reorder when the table resizes.
  The fix is ``sorted(...)`` at the iteration site.
* **RPL005** -- wall-clock reads and process-global RNG in deterministic
  modules.  ``time.monotonic``/``time.perf_counter`` are fine (timing
  reports are non-semantic and excluded from cache keys); ``time.time``,
  ``datetime.now``, module-level ``random.*`` and seedless
  ``random.Random()`` are not -- inject a clock or a seeded
  ``random.Random(seed)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set

from repro.lint.astutil import call_name, tail_name, walk_with_functions
from repro.lint.config import LintConfig, match_any
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import SourceModule

#: Consumers whose result order follows the iterable's order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter"}


def _set_typed_names(scope: ast.AST, config: LintConfig) -> Set[str]:
    """Names assigned from a syntactically set-typed expression within
    one scope.  Nested functions are included (a closed-over set is
    still a set); names set-typed in *other* functions are not -- the
    same identifier is routinely a sorted list elsewhere."""
    names: Set[str] = set()
    # Two passes so `a = set(); b = a | other` resolves.
    for _ in range(2):
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                if _is_set_expr(node.value, names, config):
                    names.add(node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and node.value is not None:
                if _is_set_expr(node.value, names, config):
                    names.add(node.target.id)
    return names


def _scope_body(tree: ast.Module) -> ast.Module:
    """The module's top-level statements with function bodies removed --
    the taint scope for module-level consumption sites."""
    stripped = ast.Module(body=[], type_ignores=[])
    for stmt in tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stripped.body.append(stmt)
    return stripped


def _is_set_expr(node: ast.AST, setnames: Set[str],
                 config: LintConfig) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = tail_name(call_name(node))
        return name in config.set_returning_calls
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        return (_is_set_expr(node.left, setnames, config)
                or _is_set_expr(node.right, setnames, config))
    if isinstance(node, ast.Name):
        return node.id in setnames
    return False


@register
class UnsortedSetIterationRule(Rule):
    code = "RPL002"
    name = "unsorted-set-iteration"
    summary = ("set/dict-order-dependent iteration feeding BLIF emission, "
               "serialization, or cache keys")
    rationale = ("cache keys are content hashes: one hash-order byte in "
                 "the canonical BLIF and every warm lookup silently "
                 "misses (sop/cover.py:82 broke ties by set order)")

    def check(self, module: SourceModule,
              config: LintConfig) -> Iterator[Finding]:
        module_in_scope = match_any(module.path, config.determinism_modules)
        taint_cache: Dict[int, Set[str]] = {}

        def taint(scope: ast.AST) -> Set[str]:
            key = id(scope)
            if key not in taint_cache:
                taint_cache[key] = _set_typed_names(scope, config)
            return taint_cache[key]

        module_scope = _scope_body(module.tree)
        for node, func_chain in walk_with_functions(module.tree):
            if not module_in_scope and not any(
                    frag in fn.name for fn in func_chain
                    for frag in config.determinism_sink_functions):
                continue
            scope = func_chain[-1] if func_chain else module_scope
            yield from self._check_node(module, node, taint(scope), config)

    def _check_node(self, module: SourceModule, node: ast.AST,
                    setnames: Set[str],
                    config: LintConfig) -> Iterator[Finding]:
        def flag(site: ast.AST, what: str) -> Finding:
            return self.finding(
                module, site,
                "%s iterates a set in hash order on a serialization/"
                "cache-key path; wrap the set in sorted(...)" % what)

        if isinstance(node, ast.For):
            if _is_set_expr(node.iter, setnames, config):
                yield flag(node, "for-loop")
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, setnames, config):
                    yield flag(node, "comprehension")
        elif isinstance(node, ast.Call):
            name = tail_name(call_name(node))
            args: Sequence[ast.expr] = node.args
            if name in _ORDER_SENSITIVE_CALLS and args \
                    and _is_set_expr(args[0], setnames, config):
                yield flag(node, "%s()" % name)
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" and args \
                    and _is_set_expr(args[0], setnames, config):
                # Catches literal receivers too: ','.join(s) has no
                # dotted callee name.
                yield flag(node, "str.join()")
            elif name in ("max", "min") and args \
                    and any(kw.arg == "key" for kw in node.keywords) \
                    and _is_set_expr(args[0], setnames, config):
                # Ties under `key` are broken by iteration order.
                yield flag(node, "%s(..., key=...)" % name)


#: Dotted-name suffixes that read ambient nondeterminism.
_CLOCK_CALLS = ("time.time", "time.time_ns", "datetime.now",
                "datetime.utcnow", "date.today", "os.urandom", "uuid.uuid4",
                "uuid.uuid1")


@register
class AmbientNondeterminismRule(Rule):
    code = "RPL005"
    name = "ambient-nondeterminism"
    summary = ("wall-clock / process-global RNG in a deterministic module "
               "without an injected clock or seeded Random")
    rationale = ("identical inputs must produce identical artifacts for "
                 "content-addressed caching and differential fuzzing to "
                 "mean anything; monotonic timers are exempt (timing "
                 "reports are non-semantic)")

    def check(self, module: SourceModule,
              config: LintConfig) -> Iterator[Finding]:
        if not match_any(module.path, config.deterministic_modules):
            return
        if match_any(module.path, config.deterministic_exempt):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if any(name == c or name.endswith("." + c)
                   for c in _CLOCK_CALLS):
                yield self.finding(
                    module, node,
                    "%s() is ambient nondeterminism on a deterministic "
                    "path; inject a clock/seed instead" % name)
            elif name.startswith("random.") and name != "random.Random":
                yield self.finding(
                    module, node,
                    "module-level %s() uses the shared unseeded RNG; pass "
                    "a seeded random.Random instance" % name)
            elif name.startswith("secrets."):
                yield self.finding(
                    module, node,
                    "%s() is nondeterministic by design; deterministic "
                    "paths must not use it" % name)
            elif name == "random.Random" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    module, node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed")
