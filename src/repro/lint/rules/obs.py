"""RPL009: tracer spans must be opened with ``with``.

:meth:`repro.obs.trace.Tracer.span` returns a context manager; calling
it without entering it records nothing (the span only starts in
``__enter__``), and driving ``begin``/``end`` by hand leaks an open
frame on any exception path between them -- every later span then nests
under the leaked one and the exported tree is silently wrong.  The
``with`` statement is the only shape that is exception-safe *and*
guarantees the counter-delta bookkeeping balances.

The rule fires on two shapes, for receivers that look like tracers
(``config.tracer_receivers``; the name-tail heuristic keeps
``re.match(...).span()`` and friends out):

* a ``.span(...)`` call that is not the context expression of a
  ``with`` item;
* any ``.begin(...)`` / ``.end(...)`` call (manual span management).

``repro.obs.trace`` itself (where ``begin``/``end`` live) and its tests
are exempt via ``config.trace_internal_allow``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig, match_any
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import SourceModule


def _receiver_tail(func: ast.Attribute) -> Optional[str]:
    """The last name of the receiver: ``tr`` for ``tr.span``, ``tracer``
    for ``self.mgr.tracer.span``; None for non-name receivers."""
    owner = func.value
    if isinstance(owner, ast.Name):
        return owner.id
    if isinstance(owner, ast.Attribute):
        return owner.attr
    return None


@register
class SpanWithRule(Rule):
    code = "RPL009"
    name = "span-without-with"
    summary = ("tracer span opened without 'with' (or via manual "
               "begin/end)")
    rationale = ("Tracer.span only starts in __enter__, so a bare call "
                 "records nothing; manual begin/end leaks an open span "
                 "frame on any exception path and corrupts the exported "
                 "tree")

    def check(self, module: SourceModule,
              config: LintConfig) -> Iterator[Finding]:
        if match_any(module.path, config.trace_internal_allow):
            return
        with_contexts = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            receiver = _receiver_tail(node.func)
            if receiver is None or receiver not in config.tracer_receivers:
                continue
            method = node.func.attr
            if method == "span" and id(node) not in with_contexts:
                yield self.finding(
                    module, node,
                    "span %r on tracer %r is not entered with 'with'; the "
                    "span only starts in __enter__, so this records "
                    "nothing" % (_span_label(node), receiver))
            elif method in ("begin", "end"):
                yield self.finding(
                    module, node,
                    "manual %s() on tracer %r leaks an open span frame on "
                    "any exception path; open spans with "
                    "'with %s.span(...)'" % (method, receiver, receiver))


def _span_label(call: ast.Call) -> str:
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    return "<dynamic>"
