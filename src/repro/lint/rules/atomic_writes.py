"""RPL008: writes under cache/corpus directories must be atomic.

The artifact cache's whole corruption story (PR 6) rests on readers
never observing a torn write: payloads land in a temp file in the same
directory and are ``os.replace``d into place, so a crash mid-write
leaves either the old object or no object -- both clean states.  A
plain ``open(path, "w")`` under a durable directory reintroduces the
torn-write window (a parallel ``repro batch`` or a killed fuzz run
leaves a half-written object that every later reader pays for).

Heuristic: inside modules that own durable directories, flag ``open``
calls with a writing mode in functions that never call
``os.replace``/``os.rename`` (the atomic-commit tail).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.astutil import call_name, walk_functions
from repro.lint.config import LintConfig, match_any
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.runner import SourceModule

_ATOMIC_TAILS = {"os.replace", "os.rename"}


def _write_mode(call: ast.Call) -> Optional[str]:
    """The mode string of an ``open`` call when it writes, else None."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(c in mode.value for c in "wax"):
            return mode.value
    return None


@register
class AtomicWriteRule(Rule):
    code = "RPL008"
    name = "non-atomic-durable-write"
    summary = ("open(..., 'w') under a cache/corpus directory without a "
               "tmp + os.replace commit")
    rationale = ("the cache treats any torn object as corruption; writers "
                 "must make torn states unobservable (write sideways, "
                 "os.replace into place) instead of relying on readers "
                 "to recover")

    def check(self, module: SourceModule,
              config: LintConfig) -> Iterator[Finding]:
        if not match_any(module.path, config.durable_write_modules):
            return
        for func in walk_functions(module.tree):
            calls = [n for n in ast.walk(func) if isinstance(n, ast.Call)]
            if any(call_name(c) in _ATOMIC_TAILS for c in calls):
                continue
            for call in calls:
                if call_name(call) not in ("open", "io.open"):
                    continue
                mode = _write_mode(call)
                if mode is not None:
                    yield self.finding(
                        module, call,
                        "open(..., %r) in a durable-directory module "
                        "without os.replace; write to a temp file in the "
                        "same directory and os.replace it into place"
                        % mode)
