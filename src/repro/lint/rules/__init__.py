"""Rule modules.  Importing this package registers every rule.

Rule codes are permanent: a retired rule's code is never reused (its
suppression comments and baseline entries may still exist in history).
"""

from repro.lint.rules import atomic_writes  # noqa: F401
from repro.lint.rules import determinism  # noqa: F401
from repro.lint.rules import exceptions  # noqa: F401
from repro.lint.rules import forksafety  # noqa: F401
from repro.lint.rules import kernel  # noqa: F401
from repro.lint.rules import obs  # noqa: F401
from repro.lint.rules import perf_schema  # noqa: F401
