"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set


def dotted_name(node: ast.AST) -> Optional[str]:
    """Best-effort dotted name of an expression (``os.path.join``,
    ``mgr.maybe_collect``, ``set``); None when it is not a name chain."""
    parts: List[str] = []
    cur: ast.AST = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, or None."""
    return dotted_name(node.func)


def tail_name(name: Optional[str]) -> Optional[str]:
    """Last component of a dotted name (``mgr.maybe_collect`` ->
    ``maybe_collect``)."""
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def exception_names(handler_type: Optional[ast.expr]) -> Set[str]:
    """Names caught by one ``except`` clause ({} for a bare except)."""
    out: Set[str] = set()
    if handler_type is None:
        return out
    elts = (handler_type.elts if isinstance(handler_type, ast.Tuple)
            else [handler_type])
    for e in elts:
        name = dotted_name(e)
        if name is not None:
            out.add(tail_name(name) or name)
    return out


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/method definition in the module, any nesting."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_with_functions(tree: ast.Module) -> Iterator[
        "tuple[ast.AST, tuple[ast.AST, ...]]"]:
    """Yield every node with its chain of enclosing function defs
    (outermost first; ``()`` for module-level nodes)."""

    def visit(node: ast.AST,
              chain: "tuple[ast.AST, ...]") -> Iterator[
                  "tuple[ast.AST, tuple[ast.AST, ...]]"]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, chain
                yield from visit(child, chain + (child,))
            else:
                yield child, chain
                yield from visit(child, chain)

    return visit(tree, ())


def names_loaded(node: ast.AST) -> Set[str]:
    """All plain names read anywhere under ``node``."""
    return {n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


def call_arg_names(call: ast.Call) -> Set[str]:
    """Plain names appearing anywhere in a call's arguments."""
    out: Set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        out |= names_loaded(arg)
    return out
