"""The lint driver: discover files, parse, dispatch rules, filter.

Pipeline: expand path arguments to ``.py`` files -> parse each into a
:class:`SourceModule` (suppression comments pre-indexed) -> run every
selected rule's per-module ``check`` -> run project-wide ``finish``
hooks (RPL007 needs the whole picture) -> drop suppressed findings ->
drop baselined findings -> sort.  Counts of everything dropped are kept
on the report so silencing is always visible.

A file that does not parse yields an ``RPL000`` finding and maps to
exit code 2: an unparsed file was not checked, which must not read as
"clean".
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.lint.baseline import Baseline, BaselineEntry, empty_baseline
from repro.lint.config import LintConfig
from repro.lint.finding import Finding, PARSE_ERROR
from repro.lint.registry import Rule, selected_rules
from repro.lint.suppress import collect_suppressions, is_suppressed


def normalize_path(path: str) -> str:
    """Stable, "/"-separated path: relative to the CWD when inside it."""
    absolute = os.path.abspath(path)
    rel = os.path.relpath(absolute, os.getcwd())
    chosen = absolute if rel.startswith("..") else rel
    return chosen.replace(os.sep, "/")


@dataclass
class SourceModule:
    """One parsed source file, ready for the rules."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str]
    suppressions: Dict[int, Set[str]]

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass
class Project:
    """Every module of one lint run (input to ``Rule.finish``)."""

    modules: List[SourceModule] = field(default_factory=list)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def parse_errors(self) -> int:
        return sum(1 for f in self.findings if f.rule == PARSE_ERROR)

    def exit_code(self) -> int:
        """Repo-wide contract: 0 clean, 1 violations, 2 inconclusive."""
        if self.parse_errors:
            return 2
        return 1 if self.findings else 0

    def summary(self) -> str:
        bits = ["%d finding(s)" % len(self.findings),
                "%d file(s)" % self.files]
        if self.suppressed:
            bits.append("%d suppressed" % self.suppressed)
        if self.baselined:
            bits.append("%d baselined" % self.baselined)
        if self.stale_baseline:
            bits.append("%d stale baseline entr%s" %
                        (len(self.stale_baseline),
                         "y" if len(self.stale_baseline) == 1 else "ies"))
        return "lint: " + ", ".join(bits)


def expand_paths(paths: Sequence[str],
                 config: Optional[LintConfig] = None) -> List[str]:
    """Expand files/directories to a sorted, de-duplicated ``.py`` list.

    Directory walks skip ``config.exclude_dirs`` (fixture trees hold
    deliberately-bad code); explicitly named files are never filtered.
    """
    cfg = config or LintConfig()
    out: List[str] = []
    seen: Set[str] = set()

    def add(path: str) -> None:
        if path not in seen:
            seen.add(path)
            out.append(path)

    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in cfg.exclude_dirs)
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        add(os.path.join(dirpath, name))
        else:
            add(path)
    return out


def parse_module(path: str, source: str) -> SourceModule:
    """Parse one file (raises SyntaxError for the caller to report)."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    return SourceModule(path=normalize_path(path), source=source, tree=tree,
                        lines=lines, suppressions=collect_suppressions(lines))


def lint_sources(sources: Dict[str, str],
                 config: Optional[LintConfig] = None,
                 baseline: Optional[Baseline] = None) -> LintReport:
    """Lint in-memory sources (``{path: text}``) -- the testing seam."""
    cfg = config or LintConfig()
    base = baseline or empty_baseline()
    project = Project()
    parse_findings: List[Finding] = []
    for path in sorted(sources):
        try:
            project.modules.append(parse_module(path, sources[path]))
        except SyntaxError as exc:
            parse_findings.append(Finding(
                rule=PARSE_ERROR, path=normalize_path(path),
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message="file does not parse: %s" % exc.msg))
    return _run_rules(project, cfg, base, parse_findings,
                      files=len(sources))


def lint_paths(paths: Sequence[str],
               config: Optional[LintConfig] = None,
               baseline: Optional[Baseline] = None) -> LintReport:
    """Lint files / directory trees on disk."""
    cfg = config or LintConfig()
    files = expand_paths(paths, cfg)
    sources: Dict[str, str] = {}
    unreadable: List[Finding] = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                sources[path] = fh.read()
        except OSError as exc:
            unreadable.append(Finding(
                rule=PARSE_ERROR, path=normalize_path(path), line=1, col=0,
                message="cannot read file: %s" % exc))
    report = lint_sources(sources, cfg, baseline)
    if unreadable:
        report = LintReport(
            findings=sorted(report.findings + unreadable,
                            key=lambda f: f.sort_key()),
            files=report.files + len(unreadable),
            suppressed=report.suppressed, baselined=report.baselined,
            stale_baseline=report.stale_baseline)
    return report


def _run_rules(project: Project, cfg: LintConfig, baseline: Baseline,
               parse_findings: List[Finding], files: int) -> LintReport:
    rules: List[Rule] = selected_rules(cfg)
    raw: List[Finding] = []
    for module in project.modules:
        for rule in rules:
            raw.extend(rule.check(module, cfg))
    for rule in rules:
        raw.extend(rule.finish(project, cfg))

    by_path = {m.path: m for m in project.modules}
    active: List[Finding] = []
    suppressed = 0
    baselined_findings: List[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and is_suppressed(
                module.suppressions, finding.line, finding.rule):
            suppressed += 1
            continue
        if baseline.match(finding):
            baselined_findings.append(finding)
            continue
        active.append(finding)
    active.extend(parse_findings)
    active.sort(key=lambda f: f.sort_key())
    return LintReport(
        findings=active, files=files, suppressed=suppressed,
        baselined=len(baselined_findings),
        stale_baseline=baseline.stale_entries(raw))
