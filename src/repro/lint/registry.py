"""Rule base class and the global rule registry.

A rule is a stateless object with a stable code (``RPL001``..), a
one-line summary, and a ``check`` hook called once per parsed module.
Rules that need a whole-project view (RPL007 cross-references counter
bumps against the snapshot schema) override ``finish``, which runs once
after every module was visited.

Rules register themselves at import time via :func:`register`; importing
:mod:`repro.lint.rules` populates the registry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Type, TYPE_CHECKING

from repro.lint.config import LintConfig
from repro.lint.finding import Finding

if TYPE_CHECKING:
    from repro.lint.runner import Project, SourceModule


class Rule:
    """One static check.  Subclasses set the class attributes and
    implement ``check`` (per module) and/or ``finish`` (per project)."""

    code: str = ""
    name: str = ""
    summary: str = ""
    #: The runtime invariant / past bug this rule guards (docs/LINTING.md).
    rationale: str = ""

    def check(self, module: "SourceModule",
              config: LintConfig) -> Iterator[Finding]:
        return iter(())

    def finish(self, project: "Project",
               config: LintConfig) -> Iterator[Finding]:
        return iter(())

    # -- helpers shared by subclasses ----------------------------------

    def finding(self, module: "SourceModule", node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = module.line_text(line)
        return Finding(rule=self.code, path=module.path, line=line, col=col,
                       message=message, line_text=text)


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError("rule %r has no code" % rule_cls.__name__)
    if rule.code in _REGISTRY:
        raise ValueError("duplicate rule code %s" % rule.code)
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules, sorted by code (imports the rule modules)."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def selected_rules(config: LintConfig) -> List[Rule]:
    return [r for r in all_rules() if config.rule_enabled(r.code)]


def rule_codes() -> Iterable[str]:
    import repro.lint.rules  # noqa: F401

    return sorted(_REGISTRY)
