"""Render a :class:`repro.lint.runner.LintReport` as text or JSON."""

from __future__ import annotations

import json
from typing import IO, Dict, Optional

from repro.lint.registry import Rule, selected_rules
from repro.lint.config import LintConfig
from repro.lint.runner import LintReport


def _rule_index(config: Optional[LintConfig] = None) -> Dict[str, Rule]:
    return {r.code: r for r in selected_rules(config or LintConfig())}


def render_text(report: LintReport, stream: IO[str],
                config: Optional[LintConfig] = None,
                show_source: bool = True) -> None:
    """Human-facing: one ``path:line:col: CODE message`` per finding,
    the offending line indented below it, a summary line last."""
    rules = _rule_index(config)
    for finding in report.findings:
        rule = rules.get(finding.rule)
        label = " [%s]" % rule.name if rule is not None else ""
        stream.write("%s%s\n" % (finding, label))
        if show_source and finding.line_text:
            stream.write("    %s\n" % finding.line_text)
    for entry in report.stale_baseline:
        stream.write("stale baseline entry: %s %s %s (fixed? remove it)\n"
                     % (entry.rule, entry.path, entry.fingerprint))
    stream.write(report.summary() + "\n")


def render_json(report: LintReport, stream: IO[str],
                config: Optional[LintConfig] = None) -> None:
    """Machine-facing: one stable JSON object (sorted keys)."""
    rules = _rule_index(config)
    obj = {
        "tool": "repro-lint",
        "exit_code": report.exit_code(),
        "files": report.files,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "stale_baseline": [e.to_json_obj() for e in report.stale_baseline],
        "findings": [
            dict(f.to_json_obj(),
                 rule_name=(rules[f.rule].name if f.rule in rules else ""))
            for f in report.findings
        ],
    }
    json.dump(obj, stream, sort_keys=True, indent=2)
    stream.write("\n")


def render_rule_catalog(stream: IO[str],
                        config: Optional[LintConfig] = None) -> None:
    """``repro lint --list-rules``: code, name, summary, rationale."""
    for rule in selected_rules(config or LintConfig()):
        stream.write("%s  %s\n" % (rule.code, rule.name))
        stream.write("    %s\n" % rule.summary)
        if rule.rationale:
            stream.write("    why: %s\n" % rule.rationale)
