"""``repro.lint``: project-specific static analysis.

AST-based rules (``RPL001``..``RPL008``) enforcing the contracts the
runtime sanitizer (:mod:`repro.check`), the differential fuzzer
(:mod:`repro.fuzz`) and the verifier (:mod:`repro.verify`) can only
check *after* the fact: exception-propagation of budget/check/verify
verdicts, byte-determinism of everything that feeds serialization and
cache keys, kernel encapsulation, GC root discipline, fork-safety of
scheduler workers, perf-schema completeness, and atomic durable writes.

Entry points: ``repro lint [paths]`` (CLI, exit 0/1/2) or
:func:`lint_paths` / :func:`lint_sources` (API).  See docs/LINTING.md
for the rule catalog, suppression syntax and the baseline workflow.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    empty_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.config import LintConfig
from repro.lint.finding import PARSE_ERROR, Finding
from repro.lint.registry import Rule, all_rules, register, rule_codes
from repro.lint.runner import (
    LintReport,
    Project,
    SourceModule,
    expand_paths,
    lint_paths,
    lint_sources,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "LintConfig",
    "LintReport",
    "PARSE_ERROR",
    "Project",
    "Rule",
    "SourceModule",
    "all_rules",
    "empty_baseline",
    "expand_paths",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "register",
    "rule_codes",
    "write_baseline",
]
