"""Per-line suppression comments.

A finding is suppressed by a ``# repro-lint: disable=RPL001`` comment
either trailing the offending line or standing alone on the line
directly above it (comment-only lines chain, so a block of comments
above the target all apply).  ``disable=all`` suppresses every rule on
that line.  Suppressions are counted and reported in the summary so a
silenced finding never disappears without trace.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

#: ``# repro-lint: disable=RPL001`` or ``disable=RPL001,RPL005`` / ``all``.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

_COMMENT_ONLY = re.compile(r"^\s*#")


def _codes(match_text: str) -> Set[str]:
    return {c.strip().upper() for c in match_text.split(",") if c.strip()}


def collect_suppressions(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of suppressed rule codes.

    The returned map already resolves standalone comment directives onto
    the first following non-comment line.
    """
    out: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    for i, line in enumerate(lines, start=1):
        m = _DIRECTIVE.search(line)
        if _COMMENT_ONLY.match(line):
            if m:
                pending |= _codes(m.group(1))
            continue
        codes: Set[str] = set(pending)
        pending = set()
        if m:
            codes |= _codes(m.group(1))
        if codes:
            out[i] = out.get(i, set()) | codes
    return out


def is_suppressed(suppressions: Dict[int, Set[str]], line: int,
                  code: str) -> bool:
    codes = suppressions.get(line)
    if not codes:
        return False
    return code.upper() in codes or "ALL" in codes
