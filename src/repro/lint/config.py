"""Lint configuration: which rules run where.

Most rules guard a contract that only holds on specific paths -- private
kernel state is fair game *inside* ``repro.bdd``, wall-clock reads are
fine in the CLI, set iteration only matters where the bytes it orders
end up serialized.  The config expresses those scopes as ``fnmatch``
patterns over "/"-separated file paths, so the same rules run unchanged
over ``src/``, a test fixture tree, or an absolute path.

Defaults encode this repository's layout; tests override them to point
rules at fixture files.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import FrozenSet, Optional, Tuple


def match_any(path: str, patterns: Tuple[str, ...]) -> bool:
    """True when ``path`` matches any pattern.

    Paths are matched both as given and with a leading ``/`` so that
    ``*/repro/bdd/*`` works for ``src/repro/bdd/x.py``,
    ``repro/bdd/x.py`` and ``/abs/src/repro/bdd/x.py`` alike.
    """
    norm = path.replace("\\", "/")
    rooted = norm if norm.startswith("/") else "/" + norm
    return any(fnmatch(norm, pat) or fnmatch(rooted, pat)
               for pat in patterns)


@dataclass
class LintConfig:
    """Knobs for one lint run (rule scoping + framework behavior)."""

    #: Restrict to these rule codes (None = all registered rules).
    select: Optional[FrozenSet[str]] = None

    #: Directory names never descended into during path expansion.
    exclude_dirs: Tuple[str, ...] = ("__pycache__", ".git", "build", "dist",
                                     ".eggs", "lint_fixtures")

    # -- RPL001: broad except swallowing contract exceptions -----------
    #: Exception names a broad handler must not silently swallow.
    guarded_exceptions: Tuple[str, ...] = ("BddBudgetExceeded", "CheckError",
                                           "VerifyError")

    # -- RPL002: unsorted iteration on serialization paths -------------
    #: Modules whose output ordering is contractual (BLIF emission,
    #: serialization, cache keys, corpus files, decomposition choices
    #: that feed them).
    determinism_modules: Tuple[str, ...] = (
        "*/repro/sop/*", "*/repro/decomp/*", "*/repro/sis/*",
        "*/repro/bds/*", "*/repro/network/blif.py",
        "*/repro/bdd/serialize.py", "*/repro/service/cache.py",
        "*/repro/fuzz/corpus.py",
    )
    #: Function-name fragments that mark a determinism sink anywhere.
    determinism_sink_functions: Tuple[str, ...] = (
        "cache_key", "serialize", "write_", "emit", "to_payload",
        "canonical_", "entry_filename",
    )
    #: Calls known to return sets (beyond literals / set()/frozenset()).
    set_returning_calls: Tuple[str, ...] = ("set", "frozenset",
                                            "cover_support", "support")

    # -- RPL003: kernel private state ----------------------------------
    #: Modules allowed to touch BDD-manager private state.  The kernel
    #: and sanitizer white-box tests are co-owners of the contract: they
    #: audit (and deliberately corrupt) the arrays the rule protects.
    kernel_private_allow: Tuple[str, ...] = ("*/repro/bdd/*",
                                             "*/repro/check/*",
                                             "*/tests/test_bdd_*.py",
                                             "*/tests/test_check_*.py")
    #: Attribute names that are manager-private.
    kernel_private_attrs: Tuple[str, ...] = (
        "_nodes", "_ref", "_var_counts", "_unique", "_computed", "_cache",
        "_var", "_lo", "_hi", "_free", "_level2var", "_var2level",
        "_reorder_session",
    )

    # -- RPL004: handles across GC safe points -------------------------
    #: Method names that allocate / return kernel node handles.
    bdd_handle_ops: Tuple[str, ...] = (
        "mk", "ite", "var_ref", "not_", "negate", "and_many", "or_many",
        "xor_many", "apply", "compose", "restrict", "exist", "forall",
        "transfer", "build_sop",
    )
    #: Method names that may trigger a collection.
    gc_safe_points: Tuple[str, ...] = ("maybe_collect", "collect_garbage")
    #: Method names that protect a handle.
    root_registrations: Tuple[str, ...] = ("register_root",)

    # -- RPL005: nondeterminism sources on deterministic paths ---------
    #: Modules that must be reproducible byte-for-byte (the optimization
    #: and serialization pipeline).  The fuzzer and CLI are exempt: the
    #: fuzzer owns its seeded RNG, the CLI reports wall-clock to humans.
    deterministic_modules: Tuple[str, ...] = ("*/repro/*",)
    deterministic_exempt: Tuple[str, ...] = ("*/repro/fuzz/*",
                                             "*/repro/cli.py")

    # -- RPL006: fork-safety around scheduler workers ------------------
    #: Modules sanctioned to install signal handlers: the worker entry
    #: arms SIGALRM *after* fork (the safe direction), and the socket
    #: server owns the process's SIGTERM drain handler (installed in the
    #: main thread only; forked workers reset it to SIG_DFL).
    signal_handler_allow: Tuple[str, ...] = ("*/repro/service/scheduler.py",
                                             "*/repro/service/server.py",)
    #: Modules whose module-level state is shared with forked workers.
    fork_shared_modules: Tuple[str, ...] = ("*/repro/service/*",)

    # -- RPL009: tracer spans must be opened with ``with`` -------------
    #: Receiver name tails treated as tracers (keeps e.g. the unrelated
    #: ``re.Match.span()`` out of scope).
    tracer_receivers: Tuple[str, ...] = ("trace", "tracer", "_tracer", "tr")
    #: Files allowed to call ``begin``/``end`` directly: the tracer
    #: implementation itself and its white-box tests.
    trace_internal_allow: Tuple[str, ...] = ("*/repro/obs/trace.py",
                                             "*/tests/test_obs_*.py")

    # -- RPL008: atomic writes under durable directories ---------------
    #: Modules that write into cache / corpus directories, where a torn
    #: write must never be observable.
    durable_write_modules: Tuple[str, ...] = ("*/repro/service/*",
                                              "*/repro/fuzz/corpus.py")

    def rule_enabled(self, code: str) -> bool:
        return self.select is None or code in self.select
