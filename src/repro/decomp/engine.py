"""The iterative BDD decomposition engine (Section IV-C).

"The BDD dominators ... are empirically ordered in terms of the resulting
decomposition efficiency as follows: 1) simple dominators (1-, 0- and
x-dominator); 2) functional MUX; 3) generalized dominator; and 4)
generalized x-dominator.  If all searches fail, the BDD is decomposed using
a simple cofactor (simple MUX) w.r.t. a top variable in the BDD."

The engine recursively applies the highest-priority decomposition that
makes progress (every extracted part strictly smaller than the function),
memoizing sub-results per BDD ref so that equal subfunctions share one
factoring-tree object -- the first layer of sharing extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.bdd.manager import BDD, ONE, ZERO
from repro.bdd.traverse import live_node_count, node_count
from repro.decomp.cuts import enumerate_cuts
from repro.decomp.dominators import find_simple_decompositions
from repro.decomp.ftree import CONST0, CONST1, FTree, mux, negate, op2, var_leaf
from repro.decomp.generalized import (
    conjunctive_candidates,
    disjunctive_candidates,
)
from repro.decomp.xordec import boolean_xnor_candidates


@dataclass
class DecompOptions:
    """Feature switches and tuning knobs for the decomposition engine."""

    enable_simple: bool = True          # 1-/0-/x-dominators
    enable_x_dominator: bool = True     # the XNOR member of the simple set
    enable_mux: bool = True             # functional MUX (Theorem 7)
    enable_generalized: bool = True     # Boolean AND/OR (Lemmas 1-2)
    enable_bool_xnor: bool = True       # Boolean XNOR (Theorem 6)
    verify: bool = True                 # re-check every identity with ITE
    max_xnor_candidates: int = 8
    # A generalized decomposition is accepted only when it shrinks the
    # total node count by this factor (1.0 = any strict improvement).
    min_gain: float = 1.0
    # Boolean XNOR is allowed to grow the total node count by this many
    # nodes: the parts routinely expose further dominators (Example 6).
    xnor_slack: int = 2


@dataclass
class DecompStats:
    """Counts of decomposition steps by kind (for ablation benchmarks)."""

    simple_and: int = 0
    simple_or: int = 0
    simple_xnor: int = 0
    functional_mux: int = 0
    boolean_and: int = 0
    boolean_or: int = 0
    boolean_xnor: int = 0
    shannon: int = 0

    def total(self) -> int:
        return (self.simple_and + self.simple_or + self.simple_xnor
                + self.functional_mux + self.boolean_and + self.boolean_or
                + self.boolean_xnor + self.shannon)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def merge(self, other: Dict[str, int]) -> None:
        """Accumulate counts from another stats dict (parallel workers)."""
        for key, value in other.items():
            setattr(self, key, getattr(self, key) + value)


def decompose(mgr: BDD, root: int, options: Optional[DecompOptions] = None,
              stats: Optional[DecompStats] = None) -> FTree:
    """Decompose the function ``root`` into a factoring tree.

    The result's leaves are the manager's variable ids; use
    ``FTree.map_vars`` to translate them to network signal names.
    """
    options = options or DecompOptions()
    stats = stats if stats is not None else DecompStats()
    live_node_count(mgr, [root])  # record peak-live gauge before we expand
    memo: Dict[int, FTree] = {}
    return _decompose(mgr, root, options, stats, memo)


def _decompose(mgr: BDD, f: int, opts: DecompOptions, stats: DecompStats,
               memo: Dict[int, FTree]) -> FTree:
    if f == ONE:
        return CONST1
    if f == ZERO:
        return CONST0
    if f in memo:
        return memo[f]
    if (f ^ 1) in memo:
        tree = negate(memo[f ^ 1])
        memo[f] = tree
        return tree
    if mgr.is_var(f):
        lo, _ = mgr.children(f)
        tree = var_leaf(mgr.var_of(f))
        if lo == ONE:  # negative literal
            tree = negate(tree)
        memo[f] = tree
        return tree

    size = node_count(mgr, f)
    cuts = enumerate_cuts(mgr, f)
    tree = None

    if opts.enable_simple or opts.enable_mux or opts.enable_generalized:
        tree = _try_structural(mgr, f, size, cuts, opts, stats, memo)
    if tree is None and opts.enable_bool_xnor:
        tree = _try_boolean_xnor(mgr, f, size, opts, stats, memo)
    if tree is None:
        tree = _shannon(mgr, f, opts, stats, memo)

    if opts.verify:
        assert tree.to_bdd(mgr) == f, "decomposition verification failed"
    memo[f] = tree
    return tree


def _balance(mgr: BDD, refs) -> int:
    """Selection score: the size of the largest part (favors balanced
    splits, which the paper names as the lever for delay)."""
    return max(node_count(mgr, r) for r in refs)


def _try_structural(mgr, f, size, cuts, opts, stats, memo) -> Optional[FTree]:
    """Search priorities 1-3 together: simple dominators, functional MUX,
    generalized (Boolean) dominators.

    Candidates from every enabled family compete on (largest part, total
    size); the paper's empirical family order breaks ties.  Pure priority
    ordering would let a lopsided simple dominator pre-empt the balanced
    conjunctive split of e.g. the and4 example (Fig. 4).
    """
    scored = []
    simple = find_simple_decompositions(mgr, f, cuts)
    allowed = ("and", "or", "xnor") if opts.enable_x_dominator else ("and", "or")
    if opts.enable_simple:
        for d in simple:
            if d.kind not in allowed:
                continue
            sizes = [node_count(mgr, p) for p in (d.upper,) + d.parts]
            if any(s >= size for s in sizes):
                continue
            scored.append(((max(sizes), sum(sizes), 0), ("simple", d)))
    if opts.enable_mux:
        for d in simple:
            # A MUX whose select is a bare literal is just the Shannon
            # fallback; only *functional* MUXes (Theorem 7) are searched.
            if d.kind != "mux" or mgr.is_var(d.upper):
                continue
            sizes = [node_count(mgr, p) for p in (d.upper,) + d.parts]
            if any(s >= size for s in sizes):
                continue
            if sum(sizes) > size + opts.xnor_slack:
                continue
            scored.append(((max(sizes), sum(sizes), 1), ("mux", d)))
    if opts.enable_generalized:
        for c in (conjunctive_candidates(mgr, f, cuts)
                  + disjunctive_candidates(mgr, f, cuts)):
            sd = node_count(mgr, c.divisor)
            sq = node_count(mgr, c.quotient)
            if sd >= size or sq >= size:
                continue
            if (sd + sq) * opts.min_gain >= size + 1:
                continue
            scored.append(((max(sd, sq), sd + sq, 2), ("bool", c)))
    if not scored:
        return None
    _, (kind, best) = min(scored, key=lambda item: item[0])
    if kind == "mux":
        stats.functional_mux += 1
        sel = _decompose(mgr, best.upper, opts, stats, memo)
        hi = _decompose(mgr, best.parts[0], opts, stats, memo)
        lo = _decompose(mgr, best.parts[1], opts, stats, memo)
        return mux(sel, hi, lo)
    if kind == "simple":
        if best.kind == "and":
            stats.simple_and += 1
        elif best.kind == "or":
            stats.simple_or += 1
        else:
            stats.simple_xnor += 1
        a = _decompose(mgr, best.upper, opts, stats, memo)
        b = _decompose(mgr, best.parts[0], opts, stats, memo)
        return op2(best.kind, a, b)
    if best.kind == "and":
        stats.boolean_and += 1
    else:
        stats.boolean_or += 1
    a = _decompose(mgr, best.divisor, opts, stats, memo)
    b = _decompose(mgr, best.quotient, opts, stats, memo)
    return op2(best.kind, a, b)


def _try_boolean_xnor(mgr, f, size, opts, stats, memo) -> Optional[FTree]:
    best = None
    best_score = None
    for c in boolean_xnor_candidates(mgr, f, opts.max_xnor_candidates):
        sg = node_count(mgr, c.g)
        sh = node_count(mgr, c.h)
        if sg >= size or sh >= size:
            continue
        if sg + sh > size + opts.xnor_slack:
            continue
        score = (max(sg, sh), sg + sh)
        if best is None or score < best_score:
            best, best_score = c, score
    if best is None:
        return None
    stats.boolean_xnor += 1
    a = _decompose(mgr, best.g, opts, stats, memo)
    b = _decompose(mgr, best.h, opts, stats, memo)
    return op2("xnor", a, b)


def _shannon(mgr, f, opts, stats, memo) -> FTree:
    stats.shannon += 1
    var = mgr.var_of(f)
    lo, hi = mgr.children(f)
    sel = var_leaf(var)
    hi_t = _decompose(mgr, hi, opts, stats, memo)
    lo_t = _decompose(mgr, lo, opts, stats, memo)
    return mux(sel, hi_t, lo_t)
