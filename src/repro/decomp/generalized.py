"""Generalized dominators: Boolean AND/OR decomposition (Sec. III-B).

For a valid cut, the *generalized dominator* GD(F) is the above-cut graph
with its internal crossing edges dangling (Definition 7).  Lemma 1: the
Boolean divisor D is GD(F) with free edges redirected to 1; the quotient is
any function in the interval ``[F, F + ~D]`` (Theorem 2), obtained by
minimizing F with the offset of D as don't-care -- we use the Coudert-Madre
RESTRICT heuristic, as the paper does.  Lemma 2 is the dual disjunctive
construction (free edges to 0; the disjunctive term from ``[F & ~G?, ...]``
via the complement identity ``F = G + H  <=>  ~F = ~G & ~H``).

Cuts that are 0-equivalent (1-equivalent) produce identical divisors
(Theorem 4); candidates are deduplicated on the canonical divisor ref,
which is exactly that equivalence.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.bdd.manager import BDD, ONE, ZERO
from repro.bdd.restrict import minimize_with_dc
from repro.decomp.cuts import Cut, enumerate_cuts, rebuild_above_cut


class BooleanDecomposition(NamedTuple):
    """``F = divisor OP quotient`` with OP in {and, or}."""

    kind: str
    divisor: int
    quotient: int
    cut_level: int


def conjunctive_candidates(mgr: BDD, root: int,
                           cuts: Optional[List[Cut]] = None
                           ) -> List[BooleanDecomposition]:
    """Boolean AND decompositions F = D & Q from generalized dominators."""
    if cuts is None:
        cuts = enumerate_cuts(mgr, root)
    out: List[BooleanDecomposition] = []
    seen_divisors = set()
    for cut in cuts:
        if ZERO not in cut.targets:
            # Without a leaf edge to 0 every sink of D becomes 1: trivial.
            continue
        divisor = rebuild_above_cut(mgr, root, cut.level, {}, free_value=ONE)
        if divisor in (ONE, root) or divisor in seen_divisors:
            continue
        seen_divisors.add(divisor)
        if not mgr.leq(root, divisor):  # pragma: no cover - by construction
            continue
        quotient = minimize_with_dc(mgr, root, divisor ^ 1)
        if mgr.and_(divisor, quotient) != root:  # pragma: no cover - safety
            continue
        out.append(BooleanDecomposition("and", divisor, quotient, cut.level))
    return out


def disjunctive_candidates(mgr: BDD, root: int,
                           cuts: Optional[List[Cut]] = None
                           ) -> List[BooleanDecomposition]:
    """Boolean OR decompositions F = G + H (Lemma 2)."""
    if cuts is None:
        cuts = enumerate_cuts(mgr, root)
    out: List[BooleanDecomposition] = []
    seen = set()
    for cut in cuts:
        if ONE not in cut.targets:
            continue
        g = rebuild_above_cut(mgr, root, cut.level, {}, free_value=ZERO)
        if g in (ZERO, root) or g in seen:
            continue
        seen.add(g)
        if not mgr.leq(g, root):  # pragma: no cover - by construction
            continue
        # H satisfies ~F <= ~H <= ~F + G: minimize ~F with G as don't-care.
        h = minimize_with_dc(mgr, root ^ 1, g) ^ 1
        if mgr.or_(g, h) != root:  # pragma: no cover - safety
            continue
        out.append(BooleanDecomposition("or", g, h, cut.level))
    return out
