"""The paper's core contribution: structural BDD decomposition.

Modules
-------
``ftree``        factoring trees -- the record of a decomposition (Sec. IV-C)
``cuts``         horizontal-cut enumeration, target analysis, validity and
                 0-/1-equivalence classes (Sec. III-C, Theorem 4)
``dominators``   simple 1-/0-/x-dominators and functional-MUX pair detection
                 through cut-target analysis (Sec. II-C, III-D, III-E)
``generalized``  generalized dominators: Boolean AND/OR decomposition
                 (Definition 7, Lemmas 1-2)
``xordec``       algebraic and Boolean XNOR decomposition (Theorems 5-6,
                 generalized x-dominators)
``engine``       the recursive decomposition driver with the paper's
                 priority order (Sec. IV-C)
``sharing``      sharing extraction across factoring trees (Fig. 13-14)
"""

from repro.decomp.ftree import FTree, CONST0, CONST1
from repro.decomp.engine import decompose, DecompOptions
from repro.decomp.sharing import extract_sharing, trees_to_network

__all__ = [
    "FTree",
    "CONST0",
    "CONST1",
    "decompose",
    "DecompOptions",
    "extract_sharing",
    "trees_to_network",
]
