"""Horizontal cuts on a BDD: enumeration, target analysis, classification.

A *horizontal cut* at level ``l`` separates the vertices above ``l`` from
those at or below it (Definition 4).  All the paper's decompositions are
driven by the multiset of *crossing targets* of a cut -- the phased refs an
edge from above the cut points at:

* targets = {u, ZERO}            -> 1-dominator (algebraic AND)
* targets = {u, ONE}             -> 0-dominator (algebraic OR)
* targets = {u, ~u}              -> x-dominator (algebraic XNOR, Thm. 5)
* targets = {u, v}               -> functional MUX pair (Thm. 7)
* ZERO in targets, |targets| > 2 -> conjunctive generalized dominator
* ONE  in targets, |targets| > 2 -> disjunctive generalized dominator

Section III-C: only *valid* cuts (containing a leaf edge) yield nontrivial
Boolean divisors, and 0-/1-equivalent cuts yield identical divisors
(Theorem 4); :func:`cut_signatures` exposes the equivalence classes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro.bdd.manager import BDD, ONE, TERMINAL, ZERO
from repro.bdd.traverse import phased_vertices


class Cut(NamedTuple):
    """One horizontal cut.

    ``level``: vertices with level >= ``level`` are below the cut.
    ``targets``: phased refs crossed into from above, ordered by the
    canonical (structural) traversal of the root -- so downstream
    tie-breaks are independent of node-index layout, which reordering
    is free to permute.
    ``zero_edges`` / ``one_edges``: leaf edges in the cut, identified as
    (parent_ref, slot) pairs -- the ingredients of 0-/1-equivalence.
    """

    level: int
    targets: Tuple[int, ...]
    zero_edges: FrozenSet[Tuple[int, int]]
    one_edges: FrozenSet[Tuple[int, int]]

    @property
    def is_valid(self) -> bool:
        """A valid cut contains at least one leaf edge (Section III-C)."""
        return ONE in self.targets or ZERO in self.targets

    def nonterminal_targets(self) -> List[int]:
        """Non-leaf targets, preserving the canonical target order."""
        return [t for t in self.targets if t > 1]


def enumerate_cuts(mgr: BDD, root: int) -> List[Cut]:
    """All distinct horizontal cuts of the BDD of ``root``, top to bottom.

    Cut positions between two adjacent *used* levels are identical, so one
    cut per used-level boundary is produced (excluding the trivial cut above
    the root).
    """
    if mgr.is_const(root):
        return []
    order = phased_vertices(mgr, root)
    rank = {v: i for i, v in enumerate(order)}
    vertices = [v for v in order if not mgr.is_const(v)]
    used_levels = sorted({mgr.level(v) for v in vertices})
    boundaries = used_levels[1:] + [TERMINAL]
    # Edge list: (parent_level, child_level, child_ref, parent_ref, slot).
    edges = []
    for v in vertices:
        lo, hi = mgr.children(v)
        lv = mgr.level(v)
        edges.append((lv, mgr.level(lo), lo, v, 0))
        edges.append((lv, mgr.level(hi), hi, v, 1))
    cuts: List[Cut] = []
    for level in boundaries:
        targets: Set[int] = set()
        zero_edges: Set[Tuple[int, int]] = set()
        one_edges: Set[Tuple[int, int]] = set()
        for lp, lc, child, parent, slot in edges:
            if lp < level <= lc:
                targets.add(child)
                if child == ZERO:
                    zero_edges.add((parent, slot))
                elif child == ONE:
                    one_edges.add((parent, slot))
        cuts.append(Cut(level, tuple(sorted(targets, key=rank.__getitem__)),
                        frozenset(zero_edges), frozenset(one_edges)))
    return cuts


def cut_signatures(cuts: List[Cut]) -> Tuple[Dict[FrozenSet, List[Cut]],
                                             Dict[FrozenSet, List[Cut]]]:
    """Group cuts into 0-equivalence and 1-equivalence classes (Thm. 4).

    Returns ``(zero_classes, one_classes)``: cuts with the same zero-edge
    (one-edge) set produce identical conjunctive (disjunctive) divisors, so
    only one representative per class needs to be explored.
    """
    zero_classes: Dict[FrozenSet, List[Cut]] = {}
    one_classes: Dict[FrozenSet, List[Cut]] = {}
    for cut in cuts:
        zero_classes.setdefault(cut.zero_edges, []).append(cut)
        one_classes.setdefault(cut.one_edges, []).append(cut)
    return zero_classes, one_classes


def rebuild_above_cut(mgr: BDD, root: int, level: int,
                      substitution: Dict[int, int],
                      free_value: Optional[int] = None) -> int:
    """Rebuild the BDD portion above ``level`` with crossing edges replaced.

    Every crossing edge into a phased ref ``r`` (level(r) >= level) becomes
    ``substitution[r]`` when present, otherwise ``free_value``; terminal
    targets are kept unless explicitly substituted.  This single primitive
    realizes the generalized dominator of Definition 7 (free edges to a
    constant) as well as the h-functions of Theorems 5 and 7 (specific
    vertices to specific constants).
    """
    memo: Dict[int, int] = {}

    def rec(r: int) -> int:
        if r in memo:
            return memo[r]
        if r in substitution:
            out = substitution[r]
        elif mgr.is_const(r):
            out = r
        elif mgr.level(r) >= level:
            if free_value is None:
                raise ValueError("crossing edge to %d has no substitution" % r)
            out = free_value
        else:
            lo, hi = mgr.children(r)
            out = mgr.mk(mgr.var_of(r), rec(lo), rec(hi))
        memo[r] = out
        return out

    return rec(root)


def substitute_vertices(mgr: BDD, root: int, substitution: Dict[int, int]) -> int:
    """Replace specific phased vertices by functions throughout the BDD.

    Unlike :func:`rebuild_above_cut` this walks the whole DAG; it is the
    node-to-constant substitution used to derive candidate ``G`` functions
    from generalized x-dominators (Definition 10) and the 'redirect node v
    to terminal' constructions of Theorems 5 and 7 when the kept vertices
    do not align with a single horizontal cut.

    Substitution values must be constants or functions over variables
    strictly below every substituted vertex's parents for the rebuild to
    stay ordered; constants are always safe.
    """
    memo: Dict[int, int] = {}

    def rec(r: int) -> int:
        if r in memo:
            return memo[r]
        if r in substitution:
            out = substitution[r]
        elif mgr.is_const(r):
            out = r
        else:
            lo, hi = mgr.children(r)
            out = mgr.mk(mgr.var_of(r), rec(lo), rec(hi))
        memo[r] = out
        return out

    return rec(root)
