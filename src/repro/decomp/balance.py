"""Factoring-tree balancing (the paper's Section VI item 3).

"One of the current weaknesses of BDS is its inability to properly balance
the factoring tree, which is crucial for the delay minimization."  This
module implements that future-work item: maximal chains of one associative
operator (AND/OR/XOR/XNOR -- XNOR over >2 operands keeps one complement)
are flattened and rebuilt Huffman-style, combining the shallowest operands
first, which minimizes the depth of the chain given operand depths.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List, Tuple

from repro.decomp.ftree import FTree, negate, op2


def balance_tree(tree: FTree) -> FTree:
    """Return a depth-balanced equivalent of ``tree``."""
    memo: Dict[int, FTree] = {}
    for t in tree.iter_nodes():
        children = [memo[id(c)] for c in t.children]
        if t.op in ("and", "or", "xor", "xnor"):
            memo[id(t)] = _balance_chain(t.op, children)
        elif t.op == "not":
            memo[id(t)] = negate(children[0])
        elif t.children:
            memo[id(t)] = FTree(t.op, var=t.var, children=tuple(children))
        else:
            memo[id(t)] = t
    return memo[id(tree)]


def _balance_chain(op: str, children: List[FTree]) -> FTree:
    """Rebuild one operator node, flattening same-op chains first."""
    base_op = "xor" if op == "xnor" else op
    operands: List[FTree] = []
    inversions = 0

    def flatten(t: FTree) -> None:
        nonlocal inversions
        if t.op == base_op:
            for c in t.children:
                flatten(c)
        elif base_op == "xor" and t.op == "xnor":
            inversions += 1
            for c in t.children:
                flatten(c)
        elif base_op == "xor" and t.op == "not":
            inversions += 1
            flatten(t.children[0])
        else:
            operands.append(t)

    for c in children:
        flatten(c)
    if op == "xnor":
        inversions += 1
    if len(operands) == 1:
        out = operands[0]
    else:
        # Huffman-style combine: always join the two shallowest operands.
        heap: List[Tuple[int, int, FTree]] = []
        tiebreak = count()
        for operand in operands:
            heapq.heappush(heap, (operand.depth(), next(tiebreak), operand))
        while len(heap) > 1:
            d1, _, a = heapq.heappop(heap)
            d2, _, b = heapq.heappop(heap)
            joined = op2(base_op, a, b)
            heapq.heappush(heap, (max(d1, d2) + 1, next(tiebreak), joined))
        out = heap[0][2]
    if base_op == "xor" and inversions % 2 == 1:
        out = negate(out)
    return out


def balance_forest(trees: Dict[str, FTree]) -> Dict[str, FTree]:
    """Balance every tree of a factoring forest."""
    return {name: balance_tree(t) for name, t in trees.items()}
