"""Simple dominators and functional-MUX pairs via cut-target analysis.

Karplus's 1-/0-dominators (Section II-C), the x-dominator of Theorem 5 and
the functional-MUX node pair of Theorem 7 are all special shapes of a
horizontal cut's crossing-target set:

===========================  =======================================
targets of the cut           decomposition
===========================  =======================================
``{u, ZERO}``                ``F = G & f_u``   (1-dominator, AND)
``{u, ONE}``                 ``F = G + f_u``   (0-dominator, OR)
``{u, ~u}``                  ``F = h xnor f_u``  (x-dominator)
``{u, v}``  (u, v distinct)  ``F = ITE(h, f_u, f_v)``  (functional MUX)
===========================  =======================================

In each case the upper function (G or h) is the portion of the BDD above
the cut with the target vertices redirected to constants; f_u, f_v are the
functions rooted at the targets.  The detection is exact: a vertex is a
1-dominator iff some cut has target set {u, ZERO}, etc.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.bdd.manager import BDD, ONE, ZERO
from repro.decomp.cuts import Cut, enumerate_cuts, rebuild_above_cut


class SimpleDecomposition(NamedTuple):
    """A dominator-style decomposition found on a cut.

    ``kind`` is one of ``and``/``or``/``xnor``/``mux``; ``upper`` is the
    rebuilt above-cut function (G or h); ``parts`` holds the below-cut
    functions: one ref for and/or/xnor, two (then, else) for mux.
    """

    kind: str
    upper: int
    parts: Tuple[int, ...]
    cut_level: int


def find_simple_decompositions(mgr: BDD, root: int,
                               cuts: Optional[List[Cut]] = None
                               ) -> List[SimpleDecomposition]:
    """All dominator/MUX decompositions exposed by horizontal cuts."""
    if cuts is None:
        cuts = enumerate_cuts(mgr, root)
    out: List[SimpleDecomposition] = []
    seen = set()
    for cut in cuts:
        targets = cut.targets
        # Canonical (layout-independent) order decides which target plays
        # u vs v in the MUX pair, keeping decompositions reproducible
        # across managers holding the same function in different slots.
        nonterm = cut.nonterminal_targets()
        has_one = ONE in targets
        has_zero = ZERO in targets
        if len(nonterm) == 1 and has_zero and not has_one:
            u = nonterm[0]
            key = ("and", u)
            if key in seen:
                continue
            seen.add(key)
            upper = rebuild_above_cut(mgr, root, cut.level, {u: ONE})
            out.append(SimpleDecomposition("and", upper, (u,), cut.level))
        elif len(nonterm) == 1 and has_one and not has_zero:
            u = nonterm[0]
            key = ("or", u)
            if key in seen:
                continue
            seen.add(key)
            upper = rebuild_above_cut(mgr, root, cut.level, {u: ZERO})
            out.append(SimpleDecomposition("or", upper, (u,), cut.level))
        elif len(nonterm) == 2 and not has_one and not has_zero:
            u, v = nonterm
            if u == (v ^ 1):
                # x-dominator: choose the regular-phase representative.
                pos = u if not (u & 1) else v
                key = ("xnor", pos)
                if key in seen:
                    continue
                seen.add(key)
                upper = rebuild_above_cut(mgr, root, cut.level,
                                          {pos: ONE, pos ^ 1: ZERO})
                out.append(SimpleDecomposition("xnor", upper, (pos,), cut.level))
            else:
                key = ("mux", u, v)
                if key in seen:
                    continue
                seen.add(key)
                upper = rebuild_above_cut(mgr, root, cut.level,
                                          {u: ONE, v: ZERO})
                out.append(SimpleDecomposition("mux", upper, (u, v), cut.level))
    return out


def verify_simple(mgr: BDD, root: int, d: SimpleDecomposition) -> bool:
    """Check the decomposition identity with BDD operations."""
    if d.kind == "and":
        return mgr.and_(d.upper, d.parts[0]) == root
    if d.kind == "or":
        return mgr.or_(d.upper, d.parts[0]) == root
    if d.kind == "xnor":
        return mgr.xnor_(d.upper, d.parts[0]) == root
    if d.kind == "mux":
        return mgr.ite(d.upper, d.parts[0], d.parts[1]) == root
    raise ValueError(d.kind)
