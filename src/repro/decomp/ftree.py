"""Factoring trees: the record of a BDD decomposition.

"Factoring trees are constructed along with the BDD decomposition as a
means to record the result of the decomposition" (Section IV-C).  A tree
node is an operator over subtrees; leaves are variables or constants.
Operators cover all decomposition types the engine can produce: AND, OR,
XOR, XNOR, NOT and (functional) MUX.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

OPS = ("const0", "const1", "var", "not", "and", "or", "xor", "xnor", "mux")


class FTree:
    """An immutable factoring-tree node.

    ``mux`` children are ordered ``(select, then, else)``.
    """

    __slots__ = ("op", "var", "children", "_hash")

    def __init__(self, op: str, var: Optional[int] = None,
                 children: Tuple["FTree", ...] = ()):
        if op not in OPS:
            raise ValueError("unknown factoring-tree op %r" % op)
        arity = {"const0": 0, "const1": 0, "var": 0, "not": 1,
                 "and": 2, "or": 2, "xor": 2, "xnor": 2, "mux": 3}[op]
        if len(children) != arity:
            raise ValueError("%s expects %d children, got %d"
                             % (op, arity, len(children)))
        if op == "var" and var is None:
            raise ValueError("var leaf needs a variable id")
        self.op = op
        self.var = var
        self.children = tuple(children)
        self._hash = hash((op, var, self.children))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (isinstance(other, FTree) and self.op == other.op
                and self.var == other.var and self.children == other.children)

    # -- structure metrics ------------------------------------------------

    def gate_count(self) -> int:
        """Number of operator nodes (NOT counted; shared subtrees counted
        once -- trees built by the engine may share sub-objects)."""
        seen = set()

        def rec(t: "FTree") -> int:
            if id(t) in seen:
                return 0
            seen.add(id(t))
            n = 0 if t.op in ("var", "const0", "const1") else 1
            return n + sum(rec(c) for c in t.children)

        return rec(self)

    def literal_count(self) -> int:
        """Number of variable-leaf occurrences (factored-form literals)."""
        if self.op == "var":
            return 1
        return sum(c.literal_count() for c in self.children)

    def depth(self) -> int:
        if not self.children:
            return 0
        inc = 0 if self.op == "not" else 1
        return inc + max(c.depth() for c in self.children)

    def support(self) -> set:
        out = set()
        stack = [self]
        while stack:
            t = stack.pop()
            if t.op == "var":
                out.add(t.var)
            stack.extend(t.children)
        return out

    def iter_nodes(self) -> Iterator["FTree"]:
        """Every node, children before parents, each object once."""
        seen = set()
        stack: List[Tuple[FTree, bool]] = [(self, False)]
        while stack:
            t, expanded = stack.pop()
            if expanded:
                yield t
                continue
            if id(t) in seen:
                continue
            seen.add(id(t))
            stack.append((t, True))
            for c in t.children:
                stack.append((c, False))

    # -- semantics ---------------------------------------------------------

    def to_bdd(self, mgr, var_map: Optional[Dict[int, int]] = None) -> int:
        """Build the BDD of this tree in ``mgr``.

        ``var_map`` optionally translates leaf variable ids.
        """
        memo: Dict[int, int] = {}
        for t in self.iter_nodes():
            if t.op == "const0":
                r = 1
            elif t.op == "const1":
                r = 0
            elif t.op == "var":
                v = var_map[t.var] if var_map else t.var
                r = mgr.var_ref(v)
            elif t.op == "not":
                r = memo[id(t.children[0])] ^ 1
            elif t.op == "and":
                r = mgr.and_(memo[id(t.children[0])], memo[id(t.children[1])])
            elif t.op == "or":
                r = mgr.or_(memo[id(t.children[0])], memo[id(t.children[1])])
            elif t.op == "xor":
                r = mgr.xor_(memo[id(t.children[0])], memo[id(t.children[1])])
            elif t.op == "xnor":
                r = mgr.xnor_(memo[id(t.children[0])], memo[id(t.children[1])])
            else:  # mux
                s, hi, lo = (memo[id(c)] for c in t.children)
                r = mgr.ite(s, hi, lo)
            memo[id(t)] = r
        return memo[id(self)]

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        memo: Dict[int, bool] = {}
        for t in self.iter_nodes():
            c = [memo[id(ch)] for ch in t.children]
            if t.op == "const0":
                v = False
            elif t.op == "const1":
                v = True
            elif t.op == "var":
                v = assignment[t.var]
            elif t.op == "not":
                v = not c[0]
            elif t.op == "and":
                v = c[0] and c[1]
            elif t.op == "or":
                v = c[0] or c[1]
            elif t.op == "xor":
                v = c[0] != c[1]
            elif t.op == "xnor":
                v = c[0] == c[1]
            else:
                v = c[1] if c[0] else c[2]
            memo[id(t)] = v
        return memo[id(self)]

    def map_vars(self, fn: Callable[[object], object]) -> "FTree":
        """Rewrite variable leaves through ``fn`` (e.g. local var id ->
        network signal name), preserving subtree sharing."""
        memo: Dict[int, FTree] = {}
        for t in self.iter_nodes():
            if t.op == "var":
                memo[id(t)] = FTree("var", var=fn(t.var))
            else:
                memo[id(t)] = FTree(t.op, var=t.var,
                                    children=tuple(memo[id(c)] for c in t.children))
        return memo[id(self)]

    # -- display -----------------------------------------------------------

    def to_expr(self, name_of: Callable[[int], str] = str) -> str:
        """Readable infix expression (for docs, tests and examples)."""
        if self.op == "const0":
            return "0"
        if self.op == "const1":
            return "1"
        if self.op == "var":
            return name_of(self.var)
        if self.op == "not":
            return "~" + _paren(self.children[0], name_of)
        if self.op == "mux":
            s, hi, lo = self.children
            return "MUX(%s; %s, %s)" % (
                s.to_expr(name_of), hi.to_expr(name_of), lo.to_expr(name_of))
        sym = {"and": " & ", "or": " + ", "xor": " ^ ", "xnor": " @ "}[self.op]
        return sym.join(_paren(c, name_of) for c in self.children)

    def __repr__(self) -> str:
        return "FTree(%s)" % self.to_expr()


def _paren(t: FTree, name_of) -> str:
    s = t.to_expr(name_of)
    if t.op in ("var", "const0", "const1", "not", "mux"):
        return s
    return "(" + s + ")"


CONST0 = FTree("const0")
CONST1 = FTree("const1")


def var_leaf(var: int) -> FTree:
    return FTree("var", var=var)


def negate(t: FTree) -> FTree:
    """Complement a tree, cancelling double negations and using the
    self-dual XOR/XNOR pair instead of a NOT wrapper where possible."""
    if t.op == "not":
        return t.children[0]
    if t.op == "const0":
        return CONST1
    if t.op == "const1":
        return CONST0
    if t.op == "xor":
        return FTree("xnor", children=t.children)
    if t.op == "xnor":
        return FTree("xor", children=t.children)
    return FTree("not", children=(t,))


def op2(op: str, a: FTree, b: FTree) -> FTree:
    """Build a binary node with constant folding and trivial identities."""
    if op == "and":
        if a.op == "const0" or b.op == "const0":
            return CONST0
        if a.op == "const1":
            return b
        if b.op == "const1":
            return a
    elif op == "or":
        if a.op == "const1" or b.op == "const1":
            return CONST1
        if a.op == "const0":
            return b
        if b.op == "const0":
            return a
    elif op == "xor":
        if a.op == "const0":
            return b
        if b.op == "const0":
            return a
        if a.op == "const1":
            return negate(b)
        if b.op == "const1":
            return negate(a)
    elif op == "xnor":
        if a.op == "const1":
            return b
        if b.op == "const1":
            return a
        if a.op == "const0":
            return negate(b)
        if b.op == "const0":
            return negate(a)
    if a == b:
        if op in ("and", "or"):
            return a
        return CONST0 if op == "xor" else CONST1
    return FTree(op, children=(a, b))


def mux(sel: FTree, then_t: FTree, else_t: FTree) -> FTree:
    if sel.op == "const1":
        return then_t
    if sel.op == "const0":
        return else_t
    if then_t == else_t:
        return then_t
    if then_t.op == "const1" and else_t.op == "const0":
        return sel
    if then_t.op == "const0" and else_t.op == "const1":
        return negate(sel)
    if else_t.op == "const0":
        return op2("and", sel, then_t)
    if then_t.op == "const1":
        return op2("or", sel, else_t)
    if then_t.op == "const0":
        return op2("and", negate(sel), else_t)
    if else_t.op == "const1":
        return op2("or", negate(sel), then_t)
    if negate(then_t) == else_t:
        return op2("xnor", sel, then_t)
    # Select-equal branches would create duplicate gate fanins downstream.
    if then_t == sel:
        return op2("or", sel, else_t)
    if else_t == sel:
        return op2("and", sel, then_t)
    if then_t == negate(sel):
        return op2("and", negate(sel), else_t)
    if else_t == negate(sel):
        return op2("or", negate(sel), then_t)
    return FTree("mux", children=(sel, then_t, else_t))
