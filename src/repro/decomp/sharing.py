"""Sharing extraction across factoring trees (Fig. 13-14, Section IV-C).

"BDDs are constructed for all factoring trees in a bottom-up fashion, and
the canonicity property of a BDD is used to identify functionally
equivalent subtrees."  :func:`extract_sharing` rebuilds a collection of
trees so that subtrees with identical global functions become one shared
object (complements shared through an inverter), and
:func:`trees_to_network` lowers the shared forest to a gate-level
:class:`~repro.network.network.Network` of 2-input AND/OR/XOR/XNOR, NOT
and MUX nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.bdd import BDD
from repro.decomp.ftree import CONST0, CONST1, FTree, negate
from repro.network.network import Network
from repro.sop.cube import lit


def extract_sharing(trees: Dict[str, FTree],
                    size_cap: int = 100000) -> Dict[str, FTree]:
    """Merge functionally equivalent subtrees across all trees.

    Tree leaves must be hashable signal identifiers; equivalence is global
    (canonical BDD over all leaf signals).  ``size_cap`` bounds the shared
    manager; if exceeded the original trees are returned unchanged.
    """
    mgr = BDD()
    leaf_var: Dict[object, int] = {}
    canonical: Dict[int, FTree] = {}
    rewritten_total: Dict[str, FTree] = {}

    for name, tree in trees.items():
        ref_of: Dict[int, int] = {}
        new_of: Dict[int, FTree] = {}
        for t in tree.iter_nodes():
            children = [new_of[id(c)] for c in t.children]
            child_refs = [ref_of[id(c)] for c in t.children]
            if t.op == "const0":
                ref, new = 1, CONST0
            elif t.op == "const1":
                ref, new = 0, CONST1
            elif t.op == "var":
                if t.var not in leaf_var:
                    leaf_var[t.var] = mgr.new_var(str(t.var))
                ref = mgr.var_ref(leaf_var[t.var])
                new = FTree("var", var=t.var)
            elif t.op == "not":
                ref = child_refs[0] ^ 1
                new = negate(children[0])
            elif t.op == "mux":
                ref = mgr.ite(child_refs[0], child_refs[1], child_refs[2])
                new = FTree("mux", children=tuple(children))
            else:
                ref = getattr(mgr, t.op + "_")(child_refs[0], child_refs[1])
                new = FTree(t.op, children=tuple(children))
            if ref in canonical:
                new = canonical[ref]
            elif (ref ^ 1) in canonical:
                new = negate(canonical[ref ^ 1])
                canonical[ref] = new
            else:
                canonical[ref] = new
            ref_of[id(t)] = ref
            new_of[id(t)] = new
            if mgr.num_nodes_allocated > size_cap:
                return dict(trees)
        rewritten_total[name] = new_of[id(tree)]
    return rewritten_total


def count_shared_gates(trees: Dict[str, FTree]) -> int:
    """Operator nodes in the forest, shared objects counted once."""
    seen: Set[int] = set()
    count = 0
    for tree in trees.values():
        for t in tree.iter_nodes():
            if id(t) in seen:
                continue
            seen.add(id(t))
            if t.op not in ("var", "const0", "const1"):
                count += 1
    return count


# ----------------------------------------------------------------------
# Lowering to a gate network
# ----------------------------------------------------------------------

_GATE_COVERS = {
    "and": [frozenset({lit(0), lit(1)})],
    "or": [frozenset({lit(0)}), frozenset({lit(1)})],
    "xor": [frozenset({lit(0), lit(1, False)}),
            frozenset({lit(0, False), lit(1)})],
    "xnor": [frozenset({lit(0), lit(1)}),
             frozenset({lit(0, False), lit(1, False)})],
    "not": [frozenset({lit(0, False)})],
    "mux": [frozenset({lit(0), lit(1)}),
            frozenset({lit(0, False), lit(2)})],
}


def trees_to_network(trees: Dict[str, FTree], inputs: Sequence[str],
                     outputs: Sequence[str], name: str = "bds") -> Network:
    """Lower a (shared) forest of factoring trees to a gate-level network.

    ``trees`` maps node/output names to their factoring trees; tree leaves
    are signal names -- primary inputs or other tree names.
    """
    net = Network(name)
    for i in inputs:
        net.add_input(i)
    for o in outputs:
        net.add_output(o)

    # Order trees so that a tree whose leaves mention another tree's name
    # is emitted after it.
    order = _order_trees(trees, set(inputs))

    signal_of: Dict[int, str] = {}   # id(shared subtree) -> emitted signal
    counter = [0]

    def fresh(prefix: str) -> str:
        while True:
            candidate = "%s_%d" % (prefix, counter[0])
            counter[0] += 1
            if candidate not in net.nodes and candidate not in net.inputs \
                    and candidate not in trees:
                return candidate

    def emit(t: FTree, target: Optional[str] = None) -> str:
        """Emit subtree ``t``; return its signal name."""
        if target is None and id(t) in signal_of:
            return signal_of[id(t)]
        if t.op == "var":
            src = str(t.var)
            if target is None:
                return src
            net.add_buf(target, src)
            return target
        if t.op in ("const0", "const1"):
            name_ = target or fresh("const")
            net.add_const(name_, t.op == "const1")
            if target is None:
                signal_of[id(t)] = name_
            return name_
        child_signals = [emit(c) for c in t.children]
        name_ = target or fresh("g")
        _emit_gate(net, name_, t.op, child_signals)
        if target is None:
            signal_of[id(t)] = name_
        return name_

    for tree_name in order:
        tree = trees[tree_name]
        if id(tree) in signal_of:
            net.add_buf(tree_name, signal_of[id(tree)])
        else:
            emit(tree, target=tree_name)
            signal_of.setdefault(id(tree), tree_name)
    net.check()
    return net


def _emit_gate(net: Network, name: str, op: str,
               sigs: List[str]) -> None:
    """Add one gate, folding duplicate child signals.

    Sharing aliases subtree objects across trees, so two children of one
    gate can resolve to the same emitted signal (e.g. a named tree that is
    itself a leaf, or the CONST0/CONST1 singletons); a node with duplicate
    fanins is structurally invalid, so fold the gate instead.
    """
    if op in ("and", "or", "xor", "xnor") and sigs[0] == sigs[1]:
        if op == "and" or op == "or":
            net.add_buf(name, sigs[0])
        else:
            net.add_const(name, op == "xnor")
        return
    if op == "mux":
        sel, then_sig, else_sig = sigs
        if then_sig == else_sig:            # sel irrelevant
            net.add_buf(name, then_sig)
            return
        if sel == then_sig:                 # s·s + s̄·e  =  s + e
            _emit_gate(net, name, "or", [sel, else_sig])
            return
        if sel == else_sig:                 # s·t + s̄·s  =  s·t
            _emit_gate(net, name, "and", [sel, then_sig])
            return
    net.add_node(name, sigs, list(_GATE_COVERS[op]))


def _order_trees(trees: Dict[str, FTree], inputs: Set[str]) -> List[str]:
    deps: Dict[str, Set[str]] = {}
    for name, tree in trees.items():
        deps[name] = {str(v) for v in tree.support() if str(v) in trees}
    order: List[str] = []
    state: Dict[str, int] = {}

    def visit(n: str):
        if state.get(n) == 2:
            return
        if state.get(n) == 1:
            raise ValueError("cyclic dependency among factoring trees at %r" % n)
        state[n] = 1
        # deps values are string sets: unsorted iteration here would make
        # the emission order (and the g_N gensym numbering) hash-seed
        # dependent -- caught by the golden-digest tests.
        for d in sorted(deps[n]):
            visit(d)
        state[n] = 2
        order.append(n)

    for n in trees:
        visit(n)
    return order
