"""Classical functional decomposition on BDDs (Section II-B, Fig. 1).

The paper's background reviews the cut-based Ashenhurst-Curtis/Roth-Karp
method of Lai et al. [10]: choose a cut separating *bound* variables
(above) from *free* variables (below); each distinct BDD node in the cut
is one column of the decomposition chart; if the column multiplicity is
``m``, the bound-set logic can be re-encoded into ``ceil(log2 m)``
functions G_j, and F becomes H(G_1..G_k, free vars) — Fig. 1(b)'s node
encoding.  BDS itself supersedes this with structural decompositions, but
the classical method is part of the system's lineage (and of its FPGA
descendants), so it is provided as a first-class operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bdd.manager import BDD, ONE, ZERO
from repro.bdd.traverse import phased_vertices
from repro.decomp.cuts import rebuild_above_cut


@dataclass
class FunctionalDecomposition:
    """F(X) == H(G_1(bound), .., G_k(bound), free vars).

    ``code_vars`` are the fresh manager variables standing for the G
    outputs inside ``h``; ``columns`` is the column multiplicity.
    """

    bound_level: int
    columns: int
    g_functions: List[int]
    code_vars: List[int]
    h: int

    @property
    def k(self) -> int:
        return len(self.g_functions)


def column_multiplicity(mgr: BDD, f: int, level: int) -> int:
    """Number of distinct cut nodes (columns) at a horizontal cut."""
    return len(_cut_columns(mgr, f, level))


def _cut_columns(mgr: BDD, f: int, level: int) -> List[int]:
    """Crossing targets of the cut at ``level`` (phased refs, incl.
    terminals), i.e. the distinct columns of the decomposition chart."""
    columns = set()
    for v in phased_vertices(mgr, f):
        if mgr.is_const(v) or mgr.level(v) >= level:
            continue
        for child in mgr.children(v):
            if mgr.level(child) >= level or mgr.is_const(child):
                columns.add(child)
    if mgr.level(f) >= level:
        columns.add(f)
    return sorted(columns)


def functional_decompose(mgr: BDD, f: int, level: int,
                         name_prefix: str = "code"
                         ) -> Optional[FunctionalDecomposition]:
    """Ashenhurst-Curtis decomposition of ``f`` at cut ``level``.

    Returns None for trivial cases (constant f, or a cut above the root).
    New code variables are created in ``mgr`` (at the bottom of the
    order); the identity  ``compose(h, code_j <- g_j) == f``  always holds
    and is asserted.
    """
    if mgr.is_const(f) or mgr.level(f) >= level:
        return None
    columns = _cut_columns(mgr, f, level)
    m = len(columns)
    k = max(1, math.ceil(math.log2(m))) if m > 1 else 1
    code_vars = [mgr.new_var("%s%d" % (name_prefix, _fresh_index(mgr)))
                 for _ in range(k)]
    codes: Dict[int, int] = {col: i for i, col in enumerate(columns)}
    # G_j: above-cut function with column -> bit j of its code.
    g_functions = []
    for j in range(k):
        subst = {col: (ONE if (code >> j) & 1 else ZERO)
                 for col, code in codes.items()}
        g_functions.append(rebuild_above_cut(mgr, f, level, subst))
    # H: sum over columns of (code-minterm AND column function).
    h = ZERO
    for col, code in codes.items():
        cube = ONE
        for j in range(k):
            cube = mgr.and_(cube, mgr.literal(code_vars[j], bool((code >> j) & 1)))
        h = mgr.or_(h, mgr.and_(cube, col))
    # Verify the re-composition (cheap: canonical compare).
    recomposed = mgr.vector_compose(h, dict(zip(code_vars, g_functions)))
    assert recomposed == f, "functional decomposition identity failed"
    return FunctionalDecomposition(level, m, g_functions, code_vars, h)


def _fresh_index(mgr: BDD) -> int:
    return mgr.num_vars


def best_bound_level(mgr: BDD, f: int, max_code_bits: int = 2
                     ) -> Optional[Tuple[int, int]]:
    """Find the cut level minimizing column multiplicity (then deepest),
    subject to needing at most ``max_code_bits`` encoding bits and being a
    *nontrivial* decomposition (at least two bound and one free level).

    Returns ``(level, multiplicity)`` or None.
    """
    if mgr.is_const(f):
        return None
    levels = sorted({mgr.level(v) for v in phased_vertices(mgr, f)
                     if not mgr.is_const(v)})
    if len(levels) < 3:
        return None
    best: Optional[Tuple[int, int]] = None
    for level in levels[2:]:
        m = column_multiplicity(mgr, f, level)
        if m > (1 << max_code_bits):
            continue
        if best is None or m < best[1]:
            best = (level, m)
    return best


def is_simple_disjoint_decomposable(mgr: BDD, f: int, level: int) -> bool:
    """Ashenhurst's original criterion: a simple disjoint decomposition
    with a single predecessor block exists iff the column multiplicity of
    the (disjoint) chart is at most 2."""
    return column_multiplicity(mgr, f, level) <= 2
