"""XNOR decomposition (Section III-D).

The *algebraic* case (Theorem 5: an x-dominator on every path) is detected
by cut-target analysis in :mod:`repro.decomp.dominators` -- a cut whose
targets are ``{u, ~u}``.

This module implements the *Boolean* case.  Theorem 6: for any G there is
an H = G xnor F with F = G xnor H, so the art is picking G so that G and H
are both small.  Definition 10: good candidates come from *generalized
x-dominators* -- nodes pointed to by at least one complement and one
regular edge.  For each such node v we form G by substituting the positive
phase of v with 1 and the negative phase with 0 throughout the BDD (the
"phase function" of v), then compute H = G xnor F with the standard apply
operator, exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import List, NamedTuple, Set

from repro.bdd.manager import BDD, ONE, ZERO
from repro.bdd.traverse import phased_vertices
from repro.decomp.cuts import substitute_vertices


class XnorDecomposition(NamedTuple):
    """``F = g xnor h``."""

    g: int
    h: int
    dominator: int  # the node index that seeded g


def generalized_x_dominators(mgr: BDD, root: int) -> List[int]:
    """Node indices pointed to by both a complement and a regular edge.

    Edges are taken in the raw (stored) representation, where only 0-edges
    and external references may carry the complement bit; the root
    reference itself counts as an incoming edge (Definition 10).
    """
    complemented: Set[int] = set()
    regular: Set[int] = set()
    seen: Set[int] = set()
    stack = [root >> 1]
    (complemented if root & 1 else regular).add(root >> 1)
    while stack:
        idx = stack.pop()
        if idx == 0 or idx in seen:
            continue
        seen.add(idx)
        _, lo, hi = mgr.node(idx << 1)
        (complemented if lo & 1 else regular).add(lo >> 1)
        regular.add(hi >> 1)  # then-edges are never complemented
        stack.append(lo >> 1)
        stack.append(hi >> 1)
    # Order root-first by the canonical traversal (not by node index,
    # which reordering is free to permute): callers truncate the list, so
    # the order must be a property of the function alone.
    rank: dict = {}
    for pos, ref in enumerate(reversed(phased_vertices(mgr, root))):
        rank.setdefault(ref >> 1, pos)
    return sorted((complemented & regular) - {0}, key=rank.__getitem__)


def boolean_xnor_candidates(mgr: BDD, root: int,
                            max_candidates: int = 8) -> List[XnorDecomposition]:
    """Candidate Boolean XNOR decompositions seeded by generalized
    x-dominators.  Every candidate satisfies F = g xnor h by construction
    (Theorem 6); callers pick by size gain."""
    out: List[XnorDecomposition] = []
    seen_g: Set[int] = set()
    for idx in generalized_x_dominators(mgr, root)[:max_candidates]:
        pos = idx << 1
        g = substitute_vertices(mgr, root, {pos: ONE, pos ^ 1: ZERO})
        if g in (ONE, ZERO, root, root ^ 1) or g in seen_g:
            continue
        seen_g.add(g)
        h = mgr.xnor_(g, root)
        out.append(XnorDecomposition(g, h, idx))
    return out
