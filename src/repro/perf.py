"""Kernel performance counters.

Every :class:`repro.bdd.manager.BDD` owns a :class:`PerfCounters` instance
(``mgr.perf``) updated by the hot paths: the bounded computed table counts
hits/misses/evictions, ``mk`` counts allocations and free-list reuse, and
the mark-and-sweep collector counts sweeps and reclaimed nodes.  Flows
aggregate per-manager snapshots with :func:`merge_snapshots` so a benchmark
can report kernel health (cache hit rate, peak live nodes, GC pressure)
alongside CPU and memory.

The service layer folds its own counters into the same snapshots: the
content-addressed artifact cache (:mod:`repro.service.cache`) reports
``artifact_cache_hits`` / ``artifact_cache_misses`` /
``artifact_cache_stores`` / ``artifact_cache_evictions`` /
``artifact_cache_corrupt``.  These are plain counts (summed on merge) and
are distinct from the kernel's computed-table ``cache_hits`` /
``cache_misses``: the former count whole reused optimization *results*,
the latter memoized ITE subproblems.

See ``docs/PERFORMANCE.md`` and ``docs/SERVICE.md`` for how to read the
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass
class PerfCounters:
    """Raw counters maintained by one BDD manager."""

    ite_calls: int = 0            # top-level + expanded ITE subproblems
    nodes_allocated: int = 0      # mk() allocations (fresh slots)
    nodes_reused: int = 0        # mk() allocations served from the free list
    gc_sweeps: int = 0            # mark-and-sweep passes
    gc_reclaimed: int = 0         # nodes tombstoned across all sweeps
    peak_live_nodes: int = 0      # max live count observed (at GC/snapshot)
    peak_allocated_nodes: int = 0  # max node-array length observed
    checks_run: int = 0           # sanitizer audits of this manager
    check_violations: int = 0     # invariant violations those audits found
    # Reordering engine (see repro.bdd.reorder and docs/PERFORMANCE.md).
    reorder_swaps: int = 0        # adjacent swaps actually performed
    reorder_swaps_skipped: int = 0  # swaps replaced by O(1) level-map flips
    reorder_passes: int = 0       # sift/window3 invocations
    reorder_time_s: float = 0.0   # wall-clock spent inside reorder passes
    reorder_size_before: int = 0  # cumulative live size entering each pass
    reorder_size_after: int = 0   # cumulative live size leaving each pass
    autoreorder_triggers: int = 0  # growth-triggered dynamic reorderings
    live_traversals: int = 0      # full live_nodes() mark traversals

    def observe_live(self, live: int) -> None:
        if live > self.peak_live_nodes:
            self.peak_live_nodes = live

    def observe_allocated(self, allocated: int) -> None:
        if allocated > self.peak_allocated_nodes:
            self.peak_allocated_nodes = allocated


#: Snapshot keys that are high-water marks (merged with ``max``); every
#: other numeric key is a count and merges with ``+``.
PEAK_KEYS = frozenset({"peak_live_nodes", "peak_allocated_nodes"})

#: Derived keys recomputed after merging rather than summed.
DERIVED_KEYS = frozenset({"cache_hit_rate", "unique_live_ratio"})

# Backwards-compatible aliases (pre-obs internal names).
_PEAK_KEYS = PEAK_KEYS
_DERIVED_KEYS = DERIVED_KEYS


def counter_delta(before: Dict[str, float],
                  after: Dict[str, float]) -> Dict[str, float]:
    """Count-key increments between two snapshots of one counter source.

    Only count-type keys appear: peaks (max-merged) and derived ratios do
    not telescope, so attributing their "delta" to a time window would be
    meaningless.  Because counts merge with ``+`` and never decrease,
    consecutive deltas over a partition of a timeline sum to the totals
    -- the invariant ``repro.obs.trace`` spans rely on.  Zero deltas are
    dropped; keys are emitted in sorted order for stable serialization.
    """
    delta: Dict[str, float] = {}
    for key in sorted(after):
        if key in PEAK_KEYS or key in DERIVED_KEYS:
            continue
        diff = after[key] - before.get(key, 0)
        if diff:
            delta[key] = diff
    return delta


def merge_snapshots(snapshots: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Aggregate per-manager snapshots (``BDD.perf_snapshot()`` dicts).

    Counts are summed, peaks are maxed, and the derived ratios
    (``cache_hit_rate``, ``unique_live_ratio``) are recomputed from the
    aggregated counts so they stay meaningful.
    """
    out: Dict[str, float] = {}
    for snap in snapshots:
        for key, value in snap.items():
            if key in _DERIVED_KEYS:
                continue
            if key in _PEAK_KEYS:
                out[key] = max(out.get(key, 0), value)
            else:
                out[key] = out.get(key, 0) + value
    lookups = out.get("cache_hits", 0) + out.get("cache_misses", 0)
    out["cache_hit_rate"] = (out.get("cache_hits", 0) / lookups) if lookups else 0.0
    allocated = out.get("peak_allocated_nodes", 0)
    out["unique_live_ratio"] = (
        out.get("peak_live_nodes", 0) / allocated if allocated else 0.0)
    return out
