"""Network cone analysis: transitive fanin cones, MFFCs, cone extraction
and full collapsing.

These are the standard structural queries of a logic-synthesis network
package: the BDS paper's eliminate reasons about supernode granularity,
and any downstream user of this library (mappers, verifiers, partitioners)
needs cones and maximum fanout-free cones (MFFCs).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.network.network import Network
from repro.sop.cube import lit


def transitive_fanin(net: Network, signal: str) -> Set[str]:
    """All signals (nodes and PIs) in the cone of ``signal``, inclusive."""
    seen: Set[str] = set()
    stack = [signal]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        node = net.nodes.get(name)
        if node is not None:
            stack.extend(node.fanins)
    return seen


def transitive_fanout(net: Network, signal: str) -> Set[str]:
    """All node names whose cone contains ``signal`` (exclusive)."""
    fanouts = net.fanouts()
    seen: Set[str] = set()
    stack = list(fanouts.get(signal, ()))
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(fanouts.get(name, ()))
    return seen


def mffc(net: Network, root: str) -> Set[str]:
    """Maximum fanout-free cone of node ``root``: the nodes whose every
    path to an output passes through ``root`` (so collapsing/removing the
    root frees them all)."""
    if root not in net.nodes:
        return set()
    fanouts = net.fanouts()
    cone: Set[str] = {root}
    changed = True
    while changed:
        changed = False
        for name in list(cone):
            for fanin in net.nodes[name].fanins:
                if fanin in cone or fanin not in net.nodes:
                    continue
                if fanin in net.outputs:
                    continue
                if all(consumer in cone for consumer in fanouts.get(fanin, ())):
                    cone.add(fanin)
                    changed = True
    return cone


def extract_cone(net: Network, outputs: Sequence[str],
                 name: str = "cone") -> Network:
    """A standalone network computing ``outputs``; cone PIs become inputs."""
    keep: Set[str] = set()
    for o in outputs:
        keep |= transitive_fanin(net, o)
    out = Network(name)
    for i in net.inputs:
        if i in keep:
            out.add_input(i)
    for node in net.topological():
        if node.name in keep:
            out.add_node(node.name, list(node.fanins), list(node.cover))
    for o in outputs:
        out.add_output(o)
    out.check()
    return out


def collapse_to_two_level(net: Network, max_cubes: int = 100000
                          ) -> Optional[Network]:
    """Fully collapse the network: one SOP node per output over the PIs.

    Returns None when any output's cover would exceed ``max_cubes`` (the
    classic two-level blowup).  Uses the BDD bridge (global BDD -> ISOP)
    rather than cube substitution, which keeps the covers irredundant.
    """
    from repro.bdd import BDD
    from repro.bdd.isop import isop
    from repro.verify.cec import _global_bdd, _initial_order

    mgr = BDD()
    var_of = {name: mgr.new_var(name) for name in _initial_order(net)}
    out = Network(net.name + "_2lvl")
    for i in net.inputs:
        out.add_input(i)
    cache: Dict[str, Optional[int]] = {}
    for o in net.outputs:
        ref = _global_bdd(mgr, net, o, var_of, cache, size_cap=max_cubes)
        if ref is None:
            return None
        if o in net.inputs:
            out.add_output(o)
            continue
        cover_vars = isop(mgr, ref)
        if len(cover_vars) > max_cubes:
            return None
        supp = sorted({v for cube in cover_vars for v in cube},
                      key=mgr.level_of_var)
        pos = {v: i for i, v in enumerate(supp)}
        cover = [frozenset(lit(pos[v], val) for v, val in cube.items())
                 for cube in cover_vars]
        out.add_node(o, [mgr.var_name(v) for v in supp], cover)
        out.add_output(o)
    out.check()
    return out
