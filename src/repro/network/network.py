"""Core Boolean-network data structure.

Nodes carry their local function as a cube cover whose literal variable ids
are *fanin positions* (0-based index into ``node.fanins``).  Primary inputs
are names listed in ``network.inputs`` and have no node.  Primary outputs
are names that must resolve to a PI or a node.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sop.cover import (
    Cover,
    cover_eval,
    cover_support,
    literal_count as cover_literal_count,
)
from repro.sop.cube import lit


class Node:
    """An internal node of a Boolean network."""

    __slots__ = ("name", "fanins", "cover")

    def __init__(self, name: str, fanins: Sequence[str], cover: Cover):
        self.name = name
        self.fanins = list(fanins)
        self.cover = cover

    def is_constant(self) -> bool:
        return not self.fanins or not cover_support(self.cover)

    def constant_value(self) -> Optional[bool]:
        """0/1 if the node is a constant function, else None."""
        if not self.cover:
            return False
        if any(not cube for cube in self.cover):
            return True
        if not self.fanins:
            return False
        return None

    def literal_count(self) -> int:
        return cover_literal_count(self.cover)

    def eval(self, fanin_values: Sequence[bool]) -> bool:
        return cover_eval(self.cover, dict(enumerate(fanin_values)))

    def normalize(self) -> None:
        """Drop fanins whose literal never appears in the cover."""
        used = cover_support(self.cover)
        if len(used) == len(self.fanins):
            return
        keep = sorted(used)
        remap = {old: new for new, old in enumerate(keep)}
        self.fanins = [self.fanins[i] for i in keep]
        self.cover = [
            frozenset(lit(remap[l >> 1], not (l & 1)) for l in cube)
            for cube in self.cover
        ]

    def copy(self) -> "Node":
        return Node(self.name, list(self.fanins), list(self.cover))

    def __repr__(self) -> str:
        return "Node(%r, fanins=%r, %d cubes)" % (
            self.name, self.fanins, len(self.cover))


class Network:
    """A combinational multilevel Boolean network."""

    def __init__(self, name: str = "top"):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.nodes: Dict[str, Node] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str) -> str:
        if name in self.nodes or name in self.inputs:
            raise ValueError("duplicate signal %r" % name)
        self.inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        self.outputs.append(name)
        return name

    def add_node(self, name: str, fanins: Sequence[str], cover: Cover) -> Node:
        if name in self.nodes or name in self.inputs:
            raise ValueError("duplicate signal %r" % name)
        node = Node(name, fanins, cover)
        self.nodes[name] = node
        return node

    def fresh_name(self, prefix: str = "n") -> str:
        i = len(self.nodes)
        while True:
            name = "%s%d" % (prefix, i)
            if name not in self.nodes and name not in self.inputs:
                return name
            i += 1

    # Convenience gate constructors (used heavily by circuit generators).

    def add_and(self, name: str, fanins: Sequence[str]) -> str:
        cover = [frozenset(lit(i) for i in range(len(fanins)))]
        self.add_node(name, fanins, cover)
        return name

    def add_or(self, name: str, fanins: Sequence[str]) -> str:
        cover = [frozenset({lit(i)}) for i in range(len(fanins))]
        self.add_node(name, fanins, cover)
        return name

    def add_xor(self, name: str, fanins: Sequence[str]) -> str:
        cover = []
        n = len(fanins)
        for bits in itertools.product([False, True], repeat=n):
            if sum(bits) % 2 == 1:
                cover.append(frozenset(lit(i, b) for i, b in enumerate(bits)))
        self.add_node(name, fanins, cover)
        return name

    def add_not(self, name: str, fanin: str) -> str:
        self.add_node(name, [fanin], [frozenset({lit(0, False)})])
        return name

    def add_buf(self, name: str, fanin: str) -> str:
        self.add_node(name, [fanin], [frozenset({lit(0)})])
        return name

    def add_const(self, name: str, value: bool) -> str:
        self.add_node(name, [], [frozenset()] if value else [])
        return name

    def add_mux(self, name: str, sel: str, then_in: str, else_in: str) -> str:
        cover = [frozenset({lit(0), lit(1)}), frozenset({lit(0, False), lit(2)})]
        self.add_node(name, [sel, then_in, else_in], cover)
        return name

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def is_input(self, name: str) -> bool:
        return name not in self.nodes

    def fanouts(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {name: [] for name in self.inputs}
        for name in self.nodes:
            out.setdefault(name, [])
        for node in self.nodes.values():
            for f in node.fanins:
                out.setdefault(f, []).append(node.name)
        return out

    def topological(self) -> List[Node]:
        """Internal nodes in topological (fanin-before-fanout) order."""
        order: List[Node] = []
        state: Dict[str, int] = {}
        stack: List[Tuple[str, int]] = []
        for root in list(self.outputs) + list(self.nodes):
            if state.get(root) == 2 or root in stack:
                continue
            stack.append((root, 0))
            while stack:
                name, phase = stack.pop()
                if phase == 0:
                    if state.get(name) == 2 or name not in self.nodes:
                        state[name] = 2
                        continue
                    if state.get(name) == 1:
                        raise ValueError("combinational cycle at %r" % name)
                    state[name] = 1
                    stack.append((name, 1))
                    for f in self.nodes[name].fanins:
                        if state.get(f) != 2:
                            stack.append((f, 0))
                else:
                    state[name] = 2
                    order.append(self.nodes[name])
        return order

    def depth(self) -> int:
        """Logic depth in node levels."""
        level: Dict[str, int] = {i: 0 for i in self.inputs}
        worst = 0
        for node in self.topological():
            l = 1 + max((level.get(f, 0) for f in node.fanins), default=0)
            level[node.name] = l
            worst = max(worst, l)
        return worst

    def literal_count(self) -> int:
        """Total factored-form-ish literal count (sum over node covers)."""
        return sum(node.literal_count() for node in self.nodes.values())

    def node_count(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def eval(self, assignment: Dict[str, bool]) -> Dict[str, bool]:
        """Evaluate all outputs for one input assignment."""
        values: Dict[str, bool] = dict(assignment)
        for node in self.topological():
            values[node.name] = node.eval([values[f] for f in node.fanins])
        return {o: values[o] for o in self.outputs}

    def eval_words(self, words: Dict[str, int], width: int = 64) -> Dict[str, int]:
        """Bit-parallel simulation: each signal is a ``width``-bit word."""
        mask = (1 << width) - 1
        values: Dict[str, int] = dict(words)
        for node in self.topological():
            fanin_words = [values[f] for f in node.fanins]
            acc = 0
            for cube in node.cover:
                term = mask
                for l in cube:
                    w = fanin_words[l >> 1]
                    term &= (w ^ mask) if (l & 1) else w
                acc |= term
            values[node.name] = acc
        return {o: values[o] for o in self.outputs}

    # ------------------------------------------------------------------
    # Editing
    # ------------------------------------------------------------------

    def remove_dangling(self) -> int:
        """Delete nodes not reachable from any output; return count removed."""
        live: Set[str] = set()
        stack = list(self.outputs)
        while stack:
            name = stack.pop()
            if name in live or name not in self.nodes:
                continue
            live.add(name)
            stack.extend(self.nodes[name].fanins)
        dead = [n for n in self.nodes if n not in live]
        for n in dead:
            del self.nodes[n]
        return len(dead)

    def replace_signal(self, old: str, new: str) -> None:
        """Redirect every reference to ``old`` (fanins and outputs) to ``new``."""
        for node in self.nodes.values():
            node.fanins = [new if f == old else f for f in node.fanins]
        self.outputs = [new if o == old else o for o in self.outputs]

    def copy(self) -> "Network":
        out = Network(self.name)
        out.inputs = list(self.inputs)
        out.outputs = list(self.outputs)
        out.nodes = {n: node.copy() for n, node in self.nodes.items()}
        return out

    def check(self) -> None:
        """Validate structural invariants; raises on corruption."""
        for node in self.nodes.values():
            for f in node.fanins:
                if f not in self.nodes and f not in self.inputs:
                    raise ValueError("node %r has undriven fanin %r" % (node.name, f))
            supp = cover_support(node.cover)
            if supp and max(supp) >= len(node.fanins):
                raise ValueError("node %r cover references missing fanin" % node.name)
            if len(set(node.fanins)) != len(node.fanins):
                raise ValueError("node %r has duplicate fanins" % node.name)
        for o in self.outputs:
            if o not in self.nodes and o not in self.inputs:
                raise ValueError("undriven output %r" % o)
        self.topological()  # raises on cycles

    def stats(self) -> Dict[str, int]:
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "nodes": len(self.nodes),
            "literals": self.literal_count(),
            "depth": self.depth(),
        }

    def __repr__(self) -> str:
        return "Network(%r, %d in, %d out, %d nodes)" % (
            self.name, len(self.inputs), len(self.outputs), len(self.nodes))
