"""BLIF reader and writer (the Berkeley Logic Interchange Format subset
used by SIS and BDS: ``.model``, ``.inputs``, ``.outputs``, ``.names``,
``.end``; multi-line continuations with ``\\``)."""

from __future__ import annotations

from typing import Iterable, List

from repro.network.network import Network
from repro.sop.cube import lit


def parse_blif(text: str, validate: bool = True) -> Network:
    """Parse a BLIF model into a :class:`Network`.

    ``validate=False`` skips the structural :meth:`Network.check` after
    parsing, so that diagnostics tools (``repro check``) can lint broken
    netlists -- dangling fanins, cycles -- instead of dying on the first
    inconsistency.
    """
    lines = _logical_lines(text)
    net = Network()
    i = 0
    current_names: List[str] = []
    current_cover: List[frozenset] = []

    def flush_names():
        nonlocal current_names, current_cover
        if not current_names:
            return
        out = current_names[-1]
        fanins = current_names[:-1]
        net.add_node(out, fanins, list(current_cover))
        current_names, current_cover = [], []

    while i < len(lines):
        tokens = lines[i].split()
        i += 1
        if not tokens:
            continue
        head = tokens[0]
        if head.startswith("."):
            flush_names()
        if head == ".model":
            net.name = tokens[1] if len(tokens) > 1 else "top"
        elif head == ".inputs":
            for name in tokens[1:]:
                net.add_input(name)
        elif head == ".outputs":
            for name in tokens[1:]:
                net.add_output(name)
        elif head == ".names":
            current_names = tokens[1:]
            current_cover = []
        elif head == ".end":
            break
        elif head.startswith("."):
            raise ValueError("unsupported BLIF construct: %s" % head)
        else:
            # A cover row: input-plane then a single output bit.
            if not current_names:
                raise ValueError("cover row outside .names: %r" % tokens)
            if len(current_names) == 1:
                # Constant node: row is just the output bit.
                plane, outbit = "", tokens[0]
            else:
                plane, outbit = tokens[0], tokens[1]
            if outbit == "0":
                raise ValueError("offset (.names with output 0) not supported")
            cube = []
            for pos, ch in enumerate(plane):
                if ch == "1":
                    cube.append(lit(pos, True))
                elif ch == "0":
                    cube.append(lit(pos, False))
                elif ch != "-":
                    raise ValueError("bad cover character %r" % ch)
            current_cover.append(frozenset(cube))
    flush_names()
    if validate:
        net.check()
    return net


def write_blif(net: Network) -> str:
    """Serialize a network to BLIF text."""
    out = [".model %s" % net.name]
    out.append(_wrap(".inputs", net.inputs))
    out.append(_wrap(".outputs", net.outputs))
    for node in net.topological():
        out.append(_wrap(".names", node.fanins + [node.name]))
        if not node.cover:
            # Constant 0: an empty cover; BLIF convention is no rows.
            continue
        for cube in node.cover:
            plane = ["-"] * len(node.fanins)
            for l in cube:
                plane[l >> 1] = "0" if (l & 1) else "1"
            if node.fanins:
                out.append("%s 1" % "".join(plane))
            else:
                out.append("1")
    out.append(".end")
    return "\n".join(out) + "\n"


def _wrap(head: str, names: Iterable[str], width: int = 78) -> str:
    parts = [head]
    lines = []
    cur = head
    for n in names:
        if len(cur) + len(n) + 1 > width:
            lines.append(cur + " \\")
            cur = " " + n
        else:
            cur += " " + n
    lines.append(cur)
    return "\n".join(lines)


def _logical_lines(text: str) -> List[str]:
    """Strip comments and join continuation lines."""
    out: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        out.append(pending + line)
        pending = ""
    if pending:
        out.append(pending)
    return out
