"""Partial collapsing ("eliminate"): network partitioning into supernodes.

Two variants, mirroring Fig. 12:

* :func:`eliminate_literal` -- the SIS-style eliminate working on cube
  covers with the literal-count value function.
* :class:`PartitionedNetwork` / :func:`eliminate_bdd` -- the BDS-style
  eliminate of Section IV-B: every node holds a *local BDD* over its fanin
  signals (each Boolean node owns an intermediate BDD variable), the value
  function is the BDD node count, and the manager is periodically compacted
  by transferring all live BDDs into a fresh manager holding only used
  variables (the paper's *BDD mapping*, reported ~85x faster than
  reordering a polluted manager).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.bdd import BDD, ONE, ZERO, transfer_many
from repro.bdd.isop import isop
from repro.bdd.traverse import node_count, shared_node_count, support
from repro.network.network import Network, Node
from repro.sop.cover import Cover, complement, remove_contained
from repro.sop.cube import cube_and, lit

if TYPE_CHECKING:  # pragma: no cover - typing-only (avoids import cycle)
    from repro.check import Checker

# ----------------------------------------------------------------------
# SIS-style (cube domain)
# ----------------------------------------------------------------------


def eliminate_literal(net: Network, threshold: int = 0,
                      max_node_literals: int = 200,
                      max_passes: int = 10) -> Network:
    """Collapse nodes whose SIS *value* is at most ``threshold``.

    value(n) = (occurrences of n's literal in fanout covers - 1) *
               (literal count of n - 1) - 1
    -- the net literal increase caused by duplicating n at each use.
    """
    for _ in range(max_passes):
        changed = False
        fanouts = net.fanouts()
        for node in list(net.nodes.values()):
            if node.name not in net.nodes or node.name in net.outputs:
                continue
            consumers = [net.nodes[f] for f in fanouts.get(node.name, ())
                         if f in net.nodes]
            if not consumers:
                continue
            lits = node.literal_count()
            if lits > max_node_literals:
                continue
            uses = sum(
                sum(1 for cube in c.cover for l in cube
                    if c.fanins[l >> 1] == node.name)
                for c in consumers
            )
            value = (uses - 1) * (lits - 1) - 1
            if value > threshold:
                continue
            ok = True
            for consumer in consumers:
                if not collapse_node_into(consumer, node):
                    ok = False
            if ok:
                del net.nodes[node.name]
                changed = True
                fanouts = net.fanouts()
        if not changed:
            break
    net.remove_dangling()
    net.check()
    return net


def collapse_node_into(consumer: Node, node: Node,
                       max_cubes: int = 5000) -> bool:
    """Substitute ``node``'s cover for its literal inside ``consumer``.

    Returns False (leaving the consumer untouched) if the result would
    exceed ``max_cubes`` cubes.
    """
    if node.name not in consumer.fanins:
        return True
    # Extend the consumer's fanins with the node's fanins.
    fanins = list(consumer.fanins)
    pos_of: Dict[str, int] = {s: i for i, s in enumerate(fanins)}
    for s in node.fanins:
        if s not in pos_of:
            pos_of[s] = len(fanins)
            fanins.append(s)
    idx = consumer.fanins.index(node.name)

    def remap(cover: Cover) -> Cover:
        return [
            frozenset(lit(pos_of[node.fanins[l >> 1]], not (l & 1)) for l in cube)
            for cube in cover
        ]

    from repro.sop.cover import ComplementTooLarge

    try:
        node_offset = complement(node.cover, limit=max_cubes)
    except ComplementTooLarge:
        return False
    onset = remap(node.cover)
    offset = remap(node_offset)
    new_cover: List[frozenset] = []
    for cube in consumer.cover:
        positive = lit(idx, True) in cube
        negative = lit(idx, False) in cube
        if not positive and not negative:
            new_cover.append(cube)
            continue
        rest = cube - {lit(idx, True), lit(idx, False)}
        source = onset if positive else offset
        for scube in source:
            prod = cube_and(rest, scube)
            if prod is not None:
                new_cover.append(prod)
        if len(new_cover) > max_cubes:
            return False
    consumer.fanins = fanins
    consumer.cover = remove_contained(new_cover)
    consumer.normalize()
    # The collapsed literal's position disappears via normalize(); if the
    # node also fed other literals (it cannot -- one position per signal),
    # nothing else remains.
    return True


# ----------------------------------------------------------------------
# BDS-style (local-BDD domain)
# ----------------------------------------------------------------------


class PartitionedNetwork:
    """A Boolean network whose nodes are local BDDs over signal variables.

    Every primary input and every surviving Boolean node owns one manager
    variable; a node's local BDD mentions only the variables of its fanin
    signals.  This is the representation on which BDS runs eliminate and,
    later, per-supernode decomposition.
    """

    def __init__(self, mgr: BDD, inputs: List[str], outputs: List[str]):
        self.mgr = mgr
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.sig_var: Dict[str, int] = {}
        self.refs: Dict[str, int] = {}
        self.mapping_count = 0  # how many BDD-mapping compactions ran
        # Kernel counters of managers retired by compact(); merge these
        # with the live manager's snapshot for full-flow accounting.
        self.perf_history: List[Dict[str, float]] = []
        # Per-node support cache (name -> var-id set).  Eliminate's value
        # loop consults fanouts/pollution after every collapse; caching
        # supports avoids retraversing every live BDD each time.
        self._supports: Dict[str, Set[int]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_network(cls, net: Network) -> "PartitionedNetwork":
        mgr = BDD()
        part = cls(mgr, net.inputs, net.outputs)
        for name in net.inputs:
            part.sig_var[name] = mgr.new_var(name)
        for node in net.topological():
            part.sig_var.setdefault(node.name, mgr.new_var(node.name))
        for node in net.topological():
            fanin_refs = [mgr.var_ref(part.sig_var[f]) for f in node.fanins]
            acc = ZERO
            for cube in node.cover:
                term = ONE
                for l in cube:
                    term = mgr.and_(term, fanin_refs[l >> 1] ^ (l & 1))
                acc = mgr.or_(acc, term)
            part.refs[node.name] = acc
            # Safe GC point: every ref still needed is in part.refs (fanin
            # literal nodes are recreated on demand by var_ref).
            mgr.maybe_collect(part.refs.values())
        return part

    # -- queries ----------------------------------------------------------

    def _support_of(self, name: str) -> Set[int]:
        """Cached support of a node's BDD; invalidated when its ref moves."""
        s = self._supports.get(name)
        if s is None:
            s = support(self.mgr, self.refs[name])
            self._supports[name] = s
        return s

    def _invalidate_support(self, name: str) -> None:
        self._supports.pop(name, None)

    def fanin_signals(self, name: str) -> List[str]:
        var_names = [self.mgr.var_name(v) for v in self._support_of(name)]
        return sorted(var_names)

    def fanouts(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for name in self.refs:
            for v in self._support_of(name):
                out.setdefault(self.mgr.var_name(v), []).append(name)
        return out

    def total_bdd_nodes(self) -> int:
        return shared_node_count(self.mgr, list(self.refs.values()))

    def remove_dangling(self) -> int:
        used: Set[str] = set(self.outputs)
        for name in self.refs:
            for v in self._support_of(name):
                used.add(self.mgr.var_name(v))
        dead = [n for n in self.refs if n not in used]
        for n in dead:
            del self.refs[n]
            self._invalidate_support(n)
        return len(dead)

    # -- the eliminate loop ----------------------------------------------

    def eliminate(self, threshold: int = 0, size_cap: int = 1000,
                  use_mapping: bool = True, mapping_trigger: float = 0.5,
                  max_passes: int = 20,
                  checker: Optional["Checker"] = None) -> None:
        """Iteratively collapse low-value nodes into their fanouts.

        A node is eliminated when the change in total BDD node count is at
        most ``threshold`` and no merged fanout BDD exceeds ``size_cap``
        (the paper's collapse threshold keeping supernodes tractable).

        ``checker`` (a :class:`repro.check.Checker`) runs the BDD
        sanitizer at the loop's GC safe points: a quick per-collapse audit
        right after ``maybe_collect`` and a full partition lint at every
        pass boundary and after each BDD-mapping compaction.
        """
        mgr = self.mgr
        for _ in range(max_passes):
            changed = False
            fanouts = self.fanouts()
            for name in list(self.refs):
                if name in self.outputs or name not in self.refs:
                    continue
                consumers = [c for c in fanouts.get(name, []) if c in self.refs]
                if not consumers:
                    del self.refs[name]
                    self._invalidate_support(name)
                    changed = True
                    continue
                var = self.sig_var[name]
                node_ref = self.refs[name]
                node_size = node_count(mgr, node_ref)
                new_refs: Dict[str, int] = {}
                delta = -node_size
                too_big = False
                for c in consumers:
                    merged = mgr.compose(self.refs[c], var, node_ref)
                    msize = node_count(mgr, merged)
                    if msize > size_cap:
                        too_big = True
                        break
                    delta += msize - node_count(mgr, self.refs[c])
                    new_refs[c] = merged
                if too_big or delta > threshold:
                    # The trial compositions are garbage now; reap them if
                    # the manager has grown past the trigger.
                    mgr.maybe_collect(self.refs.values())
                    continue
                for c, merged in new_refs.items():
                    self.refs[c] = merged
                    self._invalidate_support(c)
                del self.refs[name]
                self._invalidate_support(name)
                changed = True
                fanouts = self.fanouts()
                # Dead-node sweep at a safe point: the collapse is merged,
                # so self.refs is the complete live root set.
                mgr.maybe_collect(self.refs.values())
                if checker is not None:
                    checker.check_partition(self, "eliminate collapse",
                                            quick=True)
                if use_mapping and self._pollution() > mapping_trigger:
                    self.compact()
                    mgr = self.mgr
                    fanouts = self.fanouts()
                    if checker is not None:
                        checker.check_partition(self, "after BDD mapping",
                                                quick=True)
            if checker is not None:
                checker.check_partition(self, "eliminate pass boundary")
            if not changed:
                break
        self.remove_dangling()
        if use_mapping:
            self.compact()

    def _pollution(self) -> float:
        """Fraction of manager variables that no live BDD uses."""
        used: Set[int] = set()
        for name in self.refs:
            used |= self._support_of(name)
        total = self.mgr.num_vars
        if not total:
            return 0.0
        return 1.0 - len(used) / total

    def compact(self) -> None:
        """BDD mapping (Section IV-B): rebuild all live BDDs in a fresh
        manager containing only the variables still in use."""
        names = list(self.refs)
        self.perf_history.append(self.mgr.perf_snapshot())
        result = transfer_many(self.mgr, [self.refs[n] for n in names])
        # transfer_many drops variables with no nodes; re-add missing node
        # variables (a node whose BDD is constant may still be referenced).
        new_mgr = result.manager
        # The retired manager's counters just moved into perf_history (a
        # frozen snapshot); the tracer follows to the fresh manager so GC
        # safe-point spans keep firing after a BDD mapping.
        new_mgr.tracer = self.mgr.tracer
        self.refs = dict(zip(names, result.refs))
        self.sig_var = {}
        for sig in [*self.inputs, *names]:
            try:
                self.sig_var[sig] = new_mgr.var_by_name(sig)
            except KeyError:
                self.sig_var[sig] = new_mgr.new_var(sig)
        self.mgr = new_mgr
        self.mapping_count += 1
        # Var ids changed wholesale; every cached support is stale.
        self._supports.clear()

    # -- conversion back to a cube network --------------------------------

    def to_network(self, name: str = "partitioned") -> Network:
        net = Network(name)
        for i in self.inputs:
            net.add_input(i)
        for o in self.outputs:
            net.add_output(o)
        for node_name, ref in self.refs.items():
            sig_fanins = self.fanin_signals(node_name)
            pos = {self.sig_var[s]: i for i, s in enumerate(sig_fanins)}
            cover = [
                frozenset(lit(pos[v], val) for v, val in cube.items())
                for cube in isop(self.mgr, ref)
            ]
            net.add_node(node_name, sig_fanins, cover)
        net.check()
        return net


def eliminate_bdd(net: Network, threshold: int = 0, size_cap: int = 1000,
                  use_mapping: bool = True) -> PartitionedNetwork:
    """Convenience wrapper: build the partitioned form and run eliminate."""
    part = PartitionedNetwork.from_network(net)
    part.eliminate(threshold=threshold, size_cap=size_cap,
                   use_mapping=use_mapping)
    return part
