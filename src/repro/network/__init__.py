"""Boolean networks: the multilevel circuit representation.

A :class:`Network` is a DAG of named nodes; each internal node carries a
local function as a cube cover over its fanins (the SIS-style *local*
representation the paper contrasts with local BDDs).  The BDS flow converts
local covers to local BDDs on entry (``repro.bds``).

Modules
-------
``network``   the core Network/Node classes and structural utilities
``blif``      BLIF reader/writer
``sweep``     constant propagation, buffer squeezing, duplicate removal
``eliminate`` partial collapsing (BDD-cost and literal-cost variants)
"""

from repro.network.network import Network, Node
from repro.network.blif import parse_blif, write_blif
from repro.network.sweep import sweep
from repro.network.eliminate import eliminate_bdd, eliminate_literal

__all__ = [
    "Network",
    "Node",
    "parse_blif",
    "write_blif",
    "sweep",
    "eliminate_bdd",
    "eliminate_literal",
]
