"""Network sweep: the paper's first synthesis step (Section IV-A).

"Removal of initial redundancy from the Boolean network ... in addition to
removing constant and single-variable nodes, all functionally equivalent
nodes are also identified and removed."  Functional duplicates are found by
bit-parallel random simulation signatures and confirmed exactly with global
BDDs (bounded); the paper credits this step with much of BDS's runtime
advantage.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.network.network import Network, Node
from repro.sop.cover import cover_cofactor
from repro.sop.cube import lit


def sweep(net: Network, merge_equivalent: bool = True, seed: int = 2000,
          bdd_cap: int = 500) -> Network:
    """Sweep the network in place; returns it for chaining."""
    changed = True
    passes = 0
    while changed:
        passes += 1
        if passes > 50:  # safety net against normal-form ping-pong
            break
        changed = False
        changed |= _propagate_constants(net)
        changed |= _squeeze_single_input(net)
        changed |= _merge_structural(net)
        if net.remove_dangling():
            changed = True
    if merge_equivalent:
        if _merge_functional(net, seed=seed, bdd_cap=bdd_cap):
            # Merging can expose more constants/buffers.
            sweep(net, merge_equivalent=False)
    net.check()
    return net


# ----------------------------------------------------------------------
# Constants
# ----------------------------------------------------------------------


def _propagate_constants(net: Network) -> bool:
    changed = False
    fanouts = net.fanouts()
    for node in list(net.nodes.values()):
        if node.name not in net.nodes:
            continue
        value = node.constant_value()
        if value is None:
            continue
        for out_name in fanouts.get(node.name, ()):
            consumer = net.nodes.get(out_name)
            if consumer is None:
                continue
            while node.name in consumer.fanins:
                idx = consumer.fanins.index(node.name)
                consumer.cover = cover_cofactor(consumer.cover, lit(idx, value))
                # Rebuild fanins without position idx.
                consumer.fanins = consumer.fanins[:idx] + consumer.fanins[idx + 1:]
                consumer.cover = [
                    frozenset((l - 2) if (l >> 1) > idx else l for l in cube)
                    for cube in consumer.cover
                ]
                changed = True
        if node.name not in net.outputs and not fanouts.get(node.name):
            del net.nodes[node.name]
            changed = True
        elif node.fanins:
            # Canonical constant node.
            node.fanins = []
            node.cover = [frozenset()] if value else []
            changed = True
    return changed


# ----------------------------------------------------------------------
# Buffers and inverters
# ----------------------------------------------------------------------


def _single_input_kind(node: Node) -> Optional[bool]:
    """None if not single-input; True for buffer, False for inverter."""
    if len(node.fanins) != 1:
        return None
    if node.cover == [frozenset({lit(0, True)})]:
        return True
    if node.cover == [frozenset({lit(0, False)})]:
        return False
    return None


def substitute_fanin(node: Node, idx: int, new_signal: str, invert: bool) -> None:
    """Replace fanin position ``idx`` by ``new_signal`` (possibly inverted),
    merging duplicate fanins and dropping contradictory cubes."""
    signals = list(node.fanins)
    signals[idx] = new_signal
    unique: List[str] = []
    pos_of: Dict[str, int] = {}
    for s in signals:
        if s not in pos_of:
            pos_of[s] = len(unique)
            unique.append(s)
    new_cover = []
    for cube in node.cover:
        pairs: Dict[int, bool] = {}
        ok = True
        for l in cube:
            old_pos, positive = l >> 1, not (l & 1)
            if old_pos == idx and invert:
                positive = not positive
            new_pos = pos_of[signals[old_pos]]
            if new_pos in pairs and pairs[new_pos] != positive:
                ok = False
                break
            pairs[new_pos] = positive
        if ok:
            new_cover.append(frozenset(lit(p, v) for p, v in pairs.items()))
    node.fanins = unique
    node.cover = new_cover
    node.normalize()


def _squeeze_single_input(net: Network) -> bool:
    changed = False
    fanouts = net.fanouts()
    for node in list(net.nodes.values()):
        if node.name not in net.nodes:
            continue
        kind = _single_input_kind(node)
        if kind is None:
            continue
        source = node.fanins[0]
        invert = not kind
        for out_name in fanouts.get(node.name, ()):
            consumer = net.nodes.get(out_name)
            if consumer is None:
                continue
            while node.name in consumer.fanins:
                substitute_fanin(consumer, consumer.fanins.index(node.name),
                                 source, invert)
                changed = True
        if node.name not in net.outputs and not fanouts.get(node.name):
            # Interior buffer/inverter with no remaining consumers.
            del net.nodes[node.name]
            changed = True
        # Output-driving buffers/inverters are kept: outputs must preserve
        # their names, and an inverter carries real logic.
    return changed


def _redirect(net: Network, old: str, new: str) -> None:
    """Make every consumer read ``new`` instead of node ``old``.

    Output names are part of the interface: when ``old`` drives an output
    it is downgraded to a buffer of ``new`` instead of being deleted.
    """
    for node in net.nodes.values():
        if node.name == old:
            continue
        if old in node.fanins:
            while old in node.fanins:
                substitute_fanin(node, node.fanins.index(old), new, False)
    if old in net.outputs:
        buf = net.nodes[old]
        buf.fanins = [new]
        buf.cover = [frozenset({lit(0, True)})]
    else:
        del net.nodes[old]


# ----------------------------------------------------------------------
# Structural duplicate removal
# ----------------------------------------------------------------------


def _structural_key(node: Node) -> Tuple:
    order = sorted(range(len(node.fanins)), key=lambda i: node.fanins[i])
    remap = {old: new for new, old in enumerate(order)}
    cover = frozenset(
        frozenset(lit(remap[l >> 1], not (l & 1)) for l in cube)
        for cube in node.cover
    )
    return tuple(node.fanins[i] for i in order), cover


def _merge_structural(net: Network) -> bool:
    changed = False
    seen: Dict[Tuple, str] = {}
    for node in net.topological():
        if node.name not in net.nodes:
            continue
        if node.name in net.outputs and _single_input_kind(node) is True:
            # A pure buffer aliasing an output name is already minimal;
            # merging it with another alias would fight the buffer
            # squeezing pass over the normal form (ping-pong).
            continue
        key = _structural_key(node)
        keep = seen.get(key)
        if keep is None:
            seen[key] = node.name
        elif keep != node.name:
            _redirect(net, node.name, keep)
            changed = True
    return changed


# ----------------------------------------------------------------------
# Functional duplicate removal
# ----------------------------------------------------------------------


def _merge_functional(net: Network, seed: int, bdd_cap: int) -> bool:
    """Merge nodes with identical global functions (signature + BDD proof)."""
    from repro.bdd import BDD
    from repro.bdd.traverse import node_count

    rng = random.Random(seed)
    width = 256
    words: Dict[str, int] = {
        i: rng.getrandbits(width) for i in net.inputs
    }
    values = dict(words)
    topo = net.topological()
    mask = (1 << width) - 1
    for node in topo:
        fanin_words = [values[f] for f in node.fanins]
        acc = 0
        for cube in node.cover:
            term = mask
            for l in cube:
                w = fanin_words[l >> 1]
                term &= (w ^ mask) if (l & 1) else w
            acc |= term
        values[node.name] = acc

    groups: Dict[int, List[str]] = {}
    for name in [*net.inputs, *(n.name for n in topo)]:
        groups.setdefault(values[name], []).append(name)

    candidates = []
    for group in groups.values():
        if len(group) < 2:
            continue
        # An output alias (buffer of another member) is already minimal;
        # proving it equivalent would just rebuild its whole cone.
        members = []
        for name in group:
            node = net.nodes.get(name)
            if (node is not None and name in net.outputs
                    and _single_input_kind(node) is True
                    and node.fanins[0] in group):
                continue
            members.append(name)
        if len(members) > 1:
            candidates.append(members)
    if not candidates:
        return False

    # Exact confirmation with bounded global BDDs (FORCE-ordered inputs
    # keep structured circuits like shifters from blowing the cap).
    from repro.verify.cec import _initial_order

    mgr = BDD()
    pi_var = {i: mgr.var_ref(mgr.new_var(i)) for i in _initial_order(net)}
    global_bdd: Dict[str, Optional[int]] = dict(pi_var)

    # Overall work budget: once the manager holds this many nodes, stop
    # proving equivalences (the sweep is an optimization, not a must).
    allocation_budget = 40 * bdd_cap

    def build(name: str) -> Optional[int]:
        if name in global_bdd:
            return global_bdd[name]
        if mgr.num_nodes_allocated > allocation_budget:
            return None
        node = net.nodes[name]
        fanin_refs = []
        for f in node.fanins:
            r = build(f)
            if r is None:
                global_bdd[name] = None
                return None
            fanin_refs.append(r)
        from repro.bdd.manager import ZERO
        acc = ZERO
        for cube in node.cover:
            term = 0  # ONE
            for l in cube:
                litref = fanin_refs[l >> 1] ^ (l & 1)
                term = mgr.and_(term, litref)
                if mgr.num_nodes_allocated > allocation_budget:
                    global_bdd[name] = None
                    return None
            acc = mgr.or_(acc, term)
            if mgr.num_nodes_allocated > allocation_budget:
                global_bdd[name] = None
                return None
        if node_count(mgr, acc) > bdd_cap:
            global_bdd[name] = None
            return None
        global_bdd[name] = acc
        return acc

    changed = False
    for group in candidates:
        # Safe GC point between groups: every ref still needed for later
        # cone building lives in global_bdd.
        mgr.maybe_collect([r for r in global_bdd.values() if r is not None])
        keep_by_ref: Dict[int, str] = {}
        for name in group:
            ref = build(name)
            if ref is None:
                continue
            keep = keep_by_ref.get(ref)
            if keep is None:
                keep_by_ref[ref] = name
            elif name in net.nodes:
                node = net.nodes[name]
                if (name in net.outputs and node.fanins == [keep]
                        and _single_input_kind(node) is True):
                    continue  # already a buffer of the keeper
                _redirect(net, name, keep)
                changed = True
    if changed:
        net.remove_dangling()
    return changed
