"""Concurrent socket front door for the optimization service.

``repro serve --socket PATH`` / ``--port N`` runs :class:`SocketServer`:
a single-threaded, ``selectors``-driven event loop accepting many
concurrent clients over a Unix-domain or TCP socket, speaking the same
JSON-lines protocol as the stdin daemon (``docs/SERVICE.md``).  Each
connection gets its own :class:`repro.service.api.ServiceSession`, and
every session multiplexes onto **one** shared
:class:`repro.service.scheduler.OptimizationScheduler` and one shared
artifact cache -- the completion callbacks added to the scheduler are
what let the loop pipeline requests from one client while another
client's jobs are still running, without ever blocking in submission
order.

Contracts (the tentpole's acceptance criteria):

* **Per-connection response order** -- responses to *requests* on a
  connection are emitted in that connection's request order, exactly
  like the stdin mode.  Command replies (``stats``/``metrics``) and
  rejection replies (``overloaded``, malformed) are immediate and
  therefore out of band; they carry the request's ``id`` where one was
  given.
* **Explicit backpressure** -- once the shared scheduler has ``backlog``
  jobs outstanding, further requests are answered immediately with
  ``{"status": "overloaded", "error": "overloaded", "retry_after": s}``
  rather than silently queueing.  The paired
  :class:`repro.service.client.ServiceClient` retries these with
  jittered exponential backoff.
* **Graceful drain** -- SIGTERM stops accepting connections, lets
  running jobs finish, flushes every response buffer, then exits 0.
  Requests arriving *during* the drain are answered
  ``{"status": "cancelled", "error": "server draining"}``; a second
  SIGTERM force-cancels outstanding jobs (each still gets its
  documented ``cancelled`` response -- no client is left hanging).

Metrics (``repro_`` prefix via the registry): ``server_connections``
(gauge), ``server_connections_total``, ``server_backpressure_total``
(counters), ``server_request_seconds`` (per-request latency histogram,
admission to response).
"""

from __future__ import annotations

import json
import os
import selectors
import signal
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.bds.flow import BDSOptions
from repro.obs.metrics import get_registry
from repro.service.api import OptimizationService, ServiceRequest, ServiceSession
from repro.service.scheduler import OptimizationScheduler, SchedulerFull

#: Event-loop tick: the select timeout bounding scheduler-poll latency.
_TICK_S = 0.05

#: Bytes per recv.
_RECV_SIZE = 65536

#: Default ``retry_after`` hint (seconds) on overloaded replies.
DEFAULT_RETRY_AFTER = 0.25

#: Default backlog: scheduler jobs outstanding before overloaded replies.
DEFAULT_BACKLOG = 64

#: Hard cap on one line (a request is one line; a 16 MiB line is abuse).
_MAX_LINE = 16 * 1024 * 1024


class _Connection:
    """Per-client state: socket, session, buffers, latency clocks."""

    def __init__(self, sock: socket.socket, session: ServiceSession) -> None:
        self.sock = sock
        self.session = session
        self.rbuf = b""
        self.wbuf = b""
        #: slot index -> admission time, for the latency histogram.
        self.t0: Dict[int, float] = {}
        #: responses emitted so far == next slot ``ready()`` will yield.
        self.emitted = 0
        self.served = 0
        #: half-closed: flush ``wbuf``, then close (set by ``shutdown``).
        self.closing = False


class SocketServer:
    """Socket front door over one shared scheduler (see module doc).

    Exactly one of ``socket_path`` (AF_UNIX) or ``port`` (TCP; ``0``
    binds an ephemeral port, read back from :attr:`address`) must be
    given.  ``backlog`` bounds scheduler outstanding before requests are
    refused with ``overloaded``.
    """

    def __init__(self, service: OptimizationService,
                 socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 backlog: int = DEFAULT_BACKLOG,
                 retry_after: float = DEFAULT_RETRY_AFTER) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port required")
        self.service = service
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.backlog = max(1, backlog)
        self.retry_after = retry_after
        self.ready = threading.Event()
        #: Bound address once listening: the socket path, or (host, port).
        self.address: Any = None
        self._listener: Optional[socket.socket] = None
        self._scheduler: Optional[OptimizationScheduler] = None
        self._conns: Dict[socket.socket, _Connection] = {}
        self._draining = False
        self._force = False
        self._metrics = get_registry()

    # -- control --------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin (or, called again, force) the graceful drain.

        Safe from a signal handler or another thread: it only sets
        flags; the event loop acts on them at the next tick.
        """
        if self._draining:
            self._force = True
        self._draining = True

    # -- lifecycle ------------------------------------------------------

    def serve_forever(self) -> int:
        """Run until drained (SIGTERM / :meth:`request_shutdown`).

        Returns the process exit code: 0 after a clean drain.
        """
        self._scheduler = self.service.make_scheduler()
        listener = self._open_listener()
        sel = selectors.DefaultSelector()
        sel.register(listener, selectors.EVENT_READ)
        self._install_signal_handlers()
        self.ready.set()
        try:
            while True:
                for key, events in sel.select(timeout=_TICK_S):
                    if key.fileobj is listener:
                        self._accept(sel, listener)
                    elif events & selectors.EVENT_READ:
                        self._read(sel, key.fileobj)  # type: ignore[arg-type]
                    elif events & selectors.EVENT_WRITE:
                        self._write(sel, key.fileobj)  # type: ignore[arg-type]
                self._scheduler.poll()
                if self._force:
                    for conn in list(self._conns.values()):
                        conn.session.cancel_outstanding()
                    self._force = False
                for sock in list(self._conns):
                    conn = self._conns.get(sock)
                    if conn is None:
                        continue
                    self._pump_session(conn)
                    self._write(sel, sock)
                    if conn.closing and not conn.wbuf \
                            and sock in self._conns:
                        self._close(sel, sock)
                        continue
                    if sock in self._conns:
                        self._update_mask(sel, sock)
                if self._draining:
                    if listener.fileno() != -1:
                        sel.unregister(listener)
                        listener.close()
                    if self._drained():
                        break
        finally:
            self.ready.clear()
            for sock in list(self._conns):
                self._close(sel, sock)
            if listener.fileno() != -1:
                try:
                    sel.unregister(listener)
                except (KeyError, ValueError):
                    pass
                listener.close()
            sel.close()
            self._scheduler.shutdown()
            self._remove_socket_file()
        return 0

    def _drained(self) -> bool:
        if any(c.session.outstanding for c in self._conns.values()):
            return False
        return not any(c.wbuf for c in self._conns.values())

    def _open_listener(self) -> socket.socket:
        if self.socket_path is not None:
            self._remove_socket_file()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
            self.address = self.socket_path
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port or 0))
            self.address = listener.getsockname()
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        return listener

    def _remove_socket_file(self) -> None:
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def _install_signal_handlers(self) -> None:
        # Signal handlers only exist in the main thread; tests drive the
        # server from a worker thread via request_shutdown() instead.
        if threading.current_thread() is not threading.main_thread():
            return

        def _on_sigterm(signum: int, frame: Any) -> None:
            self.request_shutdown()

        signal.signal(signal.SIGTERM, _on_sigterm)
        signal.signal(signal.SIGINT, _on_sigterm)

    # -- connection handling --------------------------------------------

    def _accept(self, sel: selectors.BaseSelector,
                listener: socket.socket) -> None:
        while True:
            try:
                sock, _addr = listener.accept()
            except (BlockingIOError, OSError):
                return
            if self._draining:
                sock.close()
                continue
            sock.setblocking(False)
            assert self._scheduler is not None
            conn = _Connection(
                sock, self.service.session(scheduler=self._scheduler))
            self._conns[sock] = conn
            sel.register(sock, selectors.EVENT_READ)
            self._metrics.counter("server_connections_total").inc()
            self._metrics.gauge("server_connections").set(len(self._conns))

    def _close(self, sel: selectors.BaseSelector,
               sock: socket.socket) -> None:
        conn = self._conns.pop(sock, None)
        try:
            sel.unregister(sock)
        except (KeyError, ValueError):
            pass
        sock.close()
        if conn is not None and conn.session.outstanding:
            # The peer is gone; free its scheduler slots so other
            # clients' jobs start sooner (first verdict still wins for
            # jobs that already finished -- they land in the cache).
            conn.session.cancel_outstanding()
        self._metrics.gauge("server_connections").set(len(self._conns))

    def _read(self, sel: selectors.BaseSelector,
              sock: socket.socket) -> None:
        conn = self._conns.get(sock)
        if conn is None:
            return
        try:
            data = sock.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._close(sel, sock)
            return
        if not data:
            self._close(sel, sock)
            return
        conn.rbuf += data
        if len(conn.rbuf) > _MAX_LINE:
            self._send(conn, {"status": "failed",
                              "error": "request line too long"})
            conn.closing = True
            return
        while b"\n" in conn.rbuf:
            line, conn.rbuf = conn.rbuf.split(b"\n", 1)
            text = line.decode("utf-8", errors="replace").strip()
            if text:
                self._handle_line(conn, text)
            if conn.closing:
                break

    def _write(self, sel: selectors.BaseSelector,
               sock: socket.socket) -> None:
        conn = self._conns.get(sock)
        if conn is None or not conn.wbuf:
            return
        try:
            sent = sock.send(conn.wbuf)
            conn.wbuf = conn.wbuf[sent:]
        except BlockingIOError:
            return
        except OSError:
            self._close(sel, sock)

    def _update_mask(self, sel: selectors.BaseSelector,
                     sock: socket.socket) -> None:
        conn = self._conns.get(sock)
        if conn is None:
            return
        mask = selectors.EVENT_READ
        if conn.wbuf:
            mask |= selectors.EVENT_WRITE
        try:
            sel.modify(sock, mask)
        except (KeyError, ValueError):
            pass

    # -- protocol -------------------------------------------------------

    def _handle_line(self, conn: _Connection, text: str) -> None:
        try:
            obj = json.loads(text)
            if not isinstance(obj, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            self._send(conn, {"status": "failed",
                              "error": "bad request: %s" % exc})
            return
        cmd = obj.get("cmd")
        if cmd == "stats":
            self._send(conn, self.service.stats(conn.served))
            return
        if cmd == "metrics":
            self._send(conn, {"status": "ok", "format": "prometheus",
                              "text": get_registry().render_prometheus()})
            return
        if cmd == "shutdown":
            # Connection-scoped: cancel this client's outstanding work
            # (each request still gets its cancelled response, in
            # order), ack, flush, close.  The *server* is stopped by
            # SIGTERM, not by a client command.
            conn.session.cancel_outstanding()
            self._pump_session(conn)
            self._send(conn, {"status": "ok", "served": conn.served})
            conn.closing = True
            return
        req_id = obj.get("id")
        if self._draining:
            self._send(conn, _with_id({"status": "cancelled",
                                       "error": "server draining"}, req_id))
            return
        assert self._scheduler is not None
        if self._scheduler.outstanding >= self.backlog:
            self._reject_overloaded(conn, req_id)
            return
        try:
            req = ServiceRequest(
                blif=obj["blif"],
                options=BDSOptions.from_dict(obj.get("options") or {}),
                name=str(req_id if req_id is not None
                         else conn.served + conn.session.outstanding),
                timeout=obj.get("timeout", self.service.default_timeout),
                trace=bool(obj.get("trace", False)))
        except (KeyError, TypeError, ValueError) as exc:
            self._send(conn, _with_id({"status": "failed",
                                       "error": "bad request: %s" % exc},
                                      req_id))
            return
        admitted = time.monotonic()
        try:
            slot = conn.session.submit(req)
        except SchedulerFull:
            self._reject_overloaded(conn, req_id)
            return
        conn.t0[slot] = admitted
        self._pump_session(conn)

    def _reject_overloaded(self, conn: _Connection,
                           req_id: Any) -> None:
        self._metrics.counter("server_backpressure_total").inc()
        self._send(conn, _with_id({"status": "overloaded",
                                   "error": "overloaded",
                                   "retry_after": self.retry_after},
                                  req_id))

    def _pump_session(self, conn: _Connection) -> None:
        """Move completed session responses into the write buffer."""
        for resp in conn.session.ready():
            slot = conn.emitted
            conn.emitted += 1
            t0 = conn.t0.pop(slot, None)
            if t0 is not None:
                self._metrics.histogram("server_request_seconds").observe(
                    time.monotonic() - t0)
            self._send(conn, dict(resp.to_json_obj(), id=resp.name))
            conn.served += 1

    def _send(self, conn: _Connection, obj: Dict[str, Any]) -> None:
        conn.wbuf += (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def _with_id(obj: Dict[str, Any], req_id: Any) -> Dict[str, Any]:
    if req_id is not None:
        obj = dict(obj, id=req_id)
    return obj
