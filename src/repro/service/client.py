"""Client for the socket front door, with retry and backoff.

:class:`ServiceClient` speaks the JSON-lines protocol of
:class:`repro.service.server.SocketServer` over a Unix-domain or TCP
socket and implements the client half of the backpressure contract: an
``{"status": "overloaded", "retry_after": s}`` reply is not an error but
an instruction -- the client re-sends the request after a jittered
exponential backoff floored at the server's ``retry_after`` hint.
Connection refusal (server still starting, or restarting) retries the
same way, so ``repro client`` can race ``repro serve`` in a script
without a sleep between them.

Jitter matters: N clients bounced by the same full queue would otherwise
retry in lockstep and re-collide.  The RNG is seeded per-process from
``os.getpid() ^ time.monotonic_ns()`` -- backoff timing is the one place
this library *wants* cross-process divergence, and it never touches
result data, so the determinism contract (RPL005) is not at stake.

``request_many`` pipelines a whole batch on one connection: all lines
are written before replies are read, replies are matched by ``id`` (the
server answers rejections out of band), and only the rejected subset is
re-sent on the next round.
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
from typing import Any, Dict, IO, List, Optional

#: Defaults for the retry policy (see ``_backoff_delay``).
DEFAULT_RETRIES = 10
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


class ServiceUnavailable(RuntimeError):
    """Retries exhausted: could not connect, or overloaded every round."""


class ServiceClient:
    """One connection to a :class:`SocketServer` (see module doc).

    Exactly one of ``socket_path`` / ``port`` selects the transport.
    The connection is opened lazily on first use and can be re-opened
    after :meth:`close`.
    """

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: float = 60.0,
                 retries: int = DEFAULT_RETRIES,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 rng: Optional[random.Random] = None) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None \
            else random.Random(os.getpid() ^ time.monotonic_ns())
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[IO[str]] = None
        self._next_id = 0
        #: Overloaded replies absorbed by retries (observability/tests).
        self.backpressure_seen = 0

    # -- connection -----------------------------------------------------

    def connect(self) -> None:
        """Connect, retrying refusals with backoff (the server may still
        be binding its socket)."""
        if self._sock is not None:
            return
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                self._sock = self._dial()
                self._reader = self._sock.makefile(
                    "r", encoding="utf-8", newline="\n")
                return
            except (ConnectionRefusedError, FileNotFoundError,
                    ConnectionResetError) as exc:
                last = exc
                if attempt < self.retries:
                    time.sleep(self._backoff_delay(attempt))
        raise ServiceUnavailable(
            "cannot reach server after %d attempts: %s"
            % (self.retries + 1, last))

    def _dial(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            assert self.port is not None
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        return sock

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- requests -------------------------------------------------------

    def request(self, blif: str, options: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None,
                trace: bool = False) -> Dict[str, Any]:
        """One optimization round trip; returns the response object."""
        return self.request_many([{"blif": blif, "options": options or {},
                                   "timeout": timeout, "trace": trace}])[0]

    def request_many(self, requests: List[Dict[str, Any]]) \
            -> List[Dict[str, Any]]:
        """Pipeline ``requests`` (dicts with ``blif`` and optionally
        ``options``/``timeout``/``trace``); returns responses aligned
        1:1 with the input order.

        ``overloaded`` replies are retried with backoff (floored at the
        server's ``retry_after``); :class:`ServiceUnavailable` is raised
        only when a request is still refused after every retry.
        """
        self.connect()
        wire: List[Dict[str, Any]] = []
        ids: List[str] = []
        for req in requests:
            rid = "c%d" % self._next_id
            self._next_id += 1
            obj = {"id": rid, "blif": req["blif"],
                   "options": req.get("options") or {}}
            if req.get("timeout") is not None:
                obj["timeout"] = req["timeout"]
            if req.get("trace"):
                obj["trace"] = True
            wire.append(obj)
            ids.append(rid)
        responses: Dict[str, Dict[str, Any]] = {}
        outstanding = list(wire)
        for attempt in range(self.retries + 1):
            rejected = self._round(outstanding, responses)
            if not rejected:
                break
            if attempt >= self.retries:
                raise ServiceUnavailable(
                    "%d request(s) still overloaded after %d retries"
                    % (len(rejected), self.retries))
            floor = max((r.get("retry_after") or 0.0 for r in
                         (responses[o["id"]] for o in rejected)),
                        default=0.0)
            time.sleep(self._backoff_delay(attempt, floor=floor))
            outstanding = rejected
        return [responses[rid] for rid in ids]

    def _round(self, requests: List[Dict[str, Any]],
               responses: Dict[str, Dict[str, Any]]) \
            -> List[Dict[str, Any]]:
        """Send ``requests``, read one reply each (matched by id);
        returns the subset that was refused ``overloaded``."""
        assert self._sock is not None and self._reader is not None
        payload = "".join(json.dumps(o, sort_keys=True) + "\n"
                          for o in requests)
        self._sock.sendall(payload.encode("utf-8"))
        awaiting = {o["id"] for o in requests}
        while awaiting:
            obj = self._read_reply()
            rid = obj.get("id")
            if rid in awaiting:
                awaiting.discard(rid)
                responses[rid] = obj
            # Replies without a known id (a stray ack, another command's
            # output) are dropped: ids are unique per client, so nothing
            # we are awaiting can be missed.
        rejected = [o for o in requests
                    if responses[o["id"]].get("status") == "overloaded"]
        self.backpressure_seen += len(rejected)
        return rejected

    def _read_reply(self) -> Dict[str, Any]:
        assert self._reader is not None
        line = self._reader.readline()
        if not line:
            raise ServiceUnavailable("server closed the connection")
        obj = json.loads(line)
        if not isinstance(obj, dict):
            raise ServiceUnavailable("malformed reply: %r" % line[:200])
        return obj

    # -- commands -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """``{"cmd": "stats"}`` (only between batches: command replies
        carry no id, so they cannot interleave with pipelined work)."""
        return self._command({"cmd": "stats"})

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition."""
        return str(self._command({"cmd": "metrics"}).get("text", ""))

    def shutdown(self) -> Dict[str, Any]:
        """Close this connection's session server-side; returns the ack."""
        return self._command({"cmd": "shutdown"})

    def _command(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        self.connect()
        assert self._sock is not None
        self._sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))
        return self._read_reply()

    # -- backoff --------------------------------------------------------

    def _backoff_delay(self, attempt: int, floor: float = 0.0) -> float:
        """Jittered exponential backoff, floored at the server's hint."""
        delay = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        delay *= 0.5 + 0.5 * self._rng.random()
        return max(delay, floor)
