"""Batched optimization service (see ``docs/SERVICE.md``).

Production-facing layer over the BDS flow:

* :mod:`repro.service.cache` -- content-addressed on-disk artifact store
  keyed by ``sha256(canonical BLIF)`` x ``BDSOptions.cache_key()``; an
  already-verified optimization result is a proof object worth keeping.
  Index mutation is serialized across processes with an ``fcntl``
  advisory lock, so many ``repro batch`` runs can share one cache dir.
* :mod:`repro.service.scheduler` -- async job scheduler over worker
  processes: bounded queue, per-job wall-clock timeouts, cancellation,
  worker-crash recovery, deterministic result ordering, completion
  callbacks, one-verdict-per-job accounting.
* :mod:`repro.service.api` -- :class:`OptimizationService` routing every
  request through cache-lookup -> schedule -> cache-store;
  :class:`ServiceSession` pipelines one request stream (ordered
  responses) over a possibly shared scheduler; plus the JSON-lines
  stdin daemon behind ``repro serve`` and ``repro batch``.
* :mod:`repro.service.server` -- the concurrent socket front door
  (``repro serve --socket/--port``): many clients, one shared
  scheduler, explicit ``overloaded`` backpressure, SIGTERM drain.
* :mod:`repro.service.client` -- :class:`ServiceClient` speaking the
  socket protocol with jittered-backoff retry (``repro client``).
"""

from repro.service.api import (OptimizationService, ServiceRequest,
                               ServiceResponse, ServiceSession)
from repro.service.cache import Artifact, ArtifactCache
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.scheduler import (JobResult, OptimizationScheduler,
                                     SchedulerFull)
from repro.service.server import SocketServer

__all__ = [
    "Artifact",
    "ArtifactCache",
    "JobResult",
    "OptimizationScheduler",
    "OptimizationService",
    "SchedulerFull",
    "ServiceClient",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceSession",
    "ServiceUnavailable",
    "SocketServer",
]
