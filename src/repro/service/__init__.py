"""Batched optimization service (see ``docs/SERVICE.md``).

Production-facing layer over the BDS flow:

* :mod:`repro.service.cache` -- content-addressed on-disk artifact store
  keyed by ``sha256(canonical BLIF)`` x ``BDSOptions.cache_key()``; an
  already-verified optimization result is a proof object worth keeping.
* :mod:`repro.service.scheduler` -- async job scheduler over worker
  processes: bounded queue, per-job wall-clock timeouts, cancellation,
  worker-crash recovery, deterministic result ordering.
* :mod:`repro.service.api` -- :class:`OptimizationService` routing every
  request through cache-lookup -> schedule -> cache-store, plus the
  JSON-lines daemon loop behind ``repro serve`` and ``repro batch``.
"""

from repro.service.api import (OptimizationService, ServiceRequest,
                               ServiceResponse)
from repro.service.cache import Artifact, ArtifactCache
from repro.service.scheduler import (JobResult, OptimizationScheduler,
                                     SchedulerFull)

__all__ = [
    "Artifact",
    "ArtifactCache",
    "JobResult",
    "OptimizationScheduler",
    "OptimizationService",
    "SchedulerFull",
    "ServiceRequest",
    "ServiceResponse",
]
