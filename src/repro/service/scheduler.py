"""Async job scheduler for batched optimization.

Runs optimization jobs in worker *processes* (one process per job, at
most ``max_workers`` alive at once) so that the service survives
everything a job can do to a worker:

* **Per-job wall-clock timeouts** reuse the PR-4 budget machinery: the
  worker arms ``SIGALRM`` to raise :class:`repro.bdd.manager.BddBudgetExceeded`
  -- the same interrupt the size-capped verifier uses -- so a timed-out
  job unwinds gracefully and reports ``status="timeout"``.  A parent-side
  deadline (+ a grace period) is the backstop: a worker that cannot be
  interrupted (hung in C, ignoring signals) is terminated.
* **Worker-crash recovery**: a worker that dies without reporting (killed,
  segfault, ``os._exit``) marks its job ``failed`` and frees the slot --
  the next pending job starts immediately; nothing hangs, nothing leaks.
* **Cancellation**: pending jobs are dropped from the queue; running jobs
  are terminated.
* **Bounded queue**: ``submit`` raises :class:`SchedulerFull` beyond
  ``queue_cap`` outstanding jobs (:meth:`OptimizationScheduler.run`
  applies backpressure instead).
* **Deterministic ordering**: results are reported in submission order,
  whatever order workers finish in.
* **Completion callbacks**: ``submit(..., on_complete=fn)`` fires ``fn``
  parent-side the moment the job's verdict is recorded (inside
  :meth:`OptimizationScheduler.poll`/``wait``), so an event-driven
  caller -- the socket server -- never has to block in submission
  order.  Callbacks must not raise.
* **One verdict per job**: a job is recorded (and accounted in
  ``repro_scheduler_jobs_total{status}``) exactly once.  When the
  parent-side deadline backstop or a cancellation races a worker that
  already wrote its graceful result to the channel, the *first* verdict
  -- the worker's own report -- wins; the terminate only reaps the
  process, it never re-classifies the job.

The scheduler is generic over the worker function (any picklable
``payload -> dict`` callable), which is also the fault-injection seam the
scheduler tests use; the default :func:`optimize_job_worker` runs the BDS
flow on a BLIF payload.
"""

from __future__ import annotations

import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

import multiprocessing as mp

from repro.bdd.manager import BddBudgetExceeded
from repro.check import CheckError
from repro.obs.metrics import get_registry
from repro.verify import VerifyError

#: Seconds past a job's deadline before the parent terminates the worker
#: (the window in which the in-worker SIGALRM path may still report a
#: graceful "timeout").
DEFAULT_GRACE = 2.0

_POLL_INTERVAL = 0.01


class SchedulerFull(RuntimeError):
    """``submit`` was called with ``queue_cap`` jobs already outstanding."""


@dataclass
class JobResult:
    """Outcome of one scheduled job."""

    job_id: int
    status: str                       # "ok" | "failed" | "timeout" | "cancelled"
    value: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def optimize_job_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Default worker: run the BDS flow on ``payload["blif"]``.

    ``payload["options"]`` is a :meth:`BDSOptions.to_dict` snapshot (so
    payloads stay JSON-able end to end, matching the ``repro serve``
    wire format).  A verification mismatch is a job *failure*, not a
    crash.  ``payload["trace"]`` (truthy) runs the flow under a local
    :class:`repro.obs.trace.Tracer` and ships the finished span trees
    back in ``"trace"`` -- the worker runs in a forked process, so spans
    must travel through the result channel, never a shared tracer.
    """
    from repro.bds.flow import BDSOptions, bds_optimize
    from repro.network.blif import parse_blif, write_blif
    from repro.obs.trace import Tracer
    from repro.verify import VerifyError

    options = BDSOptions.from_dict(payload.get("options") or {})
    net = parse_blif(payload["blif"])
    tracer = Tracer() if payload.get("trace") else None
    try:
        result = bds_optimize(net, options, tracer=tracer)
    except VerifyError as exc:
        return {"status": "failed",
                "error": "verification failed (%s) at output %s"
                         % (exc.mode, exc.failing_output)}
    out = {
        "status": "ok",
        "blif": write_blif(result.network),
        "perf": result.perf,
        "decomp_stats": result.decomp_stats.as_dict(),
        "timings": result.timings,
        "supernodes": result.supernodes,
        "mapping_count": result.mapping_count,
        "verify_mode": options.verify,
        "verify_unknown_outputs": list(result.verify_unknown_outputs),
    }
    if tracer is not None:
        out["trace"] = tracer.export_spans()
    return out


def _child_main(conn: Any, worker: Callable[[Dict[str, Any]], Dict[str, Any]],
                payload: Dict[str, Any], timeout: Optional[float]) -> None:
    """Worker-process entry: run the job, report exactly one dict."""
    # The parent may have a SIGTERM handler of its own (the socket
    # server's drain handler); a forked worker inherits it, which would
    # turn the scheduler's terminate() into a no-op.  Restore the
    # default so kill paths keep killing.
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if timeout is not None and hasattr(signal, "SIGALRM"):
        def _on_alarm(signum: int, frame: Any) -> None:
            raise BddBudgetExceeded(
                "job wall-clock budget (%.3fs) exceeded" % timeout)

        signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        out = worker(payload)
        if timeout is not None and hasattr(signal, "SIGALRM"):
            signal.setitimer(signal.ITIMER_REAL, 0)
        if "status" not in out:
            out = dict(out, status="ok")
        conn.send(out)
    except BddBudgetExceeded as exc:
        conn.send({"status": "timeout", "error": str(exc)})
    except (CheckError, VerifyError) as exc:
        # Invariant violations and verification mismatches are job
        # verdicts in their own right -- report them by name so the
        # service response says *what* failed, not just that it did.
        conn.send({"status": "failed",
                   "error": "%s: %s" % (type(exc).__name__, exc)})
    except BaseException as exc:  # report, never hang the parent
        try:
            conn.send({"status": "failed",
                       "error": "%s: %s" % (type(exc).__name__, exc)})
        except (OSError, ValueError, TypeError):
            pass  # pipe already gone or payload unpicklable
    finally:
        try:
            conn.close()
        except OSError:
            pass


#: Shape of a completion callback (see ``submit(on_complete=...)``).
CompletionCallback = Callable[[JobResult], None]


@dataclass
class _Pending:
    job_id: int
    payload: Dict[str, Any]
    timeout: Optional[float]
    on_complete: Optional[CompletionCallback] = None


@dataclass
class _Running:
    job_id: int
    proc: Any
    conn: Any
    started: float
    deadline: Optional[float]
    on_complete: Optional[CompletionCallback] = None


class OptimizationScheduler:
    """Bounded async scheduler over worker processes (see module doc)."""

    def __init__(self, max_workers: int = 1, queue_cap: int = 64,
                 default_timeout: Optional[float] = None,
                 worker: Callable[[Dict[str, Any]], Dict[str, Any]] = optimize_job_worker,
                 grace: float = DEFAULT_GRACE) -> None:
        self.max_workers = max(1, max_workers)
        self.queue_cap = max(1, queue_cap)
        self.default_timeout = default_timeout
        self.worker = worker
        self.grace = grace
        self._ctx = mp.get_context()
        self._next_id = 0
        self._pending: Deque[_Pending] = deque()
        self._running: Dict[int, _Running] = {}
        self._done: Dict[int, JobResult] = {}
        # Parent-side only: workers report through the result channel,
        # never the registry (forked increments would be lost silently).
        self._metrics = get_registry()

    def _sync_gauges(self) -> None:
        self._metrics.gauge("scheduler_queue_depth").set(len(self._pending))
        self._metrics.gauge("scheduler_running").set(len(self._running))

    def _account(self, result: JobResult) -> None:
        """Record one finished job in the process metrics registry."""
        self._metrics.counter("scheduler_jobs_total",
                              status=result.status).inc()
        self._metrics.histogram("scheduler_job_seconds").observe(
            result.elapsed)
        self._sync_gauges()

    # -- public API ----------------------------------------------------

    def submit(self, payload: Dict[str, Any],
               timeout: Optional[float] = None,
               on_complete: Optional[CompletionCallback] = None) -> int:
        """Queue one job; returns its id.  Raises :class:`SchedulerFull`
        when ``queue_cap`` jobs are already outstanding.

        ``on_complete`` (optional) is invoked with the :class:`JobResult`
        exactly once, parent-side, when the verdict is recorded -- from
        whichever of ``poll``/``wait``/``cancel``/``shutdown`` observes
        it first.  Callbacks must not raise.
        """
        if self.outstanding >= self.queue_cap:
            raise SchedulerFull("queue cap %d reached" % self.queue_cap)
        job_id = self._next_id
        self._next_id += 1
        self._pending.append(_Pending(
            job_id, payload,
            self.default_timeout if timeout is None else timeout,
            on_complete))
        self._pump()
        return job_id

    def cancel(self, job_id: int) -> bool:
        """Cancel a job: drop it if pending, terminate it if running.

        Returns False when the job already completed (or never existed).
        A running job that already wrote its result to the channel is
        recorded under that verdict (first verdict wins), not as
        ``cancelled``.
        """
        for i, job in enumerate(self._pending):
            if job.job_id == job_id:
                del self._pending[i]
                self._record(JobResult(job_id, "cancelled",
                                       error="cancelled while queued"),
                             job.on_complete)
                return True
        if job_id in self._running:
            self._kill(job_id, "cancelled", "cancelled while running")
            self._pump()
            return True
        return False

    @property
    def outstanding(self) -> int:
        return len(self._pending) + len(self._running)

    def poll(self) -> None:
        """Advance the scheduler without blocking."""
        self._pump()

    def wait(self, timeout: Optional[float] = None) -> List[JobResult]:
        """Block until every submitted job completed (or ``timeout``
        seconds elapsed); returns all results in submission order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.outstanding:
            self._pump()
            if not self.outstanding:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(_POLL_INTERVAL)
        return self.results()

    def results(self) -> List[JobResult]:
        """Completed results so far, in submission order."""
        return [self._done[k] for k in sorted(self._done)]

    def run(self, payloads: List[Dict[str, Any]],
            timeout: Optional[float] = None) -> List[JobResult]:
        """Submit ``payloads`` with backpressure and drain: the one-call
        batch entry point, deterministic result order guaranteed."""
        for payload in payloads:
            while self.outstanding >= self.queue_cap:
                self._pump()
                time.sleep(_POLL_INTERVAL)
            self.submit(payload, timeout=timeout)
        return self.wait()

    def shutdown(self) -> None:
        """Cancel everything outstanding and reap every worker process."""
        while self._pending:
            job = self._pending.popleft()
            self._record(JobResult(job.job_id, "cancelled",
                                   error="scheduler shutdown"),
                         job.on_complete)
        for job_id in list(self._running):
            self._kill(job_id, "cancelled", "scheduler shutdown")

    def __enter__(self) -> "OptimizationScheduler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # -- internals -----------------------------------------------------

    def _start(self, job: _Pending) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_main,
            args=(child_conn, self.worker, job.payload, job.timeout),
            daemon=True)
        proc.start()
        child_conn.close()
        now = time.monotonic()
        deadline = None if job.timeout is None else now + job.timeout
        self._running[job.job_id] = _Running(job.job_id, proc, parent_conn,
                                             now, deadline, job.on_complete)

    def _pump(self) -> None:
        now = time.monotonic()
        for job_id in list(self._running):
            run = self._running[job_id]
            if run.conn.poll():
                try:
                    msg = run.conn.recv()
                except (EOFError, OSError):
                    msg = None
                self._finish(job_id, msg)
            elif not run.proc.is_alive():
                # Died without reporting -- but the report may have raced
                # the exit, so give the pipe one more look.
                msg = None
                if run.conn.poll():
                    try:
                        msg = run.conn.recv()
                    except (EOFError, OSError):
                        msg = None
                self._finish(job_id, msg)
            elif run.deadline is not None and now > run.deadline + self.grace:
                # The in-worker SIGALRM path had its grace period; enforce.
                self._kill(job_id, "timeout",
                           "terminated %.1fs past deadline" % self.grace)
        while self._pending and len(self._running) < self.max_workers:
            self._start(self._pending.popleft())
        self._sync_gauges()

    def _record(self, result: JobResult,
                on_complete: Optional[CompletionCallback]) -> None:
        """The single sink every verdict funnels through: record once,
        account once, notify once."""
        if result.job_id in self._done:
            raise AssertionError(
                "job %d recorded twice (%s then %s)"
                % (result.job_id, self._done[result.job_id].status,
                   result.status))
        self._done[result.job_id] = result
        self._account(result)
        if on_complete is not None:
            on_complete(result)

    def _finish(self, job_id: int, msg: Optional[Dict[str, Any]]) -> None:
        run = self._running.pop(job_id)
        elapsed = time.monotonic() - run.started
        run.proc.join(timeout=self.grace)
        if run.proc.is_alive():
            self._terminate(run.proc)
        run.conn.close()
        if msg is None:
            exitcode = run.proc.exitcode
            result = JobResult(
                job_id, "failed", elapsed=elapsed,
                error="worker crashed (exit code %s)" % exitcode)
        else:
            status = msg.get("status", "failed")
            result = JobResult(job_id, status, value=msg,
                               error=msg.get("error"), elapsed=elapsed)
        self._record(result, run.on_complete)

    def _terminate(self, proc: Any) -> None:
        """SIGTERM, then SIGKILL after ``grace``: a worker killed in the
        narrow window after fork but before ``_child_main`` resets an
        inherited SIGTERM handler (the socket server's drain handler)
        would otherwise ignore the terminate and leave us joining until
        its job ran to completion."""
        proc.terminate()
        proc.join(timeout=self.grace)
        if proc.is_alive():
            proc.kill()
            proc.join()

    def _kill(self, job_id: int, status: str,
              error: Optional[str] = None) -> None:
        run = self._running.pop(job_id)
        elapsed = time.monotonic() - run.started
        # First verdict wins: the worker may have written its graceful
        # report (the SIGALRM timeout path, or a normal completion racing
        # a cancel/backstop) in the window since we last polled.  Drain
        # the channel before terminating so that report -- not the kill
        # reason -- is the job's one recorded verdict.
        msg: Optional[Dict[str, Any]] = None
        try:
            if run.conn.poll():
                msg = run.conn.recv()
        except (EOFError, OSError):
            msg = None
        self._terminate(run.proc)
        run.conn.close()
        if isinstance(msg, dict) and "status" in msg:
            result = JobResult(job_id, msg["status"], value=msg,
                               error=msg.get("error"), elapsed=elapsed)
        else:
            result = JobResult(job_id, status, error=error, elapsed=elapsed)
        self._record(result, run.on_complete)
