"""Content-addressed artifact cache for optimization results.

An *artifact* is everything ``bds_optimize`` produced for one (input
network, options) pair: the optimized network (as canonical BLIF -- the
storage format round-trips through ``parse_blif``/``write_blif``), the
aggregated kernel perf counters, the decomposition statistics, and the
verify verdict.  Artifacts are keyed by

    sha256(canonical BLIF of the input)  x  BDSOptions.cache_key()

so a hit is exact: same function, same semantic options, same (possibly
verified) result.  Design points:

* **Atomic writes** -- payloads land in a temp file in the same directory
  and are ``os.replace``d into place; readers never observe a torn write.
* **Corruption detection** -- every object embeds a sha256 of its payload;
  a truncated, bit-flipped, or unparsable object is treated as a *miss*
  (and deleted), never an exception.
* **Size-bounded LRU index** -- ``index.json`` tracks last-use ticks; once
  ``max_entries`` is exceeded the least recently used objects are evicted.
  A missing or corrupt index is rebuilt from the object files.
* **Multi-process safe** -- index mutation is a read-modify-write, so two
  processes sharing a cache dir (``repro batch --cache-dir X`` twice)
  would silently drop each other's stores and LRU bumps; every mutation
  therefore runs under an ``fcntl`` advisory lock (``index.lock``) and
  re-reads the on-disk index before applying itself.
* **Counters** -- hits / misses / stores / evictions / corruption events
  are exposed as a ``perf_snapshot()`` dict using ``artifact_cache_*``
  keys, mergeable by :func:`repro.perf.merge_snapshots` alongside the
  kernel counters (the computed-table ``cache_hits``/``cache_misses``).

See ``docs/SERVICE.md`` for the on-disk layout and failure modes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: single-writer only
    fcntl = None  # type: ignore[assignment]

from repro.network.blif import parse_blif, write_blif
from repro.network.network import Network

#: Bump when the payload schema changes; old-version objects read as misses.
FORMAT_VERSION = 1


def canonical_blif(net_or_text: Any) -> str:
    """Canonical BLIF text for keying: parse (when given text) + rewrite.

    ``write_blif`` emits nodes in topological order with a normalized
    cover syntax, so textual variations of the same netlist (comments,
    line wrapping, node order) key identically.
    """
    if isinstance(net_or_text, Network):
        return write_blif(net_or_text)
    return write_blif(parse_blif(net_or_text))


def content_key(net_or_text: Any, options: Any) -> str:
    """``sha256(canonical BLIF)`` x ``options.cache_key()`` (hex digest)."""
    blif_sha = hashlib.sha256(
        canonical_blif(net_or_text).encode("utf-8")).hexdigest()
    return hashlib.sha256(
        ("%s:%s" % (blif_sha, options.cache_key())).encode("utf-8")).hexdigest()


@dataclass
class Artifact:
    """One cached optimization result."""

    network_blif: str
    perf: Dict[str, float] = field(default_factory=dict)
    decomp_stats: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    supernodes: int = 0
    mapping_count: int = 0
    verify_mode: str = "off"
    verify_unknown_outputs: List[str] = field(default_factory=list)

    def network(self) -> Network:
        return parse_blif(self.network_blif)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": FORMAT_VERSION,
            "network_blif": self.network_blif,
            "perf": self.perf,
            "decomp_stats": self.decomp_stats,
            "timings": self.timings,
            "supernodes": self.supernodes,
            "mapping_count": self.mapping_count,
            "verify_mode": self.verify_mode,
            "verify_unknown_outputs": list(self.verify_unknown_outputs),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Artifact":
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError("unsupported artifact version %r"
                             % payload.get("version"))
        return cls(
            network_blif=payload["network_blif"],
            perf=dict(payload.get("perf") or {}),
            decomp_stats=dict(payload.get("decomp_stats") or {}),
            timings=dict(payload.get("timings") or {}),
            supernodes=int(payload.get("supernodes", 0)),
            mapping_count=int(payload.get("mapping_count", 0)),
            verify_mode=str(payload.get("verify_mode", "off")),
            verify_unknown_outputs=list(
                payload.get("verify_unknown_outputs") or []),
        )

    @classmethod
    def from_result(cls, result: Any, options: Any) -> "Artifact":
        """Build from a :class:`repro.bds.flow.BDSResult` (duck-typed to
        keep this module import-light)."""
        return cls(
            network_blif=write_blif(result.network),
            perf=dict(result.perf),
            decomp_stats=dict(result.decomp_stats.as_dict()),
            timings=dict(result.timings),
            supernodes=result.supernodes,
            mapping_count=result.mapping_count,
            verify_mode=options.verify,
            verify_unknown_outputs=list(result.verify_unknown_outputs),
        )


def _payload_text(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ArtifactCache:
    """Content-addressed on-disk store with an LRU-bounded index.

    Layout under ``root``::

        objects/<key[:2]>/<key>.json   {"sha256": ..., "payload": {...}}
        index.json                     {"tick": N, "entries": {key: ...}}

    All operations are non-raising on damaged state: corrupt objects and
    a corrupt index degrade to misses / a rebuild, never an exception.
    """

    def __init__(self, root: str, max_entries: int = 4096) -> None:
        self.root = os.path.abspath(root)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)
        self._index = self._load_index()

    # -- keying --------------------------------------------------------

    def key_for(self, net_or_text: Any, options: Any) -> str:
        return content_key(net_or_text, options)

    # -- lookup / store ------------------------------------------------

    def lookup(self, key: str) -> Optional[Artifact]:
        """Return the artifact under ``key`` or None (counting the event).

        Any damage -- unreadable file, bad JSON, checksum mismatch,
        unknown version -- deletes the object and reads as a miss.
        """
        path = self._object_path(key)
        try:
            with open(path) as fh:
                wrapper = json.load(fh)
            payload = wrapper["payload"]
            if wrapper.get("sha256") != hashlib.sha256(
                    _payload_text(payload).encode("utf-8")).hexdigest():
                raise ValueError("checksum mismatch")
            artifact = Artifact.from_payload(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Truncation, bit flips, schema drift: clean miss.
            self.corrupt += 1
            self.misses += 1
            self._remove_object(key)
            return None
        self.hits += 1
        self._touch(key)
        return artifact

    def store(self, key: str, artifact: Artifact) -> str:
        """Atomically write ``artifact`` under ``key``; returns the path."""
        payload = artifact.to_payload()
        text = _payload_text(payload)
        wrapper = {"sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
                   "payload": payload}
        path = self._object_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(wrapper, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

        def _finish(index: Dict[str, Any]) -> None:
            index["tick"] += 1
            index["entries"][key] = index["tick"]
            entries = index["entries"]
            while len(entries) > self.max_entries:
                oldest = min(entries, key=lambda k: entries[k])
                del entries[oldest]
                try:
                    os.unlink(self._object_path(oldest))
                except OSError:
                    pass
                self.evictions += 1

        self._mutate_index(_finish)
        return path

    # -- counters ------------------------------------------------------

    def perf_snapshot(self) -> Dict[str, float]:
        """Cumulative counters in :func:`repro.perf.merge_snapshots` shape."""
        return {
            "artifact_cache_hits": float(self.hits),
            "artifact_cache_misses": float(self.misses),
            "artifact_cache_stores": float(self.stores),
            "artifact_cache_evictions": float(self.evictions),
            "artifact_cache_corrupt": float(self.corrupt),
        }

    def __len__(self) -> int:
        return len(self._index["entries"])

    # -- internals -----------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], key + ".json")

    def _index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def _load_index(self) -> Dict[str, Any]:
        try:
            with open(self._index_path()) as fh:
                index = json.load(fh)
            entries = index["entries"]
            if not isinstance(entries, dict):
                raise ValueError("bad index")
            return {"tick": int(index.get("tick", 0)), "entries": entries}
        except FileNotFoundError:
            pass
        except (OSError, ValueError, KeyError, TypeError):
            self.corrupt += 1
        return self._rebuild_index()

    def _rebuild_index(self) -> Dict[str, Any]:
        """Recover the index by scanning ``objects/`` (order arbitrary)."""
        entries: Dict[str, int] = {}
        objects = os.path.join(self.root, "objects")
        for dirpath, _dirs, files in os.walk(objects):
            for name in files:
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    entries[name[:-len(".json")]] = len(entries)
        return {"tick": len(entries), "entries": entries}

    def _write_index(self) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-idx-")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self._index, fh)
            os.replace(tmp, self._index_path())
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @contextmanager
    def _index_lock(self) -> Iterator[None]:
        """``fcntl`` advisory lock serializing index mutation across every
        process sharing this cache directory (no-op where unavailable)."""
        if fcntl is None:
            yield
            return
        fd = os.open(os.path.join(self.root, "index.lock"),
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the fd releases the lock

    def _mutate_index(self, mutate: Callable[[Dict[str, Any]], None]) -> None:
        """One locked read-modify-write of ``index.json``.

        Two unlocked writers interleave load -> mutate -> replace and the
        later replace silently discards the earlier writer's stores and
        LRU bumps; re-reading the on-disk index under the lock makes
        every mutation apply to the current truth instead of a stale
        in-memory copy.
        """
        with self._index_lock():
            self._index = self._load_index()
            mutate(self._index)
            self._write_index()

    def _touch(self, key: str) -> None:
        def _bump(index: Dict[str, Any]) -> None:
            index["tick"] += 1
            index["entries"][key] = index["tick"]

        self._mutate_index(_bump)

    def _remove_object(self, key: str) -> None:
        try:
            os.unlink(self._object_path(key))
        except OSError:
            pass
        # Unconditional: the key may live only in the on-disk index
        # (written by another process) and must not outlive its object.
        self._mutate_index(lambda index: index["entries"].pop(key, None))
