"""The optimization service: cache-lookup -> schedule -> cache-store.

:class:`OptimizationService` is the one front door every entry point
(``repro batch``, ``repro serve``, the socket server in
:mod:`repro.service.server`) routes through.  A request carries a BLIF
netlist plus a :class:`repro.bds.flow.BDSOptions` snapshot; the service

1. keys the request into the content-addressed
   :class:`repro.service.cache.ArtifactCache` and answers hits without
   scheduling any work (a cached, already-verified artifact is a proof
   object -- its verdict is returned as-is);
2. fans misses out over the :class:`OptimizationScheduler` (bounded
   queue, per-job timeouts, crash recovery);
3. stores every successful result back into the cache.

Concurrency is layered through :class:`ServiceSession`: one session is
one pipelined request stream (a batch, the stdin loop, or one socket
connection) whose responses come back **in that session's request
order** regardless of worker completion order; many sessions can
multiplex onto one shared scheduler, which is how the socket server
overlaps clients.  A cache hit is byte-identical to the artifact
originally stored (the BLIF text is returned verbatim, never
re-serialized).

``serve`` implements the stdin/stdout ``repro serve`` JSON-lines
daemon: one request object per input line, one response object per
output line, with requests pipelined onto the scheduler between lines.
A ``{"cmd": "shutdown"}`` that interleaves with still-pending requests
cancels them and emits the documented per-request ``cancelled``
response for each before the final ack -- clients never hang waiting
for a reply that was silently dropped.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, IO, List, Optional

from repro.bds.flow import BDSOptions
from repro.obs.metrics import get_registry
from repro.perf import merge_snapshots
from repro.service.cache import Artifact, ArtifactCache
from repro.service.scheduler import JobResult, OptimizationScheduler

#: Job statuses the stats response enumerates (stable wire shape: every
#: status appears, zero or not).
JOB_STATUSES = ("ok", "failed", "timeout", "cancelled")

_DRAIN_POLL = 0.005


@dataclass
class ServiceRequest:
    """One unit of work: optimize ``blif`` under ``options``."""

    blif: str
    options: BDSOptions = field(default_factory=BDSOptions)
    name: str = ""
    timeout: Optional[float] = None
    #: Run the job under a worker-local tracer and return its span trees
    #: (JSON dicts) on the response.  Tracing never affects the cache:
    #: hits skip the flow entirely and carry no trace.
    trace: bool = False


@dataclass
class ServiceResponse:
    """One unit of result, aligned 1:1 with the request list."""

    name: str
    status: str                        # "ok" | "failed" | "timeout" | "cancelled"
    cached: bool = False
    blif: Optional[str] = None
    perf: Dict[str, float] = field(default_factory=dict)
    verify_mode: str = "off"
    verify_unknown_outputs: List[str] = field(default_factory=list)
    error: Optional[str] = None
    elapsed: float = 0.0
    #: Span trees from the worker's tracer (requests with ``trace=True``).
    trace: Optional[List[Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json_obj(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "cached": self.cached,
            "perf": self.perf,
            "verify_mode": self.verify_mode,
            "verify_unknown_outputs": list(self.verify_unknown_outputs),
            "elapsed": round(self.elapsed, 6),
        }
        if self.blif is not None:
            obj["blif"] = self.blif
        if self.error is not None:
            obj["error"] = self.error
        if self.trace is not None:
            obj["trace"] = self.trace
        return obj


class ServiceSession:
    """One pipelined request stream over a (possibly shared) scheduler.

    ``submit`` answers cache hits and parse failures immediately and
    schedules everything else with a completion callback; ``ready``
    pops finished responses **in submission order** (head-of-line:
    response *k* is never released before response *k-1*), which is the
    per-connection ordering contract of both serve modes.  Sessions do
    not own the scheduler -- many sessions multiplex onto one -- and
    they obtain it lazily, so a session answered entirely from cache
    never pays the scheduler's startup cost.
    """

    def __init__(self, service: "OptimizationService",
                 scheduler_provider: Callable[[], OptimizationScheduler]) \
            -> None:
        self._service = service
        self._scheduler_provider = scheduler_provider
        self._scheduler: Optional[OptimizationScheduler] = None
        self._slots: List[Optional[ServiceResponse]] = []
        self._next_emit = 0
        self._unfilled = 0
        #: scheduler job id -> slot, for outstanding (scheduled) slots.
        self._jobs: Dict[int, int] = {}
        #: cache key -> follower (slot, request) pairs coalesced onto an
        #: in-flight job for the same key (thundering-herd dedup: the
        #: same netlist submitted twice runs once; the duplicate is
        #: answered from the cache the moment the first run stores).
        self._inflight: Dict[str, List[Any]] = {}

    # -- submission -----------------------------------------------------

    def submit(self, req: ServiceRequest) -> int:
        """Admit one request; returns its slot index.

        Raises :class:`repro.service.scheduler.SchedulerFull` when the
        request needs scheduling and the queue is at capacity -- callers
        either apply backpressure (batch/stdin modes) or convert it into
        an explicit ``overloaded`` reply (the socket server).
        """
        slot = len(self._slots)
        self._slots.append(None)
        self._unfilled += 1
        cache = self._service.cache
        key: Optional[str] = None
        if cache is not None:
            try:
                key = cache.key_for(req.blif, req.options)
            except ValueError as exc:
                self._fill(slot, ServiceResponse(
                    req.name, "failed", error="parse error: %s" % exc))
                return slot
            artifact = cache.lookup(key)
            if artifact is not None:
                self._fill(slot, self._service._hit_response(req, artifact))
                return slot
        if key is not None and not req.trace and key in self._inflight:
            # Same key already running in this session: ride along
            # instead of scheduling duplicate work.
            self._inflight[key].append((slot, req))
            return slot
        try:
            self._schedule(slot, req, key)
        except BaseException:
            # Nothing was scheduled: retract the slot so a rejected
            # request (queue full) leaves no hole in the stream.
            self._slots.pop()
            self._unfilled -= 1
            raise
        if key is not None and not req.trace:
            self._inflight[key] = []
        return slot

    def _schedule(self, slot: int, req: ServiceRequest,
                  key: Optional[str]) -> None:
        payload: Dict[str, Any] = {"blif": req.blif,
                                   "options": req.options.to_dict()}
        if req.trace:
            payload["trace"] = True
        sched = self.scheduler()

        def _on_complete(job: JobResult) -> None:
            self._jobs.pop(job.job_id, None)
            self._fill(slot, self._service._miss_response(req, key, job))
            if key is None:
                return
            cache = self._service.cache
            for fslot, freq in self._inflight.pop(key, []):
                artifact = cache.lookup(key) \
                    if job.ok and cache is not None else None
                if artifact is not None:
                    self._fill(fslot,
                               self._service._hit_response(freq, artifact))
                else:
                    # Identical request, identical verdict: a failed /
                    # timed-out / cancelled primary answers its
                    # followers too (no store -> no hit to serve).
                    self._fill(fslot,
                               self._service._miss_response(freq, None, job))

        job_id = sched.submit(payload, timeout=req.timeout,
                              on_complete=_on_complete)
        self._jobs[job_id] = slot

    # -- progress -------------------------------------------------------

    def scheduler(self) -> OptimizationScheduler:
        """The session's scheduler, created on first need."""
        if self._scheduler is None:
            self._scheduler = self._scheduler_provider()
        return self._scheduler

    @property
    def scheduler_started(self) -> bool:
        return self._scheduler is not None

    @property
    def outstanding(self) -> int:
        """Submitted requests not yet answered."""
        return self._unfilled

    def poll(self) -> None:
        """Advance the scheduler without blocking (fires completions)."""
        if self._scheduler is not None:
            self._scheduler.poll()

    def drain(self) -> None:
        """Block until every submitted request has a response."""
        while self._unfilled:
            self.poll()
            if self._unfilled:
                time.sleep(_DRAIN_POLL)

    def ready(self) -> List[ServiceResponse]:
        """Pop completed responses from the head of the stream, in
        submission order; stops at the first still-pending slot."""
        out: List[ServiceResponse] = []
        while self._next_emit < len(self._slots):
            resp = self._slots[self._next_emit]
            if resp is None:
                break
            out.append(resp)
            self._next_emit += 1
        return out

    def take_all(self) -> List[ServiceResponse]:
        """Every response, in submission order (requires a prior drain)."""
        assert self._unfilled == 0, "take_all() before drain()"
        self._next_emit = len(self._slots)
        return [r for r in self._slots if r is not None]

    def cancel_outstanding(self) -> int:
        """Cancel every unanswered request, filling its slot.

        A job that already completed inside the scheduler keeps its real
        verdict (first verdict wins); everything else is answered with
        ``status="cancelled"``, ``error="cancelled"`` -- the documented
        per-request error object -- so no client is left hanging.
        Returns the number of slots that were still unanswered.
        """
        cancelled = 0
        for job_id in sorted(self._jobs):
            if self._slots[self._jobs[job_id]] is None:
                cancelled += 1
                self.scheduler().cancel(job_id)
        # Defensive: any slot somehow still unanswered is filled so the
        # response stream always terminates.
        for slot, resp in enumerate(self._slots):
            if resp is None:
                self._fill(slot, ServiceResponse(
                    "", "cancelled", error="cancelled"))
        return cancelled

    # -- internals ------------------------------------------------------

    def _fill(self, slot: int, resp: ServiceResponse) -> None:
        assert self._slots[slot] is None, "slot %d filled twice" % slot
        self._slots[slot] = resp
        self._unfilled -= 1
        self._service._note_response(resp)


class OptimizationService:
    """Batched optimization with artifact reuse (see module doc).

    ``scheduler`` (optional) is an externally owned, long-lived
    scheduler that every session of this service multiplexes onto --
    the socket server's mode.  Without it, ``process``/``serve`` create
    a private scheduler from ``scheduler_factory`` on first miss and
    tear it down when done.
    """

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 max_workers: int = 1, queue_cap: int = 64,
                 default_timeout: Optional[float] = None,
                 scheduler_factory: Callable[..., OptimizationScheduler]
                 = OptimizationScheduler,
                 scheduler: Optional[OptimizationScheduler] = None) -> None:
        self.cache = cache
        self.max_workers = max_workers
        self.queue_cap = queue_cap
        self.default_timeout = default_timeout
        self._scheduler_factory = scheduler_factory
        self._shared_scheduler = scheduler
        # Kernel counters aggregated over every response this service
        # produced (hits and misses alike); reported by the stats command.
        self._kernel: Dict[str, float] = {}

    # -- sessions -------------------------------------------------------

    def make_scheduler(self) -> OptimizationScheduler:
        """A fresh scheduler with this service's settings (callers own
        its lifetime)."""
        return self._scheduler_factory(
            max_workers=self.max_workers, queue_cap=self.queue_cap,
            default_timeout=self.default_timeout)

    def session(self,
                scheduler: Optional[OptimizationScheduler] = None) \
            -> ServiceSession:
        """A new pipelined session.  ``scheduler`` (or the service's
        shared one) is used when given; otherwise the session lazily
        creates -- but does not own -- one via :meth:`make_scheduler`,
        so callers without a shared scheduler should use
        :meth:`_owned_session` instead."""
        shared = scheduler or self._shared_scheduler
        if shared is not None:
            return ServiceSession(self, lambda: shared)
        return ServiceSession(self, self.make_scheduler)

    # -- core ----------------------------------------------------------

    def process(self, requests: List[ServiceRequest]) -> List[ServiceResponse]:
        """Answer every request, in order: cache -> schedule -> store.

        Backpressure, not rejection: past the scheduler's queue cap the
        call blocks until a slot frees up.
        """
        session = self.session()
        owned = self._shared_scheduler is None
        try:
            for req in requests:
                self._backpressure(session)
                session.submit(req)
            session.drain()
        finally:
            if owned and session.scheduler_started:
                session.scheduler().shutdown()
        return session.take_all()

    def optimize_one(self, request: ServiceRequest) -> ServiceResponse:
        return self.process([request])[0]

    def _backpressure(self, session: ServiceSession) -> None:
        """Block while the session's scheduler queue is at capacity."""
        if not session.scheduler_started:
            return
        sched = session.scheduler()
        while sched.outstanding >= sched.queue_cap:
            sched.poll()
            time.sleep(_DRAIN_POLL)

    # -- JSON-lines daemon ---------------------------------------------

    def serve(self, stdin: IO[str], stdout: IO[str]) -> int:
        """Serve requests line by line until EOF or a shutdown command.

        Request lines: ``{"blif": ..., "options": {...}, "id": ...,
        "timeout": ..., "trace": ...}`` or ``{"cmd": "stats"}`` /
        ``{"cmd": "metrics"}`` / ``{"cmd": "shutdown"}``.
        Every line gets exactly one JSON response line; malformed lines
        get ``{"status": "failed", ...}`` rather than killing the daemon.

        Requests pipeline onto the scheduler between input lines;
        responses to requests are emitted in request order.  ``stats``
        and ``metrics`` drain outstanding work first (their numbers
        cover everything submitted before them); ``shutdown`` instead
        *cancels* outstanding work, emitting the per-request
        ``cancelled`` response for every unanswered request before the
        final ack.
        """
        session = self.session()
        owned = self._shared_scheduler is None
        served = 0

        def flush() -> None:
            nonlocal served
            for resp in session.ready():
                self._emit(stdout, dict(resp.to_json_obj(), id=resp.name))
                served += 1

        try:
            for line in stdin:
                line = line.strip()
                if not line:
                    continue
                session.poll()
                flush()
                try:
                    obj = json.loads(line)
                    if not isinstance(obj, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    self._emit(stdout, {"status": "failed",
                                        "error": "bad request: %s" % exc})
                    continue
                cmd = obj.get("cmd")
                if cmd == "shutdown":
                    session.cancel_outstanding()
                    flush()
                    self._emit(stdout, {"status": "ok", "served": served})
                    return served
                if cmd == "stats":
                    session.drain()
                    flush()
                    self._emit(stdout, self.stats(served))
                    continue
                if cmd == "metrics":
                    session.drain()
                    flush()
                    self._emit(stdout, {
                        "status": "ok", "format": "prometheus",
                        "text": get_registry().render_prometheus()})
                    continue
                try:
                    req = ServiceRequest(
                        blif=obj["blif"],
                        options=BDSOptions.from_dict(obj.get("options") or {}),
                        name=str(obj.get("id", served + session.outstanding)),
                        timeout=obj.get("timeout", self.default_timeout),
                        trace=bool(obj.get("trace", False)))
                except (KeyError, TypeError, ValueError) as exc:
                    self._emit(stdout, {"status": "failed",
                                        "error": "bad request: %s" % exc})
                    continue
                self._backpressure(session)
                session.submit(req)
                session.poll()
                flush()
            session.drain()
            flush()
            return served
        finally:
            if owned and session.scheduler_started:
                session.scheduler().shutdown()

    def stats(self, served: int = 0) -> Dict[str, Any]:
        """The full ``{"cmd": "stats"}`` response object.

        Beyond the artifact-cache counters this folds in the scheduler's
        queue state, the kernel counters aggregated over every response
        served, and the raw process metrics registry -- one stats line
        answers "is the service healthy" without a second command.
        """
        registry = get_registry()
        return {
            "status": "ok",
            "served": served,
            "cache": (self.cache.perf_snapshot()
                      if self.cache is not None else {}),
            "scheduler": {
                "queue_depth": registry.gauge_value("scheduler_queue_depth"),
                "running": registry.gauge_value("scheduler_running"),
                "jobs_total": {
                    status: registry.counter_value("scheduler_jobs_total",
                                                   status=status)
                    for status in JOB_STATUSES},
            },
            "kernel": {k: self._kernel[k] for k in sorted(self._kernel)},
            "metrics": registry.as_dict(),
        }

    # -- internals -----------------------------------------------------

    @staticmethod
    def _emit(stdout: IO[str], obj: Dict[str, Any]) -> None:
        stdout.write(json.dumps(obj, sort_keys=True) + "\n")
        stdout.flush()

    def _note_response(self, resp: ServiceResponse) -> None:
        """Fold one finished response into the service-wide aggregates."""
        if resp.perf:
            self._kernel = merge_snapshots([self._kernel, resp.perf])
        get_registry().counter("service_requests_total",
                               status=resp.status,
                               cached=str(resp.cached).lower()).inc()

    def _hit_response(self, req: ServiceRequest,
                      artifact: Artifact) -> ServiceResponse:
        perf = merge_snapshots([artifact.perf,
                                {"artifact_cache_hits": 1.0}])
        return ServiceResponse(
            req.name, "ok", cached=True, blif=artifact.network_blif,
            perf=perf, verify_mode=artifact.verify_mode,
            verify_unknown_outputs=list(artifact.verify_unknown_outputs))

    def _miss_response(self, req: ServiceRequest, key: Optional[str],
                       job: JobResult) -> ServiceResponse:
        if not job.ok:
            error = job.error if job.status != "cancelled" \
                else (job.error or "cancelled")
            return ServiceResponse(req.name, job.status, error=error,
                                   elapsed=job.elapsed)
        value = job.value
        artifact = Artifact(
            network_blif=value["blif"],
            perf=dict(value.get("perf") or {}),
            decomp_stats=dict(value.get("decomp_stats") or {}),
            timings=dict(value.get("timings") or {}),
            supernodes=int(value.get("supernodes", 0)),
            mapping_count=int(value.get("mapping_count", 0)),
            verify_mode=str(value.get("verify_mode", req.options.verify)),
            verify_unknown_outputs=list(
                value.get("verify_unknown_outputs") or []))
        if self.cache is not None and key is not None:
            self.cache.store(key, artifact)
        perf = merge_snapshots([artifact.perf,
                                {"artifact_cache_misses": 1.0}])
        return ServiceResponse(
            req.name, "ok", cached=False, blif=artifact.network_blif,
            perf=perf, verify_mode=artifact.verify_mode,
            verify_unknown_outputs=list(artifact.verify_unknown_outputs),
            elapsed=job.elapsed, trace=value.get("trace"))
