"""The optimization service: cache-lookup -> schedule -> cache-store.

:class:`OptimizationService` is the one front door every entry point
(``repro batch``, ``repro serve``, future sharded/multi-backend layers)
routes through.  A request carries a BLIF netlist plus a
:class:`repro.bds.flow.BDSOptions` snapshot; the service

1. keys the request into the content-addressed
   :class:`repro.service.cache.ArtifactCache` and answers hits without
   scheduling any work (a cached, already-verified artifact is a proof
   object -- its verdict is returned as-is);
2. fans misses out over the :class:`OptimizationScheduler` (bounded
   queue, per-job timeouts, crash recovery);
3. stores every successful result back into the cache.

Responses come back in request order regardless of worker completion
order, and a cache hit is byte-identical to the artifact originally
stored (the BLIF text is returned verbatim, not re-serialized).

``serve`` implements the ``repro serve`` JSON-lines daemon: one request
object per input line, one response object per output line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, IO, List, Optional

from repro.bds.flow import BDSOptions
from repro.obs.metrics import get_registry
from repro.perf import merge_snapshots
from repro.service.cache import Artifact, ArtifactCache
from repro.service.scheduler import JobResult, OptimizationScheduler

#: Job statuses the stats response enumerates (stable wire shape: every
#: status appears, zero or not).
JOB_STATUSES = ("ok", "failed", "timeout", "cancelled")


@dataclass
class ServiceRequest:
    """One unit of work: optimize ``blif`` under ``options``."""

    blif: str
    options: BDSOptions = field(default_factory=BDSOptions)
    name: str = ""
    timeout: Optional[float] = None
    #: Run the job under a worker-local tracer and return its span trees
    #: (JSON dicts) on the response.  Tracing never affects the cache:
    #: hits skip the flow entirely and carry no trace.
    trace: bool = False


@dataclass
class ServiceResponse:
    """One unit of result, aligned 1:1 with the request list."""

    name: str
    status: str                        # "ok" | "failed" | "timeout" | "cancelled"
    cached: bool = False
    blif: Optional[str] = None
    perf: Dict[str, float] = field(default_factory=dict)
    verify_mode: str = "off"
    verify_unknown_outputs: List[str] = field(default_factory=list)
    error: Optional[str] = None
    elapsed: float = 0.0
    #: Span trees from the worker's tracer (requests with ``trace=True``).
    trace: Optional[List[Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json_obj(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "cached": self.cached,
            "perf": self.perf,
            "verify_mode": self.verify_mode,
            "verify_unknown_outputs": list(self.verify_unknown_outputs),
            "elapsed": round(self.elapsed, 6),
        }
        if self.blif is not None:
            obj["blif"] = self.blif
        if self.error is not None:
            obj["error"] = self.error
        if self.trace is not None:
            obj["trace"] = self.trace
        return obj


class OptimizationService:
    """Batched optimization with artifact reuse (see module doc)."""

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 max_workers: int = 1, queue_cap: int = 64,
                 default_timeout: Optional[float] = None,
                 scheduler_factory: Callable[..., OptimizationScheduler]
                 = OptimizationScheduler) -> None:
        self.cache = cache
        self.max_workers = max_workers
        self.queue_cap = queue_cap
        self.default_timeout = default_timeout
        self._scheduler_factory = scheduler_factory
        # Kernel counters aggregated over every response this service
        # produced (hits and misses alike); reported by the stats command.
        self._kernel: Dict[str, float] = {}

    # -- core ----------------------------------------------------------

    def process(self, requests: List[ServiceRequest]) -> List[ServiceResponse]:
        """Answer every request, in order: cache -> schedule -> store."""
        responses: List[Optional[ServiceResponse]] = [None] * len(requests)
        misses: List[int] = []
        keys: List[Optional[str]] = [None] * len(requests)
        for i, req in enumerate(requests):
            if self.cache is not None:
                try:
                    key = self.cache.key_for(req.blif, req.options)
                except ValueError as exc:
                    responses[i] = ServiceResponse(
                        req.name, "failed", error="parse error: %s" % exc)
                    continue
                keys[i] = key
                artifact = self.cache.lookup(key)
                if artifact is not None:
                    responses[i] = self._hit_response(req, artifact)
                    continue
            misses.append(i)
        if misses:
            with self._scheduler_factory(
                    max_workers=self.max_workers, queue_cap=self.queue_cap,
                    default_timeout=self.default_timeout) as sched:
                payloads: List[Dict[str, Any]] = []
                for i in misses:
                    payload: Dict[str, Any] = {
                        "blif": requests[i].blif,
                        "options": requests[i].options.to_dict()}
                    if requests[i].trace:
                        payload["trace"] = True
                    payloads.append(payload)
                for i, payload in zip(misses, payloads):
                    while sched.outstanding >= sched.queue_cap:
                        sched.poll()
                    sched.submit(payload, timeout=requests[i].timeout)
                results = sched.wait()
            for i, job in zip(misses, results):
                responses[i] = self._miss_response(requests[i], keys[i], job)
        final = [r for r in responses if r is not None]
        self._kernel = merge_snapshots([self._kernel]
                                       + [r.perf for r in final if r.perf])
        registry = get_registry()
        for resp in final:
            registry.counter("service_requests_total",
                             status=resp.status,
                             cached=str(resp.cached).lower()).inc()
        return final

    def optimize_one(self, request: ServiceRequest) -> ServiceResponse:
        return self.process([request])[0]

    # -- JSON-lines daemon ---------------------------------------------

    def serve(self, stdin: IO[str], stdout: IO[str]) -> int:
        """Serve requests line by line until EOF or a shutdown command.

        Request lines: ``{"blif": ..., "options": {...}, "id": ...,
        "timeout": ..., "trace": ...}`` or ``{"cmd": "stats"}`` /
        ``{"cmd": "metrics"}`` / ``{"cmd": "shutdown"}``.
        Every line gets exactly one JSON response line; malformed lines
        get ``{"status": "failed", ...}`` rather than killing the daemon.
        """
        served = 0
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                if not isinstance(obj, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                self._emit(stdout, {"status": "failed",
                                    "error": "bad request: %s" % exc})
                continue
            cmd = obj.get("cmd")
            if cmd == "shutdown":
                self._emit(stdout, {"status": "ok", "served": served})
                break
            if cmd == "stats":
                self._emit(stdout, self.stats(served))
                continue
            if cmd == "metrics":
                self._emit(stdout, {
                    "status": "ok", "format": "prometheus",
                    "text": get_registry().render_prometheus()})
                continue
            try:
                req = ServiceRequest(
                    blif=obj["blif"],
                    options=BDSOptions.from_dict(obj.get("options") or {}),
                    name=str(obj.get("id", served)),
                    timeout=obj.get("timeout", self.default_timeout),
                    trace=bool(obj.get("trace", False)))
            except (KeyError, TypeError, ValueError) as exc:
                self._emit(stdout, {"status": "failed",
                                    "error": "bad request: %s" % exc})
                continue
            resp = self.optimize_one(req)
            self._emit(stdout, dict(resp.to_json_obj(), id=req.name))
            served += 1
        return served

    def stats(self, served: int = 0) -> Dict[str, Any]:
        """The full ``{"cmd": "stats"}`` response object.

        Beyond the artifact-cache counters this folds in the scheduler's
        queue state, the kernel counters aggregated over every response
        served, and the raw process metrics registry -- one stats line
        answers "is the service healthy" without a second command.
        """
        registry = get_registry()
        return {
            "status": "ok",
            "served": served,
            "cache": (self.cache.perf_snapshot()
                      if self.cache is not None else {}),
            "scheduler": {
                "queue_depth": registry.gauge_value("scheduler_queue_depth"),
                "running": registry.gauge_value("scheduler_running"),
                "jobs_total": {
                    status: registry.counter_value("scheduler_jobs_total",
                                                   status=status)
                    for status in JOB_STATUSES},
            },
            "kernel": {k: self._kernel[k] for k in sorted(self._kernel)},
            "metrics": registry.as_dict(),
        }

    # -- internals -----------------------------------------------------

    @staticmethod
    def _emit(stdout: IO[str], obj: Dict[str, Any]) -> None:
        stdout.write(json.dumps(obj, sort_keys=True) + "\n")
        stdout.flush()

    def _hit_response(self, req: ServiceRequest,
                      artifact: Artifact) -> ServiceResponse:
        perf = merge_snapshots([artifact.perf,
                                {"artifact_cache_hits": 1.0}])
        return ServiceResponse(
            req.name, "ok", cached=True, blif=artifact.network_blif,
            perf=perf, verify_mode=artifact.verify_mode,
            verify_unknown_outputs=list(artifact.verify_unknown_outputs))

    def _miss_response(self, req: ServiceRequest, key: Optional[str],
                       job: JobResult) -> ServiceResponse:
        if not job.ok:
            return ServiceResponse(req.name, job.status, error=job.error,
                                   elapsed=job.elapsed)
        value = job.value
        artifact = Artifact(
            network_blif=value["blif"],
            perf=dict(value.get("perf") or {}),
            decomp_stats=dict(value.get("decomp_stats") or {}),
            timings=dict(value.get("timings") or {}),
            supernodes=int(value.get("supernodes", 0)),
            mapping_count=int(value.get("mapping_count", 0)),
            verify_mode=str(value.get("verify_mode", req.options.verify)),
            verify_unknown_outputs=list(
                value.get("verify_unknown_outputs") or []))
        if self.cache is not None and key is not None:
            self.cache.store(key, artifact)
        perf = merge_snapshots([artifact.perf,
                                {"artifact_cache_misses": 1.0}])
        return ServiceResponse(
            req.name, "ok", cached=False, blif=artifact.network_blif,
            perf=perf, verify_mode=artifact.verify_mode,
            verify_unknown_outputs=list(artifact.verify_unknown_outputs),
            elapsed=job.elapsed, trace=value.get("trace"))
