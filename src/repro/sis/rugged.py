"""The SIS baseline flow: a ``script.rugged`` stand-in (Fig. 12, left).

The real script is::

    sweep; eliminate -1
    simplify -m nocomp
    eliminate -1
    sweep; eliminate 5
    simplify -m nocomp
    resub -a
    fx
    resub -a; sweep
    eliminate -1; sweep
    full_simplify -m nocomp

We reproduce the same phase structure in the cube domain (our
``full_simplify`` is a second simplify pass -- satisfiability don't-cares
are exactly what the paper says *neither* system it compares fully
exploits).  All costs are literal counts, all node functions are SOP
covers, matching the algebraic methodology BDS is benchmarked against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.network import Network, eliminate_literal, sweep
from repro.sis.fx import fast_extract
from repro.sis.resub import resubstitute_all
from repro.sop.minimize import simplify_cover


@dataclass
class SISOptions:
    eliminate_threshold_final: int = -1
    eliminate_threshold_mid: int = 5
    fx_rounds: int = 200
    resub_rounds: int = 2
    simplify_max_cubes: int = 120
    sweep_merge_equivalent: bool = False  # plain SIS sweep is structural
    # Extras beyond script.rugged (off by default to keep the benchmarked
    # baseline faithful): multi-cube kernel extraction (gkx-style) and the
    # full iterated espresso instead of the single simplify pass.
    kernel_extraction: bool = False
    full_espresso: bool = False


@dataclass
class SISResult:
    network: Network
    timings: Dict[str, float]
    fx_extracted: int
    resubstitutions: int

    def summary(self) -> str:
        s = self.network.stats()
        return ("nodes=%d literals=%d depth=%d | %s"
                % (s["nodes"], s["literals"], s["depth"],
                   " ".join("%s=%.3fs" % kv for kv in sorted(self.timings.items()))))


def script_rugged(net: Network, options: Optional[SISOptions] = None) -> SISResult:
    """Run the algebraic optimization script on a copy of ``net``."""
    opts = options or SISOptions()
    timings: Dict[str, float] = {}
    work = net.copy()

    def timed(label, fn):
        t0 = time.perf_counter()
        out = fn()
        timings[label] = timings.get(label, 0.0) + time.perf_counter() - t0
        return out

    simplify = (lambda: _simplify_all(work, opts.simplify_max_cubes,
                                      opts.full_espresso))
    timed("sweep", lambda: sweep(work, merge_equivalent=opts.sweep_merge_equivalent))
    timed("eliminate", lambda: eliminate_literal(work, opts.eliminate_threshold_final))
    timed("simplify", simplify)
    timed("eliminate", lambda: eliminate_literal(work, opts.eliminate_threshold_final))
    timed("sweep", lambda: sweep(work, merge_equivalent=False))
    timed("eliminate", lambda: eliminate_literal(work, opts.eliminate_threshold_mid))
    timed("simplify", simplify)
    resubs = timed("resub", lambda: resubstitute_all(work, opts.resub_rounds))
    extracted = timed("fx", lambda: fast_extract(work, opts.fx_rounds))
    if opts.kernel_extraction:
        from repro.sis.kernel_extract import extract_kernels

        extracted += timed("gkx", lambda: extract_kernels(work))
    resubs += timed("resub", lambda: resubstitute_all(work, opts.resub_rounds))
    timed("sweep", lambda: sweep(work, merge_equivalent=False))
    timed("eliminate", lambda: eliminate_literal(work, opts.eliminate_threshold_final))
    timed("sweep", lambda: sweep(work, merge_equivalent=False))
    timed("simplify", simplify)
    work.remove_dangling()
    work.check()
    return SISResult(work, timings, extracted, resubs)


def _simplify_all(net: Network, max_cubes: int,
                  full_espresso: bool = False) -> None:
    """Per-node two-level minimization (the ``simplify`` command)."""
    from repro.sop.minimize import espresso_minimize

    for node in net.nodes.values():
        if len(node.cover) > max_cubes:
            continue  # espresso-lite would be too slow; SIS also bails
        if full_espresso:
            node.cover = espresso_minimize(node.cover)
        else:
            node.cover = simplify_cover(node.cover)
        node.normalize()
