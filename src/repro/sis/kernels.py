"""Kernels and co-kernels of a cover (Brayton-McMullen).

A *kernel* is a cube-free quotient of the cover by a cube (its
*co-kernel*).  Kernels are the source of good algebraic divisors; kernel
intersections expose logic shared between functions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.sis.division import divide_by_cube, largest_common_cube, make_cube_free
from repro.sop.cover import Cover
from repro.sop.cube import Cube


def all_kernels(cover: Cover, include_trivial: bool = True
                ) -> List[Tuple[Cube, Cover]]:
    """All (co-kernel, kernel) pairs of the cover.

    The cover itself (made cube-free) is the trivial level-highest kernel
    when ``include_trivial``.
    """
    out: List[Tuple[Cube, Cover]] = []
    seen: Set[FrozenSet[Cube]] = set()

    def record(cokernel: Cube, kernel: Cover) -> None:
        key = frozenset(kernel)
        if len(kernel) >= 2 and key not in seen:
            seen.add(key)
            out.append((cokernel, kernel))

    literals = sorted({l for cube in cover for l in cube})
    lit_index = {l: i for i, l in enumerate(literals)}

    def rec(cur: Cover, cokernel: Cube, min_lit_index: int) -> None:
        for i in range(min_lit_index, len(literals)):
            l = literals[i]
            count = sum(1 for cube in cur if l in cube)
            if count < 2:
                continue
            sub = divide_by_cube(cur, frozenset({l}))
            common = largest_common_cube(sub)
            if any(lit_index[x] < i for x in common):
                # Already generated from a smaller literal (pruning rule).
                continue
            kernel = make_cube_free(sub)
            new_cokernel = frozenset(cokernel | {l} | common)
            record(new_cokernel, kernel)
            rec(kernel, new_cokernel, i + 1)

    base = make_cube_free(cover)
    if include_trivial:
        record(largest_common_cube(cover), base)
    rec(base, largest_common_cube(cover), 0)
    return out


def kernel_intersections(kernels_by_node: Dict[str, List[Tuple[Cube, Cover]]]
                         ) -> List[Tuple[Cover, List[str]]]:
    """Kernels appearing in more than one node (candidate shared divisors).

    Returns (kernel, [node names]) for each multi-node kernel, keyed by the
    kernel's canonical cube set.
    """
    table: Dict[FrozenSet[Cube], Tuple[Cover, Set[str]]] = {}
    for name, kernels in kernels_by_node.items():
        for _, kernel in kernels:
            key = frozenset(kernel)
            if key not in table:
                table[key] = (kernel, set())
            table[key][1].add(name)
    return [(k, sorted(users)) for k, users in table.values() if len(users) > 1]
