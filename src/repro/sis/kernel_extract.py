"""Kernel-intersection extraction (the classic ``gkx``-style step).

``fast_extract`` handles single- and double-cube divisors; this module
extracts *multi-cube kernels* shared between nodes: kernels of all node
covers are intersected (:func:`repro.sis.kernels.kernel_intersections`),
the intersection with the best literal saving becomes a new node, and
every node it divides is rewritten algebraically.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.network.network import Network, Node
from repro.sis.fx import _named_cover, _named_divide
from repro.sis.kernels import all_kernels
from repro.sop.cover import remove_contained
from repro.sop.cube import lit

NamedCube = FrozenSet[Tuple[str, bool]]
NamedCover = List[NamedCube]


def extract_kernels(net: Network, max_rounds: int = 50,
                    min_saving: int = 2, max_node_cubes: int = 60) -> int:
    """Extract shared multi-cube kernels; returns nodes created."""
    created = 0
    for _ in range(max_rounds):
        best = _best_kernel_divisor(net, min_saving, max_node_cubes)
        if best is None:
            break
        _materialize(net, best)
        created += 1
    return created


def _named_kernels(node: Node, max_node_cubes: int) -> List[NamedCover]:
    if len(node.cover) > max_node_cubes or len(node.cover) < 2:
        return []
    out: List[NamedCover] = []
    # The trivial kernel (the cover made cube-free) matters here: another
    # node may contain exactly this cover as its shared divisor.
    for _, kernel in all_kernels(node.cover, include_trivial=True):
        if len(kernel) < 2:
            continue
        named = [
            frozenset((node.fanins[l >> 1], not (l & 1)) for l in cube)
            for cube in kernel
        ]
        out.append(named)
    return out


def _best_kernel_divisor(net: Network, min_saving: int,
                         max_node_cubes: int) -> Optional[NamedCover]:
    table: Dict[FrozenSet[NamedCube], Set[str]] = {}
    for node in net.nodes.values():
        for kernel in _named_kernels(node, max_node_cubes):
            key = frozenset(kernel)
            table.setdefault(key, set()).add(node.name)
    best = None
    best_saving = min_saving - 1
    for key, users in table.items():
        if len(users) < 2:
            continue
        kernel = sorted(key, key=sorted)
        kernel_lits = sum(len(c) for c in kernel)
        # Exact saving by trial division into every user.
        saving = -kernel_lits  # cost of materializing the kernel node
        for user in users:
            node = net.nodes[user]
            named = _named_cover(node)
            quotient, remainder = _named_divide(named, kernel)
            if not quotient:
                continue
            old_lits = sum(len(c) for c in named)
            new_lits = (sum(len(c) + 1 for c in quotient)
                        + sum(len(c) for c in remainder))
            saving += max(0, old_lits - new_lits)
        if saving > best_saving:
            best_saving = saving
            best = kernel
    return best


def _materialize(net: Network, kernel: NamedCover) -> str:
    signals = sorted({s for cube in kernel for s, _ in cube})
    pos = {s: i for i, s in enumerate(signals)}
    cover = [frozenset(lit(pos[s], p) for s, p in cube) for cube in kernel]
    name = net.fresh_name("kx")
    net.add_node(name, signals, cover)
    new_node = net.nodes[name]
    for node in list(net.nodes.values()):
        if node.name == name:
            continue
        _divide_in(node, new_node, kernel)
    return name


def _divide_in(node: Node, divisor_node: Node, kernel: NamedCover) -> None:
    named = _named_cover(node)
    quotient, remainder = _named_divide(named, kernel)
    if not quotient:
        return
    signals: List[str] = []
    seen: Set[str] = set()
    for cube in quotient + remainder:
        for s, _ in cube:
            if s not in seen:
                seen.add(s)
                signals.append(s)
    if divisor_node.name not in seen:
        signals.append(divisor_node.name)
    pos = {s: i for i, s in enumerate(signals)}
    div_lit = lit(pos[divisor_node.name], True)
    new_cover = [frozenset({div_lit} | {lit(pos[s], p) for s, p in cube})
                 for cube in quotient]
    new_cover += [frozenset(lit(pos[s], p) for s, p in cube)
                  for cube in remainder]
    node.fanins = signals
    node.cover = remove_contained(new_cover)
    node.normalize()
