"""Algebraic (weak) division of cube covers.

``f / d`` is the largest cover q such that ``q * d + r = f`` with the
product expanded algebraically (no Boolean simplification) and ``r`` the
remainder.  Standard Brayton-McMullen algorithm: divide by each cube of the
divisor and intersect the partial quotients.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.sop.cover import Cover
from repro.sop.cube import Cube


def divide_by_cube(cover: Cover, cube: Cube) -> Cover:
    """Quotient of ``cover / cube``: cubes of the cover containing ``cube``,
    with its literals removed."""
    out = []
    for c in cover:
        if cube <= c:
            out.append(c - cube)
    return out


def algebraic_divide(f: Cover, d: Cover) -> Tuple[Cover, Cover]:
    """Weak division: returns (quotient, remainder) with f = q*d + r."""
    if not d:
        raise ValueError("division by the empty cover")
    if d == [frozenset()]:
        # Division by the constant-one cover.
        return list(f), []
    quotient: Optional[Set[Cube]] = None
    for dcube in d:
        partial = set(divide_by_cube(f, dcube))
        quotient = partial if quotient is None else (quotient & partial)
        if not quotient:
            return [], list(f)
    q = sorted(quotient, key=sorted)
    covered = set()
    for qcube in q:
        for dcube in d:
            covered.add(frozenset(qcube | dcube))
    remainder = [c for c in f if c not in covered]
    return q, remainder


def cube_free(cover: Cover) -> bool:
    """A cover is cube-free iff no literal appears in every cube."""
    if not cover:
        return False
    common = set(cover[0])
    for cube in cover[1:]:
        common &= cube
        if not common:
            return True
    return not common


def largest_common_cube(cover: Cover) -> Cube:
    """The product of literals common to every cube."""
    if not cover:
        return frozenset()
    common = set(cover[0])
    for cube in cover[1:]:
        common &= cube
    return frozenset(common)


def make_cube_free(cover: Cover) -> Cover:
    """Strip the largest common cube."""
    common = largest_common_cube(cover)
    if not common:
        return list(cover)
    return [c - common for c in cover]
