"""Algebraic factoring ("good factor") of cube covers.

Produces a factored form as an expression tree (reusing
:class:`repro.decomp.ftree.FTree` with AND/OR/NOT nodes and literal
leaves), the representation SIS uses for literal counting and as the
starting point of technology decomposition.

Algorithm: classic good-factor -- pick the best kernel as divisor, divide,
recurse on quotient, divisor and remainder.
"""

from __future__ import annotations

from typing import Optional

from repro.decomp.ftree import CONST0, CONST1, FTree, negate, op2, var_leaf
from repro.sis.division import algebraic_divide, largest_common_cube, make_cube_free
from repro.sis.kernels import all_kernels
from repro.sop.cover import Cover, literal_count
from repro.sop.cube import Cube


def _cube_tree(cube: Cube) -> FTree:
    if not cube:
        return CONST1
    tree: Optional[FTree] = None
    for l in sorted(cube):
        leaf = var_leaf(l >> 1)
        if l & 1:
            leaf = negate(leaf)
        tree = leaf if tree is None else op2("and", tree, leaf)
    return tree


def factor_cover(cover: Cover) -> FTree:
    """Factored form of a cover; leaves are the cover's variable ids."""
    if not cover:
        return CONST0
    if any(not cube for cube in cover):
        return CONST1
    if len(cover) == 1:
        return _cube_tree(cover[0])
    # Divide out the largest common cube first.
    common = largest_common_cube(cover)
    if common:
        rest = factor_cover(make_cube_free(cover))
        return op2("and", _cube_tree(common), rest)
    divisor = _best_kernel(cover)
    if divisor is None:
        # No kernel with >= 2 cubes: the cover is its own "sum of cubes".
        tree: Optional[FTree] = None
        for cube in cover:
            t = _cube_tree(cube)
            tree = t if tree is None else op2("or", tree, t)
        return tree
    quotient, remainder = algebraic_divide(cover, divisor)
    if not quotient:
        tree = None
        for cube in cover:
            t = _cube_tree(cube)
            tree = t if tree is None else op2("or", tree, t)
        return tree
    product = op2("and", factor_cover(quotient), factor_cover(divisor))
    if not remainder:
        return product
    return op2("or", product, factor_cover(remainder))


def _best_kernel(cover: Cover) -> Optional[Cover]:
    """Kernel maximizing the literal savings as a divisor."""
    best = None
    best_score = 0
    for cokernel, kernel in all_kernels(cover):
        if len(kernel) < 2:
            continue
        if frozenset(map(frozenset, kernel)) == frozenset(map(frozenset, cover)):
            continue
        quotient, _ = algebraic_divide(cover, kernel)
        if len(quotient) < 1:
            continue
        # Literal savings estimate of extracting this divisor.
        saving = (len(quotient) - 1) * literal_count(kernel) \
            + (len(kernel) - 1) * literal_count(quotient)
        if saving > best_score:
            best_score = saving
            best = kernel
    return best


def factored_literal_count(cover: Cover) -> int:
    """Literals in the factored form -- the SIS quality metric."""
    return factor_cover(cover).literal_count()
