"""The algebraic baseline: a faithful SIS ``script.rugged`` stand-in.

The paper's every experiment is "BDS vs SIS (script.rugged)"; this package
rebuilds the algebraic half of Fig. 12 from scratch in the cube domain:

``division``  algebraic (weak) division of covers
``kernels``   kernels and co-kernels (the recursive cube-free machinery)
``factor``    good-factor: factored forms and factored literal counts
``fx``        fast-extract: greedy single-cube and double-cube divisor
              extraction (the ``fx`` command)
``resub``     algebraic resubstitution
``rugged``    the script: sweep, eliminate, simplify, fx, resub, ...
"""

from repro.sis.division import algebraic_divide
from repro.sis.kernels import all_kernels, kernel_intersections
from repro.sis.factor import factor_cover, factored_literal_count
from repro.sis.fx import fast_extract
from repro.sis.resub import resubstitute_all
from repro.sis.rugged import script_rugged, SISOptions, SISResult

__all__ = [
    "algebraic_divide",
    "all_kernels",
    "kernel_intersections",
    "factor_cover",
    "factored_literal_count",
    "fast_extract",
    "resubstitute_all",
    "script_rugged",
    "SISOptions",
    "SISResult",
]
