"""Fast-extract (``fx``): greedy extraction of shared divisors.

Rajski-Vasudevamurthy style: enumerate single-cube (two-literal) divisors
and double-cube divisors across all node covers, repeatedly extract the one
with the best total literal saving as a new network node, substituting it
algebraically everywhere it appears.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.network.network import Network, Node
from repro.sop.cover import Cover, remove_contained
from repro.sop.cube import lit


def fast_extract(net: Network, max_rounds: int = 200,
                 min_saving: int = 1) -> int:
    """Extract shared divisors until none saves at least ``min_saving``
    literals.  Returns the number of new nodes created."""
    created = 0
    for _ in range(max_rounds):
        divisor = _best_divisor(net, min_saving)
        if divisor is None:
            break
        _extract(net, divisor)
        created += 1
    return created


class _Divisor:
    """A candidate divisor: a cover over *global signal names*."""

    def __init__(self, cubes: FrozenSet[FrozenSet[Tuple[str, bool]]]):
        self.cubes = cubes
        self.saving = 0
        self.users: List[str] = []

    def signals(self) -> List[str]:
        out: Set[str] = set()
        for cube in self.cubes:
            for s, _ in cube:
                out.add(s)
        return sorted(out)


def _named_cover(node: Node) -> List[FrozenSet[Tuple[str, bool]]]:
    """Node cover expressed over (signal name, positive) literal pairs."""
    return [
        frozenset((node.fanins[l >> 1], not (l & 1)) for l in cube)
        for cube in node.cover
    ]


def _best_divisor(net: Network, min_saving: int) -> Optional[_Divisor]:
    candidates: Dict[FrozenSet, _Divisor] = {}
    for node in net.nodes.values():
        named = _named_cover(node)
        # Single-cube divisors: all 2-literal sub-cubes appearing in a cube.
        for cube in named:
            lits = sorted(cube)
            for i in range(len(lits)):
                for j in range(i + 1, len(lits)):
                    key = frozenset({frozenset({lits[i], lits[j]})})
                    d = candidates.setdefault(key, _Divisor(key))
                    d.saving += 1
                    if node.name not in d.users:
                        d.users.append(node.name)
        # Double-cube divisors: cube-free differences of cube pairs.
        for i in range(len(named)):
            for j in range(i + 1, len(named)):
                a, b = named[i], named[j]
                common = a & b
                ra, rb = a - common, b - common
                if not ra or not rb:
                    continue
                # Must be algebraic: disjoint variable sets in the two parts.
                va = {s for s, _ in ra}
                vb = {s for s, _ in rb}
                if va & vb:
                    continue
                key = frozenset({frozenset(ra), frozenset(rb)})
                d = candidates.setdefault(key, _Divisor(key))
                # Two cubes (c|ra, c|rb) collapse to one cube (c, t):
                # saves |c| + |ra| + |rb| - 1 literals per occurrence.
                d.saving += len(common) + len(ra) + len(rb) - 1
                if node.name not in d.users:
                    d.users.append(node.name)
    best = None
    for d in candidates.values():
        cost = sum(len(c) for c in d.cubes)
        net_saving = d.saving - cost
        if net_saving >= min_saving and (best is None or net_saving > best[0]):
            best = (net_saving, d)
    return best[1] if best else None


def _extract(net: Network, divisor: _Divisor) -> str:
    signals = divisor.signals()
    pos = {s: i for i, s in enumerate(signals)}
    cover: Cover = [
        frozenset(lit(pos[s], p) for s, p in cube) for cube in divisor.cubes
    ]
    name = net.fresh_name("fx")
    net.add_node(name, signals, cover)
    new_node = net.nodes[name]
    for node in list(net.nodes.values()):
        if node.name == name:
            continue
        _substitute(node, new_node)
    return name


def _substitute(node: Node, divisor_node: Node) -> None:
    """Algebraically substitute the divisor into ``node`` where it divides."""
    named = _named_cover(node)
    div_named = [
        frozenset((divisor_node.fanins[l >> 1], not (l & 1)) for l in cube)
        for cube in divisor_node.cover
    ]
    quotient, remainder = _named_divide(named, div_named)
    if not quotient:
        return
    # New cover: quotient * divisor_literal + remainder.
    signals: List[str] = []
    seen: Set[str] = set()
    for cube in quotient + remainder:
        for s, _ in cube:
            if s not in seen:
                seen.add(s)
                signals.append(s)
    if divisor_node.name not in seen:
        signals.append(divisor_node.name)
    pos = {s: i for i, s in enumerate(signals)}
    div_lit = lit(pos[divisor_node.name], True)
    new_cover = []
    for cube in quotient:
        new_cover.append(frozenset({div_lit} | {lit(pos[s], p) for s, p in cube}))
    for cube in remainder:
        new_cover.append(frozenset(lit(pos[s], p) for s, p in cube))
    node.fanins = signals
    node.cover = remove_contained(new_cover)
    node.normalize()


def _named_divide(f: List[FrozenSet], d: List[FrozenSet]
                  ) -> Tuple[List[FrozenSet], List[FrozenSet]]:
    """Weak division over name-literal covers."""
    quotient: Optional[Set[FrozenSet]] = None
    for dcube in d:
        partial = {cube - dcube for cube in f if dcube <= cube}
        quotient = partial if quotient is None else quotient & partial
        if not quotient:
            return [], list(f)
    # Algebraic check: quotient must not share variables with the divisor.
    dvars = {s for cube in d for s, _ in cube}
    quotient = {q for q in quotient if not ({s for s, _ in q} & dvars)}
    if not quotient:
        return [], list(f)
    q = sorted(quotient, key=sorted)
    covered = set()
    for qcube in q:
        for dcube in d:
            covered.add(frozenset(qcube | dcube))
    remainder = [c for c in f if c not in covered]
    return q, remainder
