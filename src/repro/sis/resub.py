"""Algebraic resubstitution: re-express each node using existing nodes.

For every (node, candidate) pair where the candidate's cover algebraically
divides the node's cover with a literal saving, rewrite the node as
``quotient * candidate + remainder``.  Acyclicity is preserved by only
substituting candidates that are not in the node's transitive fanout.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.network.network import Network, Node
from repro.sis.fx import _named_cover, _named_divide
from repro.sop.cover import remove_contained
from repro.sop.cube import lit


def resubstitute_all(net: Network, max_rounds: int = 3) -> int:
    """Try every candidate into every node; returns substitutions made."""
    total = 0
    for _ in range(max_rounds):
        made = _one_round(net)
        total += made
        if not made:
            break
    return total


def _one_round(net: Network) -> int:
    made = 0
    reach = _transitive_fanout(net)
    for node in list(net.nodes.values()):
        if node.name not in net.nodes:
            continue
        for cand in list(net.nodes.values()):
            if cand.name == node.name:
                continue
            if node.name in reach.get(cand.name, ()):  # would create a cycle
                continue
            if cand.name in node.fanins:
                continue
            if len(cand.cover) < 1 or cand.literal_count() < 2:
                continue
            if _try_substitute(node, cand):
                made += 1
                reach = _transitive_fanout(net)
    return made


def _try_substitute(node: Node, cand: Node) -> bool:
    named = _named_cover(node)
    div_named = _named_cover(cand)
    quotient, remainder = _named_divide(named, div_named)
    if not quotient:
        return False
    # Literal accounting: replacing quotient*divisor cubes by quotient
    # cubes with one extra literal each.
    old_lits = node.literal_count()
    new_lits = (sum(len(c) + 1 for c in quotient)
                + sum(len(c) for c in remainder))
    if new_lits >= old_lits:
        return False
    signals: List[str] = []
    seen: Set[str] = set()
    for cube in quotient + remainder:
        for s, _ in cube:
            if s not in seen:
                seen.add(s)
                signals.append(s)
    if cand.name not in seen:
        signals.append(cand.name)
    pos = {s: i for i, s in enumerate(signals)}
    div_lit = lit(pos[cand.name], True)
    new_cover = [frozenset({div_lit} | {lit(pos[s], p) for s, p in cube})
                 for cube in quotient]
    new_cover += [frozenset(lit(pos[s], p) for s, p in cube)
                  for cube in remainder]
    node.fanins = signals
    node.cover = remove_contained(new_cover)
    node.normalize()
    return True


def _transitive_fanout(net: Network) -> Dict[str, Set[str]]:
    fanouts = net.fanouts()
    reach: Dict[str, Set[str]] = {}
    for node in reversed(net.topological()):
        out: Set[str] = set()
        for consumer in fanouts.get(node.name, ()):
            out.add(consumer)
            out |= reach.get(consumer, set())
        reach[node.name] = out
    return reach
