"""Additional circuit generators: carry-lookahead adder, decoder, priority
encoder, Gray-code converter, and the paper's own rnd4-1 example function.

These widen the benchmark pool beyond the Table I/II families and provide
structurally diverse tests for the flows (wide fanin trees, one-hot logic,
deep priority chains).
"""

from __future__ import annotations

from typing import List

from repro.network.network import Network
from repro.sop.cube import lit


def carry_lookahead_adder(bits: int = 8, group: int = 4,
                          name: str = "") -> Network:
    """Carry-lookahead adder with ``group``-bit lookahead blocks."""
    net = Network(name or "cla%d" % bits)
    a = [net.add_input("a%d" % i) for i in range(bits)]
    b = [net.add_input("b%d" % i) for i in range(bits)]
    g = [net.add_and("g%d" % i, [a[i], b[i]]) for i in range(bits)]
    p = [net.add_xor("p%d" % i, [a[i], b[i]]) for i in range(bits)]
    carry = net.add_const("c0", False)
    carries = [carry]
    for i in range(bits):
        # c_{i+1} = g_i + p_i c_i, grouped flat within each block.
        block_start = (i // group) * group
        terms = [g[i]]
        prod = None
        for j in range(i, block_start - 1, -1):
            if j == block_start:
                tail = carries[block_start]
            else:
                tail = g[j - 1]
            factors = [p[x] for x in range(j, i + 1)] + [tail]
            t = factors[0]
            for k, fct in enumerate(factors[1:], 1):
                t = net.add_and("c%d_t%d_%d" % (i + 1, j, k), [t, fct])
            terms.append(t)
        cur = terms[0]
        for k, t in enumerate(terms[1:], 1):
            cur = net.add_or("c%d_o%d" % (i + 1, k), [cur, t])
        carries.append(cur)
    for i in range(bits):
        net.add_xor("s%d" % i, [p[i], carries[i]])
        net.add_output("s%d" % i)
    net.add_buf("cout", carries[bits])
    net.add_output("cout")
    net.remove_dangling()
    return net


def decoder(select_bits: int = 4, name: str = "") -> Network:
    """N-to-2^N one-hot decoder with enable."""
    net = Network(name or "dec%d" % select_bits)
    sel = [net.add_input("s%d" % i) for i in range(select_bits)]
    en = net.add_input("en")
    neg = [net.add_not("ns%d" % i, sel[i]) for i in range(select_bits)]
    for value in range(1 << select_bits):
        factors = [sel[i] if value >> i & 1 else neg[i]
                   for i in range(select_bits)] + [en]
        cur = factors[0]
        for k, f in enumerate(factors[1:], 1):
            cur = net.add_and("d%d_%d" % (value, k), [cur, f])
        net.add_buf("o%d" % value, cur)
        net.add_output("o%d" % value)
    return net


def priority_encoder(width: int = 8, name: str = "") -> Network:
    """Highest-set-bit encoder with a valid flag."""
    net = Network(name or "prio%d" % width)
    req = [net.add_input("r%d" % i) for i in range(width)]
    # grant_i = r_i & ~r_{i+1} & ... & ~r_{width-1} (highest index wins).
    nreq = [net.add_not("nr%d" % i, req[i]) for i in range(width)]
    grants: List[str] = []
    for i in range(width):
        cur = req[i]
        for j in range(i + 1, width):
            cur = net.add_and("gr%d_%d" % (i, j), [cur, nreq[j]])
        grants.append(cur)
    bits = max(1, (width - 1).bit_length())
    for bit in range(bits):
        members = [grants[i] for i in range(width) if i >> bit & 1]
        cur = members[0]
        for k, m in enumerate(members[1:], 1):
            cur = net.add_or("e%d_%d" % (bit, k), [cur, m])
        net.add_buf("idx%d" % bit, cur)
        net.add_output("idx%d" % bit)
    cur = req[0]
    for k, r in enumerate(req[1:], 1):
        cur = net.add_or("any%d" % k, [cur, r])
    net.add_buf("valid", cur)
    net.add_output("valid")
    return net


def gray_converter(bits: int = 6, name: str = "") -> Network:
    """Binary-to-Gray and Gray-to-binary, sharing inputs (XOR chains)."""
    net = Network(name or "gray%d" % bits)
    x = [net.add_input("x%d" % i) for i in range(bits)]
    # binary -> gray: g_i = b_i xor b_{i+1}.
    for i in range(bits - 1):
        net.add_xor("gray%d" % i, [x[i], x[i + 1]])
        net.add_output("gray%d" % i)
    net.add_buf("gray%d" % (bits - 1), x[bits - 1])
    net.add_output("gray%d" % (bits - 1))
    # gray -> binary (treating x as gray code): b_i = xor of x_i..x_{n-1}.
    prev = x[bits - 1]
    net.add_buf("bin%d" % (bits - 1), prev)
    net.add_output("bin%d" % (bits - 1))
    for i in range(bits - 2, -1, -1):
        prev = net.add_xor("bin%d" % i, [x[i], prev])
        net.add_output("bin%d" % i)
    return net


def rnd4_1(name: str = "rnd4_1") -> Network:
    """The paper's Example 6 function (circuit rnd4-1 from MCNC):
    F = (x1 xnor ~x4) xnor (x2 (x5 + x1 x4))."""
    net = Network(name)
    for n in ("x1", "x2", "x4", "x5"):
        net.add_input(n)
    net.add_output("F")
    net.add_node("gq", ["x1", "x4"],
                 [frozenset({lit(0), lit(1, False)}),
                  frozenset({lit(0, False), lit(1)})])  # x1 xnor ~x4
    net.add_and("x14", ["x1", "x4"])
    net.add_or("inner", ["x5", "x14"])
    net.add_and("h", ["x2", "inner"])
    net.add_node("F", ["gq", "h"],
                 [frozenset({lit(0), lit(1)}),
                  frozenset({lit(0, False), lit(1, False)})])  # xnor
    return net
