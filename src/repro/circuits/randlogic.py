"""Seeded random-logic network generator.

Stand-in for the MCNC/LGSynth91 random-logic benchmarks (pair, rot, dalu,
vda, and the small AND/OR-intensive set).  The generator builds a layered
DAG with controllable arity, XOR fraction and reconvergence; a fixed seed
makes every named benchmark reproducible across runs.

The differential fuzzer (:mod:`repro.fuzz`) drives the same generator with
wider gate mixes -- ``mux_fraction`` / ``not_fraction`` add the gate kinds
the BDS lowering emits, and ``sink_outputs`` prefers fanout-free gates as
primary outputs so less of the generated logic dangles.  The defaults
leave the random stream bit-identical to the original generator, so every
registry seed keeps producing the same benchmark circuit.
"""

from __future__ import annotations

import random
from typing import List

from repro.network.network import Network
from repro.sop.cube import lit


def random_logic(n_inputs: int, n_gates: int, n_outputs: int,
                 seed: int, xor_fraction: float = 0.05,
                 max_arity: int = 3, locality: int = 12,
                 name: str = "", mux_fraction: float = 0.0,
                 not_fraction: float = 0.0,
                 sink_outputs: bool = False) -> Network:
    """Generate a reproducible random multilevel network.

    ``locality`` biases gate fanins toward recently created signals, which
    produces the deep, reconvergent structure of real random-logic
    benchmarks instead of a shallow soup.  ``mux_fraction`` and
    ``not_fraction`` carve 2:1 MUX and inverter gates out of the mix;
    ``sink_outputs`` draws primary outputs from fanout-free gates first.
    """
    rng = random.Random(seed)
    net = Network(name or "rand_s%d" % seed)
    signals: List[str] = [net.add_input("pi%d" % i) for i in range(n_inputs)]
    for g in range(n_gates):
        arity = rng.randint(2, max_arity)
        pool_start = max(0, len(signals) - locality)
        pool = signals[pool_start:]
        extra = signals[:pool_start]
        fanins: List[str] = []
        while len(fanins) < min(arity, len(signals)):
            if extra and rng.random() < 0.25:
                cand = rng.choice(extra)
            else:
                cand = rng.choice(pool)
            if cand not in fanins:
                fanins.append(cand)
        gname = "g%d" % g
        r = rng.random()
        special = mux_fraction + not_fraction
        if r < mux_fraction and len(signals) >= 3:
            while len(fanins) < 3:          # a MUX needs sel/then/else
                cand = rng.choice(signals)
                if cand not in fanins:
                    fanins.append(cand)
            net.add_mux(gname, fanins[0], fanins[1], fanins[2])
            signals.append(gname)
            continue
        if r < special:
            net.add_not(gname, fanins[0])
            signals.append(gname)
            continue
        # Rescale so the classic mix is untouched when the new fractions
        # are zero (r is then already uniform on [0, 1)).
        r = (r - special) / (1.0 - special) if special else r
        if r < xor_fraction:
            net.add_xor(gname, fanins)
        elif r < 0.5 + xor_fraction / 2:
            _add_random_sop(net, rng, gname, fanins)
        elif r < 0.78:
            net.add_and(gname, fanins)
        else:
            net.add_or(gname, fanins)
        signals.append(gname)
    gate_names = [s for s in signals if s.startswith("g")]
    if sink_outputs:
        fanout = net.fanouts()
        sinks = [g for g in gate_names if not fanout.get(g)]
        pool = sinks if len(sinks) >= n_outputs else gate_names
        outputs = rng.sample(pool, min(n_outputs, len(pool)))
    else:
        outputs = rng.sample(gate_names[-max(n_outputs * 3, n_outputs):],
                             min(n_outputs, len(gate_names)))
    for o in outputs:
        net.add_output(o)
    net.remove_dangling()
    net.check()
    return net


def _add_random_sop(net: Network, rng: random.Random, name: str,
                    fanins: List[str]) -> None:
    """A random 2-3 cube SOP node with mixed polarities."""
    n = len(fanins)
    cubes = set()
    for _ in range(rng.randint(2, 3)):
        size = rng.randint(1, n)
        positions = rng.sample(range(n), size)
        cubes.add(frozenset(lit(p, rng.random() < 0.7) for p in positions))
    net.add_node(name, fanins, list(cubes))
