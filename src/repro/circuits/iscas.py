"""Functional equivalents of the ISCAS-85 circuits used in Table I.

The real ISCAS-85 netlists are not redistributable here; these builders
produce circuits of the same *functional class* and comparable structure
(see DESIGN.md "Substitutions"):

=========  ==========================================  ==================
paper      function                                    builder class
=========  ==========================================  ==================
C432       27-channel interrupt controller             priority + parity
C499/C1355 32-bit SEC error-correcting circuit         XOR trees + decode
C880       8-bit ALU                                   adder + logic ops
C1908      16-bit SEC/DED ECC                          XOR trees + decode
C3540      8-bit ALU with extras                       wider ALU
C5315      9-bit ALU with selector/comparator          composite
C6288      16x16 multiplier                            array multiplier
C7552      32-bit adder/comparator                     composite
=========  ==========================================  ==================

Sizes are parameterized; defaults are scaled to what the pure-Python flows
synthesize in benchmark-friendly time.  ``iscas_equivalent(name)`` returns
the default-size equivalent.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuits.arith import (
    array_multiplier,
    comparator,
    ripple_adder,
    simple_alu,
)
from repro.network.network import Network


def embed_network(net: Network, sub: Network, prefix: str,
                  input_map: Dict[str, str]) -> Dict[str, str]:
    """Copy ``sub`` into ``net``, renaming nodes with ``prefix`` and wiring
    its inputs per ``input_map``.  Returns sub-output -> new-signal map."""
    rename: Dict[str, str] = {}
    for i in sub.inputs:
        rename[i] = input_map[i]
    for node in sub.topological():
        new_name = prefix + node.name
        rename[node.name] = new_name
        net.add_node(new_name, [rename[f] for f in node.fanins],
                     list(node.cover))
    return {o: rename[o] for o in sub.outputs}


# ----------------------------------------------------------------------
# Error-correcting circuits (C499 / C1355 / C1908 class)
# ----------------------------------------------------------------------


def _hamming_patterns(data_bits: int, check_bits: int) -> List[int]:
    """Assign each data bit a distinct non-power-of-two syndrome pattern."""
    patterns = []
    candidate = 3
    while len(patterns) < data_bits:
        if candidate & (candidate - 1):  # not a power of two
            patterns.append(candidate)
        candidate += 1
        if candidate >= (1 << check_bits):
            raise ValueError("not enough check bits for the data width")
    return patterns


def ecc_corrector(data_bits: int = 32, check_bits: int = 8,
                  name: str = "") -> Network:
    """Single-error-correcting decoder (the C499/C1355 class).

    Inputs: data d0..dN-1 and received check bits c0..cK-1.  Outputs: the
    corrected data word.  Structure: K syndrome XOR trees over data
    subsets, then per-bit syndrome decode (wide AND) XORed into the data.
    """
    net = Network(name or "ecc%d" % data_bits)
    data = [net.add_input("d%d" % i) for i in range(data_bits)]
    check = [net.add_input("c%d" % j) for j in range(check_bits)]
    patterns = _hamming_patterns(data_bits, check_bits)
    # Syndrome bits: parity of participating data bits xor the check bit.
    syndromes = []
    for j in range(check_bits):
        members = [data[i] for i in range(data_bits) if patterns[i] >> j & 1]
        cur = check[j]
        for k, m in enumerate(members):
            cur = net.add_xor("syn%d_%d" % (j, k), [cur, m])
        syndromes.append(net.add_buf("s%d" % j, cur))
    syn_neg = [net.add_not("ns%d" % j, syndromes[j]) for j in range(check_bits)]
    # Per-bit correction: flip d_i when the syndrome equals its pattern.
    for i in range(data_bits):
        lits = [syndromes[j] if patterns[i] >> j & 1 else syn_neg[j]
                for j in range(check_bits)]
        cur = lits[0]
        for k, l in enumerate(lits[1:], 1):
            cur = net.add_and("dec%d_%d" % (i, k), [cur, l])
        net.add_xor("o%d" % i, [data[i], cur])
        net.add_output("o%d" % i)
    return net


def ecc_secded(data_bits: int = 16, check_bits: int = 6,
               name: str = "") -> Network:
    """SEC/DED variant (C1908 class): corrected data + error flags."""
    net = ecc_corrector(data_bits, check_bits - 1, name or "secded%d" % data_bits)
    # Overall parity input and double-error detect output.
    p = net.add_input("p_in")
    total = p
    for i in range(data_bits):
        total = net.add_xor("tp%d" % i, [total, "d%d" % i])
    net.add_buf("parity_err", total)
    net.add_output("parity_err")
    syn_any = "s0"
    for j in range(1, check_bits - 1):
        syn_any = net.add_or("sa%d" % j, [syn_any, "s%d" % j])
    npar = net.add_not("npar", "parity_err")
    net.add_and("double_err", [syn_any, npar])
    net.add_output("double_err")
    return net


# ----------------------------------------------------------------------
# Priority interrupt controller (C432 class)
# ----------------------------------------------------------------------


def interrupt_controller(channels: int = 9, name: str = "c432eq") -> Network:
    """Three request buses A/B/C with enables; A has priority over B over C.

    Outputs: bus grant flags PA/PB/PC and an OR-encoded channel index.
    36 inputs at the default size, like C432.
    """
    net = Network(name)
    a = [net.add_input("a%d" % i) for i in range(channels)]
    b = [net.add_input("b%d" % i) for i in range(channels)]
    c = [net.add_input("ch%d" % i) for i in range(channels)]
    e = [net.add_input("e%d" % i) for i in range(channels)]
    areq = [net.add_and("areq%d" % i, [a[i], e[i]]) for i in range(channels)]
    breq = [net.add_and("breq%d" % i, [b[i], e[i]]) for i in range(channels)]
    creq = [net.add_and("creq%d" % i, [c[i], e[i]]) for i in range(channels)]

    def any_of(sigs, prefix):
        cur = sigs[0]
        for k, s in enumerate(sigs[1:], 1):
            cur = net.add_or("%s%d" % (prefix, k), [cur, s])
        return cur

    pa = net.add_buf("PA", any_of(areq, "anya"))
    npa = net.add_not("nPA", pa)
    pb_raw = any_of(breq, "anyb")
    pb = net.add_and("PB", [pb_raw, npa])
    npb = net.add_not("nPB", pb)
    pc_raw = any_of(creq, "anyc")
    pc0 = net.add_and("pc0", [pc_raw, npa])
    pc = net.add_and("PC", [pc0, npb])
    for o in ("PA", "PB", "PC"):
        net.add_output(o)
    # Winning bus per channel, then priority-encode the channel index.
    win = []
    for i in range(channels):
        wa = net.add_and("wa%d" % i, [areq[i], pa])
        wb = net.add_and("wb%d" % i, [breq[i], pb])
        wc = net.add_and("wc%d" % i, [creq[i], pc])
        w1 = net.add_or("w1_%d" % i, [wa, wb])
        win.append(net.add_or("win%d" % i, [w1, wc]))
    # Priority among channels: lowest index wins.
    granted = []
    blockers: List[str] = []
    for i in range(channels):
        g = win[i]
        for j, blk in enumerate(blockers):
            g = net.add_and("gr%d_%d" % (i, j), [g, blk])
        granted.append(g)
        blockers.append(net.add_not("nw%d" % i, win[i]))
        # Keep the blocker chain short: only the previous 3 channels gate.
        blockers = blockers[-3:]
    index_bits = max(1, (channels - 1).bit_length())
    for bit in range(index_bits):
        members = [granted[i] for i in range(channels) if i >> bit & 1]
        if not members:
            net.add_const("idx%d" % bit, False)
        else:
            cur = members[0]
            for k, m in enumerate(members[1:], 1):
                cur = net.add_or("ix%d_%d" % (bit, k), [cur, m])
            net.add_buf("idx%d" % bit, cur)
        net.add_output("idx%d" % bit)
    return net


# ----------------------------------------------------------------------
# Composites (C5315 / C7552 class)
# ----------------------------------------------------------------------


def alu_selector(bits: int = 9, name: str = "c5315eq") -> Network:
    """ALU plus comparator plus result parity (C5315 class)."""
    net = simple_alu(bits, name)
    cmp_net = comparator(bits)
    input_map = {}
    for i in range(bits):
        input_map["a%d" % i] = "a%d" % i
        input_map["b%d" % i] = "b%d" % i
    outs = embed_network(net, cmp_net, "cmp_", input_map)
    for o in outs.values():
        net.add_output(o)
    # Parity over the ALU result.
    cur = "r0"
    for i in range(1, bits):
        cur = net.add_xor("rp%d" % i, [cur, "r%d" % i])
    net.add_buf("rparity", cur)
    net.add_output("rparity")
    return net


def adder_comparator(bits: int = 16, name: str = "c7552eq") -> Network:
    """Wide adder + magnitude comparator + parity (C7552 class)."""
    net = ripple_adder(bits, name)
    cmp_net = comparator(bits)
    input_map = {}
    for i in range(bits):
        input_map["a%d" % i] = "a%d" % i
        input_map["b%d" % i] = "b%d" % i
    outs = embed_network(net, cmp_net, "cmp_", input_map)
    for o in outs.values():
        net.add_output(o)
    cur = "fa0_s"
    for i in range(1, bits):
        cur = net.add_xor("sp%d" % i, [cur, "fa%d_s" % i])
    net.add_buf("sparity", cur)
    net.add_output("sparity")
    return net


# ----------------------------------------------------------------------
# Default-size equivalents
# ----------------------------------------------------------------------


def iscas_equivalent(name: str) -> Network:
    """Build the default-size functional equivalent of an ISCAS-85 name."""
    builders = {
        "C432": lambda: interrupt_controller(9, "C432eq"),
        "C499": lambda: ecc_corrector(32, 8, "C499eq"),
        "C880": lambda: simple_alu(8, "C880eq"),
        "C1355": lambda: ecc_corrector(32, 8, "C1355eq"),
        "C1908": lambda: ecc_secded(16, 6, "C1908eq"),
        "C3540": lambda: simple_alu(12, "C3540eq"),
        "C5315": lambda: alu_selector(9, "C5315eq"),
        "C6288": lambda: array_multiplier(8, "C6288eq"),
        "C7552": lambda: adder_comparator(16, "C7552eq"),
    }
    if name not in builders:
        raise KeyError("no ISCAS equivalent for %r" % name)
    return builders[name]()
