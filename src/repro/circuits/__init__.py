"""Benchmark circuit generators.

The paper evaluates on MCNC / ISCAS-85 / LGSynth91 circuits and on a
proprietary family of arithmetic circuits (barrel shifters, multipliers).
Those benchmark *files* are not available offline, so this package provides
parametric generators for the same functional classes (see DESIGN.md,
"Substitutions"):

``arith``      adders, array multipliers (mNxN), barrel shifters (bshiftN),
               comparators, parity trees, ALUs
``iscas``      functional equivalents of the ISCAS-85 circuits used in
               Table I (ECC circuits for C499/C1355/C1908, ALUs for
               C880/C3540, multiplier for C6288, adder/comparator for
               C7552, priority+parity controller for C432, ...)
``randlogic``  seeded random-logic networks (stand-ins for pair, rot,
               dalu, vda and the small MCNC random-logic set)
``registry``   name -> builder map with the table memberships
"""

from repro.circuits.arith import (
    array_multiplier,
    barrel_shifter,
    comparator,
    parity_tree,
    ripple_adder,
    simple_alu,
)
from repro.circuits.iscas import iscas_equivalent
from repro.circuits.randlogic import random_logic
from repro.circuits.registry import (
    TABLE1_CIRCUITS,
    TABLE2_MULTIPLIERS,
    TABLE2_SHIFTERS,
    SMALL_ANDOR,
    SMALL_XOR,
    build_circuit,
)

__all__ = [
    "array_multiplier", "barrel_shifter", "comparator", "parity_tree",
    "ripple_adder", "simple_alu", "iscas_equivalent", "random_logic",
    "TABLE1_CIRCUITS", "TABLE2_MULTIPLIERS", "TABLE2_SHIFTERS",
    "SMALL_ANDOR", "SMALL_XOR", "build_circuit",
]
