"""Benchmark registry: named circuits and the table memberships.

``build_circuit(name)`` reproducibly constructs any benchmark used by the
experiment harnesses in ``benchmarks/``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.circuits.arith import (
    array_multiplier,
    barrel_shifter,
    comparator,
    parity_tree,
    ripple_adder,
    simple_alu,
)
from repro.circuits.iscas import iscas_equivalent
from repro.circuits.randlogic import random_logic
from repro.network.network import Network
from repro.sop.cube import lit


def expand_xors(net: Network) -> Network:
    """Replace every 2-input XOR node with its 4-NAND expansion.

    This is exactly the C499 -> C1355 relationship in ISCAS-85: the same
    function with the XOR structure hidden at the gate level, which is what
    makes C1355 hard for algebraic methods and a showcase for BDS.
    """
    xor_cover = {frozenset({lit(0), lit(1, False)}),
                 frozenset({lit(0, False), lit(1)})}
    nand_cover = [frozenset({lit(0, False)}), frozenset({lit(1, False)})]
    for node in list(net.nodes.values()):
        if len(node.fanins) == 2 and set(node.cover) == xor_cover:
            a, b = node.fanins
            n1 = net.add_node(net.fresh_name(node.name + "_n1"), [a, b],
                              list(nand_cover)).name
            n2 = net.add_node(net.fresh_name(node.name + "_n2"), [a, n1],
                              list(nand_cover)).name
            n3 = net.add_node(net.fresh_name(node.name + "_n3"), [n1, b],
                              list(nand_cover)).name
            node.fanins = [n2, n3]
            node.cover = list(nand_cover)
    net.check()
    return net


# -- Table I: large circuits (ISCAS-85 equivalents + LGSynth91-ish) -------

_TABLE1_BUILDERS: Dict[str, Callable[[], Network]] = {
    "C432": lambda: iscas_equivalent("C432"),
    "C499": lambda: iscas_equivalent("C499"),
    "C880": lambda: iscas_equivalent("C880"),
    "C1355": lambda: expand_xors(iscas_equivalent("C1355")),
    "C1908": lambda: iscas_equivalent("C1908"),
    "C3540": lambda: iscas_equivalent("C3540"),
    "C5315": lambda: iscas_equivalent("C5315"),
    "C6288": lambda: iscas_equivalent("C6288"),
    "C7552": lambda: iscas_equivalent("C7552"),
    "pair": lambda: random_logic(40, 180, 16, seed=1001, xor_fraction=0.02,
                                 name="pair_eq"),
    "rot": lambda: random_logic(30, 120, 12, seed=1002, xor_fraction=0.03,
                                name="rot_eq"),
    "dalu": lambda: random_logic(32, 160, 12, seed=1003, xor_fraction=0.08,
                                 name="dalu_eq"),
    "vda": lambda: random_logic(17, 140, 30, seed=1004, xor_fraction=0.02,
                                name="vda_eq"),
}

TABLE1_CIRCUITS: List[str] = list(_TABLE1_BUILDERS)

# -- Table II: the arithmetic family --------------------------------------

TABLE2_SHIFTERS: List[str] = ["bshift4", "bshift8", "bshift16", "bshift32",
                              "bshift64"]
TABLE2_MULTIPLIERS: List[str] = ["m2x2", "m4x4", "m6x6", "m8x8"]

# -- Section V in-text: small/medium MCNC-style sets ----------------------

SMALL_ANDOR: List[str] = ["rl_cm85", "rl_cm151", "rl_mux", "rl_pcle",
                          "rl_cc", "rl_frg1"]
SMALL_XOR: List[str] = ["parity8", "parity16", "add4", "add8", "cmp8",
                        "alu4"]

_SMALL_BUILDERS: Dict[str, Callable[[], Network]] = {
    "rl_cm85": lambda: random_logic(11, 30, 3, seed=2001, xor_fraction=0.0,
                                    name="rl_cm85"),
    "rl_cm151": lambda: random_logic(12, 25, 2, seed=2002, xor_fraction=0.0,
                                     name="rl_cm151"),
    "rl_mux": lambda: random_logic(21, 40, 1, seed=2003, xor_fraction=0.0,
                                   name="rl_mux"),
    "rl_pcle": lambda: random_logic(19, 60, 9, seed=2004, xor_fraction=0.0,
                                    name="rl_pcle"),
    "rl_cc": lambda: random_logic(21, 55, 20, seed=2005, xor_fraction=0.0,
                                  name="rl_cc"),
    "rl_frg1": lambda: random_logic(28, 90, 3, seed=2006, xor_fraction=0.0,
                                    name="rl_frg1"),
    # The XOR-intensive set is delivered with the XOR structure hidden at
    # the gate level (NAND expansion), as the MCNC arithmetic benchmarks
    # are: recovering the XORs is the point of the experiment.
    "parity8": lambda: expand_xors(parity_tree(8)),
    "parity16": lambda: expand_xors(parity_tree(16)),
    "add4": lambda: expand_xors(ripple_adder(4)),
    "add8": lambda: expand_xors(ripple_adder(8)),
    "cmp8": lambda: expand_xors(comparator(8)),
    "alu4": lambda: expand_xors(simple_alu(4)),
}


def build_circuit(name: str) -> Network:
    """Construct any registered benchmark circuit by name."""
    from repro.circuits import extra

    if name in _TABLE1_BUILDERS:
        return _TABLE1_BUILDERS[name]()
    if name in _SMALL_BUILDERS:
        return _SMALL_BUILDERS[name]()
    if name == "rnd4_1":
        return extra.rnd4_1()
    if name.startswith("bshift"):
        return barrel_shifter(int(name[len("bshift"):]))
    if name.startswith("m") and "x" in name:
        bits = int(name[1:name.index("x")])
        return array_multiplier(bits)
    if name.startswith("cla"):
        return extra.carry_lookahead_adder(int(name[3:]))
    if name.startswith("add"):
        return ripple_adder(int(name[3:]))
    if name.startswith("parity"):
        return parity_tree(int(name[6:]))
    if name.startswith("dec"):
        return extra.decoder(int(name[3:]))
    if name.startswith("prio"):
        return extra.priority_encoder(int(name[4:]))
    if name.startswith("gray"):
        return extra.gray_converter(int(name[4:]))
    raise KeyError("unknown benchmark circuit %r" % name)
