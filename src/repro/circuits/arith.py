"""Arithmetic circuit generators: the Table II family and ALU components.

All builders return gate-level :class:`Network` objects built from 2-input
AND/OR/XOR primitives (plus MUX for the shifters), i.e. the same kind of
structural netlists an HDL-to-blif translator (the paper's source for
these circuits) would emit.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.network.network import Network


def _full_adder(net: Network, a: str, b: str, cin: Optional[str],
                prefix: str) -> Tuple[str, str]:
    """Add one bit column; returns (sum, carry)."""
    if cin is None:
        s = net.add_xor(prefix + "_s", [a, b])
        c = net.add_and(prefix + "_c", [a, b])
        return s, c
    t = net.add_xor(prefix + "_t", [a, b])
    s = net.add_xor(prefix + "_s", [t, cin])
    u = net.add_and(prefix + "_u", [t, cin])
    v = net.add_and(prefix + "_v", [a, b])
    c = net.add_or(prefix + "_c", [u, v])
    return s, c


def ripple_adder(bits: int, name: str = "") -> Network:
    """N-bit ripple-carry adder: 2N inputs, N+1 outputs."""
    net = Network(name or "add%d" % bits)
    a = [net.add_input("a%d" % i) for i in range(bits)]
    b = [net.add_input("b%d" % i) for i in range(bits)]
    carry = None
    for i in range(bits):
        s, carry = _full_adder(net, a[i], b[i], carry, "fa%d" % i)
        net.add_output(s)
    net.add_output(carry)
    return net


def array_multiplier(bits: int, name: str = "") -> Network:
    """N x N array multiplier (the paper's ``mNxN``): 2N in, 2N out."""
    net = Network(name or "m%dx%d" % (bits, bits))
    a = [net.add_input("a%d" % i) for i in range(bits)]
    b = [net.add_input("b%d" % i) for i in range(bits)]
    # Partial products.
    columns: List[List[str]] = [[] for _ in range(2 * bits)]
    for i in range(bits):
        for j in range(bits):
            pp = net.add_and("pp_%d_%d" % (i, j), [a[i], b[j]])
            columns[i + j].append(pp)
    # Carry-save reduction, column by column.
    counter = [0]

    def fa(x, y, z):
        counter[0] += 1
        p = "csa%d" % counter[0]
        t = net.add_xor(p + "_t", [x, y])
        s = net.add_xor(p + "_s", [t, z])
        u = net.add_and(p + "_u", [t, z])
        v = net.add_and(p + "_v", [x, y])
        c = net.add_or(p + "_c", [u, v])
        return s, c

    def ha(x, y):
        counter[0] += 1
        p = "ha%d" % counter[0]
        s = net.add_xor(p + "_s", [x, y])
        c = net.add_and(p + "_c", [x, y])
        return s, c

    for col in range(2 * bits):
        while len(columns[col]) > 1:
            if len(columns[col]) >= 3:
                x, y, z = columns[col][:3]
                columns[col] = columns[col][3:]
                s, c = fa(x, y, z)
            else:
                x, y = columns[col][:2]
                columns[col] = columns[col][2:]
                s, c = ha(x, y)
            columns[col].append(s)
            if col + 1 < 2 * bits:
                columns[col + 1].append(c)
        out = columns[col][0] if columns[col] else None
        if out is None:
            out = net.add_const("zero%d" % col, False)
        net.add_buf("p%d" % col, out)
        net.add_output("p%d" % col)
    net.remove_dangling()
    return net


def barrel_shifter(width: int, name: str = "") -> Network:
    """Logarithmic barrel rotator (the paper's ``bshiftN``).

    ``width`` data inputs, log2(width) select inputs, ``width`` outputs;
    built from log2(width) MUX stages.
    """
    if width & (width - 1):
        raise ValueError("width must be a power of two")
    net = Network(name or "bshift%d" % width)
    data = [net.add_input("d%d" % i) for i in range(width)]
    stages = width.bit_length() - 1
    sel = [net.add_input("s%d" % i) for i in range(stages)]
    cur = data
    for stage in range(stages):
        shift = 1 << stage
        nxt = []
        for i in range(width):
            rotated = cur[(i + shift) % width]
            nxt.append(net.add_mux("st%d_%d" % (stage, i), sel[stage],
                                   rotated, cur[i]))
        cur = nxt
    for i, s in enumerate(cur):
        net.add_buf("o%d" % i, s)
        net.add_output("o%d" % i)
    return net


def comparator(bits: int, name: str = "") -> Network:
    """N-bit magnitude comparator: outputs eq, gt, lt."""
    net = Network(name or "cmp%d" % bits)
    a = [net.add_input("a%d" % i) for i in range(bits)]
    b = [net.add_input("b%d" % i) for i in range(bits)]
    eq_bits = []
    for i in range(bits):
        x = net.add_xor("x%d" % i, [a[i], b[i]])
        eq_bits.append(net.add_not("e%d" % i, x))
    # gt: a_i & ~b_i with all higher bits equal.
    gt_terms = []
    for i in reversed(range(bits)):
        nb = net.add_not("nb%d" % i, b[i])
        term = net.add_and("gtb%d" % i, [a[i], nb])
        for j in range(i + 1, bits):
            term = net.add_and("gtb%d_%d" % (i, j), [term, eq_bits[j]])
        gt_terms.append(term)
    gt = gt_terms[0]
    for k, t in enumerate(gt_terms[1:], 1):
        gt = net.add_or("gto%d" % k, [gt, t])
    eq = eq_bits[0]
    for k, e in enumerate(eq_bits[1:], 1):
        eq = net.add_and("eqa%d" % k, [eq, e])
    net.add_buf("eq", eq)
    net.add_buf("gt", gt)
    ngt = net.add_not("ngt", "gt")
    neq = net.add_not("neq", "eq")
    net.add_and("lt", [ngt, neq])
    for o in ("eq", "gt", "lt"):
        net.add_output(o)
    return net


def parity_tree(width: int, name: str = "") -> Network:
    """Balanced XOR tree computing the parity of ``width`` inputs."""
    net = Network(name or "parity%d" % width)
    level = [net.add_input("x%d" % i) for i in range(width)]
    stage = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(net.add_xor("p%d_%d" % (stage, i // 2),
                                   [level[i], level[i + 1]]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        stage += 1
    net.add_buf("parity", level[0])
    net.add_output("parity")
    return net


def simple_alu(bits: int, name: str = "") -> Network:
    """A small ALU: op-select chooses among ADD, AND, OR, XOR.

    2N data inputs + 2 op-select inputs; N+1 outputs (result + carry).
    The mix of an adder (XOR-heavy) and logic ops (AND/OR) makes this the
    C880/C3540 stand-in class.
    """
    net = Network(name or "alu%d" % bits)
    a = [net.add_input("a%d" % i) for i in range(bits)]
    b = [net.add_input("b%d" % i) for i in range(bits)]
    op0 = net.add_input("op0")
    op1 = net.add_input("op1")
    carry = None
    sums = []
    for i in range(bits):
        s, carry = _full_adder(net, a[i], b[i], carry, "fa%d" % i)
        sums.append(s)
    for i in range(bits):
        and_ = net.add_and("andg%d" % i, [a[i], b[i]])
        or_ = net.add_or("org%d" % i, [a[i], b[i]])
        xor_ = net.add_xor("xorg%d" % i, [a[i], b[i]])
        lo = net.add_mux("mlo%d" % i, op0, and_, sums[i])
        hi = net.add_mux("mhi%d" % i, op0, xor_, or_)
        net.add_mux("r%d" % i, op1, hi, lo)
        net.add_output("r%d" % i)
    net.add_output(carry)
    return net
