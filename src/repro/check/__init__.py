"""``repro.check``: executable invariants for BDDs and Boolean networks.

A sanitizer in the ASan/TSan sense, but for BDD managers and netlists
instead of memory: the structural assumptions that every BDS decomposition
silently relies on (canonicity of the unique table, the complement-edge
normal form, variable-order monotonicity, GC bookkeeping, acyclicity of the
network) are stated here as *checks* that can run at pass boundaries.

Modules
-------
``bdd_sanitizer``
    Audits a :class:`repro.bdd.BDD` manager: unique-table canonicity,
    complement-edge normal form, order monotonicity, refcounted roots,
    computed-table hygiene, free-list/tombstone agreement.
``net_lint``
    Lints a :class:`repro.network.Network` or a partitioned (local-BDD)
    network: combinational cycles, dangling fanins, orphaned nodes,
    duplicate outputs, foreign/dead BDD refs.

Every violation is reported as a :class:`Violation` inside a
:class:`CheckReport`; a failed check raises :class:`CheckError` carrying
the violated invariant names, the offending refs and a minimized DOT dump
of the corrupt region.  The :class:`Checker` facade is what the BDS flow
wires through ``BDSOptions.check_level`` (``off`` / ``cheap`` / ``full``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Recognized check levels, in increasing cost order.
CHECK_LEVELS = ("off", "cheap", "full")


@dataclass(frozen=True)
class Violation:
    """One violated invariant instance."""

    invariant: str                 # canonical invariant name (stable API)
    message: str                   # human-readable diagnosis
    refs: Tuple[int, ...] = ()     # offending BDD refs / node indices
    signals: Tuple[str, ...] = ()  # offending network signal names

    def __str__(self) -> str:
        loc = ""
        if self.refs:
            loc = " refs=%s" % (list(self.refs),)
        if self.signals:
            loc += " signals=%s" % (list(self.signals),)
        return "[%s] %s%s" % (self.invariant, self.message, loc)


@dataclass
class CheckReport:
    """Outcome of one sanitizer/lint run."""

    subject: str                   # what was checked ("BDD manager", ...)
    level: str                     # "cheap" or "full"
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    dot: str = ""                  # minimized DOT dump of the corrupt region

    @property
    def ok(self) -> bool:
        return not self.violations

    def invariants(self) -> List[str]:
        """Sorted unique names of the violated invariants."""
        return sorted({v.invariant for v in self.violations})

    def add(self, invariant: str, message: str,
            refs: Tuple[int, ...] = (),
            signals: Tuple[str, ...] = ()) -> None:
        self.violations.append(Violation(invariant, message, refs, signals))

    def format(self) -> str:
        lines = ["%s (%s check): %d violation(s)"
                 % (self.subject, self.level, len(self.violations))]
        lines.extend("  " + str(v) for v in self.violations)
        return "\n".join(lines)


class CheckError(Exception):
    """A sanitizer or lint check failed.

    Carries the full :class:`CheckReport`; ``invariants`` names every
    violated invariant and ``dot`` holds a minimized Graphviz dump of the
    offending region (empty when no graph context applies).
    """

    def __init__(self, report: CheckReport) -> None:
        self.report = report
        self.invariants = report.invariants()
        self.dot = report.dot
        super().__init__(report.format())


class Checker:
    """Stateful facade running checks at flow safe points.

    ``level`` is one of :data:`CHECK_LEVELS`.  ``quick=True`` downgrades a
    ``full`` checker to the cheap per-node audit -- used inside hot loops
    (the eliminate value loop) where the full unique/computed-table scans
    would change the flow's complexity class.

    Quick audits are additionally *amortized*: the cheap scan is
    ``O(allocated slots)``, so running it after every collapse would make
    eliminate quadratic on collapse-heavy circuits.  A quick audit
    therefore only rescans a manager when its state has materially moved
    since the last audit -- a GC sweep happened (the audited bookkeeping
    only changes at sweeps) or the node arrays doubled.  Total audit cost
    then tracks GC cost rather than collapses x nodes.

    The checker only counts *network-side* checks itself; BDD-side counts
    land in each manager's ``perf`` counters (and are merged into
    ``BDSResult.perf`` with every other kernel counter).
    """

    __slots__ = ("level", "checks_run", "violations_found", "_quick_seen")

    def __init__(self, level: str = "off") -> None:
        if level not in CHECK_LEVELS:
            raise ValueError("check_level must be one of %r, got %r"
                             % (CHECK_LEVELS, level))
        self.level = level
        self.checks_run = 0
        self.violations_found = 0
        # id(mgr) -> (gc_sweeps, allocated) at the last quick audit.
        self._quick_seen: Dict[int, Tuple[int, int]] = {}

    def _quick_audit_due(self, mgr: Any) -> bool:
        sweeps = mgr.perf.gc_sweeps
        alloc = mgr.num_nodes_allocated
        seen = self._quick_seen.get(id(mgr))
        if seen is not None and seen[0] == sweeps and alloc < 2 * seen[1]:
            return False
        self._quick_seen[id(mgr)] = (sweeps, max(alloc, 1))
        return True

    @property
    def enabled(self) -> bool:
        return self.level != "off"

    def _effective(self, quick: bool) -> str:
        return "cheap" if (quick and self.level == "full") else self.level

    def check_bdd(self, mgr: Any, subject: str = "BDD manager",
                  quick: bool = False) -> None:
        """Sanitize a manager; raises :class:`CheckError` on violation."""
        if not self.enabled:
            return
        if quick and not self._quick_audit_due(mgr):
            return
        from repro.check.bdd_sanitizer import sanitize_bdd

        try:
            sanitize_bdd(mgr, level=self._effective(quick), subject=subject)
        except CheckError:
            self.violations_found += 1
            raise
        if not quick:  # a full scan subsumes the next quick audit
            self._quick_seen[id(mgr)] = (mgr.perf.gc_sweeps,
                                         max(mgr.num_nodes_allocated, 1))

    def check_network(self, net: Any, subject: str = "network") -> None:
        """Lint a cube network; raises :class:`CheckError` on violation."""
        if not self.enabled:
            return
        from repro.check.net_lint import lint_network

        self.checks_run += 1
        try:
            lint_network(net, level=self.level, subject=subject)
        except CheckError as exc:
            self.violations_found += len(exc.report.violations)
            raise

    def check_partition(self, part: Any, subject: str = "partition",
                        quick: bool = False) -> None:
        """Sanitize a partitioned network's manager and (unless ``quick``)
        lint its signal graph; raises :class:`CheckError` on violation."""
        if not self.enabled:
            return
        self.check_bdd(part.mgr, subject="%s: manager" % subject, quick=quick)
        if quick:
            return
        from repro.check.net_lint import lint_partition

        self.checks_run += 1
        try:
            lint_partition(part, level=self.level, subject=subject)
        except CheckError as exc:
            self.violations_found += len(exc.report.violations)
            raise

    def snapshot(self) -> Dict[str, float]:
        """Network-side counters, shaped for ``repro.perf.merge_snapshots``."""
        return {"checks_run": float(self.checks_run),
                "check_violations": float(self.violations_found)}


from repro.check.bdd_sanitizer import sanitize_bdd  # noqa: E402
from repro.check.net_lint import lint_network, lint_partition  # noqa: E402

__all__ = [
    "CHECK_LEVELS",
    "CheckError",
    "CheckReport",
    "Checker",
    "Violation",
    "lint_network",
    "lint_partition",
    "sanitize_bdd",
]
