"""The BDD manager sanitizer: canonicity and GC-bookkeeping audits.

The decompositions of the paper (simple dominators, Definition 7's
generalized dominators, Theorem 5's x-dominators) are only sound on a
*well-formed* complement-edge ROBDD: one canonical node per ``(var, lo,
hi)`` triple, no redundant nodes, *then* edges never complemented, and
variables strictly ordered along every edge.  PR 1 made the kernel's
canonicity depend on mutable state -- refcounted roots, tombstoned
free-list slots, an overwrite-on-collision computed table -- so this
module makes each assumption executable.

Two levels:

``cheap``
    One pass over the node arrays: terminal slot, complement-edge normal
    form, ``lo != hi`` reduction, edge targets alive and in range,
    variable-order monotonicity, free-list integrity, root-refcount
    sanity, var<->level permutation consistency.  O(allocated slots).

``full``
    Everything above plus: unique-table canonicity (exact bijection with
    the live slots, hence no duplicate triples), computed-table hygiene
    (no current-generation entry referencing a tombstoned slot),
    ``_nodes_by_var`` coverage, tombstone/free-list agreement (every dead
    slot is reusable), a recount of the incremental reorder bookkeeping
    (per-slot reference counts and per-variable node counters that sifting
    trusts for O(1) size reads), and a reachability recount from the
    registered roots.  O(allocated slots + cache slots).

On violation a :class:`repro.check.CheckError` is raised carrying every
finding and a minimized DOT dump of the offending cones.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.bdd.manager import (BDD, CACHE_TAG_REF_POSITIONS, DEAD, ONE,
                               TERMINAL)
from repro.check import CheckError, CheckReport

# Canonical invariant names (stable identifiers; tests assert on these).
INV_TERMINAL = "terminal_node"
INV_REDUNDANT = "redundant_node"
INV_COMPLEMENT = "complement_edge"
INV_ORDER = "variable_order"
INV_DANGLING = "dangling_edge"
INV_UNIQUE = "unique_table"
INV_FREE_LIST = "free_list"
INV_TOMBSTONE = "tombstone_leak"
INV_ROOTS = "root_refcount"
INV_COMPUTED = "computed_table"
INV_NODES_BY_VAR = "nodes_by_var"
INV_VAR_MAPS = "var_order_maps"
INV_REFCOUNT = "node_refcount"
INV_VAR_COUNTS = "var_counts"

#: For each computed-table key tag, the tuple positions holding BDD refs.
#: Shared with the kernel, which uses it to invalidate order-dependent
#: entries during reordering (see :data:`repro.bdd.manager.
#: ORDER_DEPENDENT_TAGS`); a tag added to one side but not the other is a
#: bug this alias would have hidden as a silent sanitizer gap.
_TAG_REF_POSITIONS: Dict[int, Tuple[int, ...]] = CACHE_TAG_REF_POSITIONS

#: Cap on reported violations per run (a corrupt manager would otherwise
#: drown the report in thousands of identical findings).
MAX_VIOLATIONS = 25

#: Cap on nodes rendered into the minimized DOT dump.
MAX_DOT_NODES = 40


def sanitize_bdd(mgr: BDD, level: str = "full", subject: str = "BDD manager",
                 raise_on_violation: bool = True) -> CheckReport:
    """Audit ``mgr``; return a :class:`CheckReport`.

    Raises :class:`CheckError` when violations are found and
    ``raise_on_violation`` is true.  The manager's ``perf`` counters
    (``checks_run`` / ``check_violations``) are updated either way.
    """
    if level not in ("cheap", "full"):
        raise ValueError("sanitizer level must be 'cheap' or 'full', got %r"
                         % (level,))
    report = CheckReport(subject=subject, level=level)
    _check_var_maps(mgr, report)
    _check_terminal(mgr, report)
    free_set = _check_free_list(mgr, report)
    _check_nodes(mgr, report, free_set)
    _check_roots(mgr, report)
    if level == "full":
        _check_unique_table(mgr, report)
        _check_computed_table(mgr, report)
        _check_nodes_by_var(mgr, report)
        _check_tombstones(mgr, report, free_set)
        _check_reorder_bookkeeping(mgr, report)
        _count_reachable(mgr, report)
    report.stats["allocated_slots"] = len(mgr._var)
    report.stats["live_nodes"] = mgr.num_nodes_live
    mgr.perf.checks_run += 1
    mgr.perf.check_violations += len(report.violations)
    if report.violations:
        report.dot = _cone_dot(mgr, _offending_refs(report))
        if raise_on_violation:
            raise CheckError(report)
    return report


# ----------------------------------------------------------------------
# Individual invariant passes
# ----------------------------------------------------------------------


def _full(report: CheckReport) -> bool:
    """True while the report can still take findings (violation cap)."""
    return len(report.violations) >= MAX_VIOLATIONS


def _check_var_maps(mgr: BDD, report: CheckReport) -> None:
    """``_var2level`` and ``_level2var`` must be inverse permutations."""
    v2l, l2v = mgr._var2level, mgr._level2var
    if len(v2l) != len(l2v):
        report.add(INV_VAR_MAPS, "var2level and level2var sizes differ "
                   "(%d vs %d)" % (len(v2l), len(l2v)))
        return
    n = len(v2l)
    for var, lvl in enumerate(v2l):
        if not 0 <= lvl < n or l2v[lvl] != var:
            report.add(INV_VAR_MAPS,
                       "var %d maps to level %r which maps back to %r"
                       % (var, lvl, l2v[lvl] if 0 <= lvl < n else None))
            return


def _check_terminal(mgr: BDD, report: CheckReport) -> None:
    """Slot 0 is the one terminal: var TERMINAL, both children ONE."""
    if not mgr._var or mgr._var[0] != TERMINAL:
        report.add(INV_TERMINAL, "slot 0 is not the terminal node", refs=(0,))
    elif mgr._lo[0] != ONE or mgr._hi[0] != ONE:
        report.add(INV_TERMINAL,
                   "terminal children corrupted (lo=%d hi=%d)"
                   % (mgr._lo[0], mgr._hi[0]), refs=(0,))


def _check_free_list(mgr: BDD, report: CheckReport) -> Set[int]:
    """Free-list integrity: in-range, tombstoned, duplicate-free."""
    n = len(mgr._var)
    free_set: Set[int] = set()
    for idx in mgr._free:
        if not 0 < idx < n:
            report.add(INV_FREE_LIST,
                       "free-list slot %d out of range (arrays hold %d)"
                       % (idx, n), refs=(idx,))
            continue
        if idx in free_set:
            report.add(INV_FREE_LIST, "slot %d on the free list twice" % idx,
                       refs=(idx,))
        free_set.add(idx)
        if mgr._var[idx] != DEAD:
            report.add(INV_FREE_LIST,
                       "live slot %d (var %d) is on the free list"
                       % (idx, mgr._var[idx]), refs=(idx << 1,))
    return free_set


def _check_nodes(mgr: BDD, report: CheckReport, free_set: Set[int]) -> None:
    """Per-node structural audit (the cheap O(slots) core)."""
    var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
    v2l = mgr._var2level
    nvars = mgr.num_vars
    n = len(var_arr)
    for idx in range(1, n):
        if _full(report):
            return
        var = var_arr[idx]
        if var == DEAD:
            continue
        ref = idx << 1
        if not 0 <= var < nvars:
            report.add(INV_DANGLING,
                       "slot %d labelled with invalid variable id %d"
                       % (idx, var), refs=(ref,))
            continue
        lo, hi = lo_arr[idx], hi_arr[idx]
        if hi & 1:
            report.add(INV_COMPLEMENT,
                       "slot %d stores a complemented then-edge (hi=%d)"
                       % (idx, hi), refs=(ref,))
        if lo == hi:
            report.add(INV_REDUNDANT,
                       "slot %d is redundant (lo == hi == %d)" % (idx, lo),
                       refs=(ref,))
        level = v2l[var]
        for edge_name, child in (("lo", lo), ("hi", hi)):
            cidx = child >> 1
            if not 0 <= cidx < n:
                report.add(INV_DANGLING,
                           "slot %d %s-edge targets out-of-range slot %d"
                           % (idx, edge_name, cidx), refs=(ref, child))
                continue
            cvar = var_arr[cidx]
            if cidx and cvar == DEAD:
                report.add(INV_DANGLING,
                           "slot %d %s-edge targets tombstoned slot %d"
                           % (idx, edge_name, cidx), refs=(ref, child))
                continue
            if cidx and 0 <= cvar < nvars and v2l[cvar] <= level:
                report.add(INV_ORDER,
                           "slot %d (var %s, level %d) %s-edge reaches var %s"
                           " at level %d (order must strictly increase)"
                           % (idx, mgr.var_name(var), level, edge_name,
                              mgr.var_name(cvar), v2l[cvar]),
                           refs=(ref, child))


def _check_roots(mgr: BDD, report: CheckReport) -> None:
    """Registered roots: positive refcounts pointing at live slots."""
    n = len(mgr._var)
    for ref, count in mgr._roots.items():
        if _full(report):
            return
        if count <= 0:
            report.add(INV_ROOTS,
                       "root ref %d has non-positive refcount %d"
                       % (ref, count), refs=(ref,))
        idx = ref >> 1
        if not 0 <= idx < n:
            report.add(INV_ROOTS, "root ref %d targets out-of-range slot %d"
                       % (ref, idx), refs=(ref,))
        elif idx and mgr._var[idx] == DEAD:
            report.add(INV_ROOTS, "root ref %d targets tombstoned slot %d"
                       % (ref, idx), refs=(ref,))


def _check_unique_table(mgr: BDD, report: CheckReport) -> None:
    """The unique table must be an exact bijection with the live slots.

    Both directions matter: a live slot missing from the table lets ``mk``
    allocate a duplicate triple (breaking canonicity silently), while a
    table entry for a dead or mismatched slot resurrects garbage.
    """
    var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
    unique = mgr._unique
    n = len(var_arr)
    live = 0
    for idx in range(1, n):
        if _full(report):
            return
        var = var_arr[idx]
        if var == DEAD:
            continue
        live += 1
        key = (var, lo_arr[idx], hi_arr[idx])
        mapped = unique.get(key)
        if mapped != idx:
            if mapped is None:
                report.add(INV_UNIQUE,
                           "live slot %d triple %r missing from the unique"
                           " table" % (idx, key), refs=(idx << 1,))
            else:
                report.add(INV_UNIQUE,
                           "duplicate triple %r: slots %d and %d both live"
                           % (key, idx, mapped), refs=(idx << 1, mapped << 1))
    extra = len(unique) - live
    if extra > 0 and not _full(report):
        stale = [(k, i) for k, i in unique.items()
                 if not (0 < i < n) or var_arr[i] == DEAD
                 or (var_arr[i], lo_arr[i], hi_arr[i]) != k]
        for key, idx in stale[:5]:
            report.add(INV_UNIQUE,
                       "unique-table entry %r -> slot %d does not match a"
                       " live node" % (key, idx),
                       refs=(idx << 1,) if 0 <= idx < n else ())
        if not stale:
            report.add(INV_UNIQUE,
                       "unique table holds %d more entries than live nodes"
                       % extra)


def _check_computed_table(mgr: BDD, report: CheckReport) -> None:
    """No current-generation cache entry may reference a tombstoned slot.

    Stale entries are *expected* after GC bumps the generation; only
    entries the kernel would still serve (``s[2] == gen``) are audited.
    """
    cache = mgr._cache
    var_arr = mgr._var
    n = len(var_arr)
    gen = cache.gen

    def dead(ref: Any) -> bool:
        if not isinstance(ref, int):
            return True
        idx = ref >> 1
        return not 0 <= idx < n or (idx and var_arr[idx] == DEAD)

    for slot_no, s in enumerate(cache.slots):
        if _full(report):
            return
        if s is None or s[2] != gen:
            continue
        key, result = s[0], s[1]
        if dead(result):
            report.add(INV_COMPUTED,
                       "cache slot %d result ref %r is dead or out of range"
                       " (key=%r)" % (slot_no, result, key),
                       refs=(result,) if isinstance(result, int) else ())
            continue
        if isinstance(key, tuple) and key and isinstance(key[0], int):
            for pos in _TAG_REF_POSITIONS.get(key[0], ()):
                if pos < len(key) and dead(key[pos]):
                    report.add(INV_COMPUTED,
                               "cache slot %d key %r references dead ref at"
                               " position %d" % (slot_no, key, pos),
                               refs=(key[pos],)
                               if isinstance(key[pos], int) else ())
                    break


def _check_nodes_by_var(mgr: BDD, report: CheckReport) -> None:
    """Every live node must appear in its variable's bucket.

    Stale (dead or re-labelled) entries in a bucket are tolerated by
    design -- consumers re-check ``_var`` -- but a *missing* live entry
    would hide the node from reordering forever.
    """
    buckets: Dict[int, Set[int]] = {
        var: set(nodes) for var, nodes in mgr._nodes_by_var.items()}
    var_arr = mgr._var
    for idx in range(1, len(var_arr)):
        if _full(report):
            return
        var = var_arr[idx]
        if var == DEAD:
            continue
        if idx not in buckets.get(var, set()):
            report.add(INV_NODES_BY_VAR,
                       "live slot %d missing from _nodes_by_var[%d]"
                       % (idx, var), refs=(idx << 1,))


def _check_tombstones(mgr: BDD, report: CheckReport,
                      free_set: Set[int]) -> None:
    """Tombstone/free-list agreement: every dead slot is reusable.

    Only valid at GC safe points: ``swap_adjacent`` legitimately
    tombstones dead nodes mid-sift and the following ``collect_garbage``
    reclaims them, which is why this is a *full*-level check run at pass
    boundaries, not inside reordering.
    """
    var_arr = mgr._var
    for idx in range(1, len(var_arr)):
        if _full(report):
            return
        if var_arr[idx] == DEAD and idx not in free_set:
            report.add(INV_TOMBSTONE,
                       "tombstoned slot %d is not on the free list"
                       " (leaked until the next sweep)" % idx, refs=(idx,))


def _check_reorder_bookkeeping(mgr: BDD, report: CheckReport) -> None:
    """The incremental reorder counters must equal recomputed ground truth.

    ``_ref[i]`` is defined as the number of edges into slot ``i`` from
    allocated non-dead nodes plus the slot's root registrations;
    ``_var_counts[v]`` as the number of allocated non-dead nodes labelled
    ``v``.  ``mk``, ``swap_adjacent`` and the GC sweeps maintain both in
    O(touched nodes), and sifting trusts them for its O(1) live-size
    reads -- silent drift would corrupt every reordering decision without
    any crash, which is exactly the failure class a sanitizer exists for.
    """
    var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
    n = len(var_arr)
    ref_arr = mgr._ref
    if len(ref_arr) != n:
        report.add(INV_REFCOUNT,
                   "_ref length %d does not match %d allocated slots"
                   % (len(ref_arr), n))
        return
    nvars = mgr.num_vars
    truth = [0] * n
    counts = [0] * nvars
    for idx in range(1, n):
        var = var_arr[idx]
        if var == DEAD:
            continue
        if 0 <= var < nvars:
            counts[var] += 1
        for child in (lo_arr[idx], hi_arr[idx]):
            cidx = child >> 1
            if 0 <= cidx < n:
                truth[cidx] += 1
    for root, rcount in mgr._roots.items():
        idx = root >> 1
        if 0 <= idx < n:
            truth[idx] += rcount
    for idx in range(n):
        if _full(report):
            return
        if ref_arr[idx] != truth[idx]:
            report.add(INV_REFCOUNT,
                       "slot %d refcount drift: stored %d, recounted %d"
                       % (idx, ref_arr[idx], truth[idx]),
                       refs=(idx << 1,) if idx else ())
    stored = mgr._var_counts
    if len(stored) != nvars:
        report.add(INV_VAR_COUNTS,
                   "_var_counts length %d does not match %d variables"
                   % (len(stored), nvars))
        return
    for var in range(nvars):
        if _full(report):
            return
        if stored[var] != counts[var]:
            report.add(INV_VAR_COUNTS,
                       "var %s node-count drift: stored %d, recounted %d"
                       % (mgr.var_name(var), stored[var], counts[var]))


def _count_reachable(mgr: BDD, report: CheckReport) -> None:
    """Recount reachability from the registered roots (refcount audit).

    With live edges already verified to target live slots, every node
    reachable from a live root is live; the recount feeds the report's
    stats so callers can compare against ``num_nodes_live``.
    """
    var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
    n = len(var_arr)
    seen: Set[int] = {0}
    stack = [r >> 1 for r in mgr._roots if 0 <= r >> 1 < n]
    while stack:
        idx = stack.pop()
        if idx in seen or var_arr[idx] == DEAD:
            continue
        seen.add(idx)
        stack.append(lo_arr[idx] >> 1)
        stack.append(hi_arr[idx] >> 1)
    report.stats["reachable_from_roots"] = len(seen) - 1


# ----------------------------------------------------------------------
# Minimized DOT dump of the offending region
# ----------------------------------------------------------------------


def _offending_refs(report: CheckReport) -> List[int]:
    out: List[int] = []
    for v in report.violations:
        for ref in v.refs:
            if ref not in out:
                out.append(ref)
    return out


def _cone_dot(mgr: BDD, refs: List[int], max_nodes: int = MAX_DOT_NODES) -> str:
    """Tolerant DOT render of the cones under the offending refs.

    Unlike :func:`repro.bdd.dot.to_dot` this survives tombstoned slots,
    out-of-range edges and invalid variable ids -- the corruption being
    reported is exactly what a pretty-printer would choke on.  The dump is
    truncated at ``max_nodes`` nodes to stay attachable to a bug report.
    """
    var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
    n = len(var_arr)
    lines = ["digraph bdd_check {", "  rankdir=TB;",
             '  n0 [shape=box,label="1"];']
    seen: Set[int] = set()
    stack: List[int] = []
    for i, ref in enumerate(refs):
        lines.append('  "v%d" [shape=plaintext,label="violation %d"];'
                     % (i, i))
        style = "dotted" if ref & 1 else "solid"
        lines.append('  "v%d" -> n%d [style=%s];' % (i, ref >> 1, style))
        stack.append(ref >> 1)
    while stack and len(seen) < max_nodes:
        idx = stack.pop()
        if idx in seen or idx == 0:
            continue
        seen.add(idx)
        if not 0 <= idx < n:
            lines.append('  n%d [shape=octagon,label="out of range"];' % idx)
            continue
        var = var_arr[idx]
        if var == DEAD:
            lines.append('  n%d [shape=octagon,label="DEAD slot %d"];'
                         % (idx, idx))
            continue
        if 0 <= var < mgr.num_vars:
            label = mgr.var_name(var)
        else:
            label = "var?%d" % var
        lines.append('  n%d [shape=circle,label="%s"];' % (idx, label))
        lo, hi = lo_arr[idx], hi_arr[idx]
        lo_style = "dotted" if lo & 1 else "dashed"
        lines.append('  n%d -> n%d [style=%s];' % (idx, lo >> 1, lo_style))
        lines.append('  n%d -> n%d [style=solid];' % (idx, hi >> 1))
        stack.append(lo >> 1)
        stack.append(hi >> 1)
    lines.append("}")
    return "\n".join(lines)
