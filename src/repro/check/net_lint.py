"""Netlist lints: structural invariants of cube networks and partitions.

The BDS flow assumes (and the paper's valid-cut/decomposition machinery of
Section III-C requires) that the network being optimized is a combinational
DAG with every fanin driven and every output resolvable.  This module
states those assumptions as checks over both network representations:

* :func:`lint_network` -- a :class:`repro.network.Network` (cube covers):
  combinational cycles, dangling fanins, duplicate output declarations,
  duplicate fanins, cover literals out of fanin range, undriven outputs
  and (at ``full`` level) internal nodes orphaned from every output.
* :func:`lint_partition` -- a ``PartitionedNetwork`` (local BDDs):
  the same signal-graph invariants restated over BDD supports, plus
  ref-ownership checks (every node's BDD ref must be a live ref of the
  partition's *own* manager -- a ref smuggled across managers indexes
  unrelated storage and silently denotes a different function).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Set, Tuple

from repro.check import CheckError, CheckReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.network.eliminate import PartitionedNetwork
    from repro.network.network import Network

# Canonical invariant names (stable identifiers; tests assert on these).
INV_CYCLE = "combinational_cycle"
INV_DANGLING_FANIN = "dangling_fanin"
INV_DUPLICATE_OUTPUT = "duplicate_output"
INV_DUPLICATE_FANIN = "duplicate_fanin"
INV_COVER_RANGE = "cover_fanin_range"
INV_UNDRIVEN_OUTPUT = "undriven_output"
INV_ORPHAN_NODE = "orphan_node"
INV_FOREIGN_REF = "foreign_bdd_ref"
INV_SIG_VAR = "signal_variable_map"

MAX_VIOLATIONS = 25


def lint_network(net: "Network", level: str = "full",
                 subject: str = "network",
                 raise_on_violation: bool = True) -> CheckReport:
    """Lint a cube network; raises :class:`CheckError` on violations."""
    if level not in ("cheap", "full"):
        raise ValueError("lint level must be 'cheap' or 'full', got %r"
                         % (level,))
    report = CheckReport(subject=subject, level=level)
    driven = set(net.inputs) | set(net.nodes)
    _check_duplicate_outputs(net.outputs, report)
    for o in net.outputs:
        if o not in driven:
            report.add(INV_UNDRIVEN_OUTPUT, "output %r is driven by no node"
                       " or input" % o, signals=(o,))
    fanin_graph: Dict[str, List[str]] = {}
    for node in net.nodes.values():
        if len(report.violations) >= MAX_VIOLATIONS:
            break
        fanin_graph[node.name] = list(node.fanins)
        for f in node.fanins:
            if f not in driven:
                report.add(INV_DANGLING_FANIN,
                           "node %r has undriven fanin %r" % (node.name, f),
                           signals=(node.name, f))
        if len(set(node.fanins)) != len(node.fanins):
            report.add(INV_DUPLICATE_FANIN,
                       "node %r lists a fanin twice: %r"
                       % (node.name, node.fanins), signals=(node.name,))
        supp = _cover_support(node.cover)
        if supp and max(supp) >= len(node.fanins):
            report.add(INV_COVER_RANGE,
                       "node %r cover references fanin position %d but only"
                       " %d fanins exist"
                       % (node.name, max(supp), len(node.fanins)),
                       signals=(node.name,))
    cycle = _find_cycle(fanin_graph)
    if cycle:
        report.add(INV_CYCLE, "combinational cycle: %s"
                   % " -> ".join(cycle + cycle[:1]), signals=tuple(cycle))
    if level == "full" and not cycle:
        _check_orphans(net, report)
    report.stats["nodes"] = len(net.nodes)
    report.stats["outputs"] = len(net.outputs)
    if report.violations and raise_on_violation:
        raise CheckError(report)
    return report


def lint_partition(part: "PartitionedNetwork", level: str = "full",
                   subject: str = "partition",
                   raise_on_violation: bool = True) -> CheckReport:
    """Lint a partitioned (local-BDD) network against its signal graph."""
    if level not in ("cheap", "full"):
        raise ValueError("lint level must be 'cheap' or 'full', got %r"
                         % (level,))
    from repro.bdd.manager import DEAD
    from repro.bdd.traverse import support

    report = CheckReport(subject=subject, level=level)
    mgr = part.mgr
    n = len(mgr._var)
    _check_duplicate_outputs(part.outputs, report)
    known = set(part.inputs) | set(part.refs)
    for o in part.outputs:
        if o not in known:
            report.add(INV_UNDRIVEN_OUTPUT,
                       "output %r has no local BDD and is not an input" % o,
                       signals=(o,))
    var_owner = {var: sig for sig, var in part.sig_var.items()}
    if len(var_owner) != len(part.sig_var):
        report.add(INV_SIG_VAR, "sig_var maps two signals to one manager"
                   " variable")
    fanin_graph: Dict[str, List[str]] = {}
    for name, ref in part.refs.items():
        if len(report.violations) >= MAX_VIOLATIONS:
            break
        idx = ref >> 1
        if not 0 <= idx < n or (idx and mgr._var[idx] == DEAD):
            report.add(INV_FOREIGN_REF,
                       "node %r holds ref %d which is dead or not owned by"
                       " the partition's manager" % (name, ref),
                       refs=(ref,), signals=(name,))
            fanin_graph[name] = []
            continue
        if name not in part.sig_var and name not in part.inputs:
            report.add(INV_SIG_VAR,
                       "node %r has no manager variable in sig_var" % name,
                       signals=(name,))
        fanins: List[str] = []
        for var in support(mgr, ref):
            sig = var_owner.get(var, mgr.var_name(var))
            fanins.append(sig)
            if sig not in known:
                report.add(INV_DANGLING_FANIN,
                           "node %r depends on signal %r which is neither an"
                           " input nor a live node" % (name, sig),
                           signals=(name, sig))
        fanin_graph[name] = fanins
    cycle = _find_cycle(fanin_graph)
    if cycle:
        report.add(INV_CYCLE, "combinational cycle through local BDDs: %s"
                   % " -> ".join(cycle + cycle[:1]), signals=tuple(cycle))
    report.stats["nodes"] = len(part.refs)
    report.stats["outputs"] = len(part.outputs)
    if report.violations and raise_on_violation:
        raise CheckError(report)
    return report


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _cover_support(cover: List[FrozenSet[int]]) -> Set[int]:
    out: Set[int] = set()
    for cube in cover:
        for lit in cube:
            out.add(lit >> 1)
    return out


def _check_duplicate_outputs(outputs: List[str], report: CheckReport) -> None:
    seen: Set[str] = set()
    for o in outputs:
        if o in seen:
            report.add(INV_DUPLICATE_OUTPUT,
                       "output %r declared more than once" % o, signals=(o,))
        seen.add(o)


def _find_cycle(fanin_graph: Dict[str, List[str]]) -> List[str]:
    """Return one combinational cycle (as a signal list) or ``[]``.

    Iterative three-color DFS over the fanin relation; signals outside the
    graph (primary inputs) are terminals.  A self-dependency (a node whose
    local function mentions its own variable) is a one-element cycle.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    parent: Dict[str, str] = {}
    for root in fanin_graph:
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        while stack:
            name, phase = stack.pop()
            if phase == 1:
                color[name] = BLACK
                continue
            if name not in fanin_graph:
                color[name] = BLACK
                continue
            state = color.get(name, WHITE)
            if state == BLACK:
                continue
            color[name] = GREY
            stack.append((name, 1))
            for f in fanin_graph[name]:
                fstate = color.get(f, WHITE)
                if fstate == GREY:
                    # Found a back edge: unwind the parent chain.
                    cycle = [name]
                    cur = name
                    while cur != f:
                        cur = parent.get(cur, f)
                        cycle.append(cur)
                        if len(cycle) > len(fanin_graph) + 1:
                            break
                    cycle = cycle[:-1] if cycle[-1] == f and len(cycle) > 1 \
                        else cycle
                    if f not in cycle:
                        cycle.append(f)
                    return list(reversed(cycle))
                if fstate == WHITE and f in fanin_graph:
                    parent[f] = name
                    stack.append((f, 0))
    return []


def _check_orphans(net: "Network", report: CheckReport) -> None:
    """Internal nodes unreachable from every output (full level only)."""
    live: Set[str] = set()
    stack = [o for o in net.outputs]
    while stack:
        name = stack.pop()
        if name in live or name not in net.nodes:
            continue
        live.add(name)
        stack.extend(net.nodes[name].fanins)
    for name in net.nodes:
        if len(report.violations) >= MAX_VIOLATIONS:
            return
        if name not in live:
            report.add(INV_ORPHAN_NODE,
                       "node %r is reachable from no primary output" % name,
                       signals=(name,))
