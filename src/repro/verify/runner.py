"""One verification entry point shared by the flow, the CLI and the fuzzer.

``verify_networks`` compares an implementation against its specification at
one of three strengths:

``"sim"``
    Simulation only -- exhaustive (a proof) at or below
    :data:`repro.verify.simulate.EXHAUSTIVE_LIMIT` inputs, seeded random
    patterns above.
``"cec"``
    BDD-based equivalence checking (Section V); outputs whose global BDD
    exceeds ``size_cap`` are reported in ``unknown_outputs`` rather than
    silently passing.
``"full"``
    CEC first, then a simulation cross-check whenever the cap left any
    output unknown -- the paper's own C6288 fallback.

``require_equivalent`` wraps the same comparison and raises
:class:`VerifyError` (carrying the counterexample assignment) on mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.network import Network
from repro.verify.cec import DEFAULT_SIZE_CAP, check_equivalence
from repro.verify.simulate import simulate_equivalence

#: Recognized verification modes, in increasing strength order.
VERIFY_MODES = ("off", "sim", "cec", "full")


class VerifyError(Exception):
    """An optimized network disagrees with its specification.

    Carries the verification ``mode``, the ``failing_output`` name and the
    ``counterexample`` input assignment that distinguishes the networks,
    plus the checked/unknown bookkeeping gathered before the mismatch.
    """

    def __init__(self, message: str, mode: str,
                 failing_output: Optional[str] = None,
                 counterexample: Optional[Dict[str, bool]] = None,
                 outputs_checked: int = 0,
                 unknown_outputs: Optional[List[str]] = None) -> None:
        self.mode = mode
        self.failing_output = failing_output
        self.counterexample = dict(counterexample or {})
        self.outputs_checked = outputs_checked
        self.unknown_outputs = list(unknown_outputs or [])
        super().__init__(message)


@dataclass
class VerifyOutcome:
    """Result of one specification-vs-implementation comparison."""

    mode: str
    equivalent: bool                   # no mismatch found
    proven: bool                       # every output proven equal
    outputs_checked: int               # outputs proven (CEC) or simulated
    unknown_outputs: List[str] = field(default_factory=list)
    failing_output: Optional[str] = None
    counterexample: Optional[Dict[str, bool]] = None

    def describe(self) -> str:
        if not self.equivalent:
            return ("NOT equivalent (%s): output %r differs under %r"
                    % (self.mode, self.failing_output, self.counterexample))
        if self.unknown_outputs:
            return ("inconclusive (%s): %d output(s) exceeded the BDD cap: %s"
                    % (self.mode, len(self.unknown_outputs),
                       ", ".join(self.unknown_outputs)))
        return ("equivalent (%s): %d output(s) checked"
                % (self.mode, self.outputs_checked))


def verify_networks(spec: Network, impl: Network, mode: str = "cec",
                    size_cap: int = DEFAULT_SIZE_CAP, seed: int = 1355,
                    rounds: int = 16, width: int = 256,
                    deadline: Optional[float] = None) -> VerifyOutcome:
    """Compare ``impl`` against ``spec``; never raises on mismatch.

    ``deadline`` (a ``time.monotonic()`` instant) bounds the BDD proof
    attempt; outputs not proven in time land in ``unknown_outputs`` (and
    get simulated in mode "full").
    """
    if mode not in VERIFY_MODES or mode == "off":
        raise ValueError("verify mode must be one of %r, got %r"
                         % (VERIFY_MODES[1:], mode))
    if mode == "sim":
        return _simulate_outcome(spec, impl, "sim", seed, rounds, width)

    res = check_equivalence(spec, impl, size_cap=size_cap, deadline=deadline)
    if res.counterexample is not None:
        return VerifyOutcome(mode, equivalent=False, proven=False,
                             outputs_checked=len(res.checked_outputs),
                             unknown_outputs=list(res.unknown_outputs),
                             failing_output=res.failing_output,
                             counterexample=res.counterexample)
    if mode == "full" and res.unknown_outputs:
        sim = _simulate_outcome(spec, impl, "full", seed, rounds, width)
        if not sim.equivalent:
            sim.outputs_checked = len(res.checked_outputs)
            sim.unknown_outputs = list(res.unknown_outputs)
            return sim
        if sim.proven:
            # The cross-check was exhaustive: capped outputs are proven
            # after all, not merely unrefuted.
            return VerifyOutcome(mode, equivalent=True, proven=True,
                                 outputs_checked=len(spec.outputs))
    return VerifyOutcome(mode, equivalent=True,
                         proven=not res.unknown_outputs,
                         outputs_checked=len(res.checked_outputs),
                         unknown_outputs=list(res.unknown_outputs))


def require_equivalent(spec: Network, impl: Network, mode: str = "cec",
                       size_cap: int = DEFAULT_SIZE_CAP, seed: int = 1355,
                       rounds: int = 16, width: int = 256,
                       deadline: Optional[float] = None,
                       subject: str = "optimized network") -> VerifyOutcome:
    """Like :func:`verify_networks` but raises :class:`VerifyError` on
    mismatch; inconclusive (capped) outputs do *not* raise -- callers see
    them in ``unknown_outputs`` and decide."""
    outcome = verify_networks(spec, impl, mode=mode, size_cap=size_cap,
                              seed=seed, rounds=rounds, width=width,
                              deadline=deadline)
    if not outcome.equivalent:
        raise VerifyError(
            "%s fails verification (%s): %s" % (subject, mode,
                                                outcome.describe()),
            mode=mode, failing_output=outcome.failing_output,
            counterexample=outcome.counterexample,
            outputs_checked=outcome.outputs_checked,
            unknown_outputs=outcome.unknown_outputs)
    return outcome


def _simulate_outcome(spec: Network, impl: Network, mode: str, seed: int,
                      rounds: int, width: int) -> VerifyOutcome:
    from repro.verify.simulate import EXHAUSTIVE_LIMIT

    agree, cex = simulate_equivalence(spec, impl, rounds=rounds, width=width,
                                      seed=seed)
    exhaustive = len(spec.inputs) <= EXHAUSTIVE_LIMIT
    if agree:
        return VerifyOutcome(mode, equivalent=True, proven=exhaustive,
                             outputs_checked=len(spec.outputs))
    assert cex is not None
    failing = _failing_output(spec, impl, cex)
    return VerifyOutcome(mode, equivalent=False, proven=False,
                         outputs_checked=0, failing_output=failing,
                         counterexample=cex)


def _failing_output(spec: Network, impl: Network,
                    cex: Dict[str, bool]) -> Optional[str]:
    """Name one output the counterexample actually distinguishes."""
    got_spec = spec.eval(cex)
    got_impl = impl.eval(cex)
    for name in spec.outputs:
        if got_spec[name] != got_impl[name]:
            return name
    return None
