"""Verification: BDD-based combinational equivalence checking (the paper's
``-verify`` option) plus bit-parallel random simulation as a fallback for
circuits whose global BDDs blow up (the paper could not verify C6288 either
way and fell back to per-step checks)."""

from repro.verify.cec import check_equivalence, EquivalenceResult
from repro.verify.simulate import simulate_equivalence

__all__ = ["check_equivalence", "EquivalenceResult", "simulate_equivalence"]
