"""Verification: BDD-based combinational equivalence checking (the paper's
``-verify`` option) plus bit-parallel simulation -- exhaustive on small
input counts, random-pattern fallback for circuits whose global BDDs blow
up (the paper could not verify C6288 either way and fell back to per-step
checks).  :mod:`repro.verify.runner` is the shared entry point used by the
flow (``BDSOptions.verify``), the CLI and the differential fuzzer."""

from repro.verify.cec import (DEFAULT_SIZE_CAP, EquivalenceResult,
                              check_equivalence)
from repro.verify.runner import (
    VERIFY_MODES,
    VerifyError,
    VerifyOutcome,
    require_equivalent,
    verify_networks,
)
from repro.verify.simulate import EXHAUSTIVE_LIMIT, simulate_equivalence

__all__ = [
    "DEFAULT_SIZE_CAP",
    "EXHAUSTIVE_LIMIT",
    "EquivalenceResult",
    "VERIFY_MODES",
    "VerifyError",
    "VerifyOutcome",
    "check_equivalence",
    "require_equivalent",
    "simulate_equivalence",
    "verify_networks",
]
