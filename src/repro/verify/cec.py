"""BDD-based combinational equivalence checking.

Builds global BDDs (one manager, FORCE-derived initial order) for both
networks output-by-output and compares canonical refs -- exactly how both
BDS and SIS verify synthesis results (Section V).  A node-count cap guards
against blowup; capped outputs are reported as ``unknown`` and should be
cross-checked by simulation.
"""

from __future__ import annotations

import time
from typing import Dict, List, NamedTuple, Optional

from repro.bdd import BDD, BddBudgetExceeded, ONE, ZERO, force_order
from repro.bdd.traverse import pick_assignment
from repro.network.network import Network


class EquivalenceResult(NamedTuple):
    equivalent: bool
    checked_outputs: List[str]
    unknown_outputs: List[str]        # blew the size cap
    counterexample: Optional[Dict[str, bool]]
    failing_output: Optional[str]


#: Default per-output work budget (fresh node allocations).  Sized so every
#: proof the test suite relies on completes (the worst, C432 optimized vs.
#: original, needs ~600k) while still cutting off exponential blowups.
DEFAULT_SIZE_CAP = 2_000_000


def check_equivalence(a: Network, b: Network, size_cap: int = DEFAULT_SIZE_CAP,
                      deadline: Optional[float] = None) -> EquivalenceResult:
    """Check that two networks implement the same functions.

    Requires identical input and output name sets.  Returns a result whose
    ``equivalent`` is True only when *every* output was proven equal.
    ``size_cap`` bounds the *work* per output: once building an output's
    global BDD has allocated that many fresh nodes the output is abandoned
    to ``unknown_outputs`` (to be cross-checked by simulation).  Capping
    work rather than final size matters in practice -- an output can grow
    millions of intermediate nodes and still collapse to a small BDD.
    ``deadline`` (a ``time.monotonic()`` instant) bounds the whole call the
    same way: outputs not proven by then are reported unknown.
    """
    if set(a.inputs) != set(b.inputs):
        raise ValueError("input sets differ: %r vs %r"
                         % (sorted(a.inputs), sorted(b.inputs)))
    if sorted(a.outputs) != sorted(b.outputs):
        raise ValueError("output sets differ")

    mgr = BDD()
    order = _initial_order(a)
    var_of: Dict[str, int] = {}
    for name in order:
        var_of[name] = mgr.new_var(name)

    cache_a: Dict[str, Optional[int]] = {}
    cache_b: Dict[str, Optional[int]] = {}
    checked: List[str] = []
    unknown: List[str] = []
    for out in a.outputs:
        if deadline is not None and time.monotonic() > deadline:
            unknown.append(out)
            continue
        ref_a = _global_bdd(mgr, a, out, var_of, cache_a, size_cap, deadline)
        ref_b = _global_bdd(mgr, b, out, var_of, cache_b, size_cap, deadline)
        if ref_a is None or ref_b is None:
            unknown.append(out)
            continue
        if ref_a != ref_b:
            diff = mgr.xor_(ref_a, ref_b)
            partial = pick_assignment(mgr, diff)
            cex = {name: partial.get(var_of[name], False) for name in a.inputs}
            return EquivalenceResult(False, checked, unknown, cex, out)
        checked.append(out)
    return EquivalenceResult(len(unknown) == 0, checked, unknown, None, None)


def _initial_order(net: Network) -> List[str]:
    """FORCE ordering over node supports for a decent global order."""
    names = list(net.inputs)
    index = {n: i for i, n in enumerate(names)}
    groups = []
    # Hyperedges: transitive input support of each node, approximated by
    # direct PI fanins per node cone frontier (cheap but effective).
    pi_support: Dict[str, set] = {i: {i} for i in net.inputs}
    for node in net.topological():
        supp = set()
        for f in node.fanins:
            supp |= pi_support.get(f, set())
        pi_support[node.name] = supp
    for out in net.outputs:
        supp = pi_support.get(out, {out} if out in net.inputs else set())
        if supp:
            groups.append([index[s] for s in supp])
    order_idx = force_order(groups, len(names))
    return [names[i] for i in order_idx]


#: Allocation granularity of the abort check: the kernel interrupts the
#: build every this-many fresh nodes so a single deep operator call cannot
#: blow past the work cap or the deadline unchecked.
_BUDGET_CHUNK = 4096


def _global_bdd(mgr: BDD, net: Network, output: str, var_of: Dict[str, int],
                cache: Dict[str, Optional[int]], size_cap: int,
                deadline: Optional[float] = None) -> Optional[int]:
    """Global BDD of one output; None when the work budget runs out.

    The work cap is enforced by the kernel itself: the manager's
    allocation limit is advanced in :data:`_BUDGET_CHUNK` steps, and at
    every :class:`BddBudgetExceeded` interrupt we either give up (cap or
    deadline exhausted) or extend the window and resume.  Resuming is
    cheap -- completed nodes sit in ``cache`` and the operator caches
    replay the partial work.
    """
    budget_start = mgr.perf.nodes_allocated

    def exhausted() -> bool:
        if mgr.perf.nodes_allocated - budget_start >= size_cap:
            return True
        return deadline is not None and time.monotonic() > deadline

    def build(name: str) -> int:
        if name in var_of and name not in net.nodes:
            return mgr.var_ref(var_of[name])
        ref = cache.get(name)
        if ref is not None:
            return ref
        node = net.nodes[name]
        fanin_refs = [build(f) for f in node.fanins]
        acc = ZERO
        for cube in node.cover:
            term = ONE
            for l in cube:
                term = mgr.and_(term, fanin_refs[l >> 1] ^ (l & 1))
                if term == ZERO:
                    break
            acc = mgr.or_(acc, term)
        cache[name] = acc
        return acc

    try:
        while True:
            mgr.set_alloc_limit(min(budget_start + size_cap,
                                    mgr.perf.nodes_allocated + _BUDGET_CHUNK))
            try:
                return build(output)
            except BddBudgetExceeded:
                if exhausted():
                    return None
    finally:
        mgr.set_alloc_limit(None)
