"""BDD-based combinational equivalence checking.

Builds global BDDs (one manager, FORCE-derived initial order) for both
networks output-by-output and compares canonical refs -- exactly how both
BDS and SIS verify synthesis results (Section V).  A node-count cap guards
against blowup; capped outputs are reported as ``unknown`` and should be
cross-checked by simulation.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.bdd import BDD, ONE, ZERO, force_order
from repro.bdd.traverse import node_count, pick_assignment
from repro.network.network import Network


class EquivalenceResult(NamedTuple):
    equivalent: bool
    checked_outputs: List[str]
    unknown_outputs: List[str]        # blew the size cap
    counterexample: Optional[Dict[str, bool]]
    failing_output: Optional[str]


def check_equivalence(a: Network, b: Network,
                      size_cap: int = 200000) -> EquivalenceResult:
    """Check that two networks implement the same functions.

    Requires identical input and output name sets.  Returns a result whose
    ``equivalent`` is True only when *every* output was proven equal;
    outputs whose global BDD exceeded ``size_cap`` land in
    ``unknown_outputs``.
    """
    if set(a.inputs) != set(b.inputs):
        raise ValueError("input sets differ: %r vs %r"
                         % (sorted(a.inputs), sorted(b.inputs)))
    if sorted(a.outputs) != sorted(b.outputs):
        raise ValueError("output sets differ")

    mgr = BDD()
    order = _initial_order(a)
    var_of: Dict[str, int] = {}
    for name in order:
        var_of[name] = mgr.new_var(name)

    cache_a: Dict[str, Optional[int]] = {}
    cache_b: Dict[str, Optional[int]] = {}
    checked: List[str] = []
    unknown: List[str] = []
    for out in a.outputs:
        ref_a = _global_bdd(mgr, a, out, var_of, cache_a, size_cap)
        ref_b = _global_bdd(mgr, b, out, var_of, cache_b, size_cap)
        if ref_a is None or ref_b is None:
            unknown.append(out)
            continue
        if ref_a != ref_b:
            diff = mgr.xor_(ref_a, ref_b)
            partial = pick_assignment(mgr, diff)
            cex = {name: partial.get(var_of[name], False) for name in a.inputs}
            return EquivalenceResult(False, checked, unknown, cex, out)
        checked.append(out)
    return EquivalenceResult(len(unknown) == 0, checked, unknown, None, None)


def _initial_order(net: Network) -> List[str]:
    """FORCE ordering over node supports for a decent global order."""
    names = list(net.inputs)
    index = {n: i for i, n in enumerate(names)}
    groups = []
    # Hyperedges: transitive input support of each node, approximated by
    # direct PI fanins per node cone frontier (cheap but effective).
    pi_support: Dict[str, set] = {i: {i} for i in net.inputs}
    for node in net.topological():
        supp = set()
        for f in node.fanins:
            supp |= pi_support.get(f, set())
        pi_support[node.name] = supp
    for out in net.outputs:
        supp = pi_support.get(out, {out} if out in net.inputs else set())
        if supp:
            groups.append([index[s] for s in supp])
    order_idx = force_order(groups, len(names))
    return [names[i] for i in order_idx]


def _global_bdd(mgr: BDD, net: Network, output: str, var_of: Dict[str, int],
                cache: Dict[str, Optional[int]], size_cap: int) -> Optional[int]:
    """Global BDD of one output; None when the cap is exceeded."""

    def build(name: str) -> Optional[int]:
        if name in var_of and name not in net.nodes:
            return mgr.var_ref(var_of[name])
        if name in cache:
            return cache[name]
        node = net.nodes[name]
        fanin_refs = []
        for f in node.fanins:
            r = build(f)
            if r is None:
                cache[name] = None
                return None
            fanin_refs.append(r)
        acc = ZERO
        for cube in node.cover:
            term = ONE
            for l in cube:
                term = mgr.and_(term, fanin_refs[l >> 1] ^ (l & 1))
                if term == ZERO:
                    break
            acc = mgr.or_(acc, term)
        if node_count(mgr, acc) > size_cap:
            cache[name] = None
            return None
        cache[name] = acc
        return acc

    return build(output)
