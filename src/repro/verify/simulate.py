"""Bit-parallel random-simulation equivalence cross-check.

Not a proof -- the probabilistic fallback for circuits whose global BDDs
exceed the verifier's cap (the paper hit exactly this on the C6288
multiplier).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.network.network import Network


def simulate_equivalence(a: Network, b: Network, rounds: int = 16,
                         width: int = 256, seed: int = 1355
                         ) -> Tuple[bool, Optional[Dict[str, bool]]]:
    """Compare networks on ``rounds * width`` random patterns.

    Returns ``(agree, counterexample)``; the counterexample is an input
    assignment on which the networks differ (None when they agree
    everywhere sampled).
    """
    if set(a.inputs) != set(b.inputs):
        raise ValueError("input sets differ")
    if sorted(a.outputs) != sorted(b.outputs):
        raise ValueError("output sets differ")
    rng = random.Random(seed)
    for _ in range(rounds):
        words = {i: rng.getrandbits(width) for i in a.inputs}
        out_a = a.eval_words(words, width)
        out_b = b.eval_words(words, width)
        for name in a.outputs:
            diff = out_a[name] ^ out_b[name]
            if diff:
                bit = (diff & -diff).bit_length() - 1
                cex = {i: bool((words[i] >> bit) & 1) for i in a.inputs}
                return False, cex
    return True, None
