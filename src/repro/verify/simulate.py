"""Bit-parallel simulation equivalence cross-check.

For small input counts the check is *exhaustive*: the full truth table is
simulated bit-parallel, so the answer is a proof (random rounds can miss a
single-minterm bug).  Above :data:`EXHAUSTIVE_LIMIT` inputs it falls back
to seeded random patterns -- the probabilistic fallback for circuits whose
global BDDs exceed the verifier's cap (the paper hit exactly this on the
C6288 multiplier).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.network.network import Network

#: Networks with at most this many primary inputs are compared on their
#: full truth table (2^12 = 4096 patterns in one bit-parallel pass).
EXHAUSTIVE_LIMIT = 12


def simulate_equivalence(a: Network, b: Network, rounds: int = 16,
                         width: int = 256, seed: int = 1355
                         ) -> Tuple[bool, Optional[Dict[str, bool]]]:
    """Compare networks by simulation; ``(agree, counterexample)``.

    With at most :data:`EXHAUSTIVE_LIMIT` inputs every assignment is
    simulated, so the result is exact.  Otherwise ``rounds * width``
    random patterns drawn from ``seed`` are compared -- pass an explicit
    ``seed`` so a reported mismatch reproduces.  The counterexample is an
    input assignment on which the networks differ (None when they agree
    on everything sampled).
    """
    if set(a.inputs) != set(b.inputs):
        raise ValueError("input sets differ")
    if sorted(a.outputs) != sorted(b.outputs):
        raise ValueError("output sets differ")
    if len(a.inputs) <= EXHAUSTIVE_LIMIT:
        return _exhaustive_equivalence(a, b)
    import random

    rng = random.Random(seed)
    for _ in range(rounds):
        words = {i: rng.getrandbits(width) for i in a.inputs}
        out_a = a.eval_words(words, width)
        out_b = b.eval_words(words, width)
        for name in a.outputs:
            diff = out_a[name] ^ out_b[name]
            if diff:
                bit = (diff & -diff).bit_length() - 1
                cex = {i: bool((words[i] >> bit) & 1) for i in a.inputs}
                return False, cex
    return True, None


def _exhaustive_equivalence(a: Network, b: Network
                            ) -> Tuple[bool, Optional[Dict[str, bool]]]:
    """Full-truth-table comparison; pattern ``j`` assigns input ``i`` the
    bit ``(j >> i) & 1``, so a differing bit maps straight back to an
    input assignment."""
    inputs = list(a.inputs)
    n = len(inputs)
    total = 1 << n
    words: Dict[str, int] = {}
    for i, name in enumerate(inputs):
        period = 1 << (i + 1)
        block = ((1 << (1 << i)) - 1) << (1 << i)   # 2^i zeros, 2^i ones
        # Repeat the block across the whole table.
        words[name] = block * (((1 << total) - 1) // ((1 << period) - 1))
    out_a = a.eval_words(words, total)
    out_b = b.eval_words(words, total)
    for name in a.outputs:
        diff = out_a[name] ^ out_b[name]
        if diff:
            j = (diff & -diff).bit_length() - 1
            cex = {inp: bool((j >> i) & 1) for i, inp in enumerate(inputs)}
            return False, cex
    return True, None
