"""Command-line interface: ``python -m repro.cli``.

Mirrors how BDS itself was used as a tool::

    python -m repro.cli optimize input.blif -o output.blif [--flow bds|sis]
        [--verify] [--map | --lut K] [--balance] [--stats] [--check LEVEL]
    python -m repro.cli generate bshift32 -o bshift32.blif
    python -m repro.cli verify a.blif b.blif
    python -m repro.cli check input.blif [--level cheap|full]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bds import BDSOptions, bds_optimize
from repro.check import lint_network
from repro.circuits import build_circuit
from repro.mapping import map_network
from repro.mapping.lut import map_luts
from repro.network import parse_blif, write_blif
from repro.sis import script_rugged
from repro.verify import check_equivalence


def _cmd_optimize(args) -> int:
    with open(args.input) as fh:
        net = parse_blif(fh.read())
    t0 = time.perf_counter()
    if args.flow == "bds":
        options = BDSOptions(balance_trees=args.balance,
                             check_level=args.check)
        result = bds_optimize(net, options)
        optimized = result.network
        if args.stats:
            print("decompositions:", result.decomp_stats.as_dict(),
                  file=sys.stderr)
    else:
        optimized = script_rugged(net).network
    cpu = time.perf_counter() - t0
    if args.stats:
        print("in: %s" % net.stats(), file=sys.stderr)
        print("out: %s  (%.2fs)" % (optimized.stats(), cpu), file=sys.stderr)
    if args.verify:
        check = check_equivalence(net, optimized)
        if not check.equivalent:
            print("VERIFICATION FAILED at output %s, e.g. %r"
                  % (check.failing_output, check.counterexample),
                  file=sys.stderr)
            return 1
        print("verified: %d outputs proven, %d unknown"
              % (len(check.checked_outputs), len(check.unknown_outputs)),
              file=sys.stderr)
    emit = optimized
    if args.map:
        mapped = map_network(optimized)
        print("mapped: %s" % mapped.summary(), file=sys.stderr)
        emit = mapped.network
    elif args.lut:
        mapped = map_luts(optimized, k=args.lut)
        print("mapped: %s" % mapped.summary(), file=sys.stderr)
        emit = mapped.network
    text = write_blif(emit)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_generate(args) -> int:
    net = build_circuit(args.circuit)
    text = write_blif(net)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_verify(args) -> int:
    with open(args.a) as fh:
        net_a = parse_blif(fh.read())
    with open(args.b) as fh:
        net_b = parse_blif(fh.read())
    check = check_equivalence(net_a, net_b)
    if check.equivalent:
        print("equivalent (%d outputs)" % len(check.checked_outputs))
        return 0
    if check.counterexample is not None:
        print("NOT equivalent: output %s differs under %r"
              % (check.failing_output, check.counterexample))
    else:
        print("inconclusive: %d outputs exceeded the BDD cap"
              % len(check.unknown_outputs))
    return 1


def _cmd_check(args) -> int:
    """Lint a BLIF netlist; exit 1 on violations, 2 on parse errors."""
    with open(args.input) as fh:
        text = fh.read()
    try:
        net = parse_blif(text, validate=False)
    except ValueError as exc:
        print("%s: PARSE ERROR: %s" % (args.input, exc), file=sys.stderr)
        return 2
    report = lint_network(net, level=args.level, subject=args.input,
                          raise_on_violation=False)
    if report.violations:
        for v in report.violations:
            print("%s: %s" % (args.input, v), file=sys.stderr)
        print("%s: FAILED -- %d violation(s) of %s"
              % (args.input, len(report.violations),
                 ", ".join(report.invariants())), file=sys.stderr)
        return 1
    print("%s: clean (%d nodes, %d outputs, %s lint)"
          % (args.input, report.stats.get("nodes", 0),
             report.stats.get("outputs", 0), args.level))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="BDS reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="optimize a BLIF netlist")
    p_opt.add_argument("input")
    p_opt.add_argument("-o", "--output")
    p_opt.add_argument("--flow", choices=["bds", "sis"], default="bds")
    p_opt.add_argument("--verify", action="store_true")
    p_opt.add_argument("--map", action="store_true",
                       help="map onto the mcnc-style cell library")
    p_opt.add_argument("--lut", type=int, metavar="K",
                       help="map onto K-input LUTs")
    p_opt.add_argument("--balance", action="store_true",
                       help="balance factoring trees (delay)")
    p_opt.add_argument("--stats", action="store_true")
    p_opt.add_argument("--check", choices=["off", "cheap", "full"],
                       default="off",
                       help="run the BDD/network invariant sanitizer at "
                            "flow safe points")
    p_opt.set_defaults(func=_cmd_optimize)

    p_gen = sub.add_parser("generate", help="emit a benchmark circuit")
    p_gen.add_argument("circuit", help="e.g. C1355, bshift32, m8x8, add16")
    p_gen.add_argument("-o", "--output")
    p_gen.set_defaults(func=_cmd_generate)

    p_ver = sub.add_parser("verify", help="equivalence-check two BLIFs")
    p_ver.add_argument("a")
    p_ver.add_argument("b")
    p_ver.set_defaults(func=_cmd_verify)

    p_chk = sub.add_parser("check", help="lint a BLIF netlist for "
                                         "structural violations")
    p_chk.add_argument("input")
    p_chk.add_argument("--level", choices=["cheap", "full"], default="full")
    p_chk.set_defaults(func=_cmd_check)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
