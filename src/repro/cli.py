"""Command-line interface: ``python -m repro.cli``.

Mirrors how BDS itself was used as a tool::

    python -m repro.cli optimize input.blif -o output.blif [--flow bds|sis]
        [--verify [sim|cec|full]] [--map | --lut K] [--balance] [--stats]
        [--check LEVEL] [--autoreorder N] [--jobs J] [--trace FILE]
    python -m repro.cli generate bshift32 -o bshift32.blif
    python -m repro.cli verify a.blif b.blif [--mode sim|cec|full]
    python -m repro.cli check input.blif [--level cheap|full]
    python -m repro.cli lint [paths...] [--format text|json]
        [--baseline FILE] [--write-baseline] [--select CODES]
    python -m repro.cli fuzz [--minutes N] [--seed S] [--jobs J]
        [--corpus DIR]
    python -m repro.cli batch <dir-or-files...> [--cache-dir DIR]
        [--jobs J] [--timeout S] [--out-dir DIR] [--json]
    python -m repro.cli serve [--cache-dir DIR] [--jobs J] [--timeout S]
        [--socket PATH | --port N [--host H]] [--backlog N]
    python -m repro.cli client <dir-or-files...>
        (--socket PATH | --port N [--host H]) [--timeout S]
        [--out-dir DIR] [--json]
    python -m repro.cli bench [circuits...] [--out FILE]
        [--compare BASELINE] [--cpu-tol T]

Exit codes: 0 clean; 1 failure (verification mismatch, lint violation,
fuzz find, failed/timed-out batch or client job, bench regression,
unreachable server); 2 inconclusive (outputs the size-capped verifier
could not prove, bench baselines not comparable) or parse error for
``check``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bds import BDSOptions, bds_optimize
from repro.check import lint_network
from repro.circuits import build_circuit
from repro.mapping import map_network
from repro.mapping.lut import map_luts
from repro.network import parse_blif, write_blif
from repro.sis import script_rugged
from repro.verify import DEFAULT_SIZE_CAP, VerifyError, verify_networks


def _cmd_optimize(args) -> int:
    with open(args.input) as fh:
        net = parse_blif(fh.read())
    verify_mode = args.verify or "off"
    unknown = []
    perf = {}
    cache = None
    if args.cache_dir:
        from repro.service import ArtifactCache

        cache = ArtifactCache(args.cache_dir)
    tracer = None
    if getattr(args, "trace", None):
        if args.flow != "bds":
            print("--trace requires --flow bds", file=sys.stderr)
            return 1
        from repro.obs.trace import Tracer

        tracer = Tracer()
    t0 = time.perf_counter()
    if args.flow == "bds":
        options = BDSOptions(balance_trees=args.balance,
                             check_level=args.check,
                             autoreorder=args.autoreorder,
                             jobs=getattr(args, "jobs", 1),
                             verify=verify_mode)
        try:
            result = bds_optimize(net, options, cache=cache, tracer=tracer)
        except VerifyError as exc:
            print("VERIFICATION FAILED (%s) at output %s, e.g. %r"
                  % (exc.mode, exc.failing_output, exc.counterexample),
                  file=sys.stderr)
            return 1
        optimized = result.network
        unknown = result.verify_unknown_outputs
        perf = result.perf
        if args.stats:
            print("decompositions:", result.decomp_stats.as_dict(),
                  file=sys.stderr)
    else:
        optimized = script_rugged(net).network
        if verify_mode != "off":
            outcome = verify_networks(net, optimized, mode=verify_mode)
            if not outcome.equivalent:
                print("VERIFICATION FAILED (%s) at output %s, e.g. %r"
                      % (outcome.mode, outcome.failing_output,
                         outcome.counterexample), file=sys.stderr)
                return 1
            unknown = outcome.unknown_outputs
    cpu = time.perf_counter() - t0
    if tracer is not None:
        with open(args.trace, "w") as fh:
            json.dump(tracer.to_chrome(), fh, sort_keys=True)
        print("trace: %d span(s) -> %s (chrome://tracing / ui.perfetto.dev)"
              % (len(tracer.to_chrome()["traceEvents"]), args.trace),
              file=sys.stderr)
    if args.stats:
        print("in: %s" % net.stats(), file=sys.stderr)
        print("out: %s  (%.2fs)" % (optimized.stats(), cpu), file=sys.stderr)
    if verify_mode != "off":
        print("verified (%s): result equivalent to input%s"
              % (verify_mode,
                 "" if not unknown else "; %d output(s) UNPROVEN: %s"
                 % (len(unknown), ", ".join(sorted(unknown)))),
              file=sys.stderr)
    emit = optimized
    if args.map:
        mapped = map_network(optimized)
        print("mapped: %s" % mapped.summary(), file=sys.stderr)
        emit = mapped.network
    elif args.lut:
        mapped = map_luts(optimized, k=args.lut)
        print("mapped: %s" % mapped.summary(), file=sys.stderr)
        emit = mapped.network
    text = write_blif(emit)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    elif not args.json:
        sys.stdout.write(text)
    # Unproven outputs are not a pass: distinct exit code so scripts notice.
    rc = 2 if unknown else 0
    if args.json:
        # One JSON object on stdout: the flow's perf counters (incl. the
        # artifact_cache_* traffic when --cache-dir is given) plus the
        # run facts scripts key on.  The BLIF goes to -o, never stdout.
        obj = {
            "input": net.stats(),
            "output": optimized.stats(),
            "cpu_s": round(cpu, 6),
            "verify_mode": verify_mode,
            "verify_unknown_outputs": sorted(unknown),
            "cached": bool(perf.get("artifact_cache_hits", 0)),
            "perf": perf,
            "exit_code": rc,
        }
        print(json.dumps(obj, sort_keys=True))
    return rc


def _cmd_generate(args) -> int:
    net = build_circuit(args.circuit)
    text = write_blif(net)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_verify(args) -> int:
    """Equivalence-check two BLIFs.

    Exit 0 when every output is proven equivalent, 1 on a mismatch, and 2
    when some outputs stayed unproven (size cap hit) -- "inconclusive" is
    not a pass, and the unproven output names are reported.
    """
    with open(args.a) as fh:
        net_a = parse_blif(fh.read())
    with open(args.b) as fh:
        net_b = parse_blif(fh.read())
    outcome = verify_networks(net_a, net_b, mode=args.mode,
                              size_cap=args.size_cap, seed=args.seed)
    if not outcome.equivalent:
        print("NOT equivalent (%s): output %s differs under %r"
              % (outcome.mode, outcome.failing_output,
                 outcome.counterexample))
        return 1
    if outcome.unknown_outputs:
        total = outcome.outputs_checked + len(outcome.unknown_outputs)
        print("inconclusive (%s): %d of %d output(s) UNPROVEN: %s"
              % (outcome.mode, len(outcome.unknown_outputs), total,
                 ", ".join(sorted(outcome.unknown_outputs))))
        return 2
    print("equivalent (%s, %d outputs%s)"
          % (outcome.mode, outcome.outputs_checked,
             "" if outcome.proven else ", simulation only"))
    return 0


def _cmd_fuzz(args) -> int:
    """Differential fuzzing: random netlists x random flow options.

    Every failure is shrunk and written to the corpus directory; exit 1
    when anything was found.
    """
    from repro.fuzz import run_fuzz

    report = run_fuzz(budget_seconds=args.minutes * 60.0, seed=args.seed,
                      jobs=args.jobs, corpus_dir=args.corpus,
                      max_failures=args.max_failures,
                      shrink_checks=args.shrink_checks,
                      log=lambda msg: print(msg, file=sys.stderr))
    print(report.summary())
    for i, rec in enumerate(report.failures, 1):
        print("  #%d %s/%s %s (%d -> %d nodes)%s"
              % (i, rec.failure.kind, rec.failure.stage, rec.failure.detail,
                 rec.original_nodes, rec.shrunk_nodes,
                 " -> %s" % rec.corpus_path if rec.corpus_path else ""))
    return 1 if report.failures else 0


def _batch_inputs(paths) -> list:
    """Expand file/directory arguments to a sorted BLIF file list."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(os.path.join(path, name)
                         for name in sorted(os.listdir(path))
                         if name.endswith(".blif"))
        else:
            files.append(path)
    return files


def _service_from_args(args):
    from repro.service import ArtifactCache, OptimizationService

    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    return OptimizationService(cache=cache, max_workers=args.jobs,
                               default_timeout=args.timeout)


def _cmd_batch(args) -> int:
    """Optimize a set of BLIFs through the service (cache + scheduler).

    Exit 0 when every job succeeded and was fully proven, 1 when any job
    failed / timed out / was cancelled, 2 when all jobs succeeded but
    some outputs stayed UNPROVEN under the verifier's cap.
    """
    from repro.service import ServiceRequest

    files = _batch_inputs(args.inputs)
    if not files:
        print("batch: no BLIF inputs found", file=sys.stderr)
        return 1
    options = BDSOptions(balance_trees=args.balance, check_level=args.check,
                         verify=args.verify or "off")
    service = _service_from_args(args)
    requests = []
    for path in files:
        with open(path) as fh:
            requests.append(ServiceRequest(blif=fh.read(), options=options,
                                           name=path, timeout=args.timeout))
    t0 = time.perf_counter()
    responses = service.process(requests)
    elapsed = time.perf_counter() - t0
    any_failed = any(not r.ok for r in responses)
    any_unknown = any(r.verify_unknown_outputs for r in responses)
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    for path, resp in zip(files, responses):
        if args.out_dir and resp.ok and resp.blif is not None:
            stem = os.path.splitext(os.path.basename(path))[0]
            with open(os.path.join(args.out_dir, stem + ".opt.blif"),
                      "w") as fh:
                fh.write(resp.blif)
        if not args.json:
            note = "cached" if resp.cached else "%.2fs" % resp.elapsed
            print("%-40s %-9s %s%s"
                  % (path, resp.status, note,
                     " [%s]" % resp.error if resp.error else ""),
                  file=sys.stderr)
    hits = sum(r.perf.get("artifact_cache_hits", 0) for r in responses)
    misses = sum(r.perf.get("artifact_cache_misses", 0) for r in responses)
    if args.json:
        obj = {
            "results": [{k: v for k, v in r.to_json_obj().items()
                         if k != "blif"} for r in responses],
            "files": files,
            "elapsed_s": round(elapsed, 6),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache": (service.cache.perf_snapshot()
                      if service.cache is not None else {}),
        }
        print(json.dumps(obj, sort_keys=True))
    else:
        print("batch: %d file(s) in %.2fs -- %d ok (%d cached), %d failed"
              % (len(files), elapsed, sum(r.ok for r in responses),
                 sum(r.cached for r in responses),
                 sum(not r.ok for r in responses)), file=sys.stderr)
    if any_failed:
        return 1
    return 2 if any_unknown else 0


def _cmd_serve(args) -> int:
    """Long-lived JSON-lines daemon.

    Default transport is stdin/stdout (one request per input line, one
    response per output line); ``--socket PATH`` / ``--port N`` instead
    runs the concurrent socket front door (many clients, shared cache +
    scheduler, SIGTERM drain) -- see docs/SERVICE.md for both wire
    formats.
    """
    service = _service_from_args(args)
    if args.socket or args.port is not None:
        from repro.service.server import SocketServer

        server = SocketServer(service, socket_path=args.socket,
                              host=args.host, port=args.port,
                              backlog=args.backlog)
        server.serve_forever()
        print("serve: drained cleanly", file=sys.stderr)
        return 0
    served = service.serve(sys.stdin, sys.stdout)
    print("serve: handled %d request(s)" % served, file=sys.stderr)
    return 0


def _cmd_client(args) -> int:
    """Send BLIFs to a running ``repro serve --socket/--port`` server.

    Same exit contract as ``batch``: 0 all ok and proven, 1 any job
    failed / timed out / was cancelled (or the server is unreachable),
    2 all ok but some outputs UNPROVEN.  Overloaded replies are retried
    with jittered exponential backoff before giving up.
    """
    from repro.service.client import ServiceClient, ServiceUnavailable

    if (args.socket is None) == (args.port is None):
        print("client: exactly one of --socket / --port is required",
              file=sys.stderr)
        return 1
    files = _batch_inputs(args.inputs)
    if not files:
        print("client: no BLIF inputs found", file=sys.stderr)
        return 1
    options = BDSOptions(verify=args.verify or "off").to_dict()
    requests = []
    for path in files:
        with open(path) as fh:
            requests.append({"blif": fh.read(), "options": options,
                             "timeout": args.timeout})
    client = ServiceClient(socket_path=args.socket, host=args.host,
                           port=args.port, retries=args.retries)
    t0 = time.perf_counter()
    try:
        with client:
            responses = client.request_many(requests)
    except ServiceUnavailable as exc:
        print("client: %s" % exc, file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - t0
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    any_failed = False
    any_unknown = False
    for path, resp in zip(files, responses):
        status = resp.get("status", "failed")
        if status != "ok":
            any_failed = True
        if resp.get("verify_unknown_outputs"):
            any_unknown = True
        if args.out_dir and status == "ok" and resp.get("blif") is not None:
            stem = os.path.splitext(os.path.basename(path))[0]
            with open(os.path.join(args.out_dir, stem + ".opt.blif"),
                      "w") as fh:
                fh.write(resp["blif"])
        if not args.json:
            note = "cached" if resp.get("cached") \
                else "%.2fs" % resp.get("elapsed", 0.0)
            print("%-40s %-9s %s%s"
                  % (path, status, note,
                     " [%s]" % resp["error"] if resp.get("error") else ""),
                  file=sys.stderr)
    if args.json:
        obj = {
            "results": [{k: v for k, v in r.items() if k != "blif"}
                        for r in responses],
            "files": files,
            "elapsed_s": round(elapsed, 6),
            "backpressure_retries": client.backpressure_seen,
        }
        print(json.dumps(obj, sort_keys=True))
    else:
        print("client: %d file(s) in %.2fs -- %d ok (%d cached), %d failed"
              % (len(files), elapsed,
                 sum(r.get("status") == "ok" for r in responses),
                 sum(bool(r.get("cached")) for r in responses),
                 sum(r.get("status") != "ok" for r in responses)),
              file=sys.stderr)
    if any_failed:
        return 1
    return 2 if any_unknown else 0


def _cmd_lint(args) -> int:
    """Static analysis over Python sources (exit 0/1/2, docs/LINTING.md)."""
    from repro.lint import (BaselineError, LintConfig, empty_baseline,
                            lint_paths, load_baseline, write_baseline)
    from repro.lint.reporters import (render_json, render_rule_catalog,
                                      render_text)

    config = LintConfig()
    if args.select:
        config.select = frozenset(
            code.strip().upper() for code in args.select.split(","))
    if args.list_rules:
        render_rule_catalog(sys.stdout, config)
        return 0
    baseline = empty_baseline()
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and os.path.exists("lint-baseline.json"):
        baseline_path = "lint-baseline.json"
    if baseline_path is not None and not args.no_baseline \
            and not args.write_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print("lint: %s" % exc, file=sys.stderr)
            return 2
    report = lint_paths(args.paths, config, baseline)
    if args.write_baseline:
        out = baseline_path or "lint-baseline.json"
        write_baseline(out, report.findings)
        print("lint: wrote %d entr%s to %s (edit the justifications "
              "before committing)"
              % (len(report.findings),
                 "y" if len(report.findings) == 1 else "ies", out),
              file=sys.stderr)
        return 0
    if args.format == "json":
        render_json(report, sys.stdout, config)
    else:
        render_text(report, sys.stdout, config)
    return report.exit_code()


def _cmd_bench(args) -> int:
    """Run the standard flow bench set; optionally diff a baseline.

    ``--compare BASELINE`` turns the run into a regression gate: exit 0
    within tolerances, 1 on a regression (CPU beyond ``--cpu-tol``, or
    any node/literal drift), 2 when the runs are not comparable (missing
    circuits, broken counters).  Without ``--compare`` the payload is
    written/printed and the exit is 0.
    """
    from repro.obs.regress import (DEFAULT_BENCH_CIRCUITS,
                                   collect_flow_payload, compare_payloads,
                                   load_baseline)

    circuits = tuple(args.circuits) if args.circuits \
        else DEFAULT_BENCH_CIRCUITS
    payload = collect_flow_payload(circuits)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("bench: wrote %d circuit(s) to %s"
              % (len(payload["circuits"]), args.out), file=sys.stderr)
    if args.compare is None:
        if not args.out:
            print(json.dumps(payload, sort_keys=True))
        return 0
    try:
        baseline = load_baseline(args.compare)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("bench: cannot load baseline: %s" % exc, file=sys.stderr)
        return 2
    report = compare_payloads(baseline, payload, cpu_tol=args.cpu_tol)
    print(report.render())
    return report.exit_code()


def _cmd_check(args) -> int:
    """Lint a BLIF netlist; exit 1 on violations, 2 on parse errors."""
    with open(args.input) as fh:
        text = fh.read()
    try:
        net = parse_blif(text, validate=False)
    except ValueError as exc:
        print("%s: PARSE ERROR: %s" % (args.input, exc), file=sys.stderr)
        return 2
    report = lint_network(net, level=args.level, subject=args.input,
                          raise_on_violation=False)
    if report.violations:
        for v in report.violations:
            print("%s: %s" % (args.input, v), file=sys.stderr)
        print("%s: FAILED -- %d violation(s) of %s"
              % (args.input, len(report.violations),
                 ", ".join(report.invariants())), file=sys.stderr)
        return 1
    print("%s: clean (%d nodes, %d outputs, %s lint)"
          % (args.input, report.stats.get("nodes", 0),
             report.stats.get("outputs", 0), args.level))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="BDS reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="optimize a BLIF netlist")
    p_opt.add_argument("input")
    p_opt.add_argument("-o", "--output")
    p_opt.add_argument("--flow", choices=["bds", "sis"], default="bds")
    p_opt.add_argument("--verify", nargs="?", const="cec", default=None,
                       choices=["sim", "cec", "full"], metavar="MODE",
                       help="verify the result against the input inside the "
                            "flow (sim|cec|full; bare --verify means cec); "
                            "mismatch exits 1, unproven outputs exit 2")
    p_opt.add_argument("--map", action="store_true",
                       help="map onto the mcnc-style cell library")
    p_opt.add_argument("--lut", type=int, metavar="K",
                       help="map onto K-input LUTs")
    p_opt.add_argument("--balance", action="store_true",
                       help="balance factoring trees (delay)")
    p_opt.add_argument("--stats", action="store_true")
    p_opt.add_argument("--check", choices=["off", "cheap", "full"],
                       default="off",
                       help="run the BDD/network invariant sanitizer at "
                            "flow safe points")
    p_opt.add_argument("--autoreorder", type=int, default=0, metavar="N",
                       help="fire dynamic variable reordering when a "
                            "manager grows past N live nodes (0 = off)")
    p_opt.add_argument("--jobs", type=int, default=1,
                       help="worker processes for per-supernode "
                            "decomposition (default 1; deterministic "
                            "either way)")
    p_opt.add_argument("--trace", metavar="FILE",
                       help="record a span trace of the flow and write it "
                            "as Chrome trace_event JSON (load in "
                            "chrome://tracing or ui.perfetto.dev)")
    p_opt.add_argument("--json", action="store_true",
                       help="print the run's perf counters (incl. "
                            "artifact-cache traffic) as one JSON object "
                            "on stdout; the network then only goes to -o")
    p_opt.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed artifact cache: a prior "
                            "result for the same input x options is "
                            "returned without re-running the flow")
    p_opt.set_defaults(func=_cmd_optimize)

    p_gen = sub.add_parser("generate", help="emit a benchmark circuit")
    p_gen.add_argument("circuit", help="e.g. C1355, bshift32, m8x8, add16")
    p_gen.add_argument("-o", "--output")
    p_gen.set_defaults(func=_cmd_generate)

    p_ver = sub.add_parser("verify", help="equivalence-check two BLIFs")
    p_ver.add_argument("a")
    p_ver.add_argument("b")
    p_ver.add_argument("--mode", choices=["sim", "cec", "full"],
                       default="cec",
                       help="sim = (exhaustive) simulation, cec = size-"
                            "capped BDD proof, full = cec + simulation of "
                            "capped outputs")
    p_ver.add_argument("--size-cap", type=int, default=DEFAULT_SIZE_CAP,
                       help="BDD work budget (node allocations) per output "
                            "before giving up (reported as UNPROVEN, exit 2)")
    p_ver.add_argument("--seed", type=int, default=1355,
                       help="seed for the simulation patterns")
    p_ver.set_defaults(func=_cmd_verify)

    p_fuzz = sub.add_parser("fuzz", help="differential-fuzz the BDS flow")
    p_fuzz.add_argument("--minutes", type=float, default=1.0,
                        help="time budget (default: 1 minute)")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="worker processes (cases fan out in waves)")
    p_fuzz.add_argument("--corpus", default="tests/corpus",
                        help="directory for shrunk failing netlists "
                             "(default: tests/corpus)")
    p_fuzz.add_argument("--max-failures", type=int, default=10,
                        help="stop after this many distinct finds")
    p_fuzz.add_argument("--shrink-checks", type=int, default=300,
                        help="delta-debugging predicate budget per find")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_chk = sub.add_parser("check", help="lint a BLIF netlist for "
                                         "structural violations")
    p_chk.add_argument("input")
    p_chk.add_argument("--level", choices=["cheap", "full"], default="full")
    p_chk.set_defaults(func=_cmd_check)

    p_lint = sub.add_parser("lint", help="static analysis of Python "
                                         "sources (RPL rules)")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files and/or directories (default: src)")
    p_lint.add_argument("--format", choices=["text", "json"],
                        default="text")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="baseline of grandfathered findings "
                             "(default: lint-baseline.json when present)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="write current findings as a fresh baseline "
                             "(justifications must then be filled in)")
    p_lint.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(e.g. RPL001,RPL002)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.set_defaults(func=_cmd_lint)

    p_bat = sub.add_parser("batch", help="optimize many BLIFs through the "
                                         "cache-backed service")
    p_bat.add_argument("inputs", nargs="+",
                       help="BLIF files and/or directories of *.blif")
    p_bat.add_argument("--cache-dir", metavar="DIR",
                       help="artifact cache directory (omit to disable "
                            "result reuse)")
    p_bat.add_argument("--out-dir", metavar="DIR",
                       help="write each result as <name>.opt.blif here")
    p_bat.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1)")
    p_bat.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job wall-clock budget in seconds")
    p_bat.add_argument("--verify", nargs="?", const="cec", default=None,
                       choices=["sim", "cec", "full"], metavar="MODE",
                       help="verify every result inside the flow; cached "
                            "artifacts carry their stored verdict")
    p_bat.add_argument("--balance", action="store_true")
    p_bat.add_argument("--check", choices=["off", "cheap", "full"],
                       default="off")
    p_bat.add_argument("--json", action="store_true",
                       help="print one JSON summary object on stdout")
    p_bat.set_defaults(func=_cmd_batch)

    p_ben = sub.add_parser("bench", help="run the flow bench set; "
                                         "--compare gates on a baseline")
    p_ben.add_argument("circuits", nargs="*",
                       help="circuits to bench (default: the standard "
                            "set, see repro.obs.regress)")
    p_ben.add_argument("--out", metavar="FILE",
                       help="write the fresh payload as JSON (the "
                            "BENCH_flow.json format)")
    p_ben.add_argument("--compare", metavar="BASELINE",
                       help="diff against a baseline payload or a "
                            "BENCH_all.json aggregate; exit 0/1/2")
    p_ben.add_argument("--cpu-tol", type=float, default=0.25,
                       help="relative CPU tolerance for --compare "
                            "(default 0.25; node/literal counts are "
                            "always exact)")
    p_ben.set_defaults(func=_cmd_bench)

    p_srv = sub.add_parser("serve", help="JSON-lines optimization daemon "
                                         "(stdin/stdout, or a socket "
                                         "with --socket/--port)")
    p_srv.add_argument("--cache-dir", metavar="DIR")
    p_srv.add_argument("--jobs", type=int, default=1)
    p_srv.add_argument("--timeout", type=float, default=None, metavar="S")
    p_srv.add_argument("--socket", metavar="PATH",
                       help="serve many concurrent clients on a Unix-domain "
                            "socket instead of stdin/stdout")
    p_srv.add_argument("--port", type=int, default=None, metavar="N",
                       help="serve on TCP port N (0 = ephemeral)")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port (default 127.0.0.1)")
    p_srv.add_argument("--backlog", type=int, default=64, metavar="N",
                       help="outstanding jobs before requests are refused "
                            "with an 'overloaded' reply (default 64)")
    p_srv.set_defaults(func=_cmd_serve)

    p_cli = sub.add_parser("client", help="send BLIFs to a running "
                                          "'repro serve' socket server")
    p_cli.add_argument("inputs", nargs="+",
                       help="BLIF files and/or directories of *.blif")
    p_cli.add_argument("--socket", metavar="PATH",
                       help="Unix-domain socket of the server")
    p_cli.add_argument("--port", type=int, default=None, metavar="N",
                       help="TCP port of the server")
    p_cli.add_argument("--host", default="127.0.0.1")
    p_cli.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job wall-clock budget in seconds")
    p_cli.add_argument("--retries", type=int, default=10,
                       help="rounds of backoff-retry for connect refusals "
                            "and 'overloaded' replies (default 10)")
    p_cli.add_argument("--verify", nargs="?", const="cec", default=None,
                       choices=["sim", "cec", "full"], metavar="MODE")
    p_cli.add_argument("--out-dir", metavar="DIR",
                       help="write each result as <name>.opt.blif here")
    p_cli.add_argument("--json", action="store_true",
                       help="print one JSON summary object on stdout")
    p_cli.set_defaults(func=_cmd_client)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
