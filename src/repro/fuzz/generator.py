"""Netlist generation schedule for the differential fuzzer.

Each fuzz iteration builds one random multilevel network from a
:class:`NetSpec` -- a frozen, picklable recipe (so worker processes can
rebuild the exact same circuit from its spec alone).  Specs are drawn from
small size *tiers*, weighted toward the smallest: miscompiles that exist
at all almost always reproduce on tiny circuits, tiny circuits keep the
cross-check exhaustive (<= 12 inputs simulates the full truth table), and
shrinking starts closer to minimal.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from repro.circuits.randlogic import random_logic
from repro.network.network import Network


@dataclass(frozen=True)
class NetSpec:
    """A reproducible recipe for one random network."""

    n_inputs: int
    n_gates: int
    n_outputs: int
    seed: int
    xor_fraction: float = 0.05
    max_arity: int = 3
    locality: int = 12
    mux_fraction: float = 0.0
    not_fraction: float = 0.0
    sink_outputs: bool = False

    def build(self) -> Network:
        return random_logic(self.n_inputs, self.n_gates, self.n_outputs,
                            seed=self.seed, xor_fraction=self.xor_fraction,
                            max_arity=self.max_arity, locality=self.locality,
                            mux_fraction=self.mux_fraction,
                            not_fraction=self.not_fraction,
                            sink_outputs=self.sink_outputs,
                            name="fuzz_s%d" % self.seed)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


#: (weight, inputs-range, gates-range, outputs-range).  The first two tiers
#: stay at or below the exhaustive-simulation limit of 12 inputs, so the
#: differential cross-check is a proof for ~90% of the iterations.
TIERS: Tuple[Tuple[int, Tuple[int, int], Tuple[int, int], Tuple[int, int]], ...] = (
    (6, (3, 8), (6, 24), (1, 4)),
    (3, (8, 12), (16, 60), (2, 6)),
    (1, (12, 16), (40, 110), (3, 8)),
)


def sample_spec(rng: random.Random, tier: Optional[int] = None) -> NetSpec:
    """Draw one :class:`NetSpec` from the tier schedule (or a fixed tier)."""
    if tier is None:
        total = sum(w for w, _, _, _ in TIERS)
        pick = rng.randrange(total)
        for i, (w, _, _, _) in enumerate(TIERS):
            if pick < w:
                tier = i
                break
            pick -= w
    assert tier is not None
    _, (i_lo, i_hi), (g_lo, g_hi), (o_lo, o_hi) = TIERS[tier]
    return NetSpec(
        n_inputs=rng.randint(i_lo, i_hi),
        n_gates=rng.randint(g_lo, g_hi),
        n_outputs=rng.randint(o_lo, o_hi),
        seed=rng.getrandbits(32),
        xor_fraction=rng.choice([0.0, 0.05, 0.05, 0.15, 0.3]),
        max_arity=rng.choice([2, 3, 3, 4]),
        locality=rng.choice([6, 12, 20]),
        mux_fraction=rng.choice([0.0, 0.0, 0.1]),
        not_fraction=rng.choice([0.0, 0.1, 0.2]),
        sink_outputs=rng.random() < 0.5,
    )


def spec_from_dict(data: Dict[str, object]) -> NetSpec:
    """Rebuild a spec from :meth:`NetSpec.as_dict` output (corpus replay)."""
    fields = {f: data[f] for f in NetSpec.__dataclass_fields__ if f in data}
    return NetSpec(**fields)  # type: ignore[arg-type]
