"""Counterexample shrinking: ddmin-style reduction of a failing netlist.

Given a network on which some predicate fails (the fuzzer's: "the flow
still miscompiles this input"), the shrinker greedily applies
semantics-changing but structure-shrinking mutations, keeping each one
only when the failure survives:

1. *Drop outputs* -- every primary output the failure does not need goes,
   and dead cones go with it.
2. *Collapse nodes* -- each node is tried as constant 0/1 and as a buffer
   of each of its fanins (killing whole cones once dangling logic is
   swept).
3. *Thin covers* -- drop cubes from multi-cube covers and literals from
   multi-literal cubes.
4. *Prune inputs* -- unused primary inputs are removed last.

Every accepted step re-runs the predicate, so the result is a minimal (in
the 1-step sense) replayable artifact.  The predicate budget is bounded
by ``max_checks`` and an optional wall-clock ``deadline``.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, List, Optional, Tuple

from repro.network.network import Network
from repro.sop.cube import lit

Predicate = Callable[[Network], bool]


class _Budget:
    """Predicate-call and wall-clock budget for one shrink run."""

    def __init__(self, max_checks: int, deadline: Optional[float]) -> None:
        self.max_checks = max_checks
        self.deadline = deadline
        self.checks = 0

    def ok(self) -> bool:
        if self.checks >= self.max_checks:
            return False
        return self.deadline is None or time.monotonic() < self.deadline

    def run(self, fails: Predicate, candidate: Network) -> bool:
        self.checks += 1
        try:
            return fails(candidate)
        except Exception:
            # A predicate that dies on a candidate tells us nothing about
            # the original failure; treat it as "does not reproduce".
            return False


def shrink_network(net: Network, fails: Predicate, max_checks: int = 300,
                   deadline: Optional[float] = None) -> Network:
    """Return a smaller network on which ``fails`` still holds.

    ``net`` itself is never mutated.  When the budget runs out the best
    reduction found so far is returned; if nothing could be removed the
    result is a plain copy.
    """
    budget = _Budget(max_checks, deadline)
    best = net.copy()
    best.remove_dangling()
    best = _drop_outputs(best, fails, budget)
    while budget.ok():
        size_before = _size(best)
        better = _collapse_round(best, fails, budget)
        if better is not None:
            best = better
        best = _thin_covers(best, fails, budget)
        if _size(best) >= size_before:
            break
    return _prune_inputs(best, fails, budget)


def _drop_outputs(best: Network, fails: Predicate, budget: _Budget) -> Network:
    """Greedily remove primary outputs the failure does not depend on."""
    for out in list(best.outputs):
        if len(best.outputs) <= 1 or not budget.ok():
            break
        candidate = best.copy()
        candidate.outputs.remove(out)
        candidate.remove_dangling()
        if budget.run(fails, candidate):
            best = candidate
    return best


def _collapse_round(best: Network, fails: Predicate,
                    budget: _Budget) -> Optional[Network]:
    """One pass of node/cover mutations; None when nothing was accepted."""
    improved = None
    # Outputs-first (reverse topological): a collapse near an output
    # strands the deepest cone, so the dangling sweep removes the most.
    names = [node.name for node in reversed(best.topological())]
    for name in names:
        if not budget.ok():
            break
        if name not in best.nodes:      # swept away by an earlier accept
            continue
        for mutate in _node_mutations(best.nodes[name].fanins,
                                      len(best.nodes[name].cover)):
            if not budget.ok():
                break
            candidate = best.copy()
            if not mutate(candidate, name):
                continue
            candidate.remove_dangling()
            if _size(candidate) >= _size(best):
                continue
            if budget.run(fails, candidate):
                best = candidate
                improved = candidate
                break                   # next node, on the new network
    return improved if improved is None else best


def _node_mutations(fanins: List[str], n_cubes: int
                    ) -> Iterator[Callable[[Network, str], bool]]:
    """Mutation closures for one node, strongest reduction first."""

    def const(value: bool) -> Callable[[Network, str], bool]:
        def apply(candidate: Network, name: str) -> bool:
            node = candidate.nodes[name]
            node.cover = [frozenset()] if value else []
            node.normalize()
            return True
        return apply

    def buffer_of(pos: int) -> Callable[[Network, str], bool]:
        def apply(candidate: Network, name: str) -> bool:
            node = candidate.nodes[name]
            if pos >= len(node.fanins):
                return False
            node.cover = [frozenset({lit(pos)})]
            node.normalize()
            return True
        return apply

    yield const(False)
    yield const(True)
    for i in range(len(fanins)):
        yield buffer_of(i)


def _thin_covers(best: Network, fails: Predicate, budget: _Budget) -> Network:
    """Drop whole cubes, then single literals, wherever the failure allows."""
    for name in sorted(best.nodes):
        if not budget.ok():
            break
        if name not in best.nodes:
            continue
        changed = True
        while changed and budget.ok():
            changed = False
            node = best.nodes.get(name)
            if node is None:
                break
            for ci in range(len(node.cover)):
                if len(node.cover) <= 1:
                    break
                candidate = best.copy()
                cnode = candidate.nodes[name]
                cnode.cover = cnode.cover[:ci] + cnode.cover[ci + 1:]
                cnode.normalize()
                candidate.remove_dangling()
                if budget.run(fails, candidate):
                    best = candidate
                    changed = True
                    break
            else:
                for ci, cube in enumerate(node.cover):
                    if len(cube) <= 1:
                        continue
                    hit = False
                    for l in sorted(cube):
                        candidate = best.copy()
                        cnode = candidate.nodes[name]
                        cnode.cover = list(cnode.cover)
                        cnode.cover[ci] = cube - {l}
                        cnode.normalize()
                        candidate.remove_dangling()
                        if budget.run(fails, candidate):
                            best = candidate
                            changed = hit = True
                            break
                    if hit:
                        break
    return best


def _prune_inputs(best: Network, fails: Predicate, budget: _Budget) -> Network:
    """Drop primary inputs nothing references (re-checked, like any step)."""
    used = {f for node in best.nodes.values() for f in node.fanins}
    used.update(best.outputs)
    dead = [i for i in best.inputs if i not in used]
    if not dead or not budget.ok():
        return best
    candidate = best.copy()
    candidate.inputs = [i for i in candidate.inputs if i in used]
    if budget.run(fails, candidate):
        return candidate
    return best


def _size(net: Network) -> Tuple[int, int, int]:
    return (net.node_count(), net.literal_count(), len(net.inputs))
