"""Corpus I/O: persisting shrunk fuzzing failures as replayable BLIFs.

Every find is one self-contained ``.blif`` file under ``tests/corpus/``:
the minimized netlist plus a ``# repro-fuzz meta:`` comment line carrying
the exact flow options, mapping mode, generator spec and failure facts as
JSON.  BLIF comments are stripped by the parser, so an entry is both a
plain netlist (any tool can read it) and a replay recipe (the corpus
regression test re-runs each entry with its recorded options forever
after the bug is fixed).

File names are content-addressed (``<kind>_<digest>.blif``), so re-finding
a known failure never duplicates an entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bds.flow import BDSOptions
from repro.fuzz.options import options_from_dict
from repro.network.blif import parse_blif
from repro.network.network import Network

#: Comment prefix carrying the JSON replay metadata inside an entry.
META_PREFIX = "# repro-fuzz meta:"


@dataclass
class CorpusEntry:
    """One replayable corpus find."""

    path: str
    network: Network
    options: BDSOptions
    map_mode: Optional[str] = None
    kind: str = "mismatch"            # "mismatch" | "crash"
    stage: str = "flow"               # "flow" | "map"
    detail: str = ""
    seed: Optional[int] = None        # the fuzz run's master seed
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return os.path.basename(self.path)


def entry_text(blif_text: str, meta: Dict[str, Any]) -> str:
    """Compose the on-disk form: banner + meta comment + netlist."""
    header = [
        "# repro-fuzz corpus entry (minimized differential-fuzzing failure)",
        "# replay: every entry is re-run by tests/test_corpus_replay.py",
        META_PREFIX + " " + json.dumps(meta, sort_keys=True),
    ]
    return "\n".join(header) + "\n" + blif_text


def entry_filename(blif_text: str, meta: Dict[str, Any]) -> str:
    digest = hashlib.sha1(
        (blif_text + json.dumps(meta, sort_keys=True)).encode()).hexdigest()
    return "%s_%s.blif" % (meta.get("kind", "find"), digest[:12])


def save_entry(corpus_dir: str, blif_text: str,
               meta: Dict[str, Any]) -> str:
    """Write one entry (idempotent -- content-addressed name); return path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, entry_filename(blif_text, meta))
    if not os.path.exists(path):
        # Atomic publish: a reader (or a concurrent fuzzer sharing the
        # corpus) must never observe a half-written entry.
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as fh:
            fh.write(entry_text(blif_text, meta))
        os.replace(tmp, path)
    return path


def load_entry(path: str) -> CorpusEntry:
    """Parse one corpus file back into a replayable entry."""
    with open(path) as fh:
        text = fh.read()
    meta: Dict[str, Any] = {}
    for line in text.splitlines():
        if line.startswith(META_PREFIX):
            meta = json.loads(line[len(META_PREFIX):])
            break
        if line and not line.startswith("#"):
            break
    network = parse_blif(text)
    return CorpusEntry(
        path=path,
        network=network,
        options=options_from_dict(meta.get("options") or {}),
        map_mode=meta.get("map_mode"),
        kind=meta.get("kind", "mismatch"),
        stage=meta.get("stage", "flow"),
        detail=meta.get("detail", ""),
        seed=meta.get("seed"),
        meta=meta,
    )


def load_entries(corpus_dir: str) -> List[CorpusEntry]:
    """All entries of a corpus directory (missing/empty dir -> [])."""
    if not os.path.isdir(corpus_dir):
        return []
    out: List[CorpusEntry] = []
    for name in sorted(os.listdir(corpus_dir)):
        if name.endswith(".blif"):
            out.append(load_entry(os.path.join(corpus_dir, name)))
    return out
